#!/usr/bin/env python3
"""Anatomy of the offline replay: the paper's Figure 5, step by step.

Reproduces the worked example of §5.1–§5.2 on the paper's own listing:
a PEBS sample at `mov %rax,0x8(%rsp)` provides the register file; forward
replay reconstructs most following addresses; `mov 0x8(%rsi),%rax` resists
(its base register was loaded from memory) until *backward replay*
propagates %rsi from the next sample's context.

Run:  python examples/replay_anatomy.py
"""

from repro import assemble
from repro.machine import Machine
from repro.replay import WindowReplayer

SOURCE = """
.reserve stack_pad 4
.array darray 11 22 33 44 55 66 77 88
.array parray 0 0 0 0

main:
    mov $darray, %rbp
    mov $1, %rbx
    mov $parray, %r15
    mov $darray, %r9
    mov %r9, parray(%rip)
    mov %r9, 8(%r15)
    mov $darray, %r14
    mov $0, %r12
    mov $7, %r10
    mov $3, %r13
    mov %rax, 0x8(%rsp)         # paper line 0 — PEBS sample here
    mov 0x0(%rbp,%rbx,4), %rdx  # line 1
    mov (%r15,%rbx,8), %rsi     # line 2: load kills %rsi availability
    mov 0x8(%rsi), %rax         # line 3: needs backward replay
    mov %r10, %rdi              # line 4
    mov 0x8(%r14), %rax         # line 5
    add %rax, %r13              # line 6
    xor %rax, %rax              # line 7
    mov %r13, 0x8(%r14)         # line 8
    mov 0x8(%rsp), %rcx         # line 9
    mov (%r15,%r12,8), %rsi     # line 10 — next PEBS sample
    halt
"""

SAMPLE_AT = 10  # instruction index of "paper line 0"
NEXT_SAMPLE_AT = 20  # instruction index of "paper line 10"


def capture_states(program):
    """Run the program, recording the register file before each step."""
    machine = Machine(program, seed=0)
    states = []
    original = machine._step

    def wrapped(thread):
        states.append((thread.ip, thread.registers.snapshot()))
        original(thread)

    machine._step = wrapped
    machine.run()
    return states


def describe(program, accesses, title):
    print(f"\n--- {title} ---")
    by_ip = {a.ip: a for a in accesses}
    for ip in range(SAMPLE_AT, NEXT_SAMPLE_AT):
        ins = program[ip]
        if not ins.is_memory_access():
            continue
        access = by_ip.get(ip)
        line = ip - SAMPLE_AT
        if access:
            print(f"  line {line:2d}: {str(ins):30s} -> "
                  f"{access.address:#8x}  [{access.provenance}]")
        else:
            print(f"  line {line:2d}: {str(ins):30s} -> (not recovered)")


def main() -> None:
    program = assemble(SOURCE, "figure5")
    states = capture_states(program)
    steps = [ip for ip, _ in states]
    entry = states[SAMPLE_AT][1]
    exit_regs = states[NEXT_SAMPLE_AT][1]

    print("Figure 5 replay window: paper lines 0..10 "
          f"(instructions {SAMPLE_AT}..{NEXT_SAMPLE_AT})")

    forward_only = WindowReplayer(
        program, steps, SAMPLE_AT, NEXT_SAMPLE_AT, tid=0,
        entry_registers=entry, exit_registers=None,
    )
    describe(program, forward_only.run(), "forward replay only")

    full = WindowReplayer(
        program, steps, SAMPLE_AT, NEXT_SAMPLE_AT, tid=0,
        entry_registers=entry, exit_registers=exit_regs,
    )
    accesses = full.run()
    describe(program, accesses, "forward + backward replay")

    line3 = next(a for a in accesses if a.ip == SAMPLE_AT + 3)
    darray = program.symbols["darray"]
    assert line3.provenance == "backward"
    assert line3.address == darray + 8
    print("\nline 3 recovered by backward replay, exactly as in the paper:")
    print(f"  %rsi restored from the next sample's context -> "
          f"address {line3.address:#x} (= darray+8)")


if __name__ == "__main__":
    main()
