#!/usr/bin/env python3
"""Datacenter flow: trace files shipped from production to analysis.

The paper's deployment (§3): production machines continuously write
traces over a dedicated network; analysis machines "periodically process
the trace [and] delete the ones analyzed in prior periods".  This script
plays both roles:

1. *Production*: N seeded runs of the cherokee server bug, each traced
   at a production-budget period and serialized to a ``.prtr`` file.
2. *Analysis fleet*: each trace file is loaded, analyzed (in parallel
   across the traced program's threads), reported, and deleted; a fleet
   summary aggregates what the period's batch found.

Run:  python examples/datacenter_fleet.py
"""

import tempfile
from pathlib import Path

from repro import OfflinePipeline, trace_run
from repro.analysis import FleetSummary
from repro.tracing import read_trace, write_trace
from repro.workloads import RACE_BUGS, WorkloadScale

RUNS = 8
PERIOD = 400


def main() -> None:
    bug = RACE_BUGS["cherokee-0.9.2"]
    program = bug.build(WorkloadScale(iterations=30))
    spool = Path(tempfile.mkdtemp(prefix="prorace-spool-"))
    print(f"production: tracing {RUNS} runs of {bug.name} at period "
          f"{PERIOD}, spooling to {spool}")

    # --- production boxes: trace and ship.
    total_bytes = 0
    for seed in range(RUNS):
        bundle = trace_run(program, period=PERIOD, seed=seed)
        total_bytes += write_trace(bundle, spool / f"run-{seed:03d}.prtr")
    print(f"  spooled {total_bytes} bytes "
          f"({total_bytes // RUNS} per run)\n")

    # --- analysis machines: drain the spool.
    pipeline = OfflinePipeline(program, jobs=4)
    summary = FleetSummary()
    for trace_file in sorted(spool.glob("*.prtr")):
        bundle = read_trace(trace_file, program=program)
        result = pipeline.analyze(bundle)
        status = (
            f"{len(result.races)} race(s)" if result.races else "clean"
        )
        print(f"analysis: {trace_file.name}: {status}, "
              f"{result.replay.stats.recovered} accesses reconstructed")
        summary.add(result)
        trace_file.unlink()  # processed traces are deleted (§3)

    print()
    print(summary.render(program))
    assert summary.runs_with_races > 0
    remaining = list(spool.glob("*.prtr"))
    assert not remaining
    spool.rmdir()
    print("\nspool drained; the logger race was isolated from "
          f"{summary.runs_with_races}/{RUNS} production runs.")


if __name__ == "__main__":
    main()
