#!/usr/bin/env python3
"""Production-monitoring scenario: find a real-world bug across many runs.

Models the paper's deployment story (§3): a fleet of production runs of
a server application is continuously traced at a sampling period chosen
for a ~10% overhead budget; dedicated analysis machines process the
traces offline.  The bug is mysql-644 (Table 2), a memory-indirect race
on the query cache's free-list head — the hard class for sampling-based
detectors.

The script sweeps sampling periods, reporting for each: the estimated
runtime overhead (what production pays) and the detection probability
over N traced runs (what the analysis fleet finds), then compares
ProRace against the RaceZ baseline at the chosen deployment period.

Run:  python examples/production_monitoring.py
"""

from repro import OfflinePipeline, estimate_overhead, trace_run
from repro.baselines import RaceZ
from repro.workloads import RACE_BUGS, WorkloadScale

RUNS = 12
PERIODS = (50, 200, 1_000)


def main() -> None:
    bug = RACE_BUGS["mysql-644"]
    program = bug.build(WorkloadScale(iterations=30))
    print(f"bug under study: {bug.name} ({bug.access_type}; "
          f"manifestation: {bug.manifestation})")
    print(f"program: {len(program)} instructions\n")

    print(f"{'period':>8s} {'overhead':>10s} {'detection':>10s}")
    chosen = None
    for period in PERIODS:
        hits = 0
        overheads = []
        for seed in range(RUNS):
            bundle = trace_run(program, period=period, seed=seed)
            overheads.append(estimate_overhead(bundle).overhead)
            result = OfflinePipeline(program).analyze(bundle)
            hits += bug.detected(program, result)
        mean_overhead = sum(overheads) / len(overheads)
        print(f"{period:8d} {100 * mean_overhead:9.1f}% "
              f"{hits:6d}/{RUNS}")
        if chosen is None and mean_overhead < 0.10:
            chosen = period

    chosen = chosen or PERIODS[-1]
    print(f"\ndeploying at period {chosen} (the sweep's closest fit to a "
          "10% overhead budget); comparing against RaceZ:")
    racez = RaceZ()
    racez_hits = prorace_hits = 0
    for seed in range(RUNS):
        bundle = trace_run(program, period=chosen, seed=seed)
        prorace_hits += bug.detected(
            program, OfflinePipeline(program).analyze(bundle)
        )
        racez_hits += bug.detected(
            program, racez.analyze(program, racez.trace(
                program, period=chosen, seed=seed))
        )
    print(f"  ProRace: {prorace_hits}/{RUNS} runs detected the race")
    print(f"  RaceZ:   {racez_hits}/{RUNS} runs detected the race")


if __name__ == "__main__":
    main()
