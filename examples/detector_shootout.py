#!/usr/bin/env python3
"""Detector shootout: ProRace vs the baselines of §2 on one racy server.

Runs the cherokee-0.9.2 logger race (Table 2) under five detectors —
ProRace, RaceZ, LiteRace, Pacer, and DataCollider — and reports each
one's detection rate and modelled runtime cost, illustrating the paper's
positioning: instrumentation-based sampling (LiteRace, Pacer) pays heavy
runtime cost; breakpoint (DataCollider) and stock-driver PEBS (RaceZ)
are cheap but miss races; ProRace is cheap *and* effective.

Run:  python examples/detector_shootout.py
"""

from repro import OfflinePipeline, estimate_overhead, trace_run
from repro.baselines import RaceZ, run_datacollider, run_literace, run_pacer
from repro.workloads import RACE_BUGS, WorkloadScale

RUNS = 10
PERIOD = 150


def main() -> None:
    bug = RACE_BUGS["cherokee-0.9.2"]
    program = bug.build(WorkloadScale(iterations=25))
    targets = bug.racy_ips(program)
    print(f"target: {bug.name} ({bug.access_type}), "
          f"{len(program)} instructions, {RUNS} runs each\n")
    rows = []

    # ProRace.
    hits, cost = 0, 0.0
    for seed in range(RUNS):
        bundle = trace_run(program, period=PERIOD, seed=seed)
        cost += estimate_overhead(bundle).overhead
        hits += bug.detected(program, OfflinePipeline(program).analyze(bundle))
    rows.append(("prorace", hits, cost / RUNS))

    # RaceZ: stock driver, basic-block reconstruction.
    racez = RaceZ()
    hits, cost = 0, 0.0
    for seed in range(RUNS):
        bundle = racez.trace(program, period=PERIOD, seed=seed)
        cost += estimate_overhead(bundle).overhead
        hits += bug.detected(program, racez.analyze(program, bundle))
    rows.append(("racez", hits, cost / RUNS))

    # LiteRace: instrumented cold-region sampling.
    hits, cycles = 0, 0
    baseline_cycles = None
    for seed in range(RUNS):
        literace = run_literace(program, seed=seed)
        pairs = {
            tuple(sorted((r.first_ip if r.first_ip is not None else -1,
                          r.second.ip)))
            for r in literace.detector.races
        }
        hits += any(a in targets and b in targets for a, b in pairs)
        cycles += literace.overhead_cycles()
        if baseline_cycles is None:
            from repro.machine import Machine

            baseline_cycles = Machine(program, seed=seed).run().cpu_cycles
    rows.append(("literace", hits, cycles / RUNS / baseline_cycles))

    # Pacer at 3% (the paper's reference point).
    hits, cycles = 0, 0
    for seed in range(RUNS):
        pacer = run_pacer(program, sampling_rate=0.03, seed=seed)
        pairs = {
            tuple(sorted((r.first_ip if r.first_ip is not None else -1,
                          r.second.ip)))
            for r in pacer.detector.races
        }
        hits += any(a in targets and b in targets for a, b in pairs)
        cycles += pacer.overhead_cycles()
    rows.append(("pacer(3%)", hits, cycles / RUNS / baseline_cycles))

    # DataCollider.
    hits, cycles = 0, 0
    for seed in range(RUNS):
        collider = run_datacollider(program, period=PERIOD,
                                    delay_cycles=300, seed=seed)
        hits += any(
            a in targets and b in targets
            for a, b in collider.racy_ip_pairs()
        )
        cycles += collider.overhead_cycles()
    rows.append(("datacollider", hits, cycles / RUNS / baseline_cycles))

    print(f"{'detector':14s} {'detected':>9s} {'runtime cost':>13s}")
    print("-" * 40)
    for name, detected, overhead in rows:
        print(f"{name:14s} {detected:5d}/{RUNS} {100 * overhead:12.1f}%")


if __name__ == "__main__":
    main()
