#!/usr/bin/env python3
"""Quickstart: trace a racy program and detect the race, end to end.

This walks the complete ProRace flow of Figure 1:

1. assemble a small multithreaded program with a data race;
2. run it under PMU tracing (PEBS sampling + PT control flow + sync log);
3. run the offline pipeline (PT decode → forward/backward replay →
   FastTrack) and print the detected races.

Run:  python examples/quickstart.py
"""

from repro import OfflinePipeline, assemble, estimate_overhead, trace_run

SOURCE = """
.global balance 0
.global audit_lock 0
.reserve workbuf 16

main:
    spawn teller, %rbx
    mov $20, %rcx
main_loop:
    mov balance(%rip), %rax     # racy read-modify-write: no lock!
    add $100, %rax
    mov %rax, balance(%rip)
    mov %rcx, %r10
    and $15, %r10
    mov workbuf(,%r10,8), %r11  # unrelated request-handling traffic
    dec %rcx
    cmp $0, %rcx
    jne main_loop
    join %rbx
    halt

teller:
    mov $20, %rcx
teller_loop:
    mov balance(%rip), %rax     # races with main's updates
    sub $30, %rax
    mov %rax, balance(%rip)
    dec %rcx
    cmp $0, %rcx
    jne teller_loop
    halt
"""


def main() -> None:
    program = assemble(SOURCE, "bank")
    print(f"assembled {program.name!r}: {len(program)} instructions")

    # --- online phase: run under the PMU (ProRace driver, period 100).
    bundle = trace_run(program, period=100, seed=42)
    print(
        f"traced: {len(bundle.samples)} PEBS samples, "
        f"{len(bundle.sync_records)} sync records, "
        f"{bundle.total_trace_bytes} trace bytes"
    )
    estimate = estimate_overhead(bundle)
    print(f"estimated runtime overhead: {100 * estimate.overhead:.2f}%")

    # --- offline phase: decode, reconstruct, detect.
    result = OfflinePipeline(program).analyze(bundle)
    stats = result.replay.stats
    print(
        f"reconstruction: {stats.sampled} sampled + {stats.recovered} "
        f"recovered accesses (ratio {stats.recovery_ratio:.1f}x)"
    )
    print(f"races detected: {len(result.races)}")
    for race in result.races:
        print("  " + race.describe())

    balance = program.symbols["balance"]
    assert result.detected(balance), "expected the balance race!"
    print("\nthe unsynchronized `balance` counter was caught.")


if __name__ == "__main__":
    main()
