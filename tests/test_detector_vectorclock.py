"""Unit tests for vector clocks and epochs."""

from repro.detector.vectorclock import BOTTOM, Epoch, VectorClock


class TestEpoch:
    def test_ordering(self):
        assert Epoch(1, 0) < Epoch(2, 0)

    def test_str(self):
        assert str(Epoch(5, 2)) == "5@2"


class TestVectorClock:
    def test_absent_is_zero(self):
        assert VectorClock().get(3) == 0

    def test_set_get(self):
        vc = VectorClock()
        vc.set(1, 5)
        assert vc.get(1) == 5

    def test_set_zero_removes(self):
        vc = VectorClock({1: 5})
        vc.set(1, 0)
        assert vc.get(1) == 0
        assert dict(vc.items()) == {}

    def test_increment(self):
        vc = VectorClock()
        vc.increment(2)
        vc.increment(2)
        assert vc.get(2) == 2

    def test_join_is_pointwise_max(self):
        a = VectorClock({1: 5, 2: 1})
        b = VectorClock({1: 3, 2: 4, 3: 7})
        a.join(b)
        assert dict(a.items()) == {1: 5, 2: 4, 3: 7}

    def test_join_idempotent(self):
        a = VectorClock({1: 5})
        b = a.copy()
        a.join(b)
        assert a == b

    def test_copy_independent(self):
        a = VectorClock({1: 1})
        b = a.copy()
        b.increment(1)
        assert a.get(1) == 1

    def test_covers_epoch(self):
        vc = VectorClock({2: 4})
        assert vc.covers_epoch(Epoch(4, 2))
        assert vc.covers_epoch(Epoch(3, 2))
        assert not vc.covers_epoch(Epoch(5, 2))

    def test_bottom_always_covered(self):
        assert VectorClock().covers_epoch(BOTTOM)

    def test_covers_vector(self):
        big = VectorClock({1: 3, 2: 3})
        small = VectorClock({1: 2})
        assert big.covers(small)
        assert not small.covers(big)

    def test_thread_epoch(self):
        vc = VectorClock({7: 9})
        assert vc.epoch(7) == Epoch(9, 7)
        assert vc.epoch(8) == Epoch(0, 8)
