"""CLI surface of race confirmation: ``repro confirm``, ``repro
detect --confirm``, the ``server:SEED`` program spec, and ``repro
fleet --confirm``."""

import json

import pytest

from repro.cli import main

from tests.helpers import CLEAN_COUNTER_ASM, RACY_ASM


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


@pytest.fixture
def racy_source(tmp_path):
    path = tmp_path / "racy.s"
    path.write_text(RACY_ASM)
    return str(path)


@pytest.fixture
def clean_source(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(CLEAN_COUNTER_ASM)
    return str(path)


class TestConfirmCommand:
    def test_confirms_racy_program(self, capsys, racy_source):
        code, out = run_cli(capsys, "confirm", "-", "--source", racy_source,
                            "--period", "2", "--seed", "1")
        assert code == 0
        assert "race confirmation" in out
        assert "confirmed" in out
        assert "every reported race carries a verdict" in out

    def test_clean_program_exits_ok(self, capsys, clean_source):
        code, out = run_cli(capsys, "confirm", "-", "--source", clean_source,
                            "--period", "1", "--seed", "0")
        assert code == 0

    def test_suppressed_schedules_exit_8(self, capsys, racy_source):
        code, out = run_cli(capsys, "confirm", "-", "--source", racy_source,
                            "--period", "2", "--seed", "1",
                            "--suppress-schedules")
        assert code == 8
        assert "inapplicable" in out

    def test_json_output(self, capsys, racy_source):
        code, out = run_cli(capsys, "confirm", "-", "--source", racy_source,
                            "--period", "2", "--seed", "1", "--json")
        assert code == 0
        blob = json.loads(out)
        confirmation = blob["confirmation"]
        assert confirmation["conserves"]
        assert confirmation["races_reported"] == len(
            confirmation["verdicts"]
        )

    def test_server_program_spec(self, capsys):
        code, out = run_cli(capsys, "confirm", "server:1",
                            "--period", "7", "--seed", "1")
        assert code == 0
        assert "confirmed" in out

    def test_bad_server_spec_rejected(self):
        with pytest.raises(SystemExit, match="server"):
            main(["confirm", "server:banana"])


class TestDetectConfirm:
    def test_detect_confirm_keeps_race_exit(self, capsys, racy_source):
        """--confirm augments detection: races found and proven still
        exit 1 (the detect contract), with verdicts printed."""
        code, out = run_cli(capsys, "detect", "-", "--source", racy_source,
                            "--period", "2", "--seed", "1", "--confirm")
        assert code == 1
        assert "race confirmation" in out

    def test_detect_confirm_unproven_exits_8(self, capsys, racy_source):
        code, out = run_cli(capsys, "detect", "-", "--source", racy_source,
                            "--period", "2", "--seed", "1", "--confirm",
                            "--suppress-schedules")
        assert code == 8


class TestFleetConfirm:
    def test_fleet_confirm_renders_verdicts(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "fleet", "--nodes", "2", "--epochs", "1",
            "--iterations", "8", "--threads", "4", "--seed", "3",
            "--workdir", str(tmp_path), "--confirm",
        )
        assert code == 1  # races in the database
        assert "confirmation:" in out
        assert "[confirmed]" in out
        assert "every ranked race carries a verdict" in out
