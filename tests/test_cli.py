"""CLI tests (driven in-process via repro.cli.main)."""

import json

import pytest

from repro.cli import main

from tests.helpers import RACY_ASM


@pytest.fixture
def racy_source(tmp_path):
    path = tmp_path / "racy.s"
    path.write_text(RACY_ASM)
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestWorkloads:
    def test_lists_everything(self, capsys):
        code, out = run_cli(capsys, "workloads")
        assert code == 0
        assert "blackscholes" in out
        assert "apache-21287" in out
        assert "pc relative" in out


class TestRun:
    def test_runs_catalogued_workload(self, capsys):
        code, out = run_cli(capsys, "run", "swaptions", "--iterations", "5")
        assert code == 0
        assert "instructions" in out

    def test_runs_source_file(self, capsys, racy_source):
        code, out = run_cli(capsys, "run", "-", "--source", racy_source)
        assert code == 0

    def test_unknown_program(self, capsys):
        with pytest.raises(SystemExit, match="unknown program"):
            main(["run", "nonsense"])


class TestTraceAnalyze:
    def test_trace_then_analyze(self, capsys, racy_source, tmp_path):
        trace_path = str(tmp_path / "out.prtr")
        code, out = run_cli(
            capsys, "trace", "-", "--source", racy_source,
            "--period", "5", "-o", trace_path, "--seed", "3",
        )
        assert code == 0
        assert "wrote" in out
        code, out = run_cli(
            capsys, "analyze", "-", "--source", racy_source, trace_path
        )
        assert code == 1  # races found → nonzero exit
        assert "data race on" in out
        assert "racy" in out

    def test_analyze_json(self, capsys, racy_source, tmp_path):
        trace_path = str(tmp_path / "out.prtr")
        run_cli(capsys, "trace", "-", "--source", racy_source,
                "--period", "5", "-o", trace_path, "--seed", "3")
        code, out = run_cli(
            capsys, "analyze", "-", "--source", racy_source, trace_path,
            "--json",
        )
        payload = json.loads(out)
        assert payload["races"]


class TestAnalyzeErrors:
    def test_missing_trace_file(self, capsys, racy_source):
        code = main(["analyze", "-", "--source", racy_source,
                     "/no/such/file.prtr"])
        captured = capsys.readouterr()
        assert code == 2
        assert "trace file not found" in captured.err
        assert captured.err.count("\n") == 1

    def test_unreadable_trace(self, capsys, racy_source, tmp_path):
        bad = tmp_path / "bad.prtr"
        bad.write_bytes(b"garbage bytes, not a trace")
        code = main(["analyze", "-", "--source", racy_source, str(bad)])
        captured = capsys.readouterr()
        assert code == 2
        assert "unreadable trace" in captured.err
        assert captured.err.count("\n") == 1

    def test_allow_partial_salvages(self, capsys, racy_source, tmp_path):
        from repro.faults import corrupt_trace_file

        trace_path = str(tmp_path / "out.prtr")
        run_cli(capsys, "trace", "-", "--source", racy_source,
                "--period", "5", "-o", trace_path, "--seed", "3")
        corrupt_trace_file(trace_path, seed=1, section_index=1)  # pebs
        # Strict read refuses...
        code = main(["analyze", "-", "--source", racy_source, trace_path])
        assert code == 2
        capsys.readouterr()
        # ...salvage mode analyzes what survived.
        code, out = run_cli(
            capsys, "analyze", "-", "--source", racy_source, trace_path,
            "--allow-partial",
        )
        assert code in (0, 1)
        assert "degraded inputs" in out


class TestChaos:
    def test_smoke_sweep(self, capsys):
        code, out = run_cli(
            capsys, "chaos", "aget-bug2", "--runs", "2", "--seed", "7",
            "--intensities", "0.1", "--iterations", "8",
        )
        assert code == 0
        assert "baseline detection" in out
        for name in ("pebs-overflow", "pt-gap", "crash-truncation",
                     "tsc-jitter", "combined"):
            assert name in out
        assert "chaos sweep complete" in out

    def test_plan_subset(self, capsys, racy_source):
        code, out = run_cli(
            capsys, "chaos", "-", "--source", racy_source,
            "--runs", "2", "--plans", "pt-gap",
            "--intensities", "0.1,0.2",
        )
        assert code == 0
        assert "pt-gap" in out
        assert "pebs-overflow" not in out

    def test_unknown_plan(self, racy_source):
        with pytest.raises(SystemExit, match="unknown fault plan"):
            main(["chaos", "-", "--source", racy_source,
                  "--plans", "nonsense"])


class TestSupervisedExitCodes:
    """The documented exit-code taxonomy: 2 = bad input (covered by
    TestAnalyzeErrors), 3 = deadline, 4 = quarantine — each distinct so
    a fleet scheduler can requeue/quarantine/discard without parsing
    messages."""

    def test_deadline_exits_3(self, capsys):
        code = main([
            "sweep", "detection", "--target", "aget-bug2",
            "--periods", "100", "--runs", "2", "--iterations", "8",
            "--deadline", "0",
        ])
        captured = capsys.readouterr()
        assert code == 3
        assert "deadline" in captured.err

    def test_quarantine_exits_4(self, capsys):
        # Every attempt of every trial raises: the retry budget drains
        # and the items land in quarantine.
        code = main([
            "chaos", "aget-bug2", "--iterations", "8", "--runs", "2",
            "--period", "100", "--fail-workers", "1.0",
            "--retries", "1", "--fault-attempts", "99",
        ])
        captured = capsys.readouterr()
        assert code == 4
        assert "quarantined" in captured.err

    def test_chaos_needs_known_bug(self):
        with pytest.raises(SystemExit, match="race bug"):
            main(["chaos", "swaptions", "--kill-workers", "0.5"])

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit, match="--checkpoint-dir"):
            main([
                "sweep", "detection", "--target", "aget-bug2",
                "--periods", "100", "--runs", "2", "--iterations", "8",
                "--resume",
            ])


class TestSweepCheckpointResume:
    def test_resume_bit_identical(self, capsys, tmp_path):
        args = [
            "sweep", "detection", "--target", "aget-bug2",
            "--periods", "100", "--runs", "2", "--iterations", "8",
            "--json",
        ]
        code, baseline = run_cli(capsys, *args)
        assert code == 0
        checkpoint = str(tmp_path / "ck")
        code, _ = run_cli(capsys, *args, "--checkpoint-dir", checkpoint)
        assert code == 0
        code, resumed = run_cli(capsys, *args, "--checkpoint-dir",
                                checkpoint, "--resume")
        assert code == 0
        base, res = json.loads(baseline), json.loads(resumed)
        # The deterministic payload is identical to the unsupervised
        # run; the ledger records that nothing was recomputed.
        assert base["cells"] == res["cells"]
        assert base["totals"] == res["totals"]
        assert res["run_ledger"]["resumed"] == 2
        assert res["run_ledger"]["attempts"] == 0


class TestDetect:
    def test_single_run_report(self, capsys, racy_source):
        code, out = run_cli(
            capsys, "detect", "-", "--source", racy_source,
            "--period", "5", "--seed", "2",
        )
        assert code == 1
        assert "ProRace report" in out

    def test_fleet_summary(self, capsys, racy_source):
        code, out = run_cli(
            capsys, "detect", "-", "--source", racy_source,
            "--period", "5", "--runs", "3",
        )
        assert code == 1
        assert "fleet summary" in out
        assert "/3 runs" in out

    def test_clean_program_exits_zero(self, capsys):
        code, out = run_cli(
            capsys, "detect", "blackscholes", "--iterations", "5",
            "--period", "5",
        )
        assert code == 0
        assert "no data races detected" in out


class TestOverhead:
    def test_sweep(self, capsys):
        code, out = run_cli(
            capsys, "overhead", "swaptions", "--iterations", "20",
            "--periods", "100,10000",
        )
        assert code == 0
        assert "prorace" in out and "vanilla" in out
        assert out.count("%") >= 4


class TestSweep:
    def test_detection_sweep_single_bug(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "detection", "--target", "aget-bug2",
            "--periods", "100", "--runs", "2", "--iterations", "8",
        )
        assert code == 0
        assert "aget-bug2" in out and "total" in out

    def test_overhead_sweep_single_workload(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "overhead", "--target", "swaptions",
            "--periods", "100,10000", "--iterations", "20",
        )
        assert code == 0
        assert "geomean" in out

    def test_unknown_sweep_target(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "overhead", "--target", "nope"])


class TestJitFlags:
    def _trace(self, capsys, racy_source, tmp_path):
        trace_path = str(tmp_path / "out.prtr")
        run_cli(capsys, "trace", "-", "--source", racy_source,
                "--period", "5", "-o", trace_path, "--seed", "3")
        return trace_path

    def test_no_jit_identical_analysis(self, capsys, racy_source, tmp_path):
        trace_path = self._trace(capsys, racy_source, tmp_path)
        code_jit, out_jit = run_cli(
            capsys, "analyze", "-", "--source", racy_source, trace_path,
            "--json",
        )
        code_nojit, out_nojit = run_cli(
            capsys, "analyze", "-", "--source", racy_source, trace_path,
            "--json", "--no-jit",
        )
        assert code_jit == code_nojit
        jit, nojit = json.loads(out_jit), json.loads(out_nojit)
        assert jit["races"] == nojit["races"]
        assert jit["stats"] == nojit["stats"]
        # The interpreter fallback never consults summaries.
        assert nojit["replay_speed"]["summary_hits"] == 0

    def test_profile_writes_pstats(self, capsys, racy_source, tmp_path):
        import pstats

        trace_path = self._trace(capsys, racy_source, tmp_path)
        profile_path = str(tmp_path / "analyze.pstats")
        code, out = run_cli(
            capsys, "analyze", "-", "--source", racy_source, trace_path,
            "--profile", profile_path,
        )
        assert code == 1  # profiling must not change the verdict
        stats = pstats.Stats(profile_path)
        assert stats.total_calls > 0


class TestGovernorFlags:
    def test_trace_governed_prints_summary(self, capsys, tmp_path):
        trace_path = str(tmp_path / "gov.prtr")
        code, out = run_cli(
            capsys, "trace", "pbzip2-0.9.4", "--iterations", "50",
            "--period", "2", "--governor", "--overhead-budget", "0.02",
            "--k-max", "16384", "--load-bursts", "16",
            "-o", trace_path, "--seed", "1",
        )
        assert code == 0
        assert "governor" in out
        assert "wrote" in out

    def test_ungoverned_trace_has_no_governor_line(self, capsys,
                                                   racy_source, tmp_path):
        trace_path = str(tmp_path / "plain.prtr")
        code, out = run_cli(
            capsys, "trace", "-", "--source", racy_source,
            "--period", "5", "-o", trace_path,
        )
        assert code == 0
        assert "governor" not in out

    def test_watchdog_degraded_trace_exits_6(self, capsys, tmp_path):
        """A stalled PEBS engine degrades the run to sync-only tracing:
        the trace file is still written, but the exit code tells a fleet
        scheduler to score it lower (exit code 6)."""
        trace_path = str(tmp_path / "stalled.prtr")
        code, out = run_cli(
            capsys, "trace", "pbzip2-0.9.4", "--iterations", "50",
            "--period", "100", "--governor", "--overhead-budget", "0.5",
            "--stall-pebs-at", "3000", "-o", trace_path,
        )
        assert code == 6
        assert "watchdog" in out.lower()
        # The degraded trace is still loadable and analyzable.
        code, _ = run_cli(
            capsys, "analyze", "pbzip2-0.9.4", "--iterations", "50",
            trace_path,
        )
        assert code in (0, 1)


class TestChaosLoadBursts:
    def test_json_contract(self, capsys, racy_source):
        code, out = run_cli(
            capsys, "chaos", "-", "--source", racy_source,
            "--load-bursts", "8", "--period", "2", "--runs", "2",
            "--governor", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["mode"] == "load-bursts"
        summary = payload["summary"]
        for key in ("governed_detections", "fixed_detections",
                    "budget_respected", "throttle_tripped",
                    "governed_beats_fixed"):
            assert key in summary
        assert len(payload["rows"]) == 2
        for row in payload["rows"]:
            assert row["governed"]["governor"]["budget"] == 0.02
            assert "within_budget" in row["governed"]["governor"]
            assert "governor" not in row["fixed"]

    def test_text_table(self, capsys, racy_source):
        code, out = run_cli(
            capsys, "chaos", "-", "--source", racy_source,
            "--load-bursts", "8", "--period", "2", "--runs", "2",
        )
        assert code == 0
        assert "load-burst chaos" in out
        assert "detections:" in out


class TestDetectorSelection:
    def test_unknown_detector_exits_2_with_suggestion(self, capsys,
                                                      racy_source):
        code = main(["detect", "-", "--source", racy_source,
                     "--period", "5", "--detector", "fastrack"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown detector 'fastrack'" in err
        assert "did you mean 'fasttrack'" in err
        assert "available:" in err

    def test_unknown_detector_on_sweep(self, capsys):
        code = main(["sweep", "detection", "--target", "pfscan",
                     "--iterations", "5", "--runs", "1",
                     "--periods", "100", "--detector", "locksets"])
        err = capsys.readouterr().err
        assert code == 2
        assert "did you mean 'lockset'" in err

    def test_default_report_has_no_backend_sections(self, capsys,
                                                    racy_source):
        code, out = run_cli(capsys, "detect", "-", "--source", racy_source,
                            "--period", "5", "--seed", "3")
        assert code == 1
        assert "detectors:" not in out
        assert "--- backend" not in out

    def test_multi_backend_report_sections(self, capsys, racy_source):
        code, out = run_cli(
            capsys, "detect", "-", "--source", racy_source,
            "--period", "5", "--seed", "3",
            "--detector", "fasttrack,lockset", "--detector", "o1",
        )
        assert code == 1
        assert "detectors: fasttrack, lockset, o1 (primary: fasttrack)" \
            in out
        assert "--- backend lockset:" in out
        assert "--- backend o1:" in out

    def test_multi_backend_json(self, capsys, racy_source, tmp_path):
        trace_path = str(tmp_path / "out.prtr")
        run_cli(capsys, "trace", "-", "--source", racy_source,
                "--period", "5", "-o", trace_path, "--seed", "3")
        code, out = run_cli(
            capsys, "analyze", "-", "--source", racy_source, trace_path,
            "--json", "--detector", "fasttrack,predict",
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["detectors"] == ["fasttrack", "predict"]
        backends = payload["backends"]
        assert set(backends) == {"fasttrack", "predict"}
        predict = backends["predict"]
        assert "candidates" in predict["details"]
        # Witnessed races carry their schedule.
        for race in predict["races"]:
            assert race["witness"] is not None


class TestShootout:
    def test_smoke_two_backends(self, capsys, tmp_path):
        out_path = str(tmp_path / "BENCH_detectors.json")
        code, out = run_cli(
            capsys, "shootout", "--bugs", "pfscan,aget-bug2",
            "--iterations", "8", "--runs", "1",
            "--detector", "fasttrack,o1", "--baselines", "datacollider",
            "-o", out_path,
        )
        assert code == 0
        assert "shootout: 2 bugs x 1 runs" in out
        assert "fasttrack" in out
        payload = json.loads(open(out_path).read())
        names = {row["name"] for row in payload["ranked"]}
        assert names == {"fasttrack", "o1", "datacollider"}

    def test_unknown_bug_rejected(self):
        with pytest.raises(SystemExit, match="unknown race bugs"):
            main(["shootout", "--bugs", "nonsense"])

    def test_unknown_detector_exits_2(self, capsys):
        code = main(["shootout", "--bugs", "pfscan", "--iterations", "5",
                     "--detector", "fastrack"])
        err = capsys.readouterr().err
        assert code == 2
        assert "did you mean 'fasttrack'" in err
