"""Component-level property tests: timeline monotonicity, heap
recycling laws, PT size accounting, Wilson interval laws."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import wilson_interval
from repro.analysis.timeline import ThreadTimeline
from repro.machine.heap import Heap
from repro.pmu.pt import PTConfig, PTPacket, PTThreadTrace, PacketKind


# ---------------------------------------------------------------------------
# Timeline
# ---------------------------------------------------------------------------

anchor_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=500),
              st.integers(min_value=0, max_value=100_000)),
    min_size=1, max_size=20,
)


def _to_points(raw):
    """Sorted, strictly increasing in both coordinates, spacing >= steps
    (the machine's one-cycle-per-instruction guarantee)."""
    raw = sorted(set(raw))
    points = []
    for step, tsc in raw:
        if points:
            prev_step, prev_tsc = points[-1]
            if step <= prev_step:
                continue
            tsc = max(tsc, prev_tsc + (step - prev_step))
        points.append((step, tsc))
    return points


@given(anchor_lists)
@settings(max_examples=200)
def test_timeline_strictly_monotone(raw):
    points = _to_points(raw)
    timeline = ThreadTimeline(tid=0, points=points,
                              total_steps=points[-1][0] + 5)
    values = [timeline.tsc_of(s) for s in range(points[-1][0] + 5)]
    assert all(a < b for a, b in zip(values, values[1:]))


@given(anchor_lists)
@settings(max_examples=200)
def test_timeline_exact_at_anchors(raw):
    points = _to_points(raw)
    timeline = ThreadTimeline(tid=0, points=points,
                              total_steps=points[-1][0] + 1)
    for step, tsc in points:
        assert timeline.tsc_of(step) == tsc


@given(anchor_lists)
@settings(max_examples=100)
def test_timeline_interpolation_bounded_by_anchors(raw):
    points = _to_points(raw)
    assume(len(points) >= 2)
    timeline = ThreadTimeline(tid=0, points=points,
                              total_steps=points[-1][0] + 1)
    for (s1, t1), (s2, t2) in zip(points, points[1:]):
        for step in range(s1 + 1, s2):
            assert t1 < timeline.tsc_of(step) < t2


# ---------------------------------------------------------------------------
# Heap
# ---------------------------------------------------------------------------

heap_ops = st.lists(
    st.one_of(
        st.tuples(st.just("malloc"),
                  st.integers(min_value=1, max_value=256)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
    ),
    max_size=60,
)


@given(heap_ops)
@settings(max_examples=200)
def test_heap_never_overlaps_live_allocations(ops):
    heap = Heap()
    live = []
    tsc = 0
    for kind, value in ops:
        tsc += 1
        if kind == "malloc":
            live.append((heap.malloc(value, tsc), (value + 7) & ~7))
        elif live:
            address, _ = live.pop(value % len(live))
            heap.free(address, tsc)
        spans = sorted((a, a + size) for a, size in live)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start, "live allocations overlap"


@given(heap_ops)
@settings(max_examples=100)
def test_heap_history_consistent(ops):
    heap = Heap()
    live = []
    tsc = 0
    for kind, value in ops:
        tsc += 1
        if kind == "malloc":
            live.append(heap.malloc(value, tsc))
        elif live:
            heap.free(live.pop(value % len(live)), tsc)
    history = heap.history()
    assert sum(1 for a in history if a.live) == len(live)
    for record in history:
        if record.free_tsc is not None:
            assert record.free_tsc >= record.alloc_tsc


# ---------------------------------------------------------------------------
# PT size accounting
# ---------------------------------------------------------------------------

packet_lists = st.lists(
    st.one_of(
        st.builds(lambda t: PTPacket(PacketKind.TNT, t, bit=True),
                  st.integers(min_value=1, max_value=10_000)),
        st.builds(lambda t: PTPacket(PacketKind.TIP, t, target=5),
                  st.integers(min_value=1, max_value=10_000)),
    ),
    max_size=100,
)


@given(packet_lists)
@settings(max_examples=200)
def test_pt_size_monotone_in_packets(packets):
    config = PTConfig(mtc_period=0, psb_period=0)
    trace = PTThreadTrace(tid=0, start_ip=0, start_tsc=0)
    sizes = []
    for packet in packets:
        trace.packets.append(packet)
        sizes.append(trace.size_bytes(config))
    assert all(a <= b for a, b in zip(sizes, sizes[1:]))


@given(st.integers(min_value=0, max_value=600))
def test_pt_tnt_packing_density(n_bits):
    config = PTConfig(mtc_period=0, psb_period=0)
    trace = PTThreadTrace(tid=0, start_ip=0, start_tsc=0)
    trace.packets = [
        PTPacket(PacketKind.TNT, i + 1, bit=True) for i in range(n_bits)
    ]
    overhead = 16 + 5  # PSB + start TIP
    expected = overhead + -(-n_bits // 6)
    assert trace.size_bytes(config) == expected


# ---------------------------------------------------------------------------
# Wilson interval
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=1000),
       st.integers(min_value=1, max_value=1000))
@settings(max_examples=300)
def test_wilson_contains_estimate_and_ordered(hits, runs):
    assume(hits <= runs)
    low, high = wilson_interval(hits, runs)
    epsilon = 1e-9  # the boundary cases p=0, p=1 round by one ulp
    assert 0.0 <= low <= hits / runs + epsilon
    assert hits / runs - epsilon <= high <= 1.0
