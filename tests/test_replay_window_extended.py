"""Extended window-replay coverage: stack traffic, taint propagation,
window statistics, cross-window memory carry-over."""

import pytest

from repro.isa import assemble
from repro.replay import PROV_BACKWARD, PROV_FORWARD, WindowReplayer
from repro.replay.program_map import Known

from tests.helpers import record_states


def replay_whole(source, entry_step=0, seed=0, entry=True, exit_step=None):
    program = assemble(source)
    machine, states = record_states(program, seed=seed)
    steps = [ip for ip, _ in states[0]]
    replayer = WindowReplayer(
        program, steps, entry_step,
        exit_step if exit_step is not None else len(steps), tid=0,
        entry_registers=states[0][entry_step][1] if entry else None,
        exit_registers=(
            states[0][exit_step][1] if exit_step is not None else None
        ),
    )
    return program, steps, replayer


class TestStackTraffic:
    SOURCE = """
.global g 3
main:
    mov g(%rip), %rax
    push %rax
    mov $0, %rax
    pop %rbx
    mov %rbx, g(%rip)
    halt
"""

    def test_push_pop_addresses_recovered(self):
        program, steps, replayer = replay_whole(self.SOURCE)
        recovered = {a.ip: a for a in replayer.run()}
        assert recovered[1].is_store  # push
        assert not recovered[3].is_store  # pop
        assert recovered[1].address == recovered[3].address

    def test_pop_value_flows_through_emulated_stack(self):
        """push then pop through emulated memory: the store at ip 4 uses
        the value restored via the stack slot."""
        program, steps, replayer = replay_whole(self.SOURCE)
        recovered = {a.ip: a for a in replayer.run()}
        assert 4 in recovered  # final store address known via rip

    def test_rsp_recovered_backward(self):
        """With no entry context, backward propagation restores rsp and
        with it the stack-slot addresses."""
        program, steps, _ = replay_whole(self.SOURCE)
        machine, states = record_states(assemble(self.SOURCE))
        replayer = WindowReplayer(
            assemble(self.SOURCE), steps, 0, 4, tid=0,
            entry_registers=None, exit_registers=states[0][4][1],
        )
        recovered = {a.ip: a for a in replayer.run()}
        assert 1 in recovered and recovered[1].provenance == PROV_BACKWARD


class TestCallRetAcrossWindow:
    SOURCE = """
.array arr 1 2 3 4
main:
    mov $2, %rbx
    call f
    mov arr(,%rbx,8), %rcx
    halt
f:
    mov arr(,%rbx,8), %rdx
    ret
"""

    def test_rsp_tracked_through_call_ret(self):
        program, steps, replayer = replay_whole(self.SOURCE)
        recovered = {a.step_index for a in replayer.run()}
        # Both array loads (inside f and after the ret) recovered.
        ips = {replayer.steps[j] for j in recovered}
        assert program.resolve("f") in ips
        assert 2 in ips


class TestTaint:
    def test_taint_propagates_through_lea_and_alu(self):
        source = """
.global cell 0
.array arr 7 7 7 7 7 7 7 7
main:
    mov $3, %rax
    mov %rax, cell(%rip)
    mov cell(%rip), %rbx     # rbx tainted by cell
    add $1, %rbx             # taint survives arithmetic
    mov arr(,%rbx,8), %rcx   # access address tainted
    halt
"""
        program, steps, replayer = replay_whole(source)
        recovered = {a.ip: a for a in replayer.run()}
        access = recovered[4]
        assert access.taint and program.symbols["cell"] in access.taint

    def test_clean_addresses_have_no_taint(self):
        source = """
.array arr 7 7 7 7
main:
    mov $2, %rbx
    mov arr(,%rbx,8), %rcx
    halt
"""
        program, steps, replayer = replay_whole(source)
        recovered = {a.ip: a for a in replayer.run()}
        assert recovered[1].taint is None


class TestCrossWindowMemory:
    def test_emulated_memory_carries_between_windows(self):
        """A pointer stored in window 1 resolves a load in window 2 (the
        engine threads exit_memory → entry_memory)."""
        source = """
.global cell 0
.array arr 5 6 7 8
main:
    mov $arr, %rax
    mov %rax, cell(%rip)     # window 1: emulate the pointer
    mov $0, %r9
    mov cell(%rip), %rsi     # window 2 starts before this load
    mov 8(%rsi), %rdx
    halt
"""
        program = assemble(source)
        machine, states = record_states(program)
        steps = [ip for ip, _ in states[0]]
        first = WindowReplayer(
            program, steps, 0, 3, tid=0,
            entry_registers=states[0][0][1], exit_registers=states[0][3][1],
        )
        first.run()
        second = WindowReplayer(
            program, steps, 3, len(steps), tid=0,
            entry_registers=states[0][3][1], exit_registers=None,
            entry_memory=first.exit_memory,
        )
        recovered = {a.ip: a for a in second.run()}
        assert recovered[4].address == program.symbols["arr"] + 8


class TestWindowStats:
    def test_counters_populate(self):
        source = """
.global g 1
main:
    mov g(%rip), %rbx
    mov (%rbx), %rcx
    mov g(%rip), %rdx
    halt
"""
        program, steps, replayer = replay_whole(source, entry=False)
        replayer.run()
        stats = replayer.stats
        assert stats.steps == len(steps)
        assert stats.missed >= 1  # (%rbx) with rbx from memory
        assert stats.iterations >= 1

    def test_invalidation_counted(self):
        source = """
.global g 1
.global lockvar 0
main:
    mov $5, %rax
    mov %rax, g(%rip)
    lock $lockvar
    unlock $lockvar
    halt
"""
        program, steps, replayer = replay_whole(source)
        replayer.run()
        assert replayer.stats.memory_invalidations >= 2
