"""Advanced threading semantics: nested spawns, multi-waiter joins,
core-private PEBS counters, scheduler knobs."""

import pytest

from repro.isa import assemble
from repro.machine import Machine
from repro.pmu import PEBSConfig, PEBSEngine

from tests.helpers import run_machine


class TestNestedThreads:
    def test_grandchild_threads(self):
        source = """
.global total 0
.global lockvar 0
main:
    spawn child, %rbx
    join %rbx
    halt
child:
    spawn grandchild, %r12
    lock $lockvar
    mov total(%rip), %rax
    add $1, %rax
    mov %rax, total(%rip)
    unlock $lockvar
    join %r12
    halt
grandchild:
    lock $lockvar
    mov total(%rip), %rax
    add $10, %rax
    mov %rax, total(%rip)
    unlock $lockvar
    halt
"""
        program = assemble(source)
        for seed in range(6):
            machine, result = run_machine(program, seed=seed)
            assert result.threads == 3
            assert machine.memory.load(program.symbols["total"]) == 11

    def test_multiple_waiters_on_one_thread(self):
        source = """
.global done 0
main:
    spawn slow, %rbx
    mov %rbx, %rdi
    spawn waiter, %r12
    join %rbx
    mov done(%rip), %rax
    add $1, %rax
    mov %rax, done(%rip)
    join %r12
    halt
slow:
    mov $20, %rcx
s_loop:
    dec %rcx
    cmp $0, %rcx
    jne s_loop
    halt
waiter:
    join %rdi
    mov done(%rip), %rax
    add $1, %rax
    mov %rax, done(%rip)
    halt
"""
        # Both main and waiter join the same slow thread.  The two `done`
        # increments race with each other (no lock) but both must run.
        program = assemble(source)
        machine, result = run_machine(program, seed=4)
        assert result.threads == 3
        assert machine.memory.load(program.symbols["done"]) >= 1


class TestPerCoreCounters:
    SOURCE = """
.global a 0
.global b 0
main:
    spawn worker, %rbx
    mov $30, %rcx
m_loop:
    mov a(%rip), %rax
    mov %rax, a(%rip)
    dec %rcx
    cmp $0, %rcx
    jne m_loop
    join %rbx
    halt
worker:
    mov $30, %rcx
w_loop:
    mov b(%rip), %rax
    mov %rax, b(%rip)
    dec %rcx
    cmp $0, %rcx
    jne w_loop
    halt
"""

    def test_both_cores_sample(self):
        program = assemble(self.SOURCE)
        machine = Machine(program, num_cores=2, seed=1)
        pebs = PEBSEngine(PEBSConfig(period=5), seed=2)
        machine.attach(pebs)
        machine.run()
        cores = {sample.core for sample in pebs.samples}
        assert cores == {0, 1}

    def test_single_core_still_samples_all_threads(self):
        program = assemble(self.SOURCE)
        machine = Machine(program, num_cores=1, seed=1)
        pebs = PEBSEngine(PEBSConfig(period=5), seed=2)
        machine.attach(pebs)
        machine.run()
        tids = {sample.tid for sample in pebs.samples}
        assert tids == {0, 1}
        assert all(sample.core == 0 for sample in pebs.samples)


class TestSchedulerKnobs:
    def test_zero_preemption_runs_quantum_blocks(self, clean_program):
        machine = Machine(clean_program, seed=0, preempt_probability=0.0,
                          quantum=1_000_000)
        result = machine.run()
        assert result.instructions > 0

    def test_tiny_quantum_loses_updates(self, racy_program):
        # With quantum=1 every instruction boundary switches: the racy
        # read-modify-write reliably loses updates (8×1 + 8×2 = 24 would
        # be the race-free total).
        machine = Machine(racy_program, seed=0, quantum=1)
        machine.run()
        assert machine.memory.load(racy_program.symbols["racy"]) < 24

    def test_small_quantum_diversifies_outcomes(self):
        from tests.helpers import RACY_ASM

        finals = set()
        for seed in range(8):
            program = assemble(RACY_ASM)
            machine = Machine(program, seed=seed, quantum=3)
            machine.run()
            finals.add(machine.memory.load(program.symbols["racy"]))
        assert len(finals) > 1  # schedule-dependent outcomes


class TestIoOverlap:
    def test_io_threads_overlap_in_time(self):
        source = """
main:
    spawn sleeper, %rbx
    io $10000
    join %rbx
    halt
sleeper:
    io $10000
    halt
"""
        _, result = run_machine(assemble(source), seed=0)
        # Two 10K-cycle waits overlap: total elapsed ≈ 10K, not 20K.
        assert result.tsc < 15_000
        assert result.io_cycles == 20_000
