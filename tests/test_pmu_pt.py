"""Unit tests for PT packetization and byte accounting."""

import pytest

from repro.isa import assemble
from repro.machine import Machine
from repro.pmu import (
    PTConfig,
    PTPacketizer,
    PacketKind,
    TIP_BYTES,
    TNT_BITS_PER_BYTE,
)

from tests.helpers import CLEAN_COUNTER_ASM


def _packetize(source, config=None, seed=0):
    program = assemble(source)
    machine = Machine(program, seed=seed)
    pt = PTPacketizer(config or PTConfig())
    machine.attach(pt)
    machine.run()
    return program, pt


LOOP = """
main:
    mov $10, %rcx
loop:
    dec %rcx
    cmp $0, %rcx
    jne loop
    halt
"""


class TestPackets:
    def test_conditional_branches_emit_tnt(self):
        _, pt = _packetize(LOOP)
        trace = pt.traces[0]
        tnts = [p for p in trace.packets if p.kind == PacketKind.TNT]
        assert len(tnts) == 10
        assert [p.bit for p in tnts] == [True] * 9 + [False]

    def test_halt_emits_end(self):
        _, pt = _packetize(LOOP)
        assert pt.traces[0].packets[-1].kind == PacketKind.END

    def test_direct_call_emits_no_packet(self):
        src = "main:\n    call f\n    halt\nf:\n    ret\n"
        _, pt = _packetize(src)
        kinds = [p.kind for p in pt.traces[0].packets]
        # ret is compressed to a TNT bit; the call itself is silent.
        assert kinds == [PacketKind.TNT, PacketKind.END]

    def test_ret_compression_off_emits_tip(self):
        src = "main:\n    call f\n    halt\nf:\n    ret\n"
        _, pt = _packetize(src, PTConfig(ret_compression=False))
        kinds = [p.kind for p in pt.traces[0].packets]
        assert kinds == [PacketKind.TIP, PacketKind.END]

    def test_indirect_jmp_emits_tip(self):
        src = ("main:\n    mov $4, %rax\n    jmp %rax\n    halt\n    halt\n"
               "t:\n    halt\n")
        _, pt = _packetize(src)
        tips = [p for p in pt.traces[0].packets if p.kind == PacketKind.TIP]
        assert len(tips) == 1 and tips[0].target == 4

    def test_per_thread_streams(self):
        _, pt = _packetize(CLEAN_COUNTER_ASM)
        assert set(pt.traces) == {0, 1}
        for trace in pt.traces.values():
            assert trace.packets[-1].kind == PacketKind.END

    def test_packet_tscs_monotone(self):
        _, pt = _packetize(CLEAN_COUNTER_ASM)
        for trace in pt.traces.values():
            tscs = [p.tsc for p in trace.packets]
            assert tscs == sorted(tscs)


class TestRegionFilter:
    def test_at_most_four_filters(self):
        with pytest.raises(ValueError):
            PTConfig(filters=tuple((i, i + 1) for i in range(5)))

    def test_filter_suppresses_out_of_region_branches(self):
        program = assemble(LOOP)
        # Exclude everything: no branch packets at all.
        _, pt = _packetize(LOOP, PTConfig(filters=((900, 901),)))
        trace = pt.traces[0]
        branch_packets = [
            p for p in trace.packets if p.kind != PacketKind.END
        ]
        assert not branch_packets
        assert trace.truncated

    def test_whole_program_filter_equals_no_filter(self):
        program = assemble(LOOP)
        _, unfiltered = _packetize(LOOP)
        _, filtered = _packetize(
            LOOP, PTConfig(filters=((0, len(program)),))
        )
        assert [p.kind for p in unfiltered.traces[0].packets] == \
            [p.kind for p in filtered.traces[0].packets]


class TestSizeAccounting:
    def test_tnt_bits_pack_six_per_byte(self):
        src_many = """
main:
    mov $60, %rcx
loop:
    dec %rcx
    cmp $0, %rcx
    jne loop
    halt
"""
        _, pt = _packetize(src_many)
        config = PTConfig(mtc_period=0, psb_period=0)
        size = pt.traces[0].size_bytes(config)
        # 60 TNT bits -> 10 bytes, plus PSB+TIP header and END TIP.
        expected = 16 + TIP_BYTES + -(-60 // TNT_BITS_PER_BYTE) + TIP_BYTES
        assert size == expected

    def test_size_grows_with_branch_count(self):
        short = _packetize(LOOP)[1].total_size_bytes()
        long_src = LOOP.replace("$10", "$500")
        long = _packetize(long_src)[1].total_size_bytes()
        assert long > short

    def test_compression_is_dense(self):
        """PT compresses massively relative to one word per branch."""
        src = LOOP.replace("$10", "$600")
        _, pt = _packetize(src)
        assert pt.total_size_bytes() < pt.branches_seen * 2
