"""Workload functional correctness: the kernels compute what their
synchronization promises (pipelines conserve items, reductions add up)."""

import pytest

from repro.machine import Machine
from repro.workloads import APP_WORKLOADS, PARSEC_WORKLOADS, WorkloadScale

SCALE = WorkloadScale(iterations=12)


def run(workload, seed=0):
    program = workload.instantiate(SCALE)
    machine = Machine(program, seed=seed)
    machine.run()
    return program, machine


class TestPipelines:
    @pytest.mark.parametrize("seed", range(5))
    def test_dedup_conserves_items(self, seed):
        """Every chunk flows chunk→hash→write exactly once."""
        program, machine = run(PARSEC_WORKLOADS["dedup"], seed)
        out_count = machine.memory.load(program.symbols["out_count"])
        assert out_count == SCALE.iterations

    @pytest.mark.parametrize("seed", range(5))
    def test_pbzip2_compresses_every_block(self, seed):
        program, machine = run(APP_WORKLOADS["pbzip2"], seed)
        done = machine.memory.load(program.symbols["done_count"])
        threads = SCALE.capped_threads(4)
        assert done == SCALE.iterations * (threads - 1)

    @pytest.mark.parametrize("seed", range(3))
    def test_x264_every_worker_encodes(self, seed):
        program, machine = run(PARSEC_WORKLOADS["x264"], seed)
        encoded = machine.memory.load(program.symbols["encoded"])
        assert encoded == SCALE.threads


class TestReductions:
    @pytest.mark.parametrize("seed", range(4))
    def test_streamcluster_cost_deterministic_under_lock(self, seed):
        """The locked reduction must be schedule-independent."""
        first = run(PARSEC_WORKLOADS["streamcluster"], seed)
        second = run(PARSEC_WORKLOADS["streamcluster"], seed + 100)
        cost_a = first[1].memory.load(first[0].symbols["total_cost"])
        cost_b = second[1].memory.load(second[0].symbols["total_cost"])
        assert cost_a == cost_b

    def test_freqmine_histogram_sums_to_thread_count(self):
        program, machine = run(PARSEC_WORKLOADS["freqmine"], 2)
        base = program.symbols["histogram"]
        total = sum(machine.memory.load(base + i * 8) for i in range(64))
        assert total == SCALE.threads  # one merge per worker


class TestServers:
    @pytest.mark.parametrize("name", ["apache", "cherokee"])
    def test_served_counter_exact(self, name):
        program, machine = run(APP_WORKLOADS[name], 3)
        served = machine.memory.load(program.symbols["served"])
        workload_threads = SCALE.capped_threads(
            38 if name == "cherokee" else 4
        )
        assert served == SCALE.iterations * workload_threads

    def test_mysql_queries_exact(self):
        program, machine = run(APP_WORKLOADS["mysql"], 1)
        queries = machine.memory.load(program.symbols["queries"])
        assert queries == SCALE.iterations * SCALE.capped_threads(20)

    def test_transmission_progress_exact(self):
        program, machine = run(APP_WORKLOADS["transmission"], 1)
        progress = machine.memory.load(program.symbols["progress"])
        assert progress == SCALE.iterations * SCALE.capped_threads(4)

    def test_aget_bytes_exact(self):
        program, machine = run(APP_WORKLOADS["aget"], 1)
        done = machine.memory.load(program.symbols["bytes_done"])
        assert done == 65536 * SCALE.iterations * SCALE.capped_threads(4)


class TestFerretInit:
    def test_table_initialized_exactly_once(self):
        """The init_lock double-checked pattern fills the table once."""
        program, machine = run(PARSEC_WORKLOADS["ferret"], 5)
        base = machine.memory.load(program.symbols["table_base"])
        assert base == program.symbols["table"]
        # Every slot holds an in-table pointer.
        for i in range(8):
            value = machine.memory.load(base + i * 8)
            assert program.symbols["table"] <= value < \
                program.symbols["table"] + 64 * 8
