"""Unit tests for the PEBS sampling engine and driver accounting."""

import pytest

from repro.isa import assemble
from repro.machine import Machine
from repro.pmu import (
    DS_SEGMENT_BYTES,
    PEBSConfig,
    PEBSEngine,
    PRORACE_DRIVER,
    RAW_PEBS_RECORD_BYTES,
    VANILLA_DRIVER,
)

from tests.helpers import CLEAN_COUNTER_ASM


def _sample(program_src, period, driver=PRORACE_DRIVER, seed=0, **cfg):
    program = assemble(program_src)
    machine = Machine(program, seed=seed)
    pebs = PEBSEngine(PEBSConfig(period=period, **cfg), driver=driver,
                      seed=seed + 1)
    machine.attach(pebs)
    result = machine.run()
    return program, pebs, result


LOOP = """
.global g 0
main:
    mov $50, %rcx
loop:
    mov g(%rip), %rax
    add $1, %rax
    mov %rax, g(%rip)
    dec %rcx
    cmp $0, %rcx
    jne loop
    halt
"""


class TestSampling:
    def test_period_one_samples_every_access(self):
        _, pebs, result = _sample(LOOP, period=1)
        assert pebs.accounting.samples_taken == result.memory_ops

    def test_sample_rate_roughly_one_over_period(self):
        _, pebs, result = _sample(LOOP, period=5)
        expected = result.memory_ops // 5
        assert abs(pebs.accounting.samples_taken - expected) <= 2

    def test_period_larger_than_run_yields_few_samples(self):
        _, pebs, _ = _sample(LOOP, period=10_000,
                             driver=VANILLA_DRIVER)
        assert len(pebs.samples) == 0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PEBSConfig(period=0)

    def test_sample_fields(self):
        program, pebs, _ = _sample(LOOP, period=3)
        for sample in pebs.samples:
            ins = program[sample.ip]
            assert ins.is_memory_access()
            assert sample.is_store == ins.is_store()
            assert set(sample.registers) >= {"rax", "rsp", "rip"}

    def test_snapshot_is_pre_execution_state(self):
        """A sampled load's snapshot must hold the *old* destination value
        (the paper's Figure 5 backward propagation needs this)."""
        program, pebs, _ = _sample(LOOP, period=1)
        load_ip = next(
            i for i, ins in enumerate(program.instructions) if ins.is_load()
        )
        loads = [s for s in pebs.samples if s.ip == load_ip]
        assert loads
        for sample in loads:
            assert sample.registers["rip"] == sample.ip

    def test_loads_only_config(self):
        _, loads_only, _ = _sample(LOOP, period=1, monitor_stores=False)
        _, both, _ = _sample(LOOP, period=1)
        assert 0 < loads_only.accounting.samples_taken < \
            both.accounting.samples_taken
        assert all(not s.is_store for s in loads_only.samples)


class TestRandomizedFirstPeriod:
    def test_prorace_driver_randomizes_start(self):
        """§4.1.2: sampling starts at a random offset per run."""
        first_ips = set()
        for seed in range(8):
            _, pebs, _ = _sample(LOOP, period=7, seed=seed)
            if pebs.samples:
                first_ips.add(pebs.samples[0].ip)
        assert len(first_ips) > 1

    def test_vanilla_driver_fixed_start(self):
        firsts = set()
        for seed in range(6):
            _, pebs, _ = _sample(LOOP, period=7, driver=VANILLA_DRIVER,
                                 seed=seed)
            firsts.add((pebs.samples[0].ip, pebs.samples[0].tsc)
                       if pebs.samples else None)
        # The schedule is single-threaded here, so a fixed initial counter
        # always fires at the same access.
        assert len(firsts) == 1


class TestDriverAccounting:
    def test_segment_capacity(self):
        assert PRORACE_DRIVER.records_per_segment == \
            DS_SEGMENT_BYTES // RAW_PEBS_RECORD_BYTES

    def test_trace_bytes_match_record_sizes(self):
        _, pebs, _ = _sample(LOOP, period=3)
        acc = pebs.accounting
        assert acc.trace_bytes == \
            acc.samples_written * PRORACE_DRIVER.record_bytes

    def test_vanilla_records_are_larger(self):
        assert VANILLA_DRIVER.record_bytes > PRORACE_DRIVER.record_bytes

    def test_samples_conserved(self):
        _, pebs, _ = _sample(LOOP, period=2)
        acc = pebs.accounting
        assert acc.samples_taken == acc.samples_written + acc.samples_dropped

    def test_final_drain_not_throttled(self):
        """The exit-time drain always persists its records (no arrival
        pressure), even when mid-run buffers were dropped."""
        _, pebs, _ = _sample(LOOP, period=50)
        acc = pebs.accounting
        assert acc.samples_dropped == 0
        assert acc.samples_written == acc.samples_taken

    def test_throttle_drops_under_pressure(self):
        """At very small periods interrupts outpace the handler and the
        kernel drops buffers (§7.3's period-10 size inversion)."""
        big_loop = LOOP.replace("$50", "$30000")
        _, pebs, _ = _sample(big_loop, period=1, driver=VANILLA_DRIVER)
        assert pebs.accounting.samples_dropped > 0

    def test_prorace_handler_cheaper_than_vanilla(self):
        _, vanilla, _ = _sample(LOOP, period=2, driver=VANILLA_DRIVER)
        _, prorace, _ = _sample(LOOP, period=2, driver=PRORACE_DRIVER)
        assert prorace.accounting.handler_cycles < \
            vanilla.accounting.handler_cycles
