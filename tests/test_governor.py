"""Tracing-governor tests: the control loop (widening, hysteresis,
tiered backpressure), the watchdogs, period epochs, and their offline
consumers (timelines, effective period, degradation reconciliation)."""

from __future__ import annotations

import pytest

from repro.analysis.pipeline import OfflinePipeline
from repro.analysis.timeline import build_timeline
from repro.faults import LoadBurstPlan
from repro.isa import assemble
from repro.pmu.governor import (
    EPOCH_REASONS,
    GovernorConfig,
    PeriodEpoch,
    TIER_HARD_DROP,
    TIER_NOMINAL,
    TIER_SHED_PT,
    TIER_SYNC_ONLY,
    TIER_WIDEN,
    TracingGovernor,
    effective_period,
    epoch_index_at,
)
from repro.tracing import trace_run
from repro.tracing.bundle import TraceDefects
from repro.workloads import RACE_BUGS, WorkloadScale

from tests.helpers import RACY_ASM


# ---------------------------------------------------------------------------
# Control-loop unit tests against stub tracers
# ---------------------------------------------------------------------------


class FakeAccounting:
    def __init__(self):
        self.handler_cycles = 0
        self.hw_assist_cycles = 0
        self.dropped_interrupts = 0
        self.samples_taken = 0
        self.POLLUTION_GAIN = 8.0

        class _Driver:
            pollution_cap = 1.0
            fixed_overhead_fraction = 0.0

        self.driver = _Driver()

    def summary(self):
        return {
            "handler_cycles": self.handler_cycles,
            "hw_assist_cycles": self.hw_assist_cycles,
            "dropped_interrupts": self.dropped_interrupts,
        }


class FakeEngine:
    def __init__(self, period=100):
        self.period = period
        self.disabled = False
        self.accounting = FakeAccounting()

    def set_period(self, period):
        self.period = period


class FakePT:
    def __init__(self):
        self.shedding = False
        self.sheds = 0

    def begin_shed(self, tsc):
        self.shedding = True
        self.sheds += 1

    def end_shed(self, tsc):
        self.shedding = False
        return (1, 5, 40)


class FakeSync:
    def __init__(self):
        self.sync_records = []


def make_governor(period=100, **config_kwargs):
    config_kwargs.setdefault("perturb", 0.0)
    config = GovernorConfig(**config_kwargs)
    engine = FakeEngine(period)
    gov = TracingGovernor(config, engine, FakePT(), FakeSync(),
                          TraceDefects())
    return gov, engine


def step(gov, tsc, handler_cycles=0, drops=0):
    """Advance the stub accounting and force one decision at *tsc*."""
    gov.engine.accounting.handler_cycles += handler_cycles
    gov.engine.accounting.dropped_interrupts += drops
    gov._maybe_decide(tsc)


class TestWidening:
    def test_over_budget_window_widens_period(self):
        gov, engine = make_governor(period=100, overhead_budget=0.02,
                                    decision_ticks=100)
        step(gov, 100, handler_cycles=50)  # 50% occupancy >> 2%
        assert engine.period > 100
        assert gov.report.widenings == 1
        assert gov.tier == TIER_WIDEN
        assert gov.epochs[-1].reason == "widen"

    def test_widening_is_proportional_not_geometric(self):
        """A window far above budget widens by overhead/budget (capped),
        not by the minimum grow factor."""
        gov, engine = make_governor(period=100, overhead_budget=0.02,
                                    decision_ticks=100, grow=2.0)
        step(gov, 100, handler_cycles=20)  # occupancy 0.2 → 10x budget
        assert engine.period > 100 * 2  # more than one grow step
        assert engine.period <= 100 * TracingGovernor.PROPORTIONAL_CAP

    def test_proportional_factor_is_capped(self):
        gov, engine = make_governor(period=100, overhead_budget=1e-9,
                                    decision_ticks=100, k_max=10**9)
        step(gov, 100, handler_cycles=1000)
        assert engine.period == int(100 * TracingGovernor.PROPORTIONAL_CAP)

    def test_period_clamped_to_k_max(self):
        gov, engine = make_governor(period=100, overhead_budget=0.02,
                                    decision_ticks=100, k_max=150)
        step(gov, 100, handler_cycles=50)
        assert engine.period == 150

    def test_under_budget_quiet_window_no_action(self):
        gov, engine = make_governor(period=100, overhead_budget=0.02,
                                    decision_ticks=100, hysteresis=0.5)
        # 1.5% occupancy: inside [budget*hysteresis, budget] dead band.
        step(gov, 100, handler_cycles=1, drops=0)
        assert engine.period == 100
        assert gov.report.widenings == 0
        assert gov.report.narrowings == 0


class TestHysteresis:
    def test_relax_only_below_hysteresis_threshold(self):
        gov, engine = make_governor(period=100, overhead_budget=0.02,
                                    decision_ticks=100, hysteresis=0.5,
                                    smoothing=1.0, k_min=10)
        step(gov, 100, handler_cycles=50)  # widen
        widened = engine.period
        # 1.5% is below budget but above budget*hysteresis → hold.
        step(gov, widened and 200, handler_cycles=int(0.015 * 100))
        assert engine.period == widened
        # Near-zero window → narrow back toward k_min.
        step(gov, 300)
        assert engine.period < widened
        assert gov.report.narrowings == 1

    def test_narrow_to_base_restores_nominal_tier(self):
        gov, engine = make_governor(period=100, overhead_budget=0.02,
                                    decision_ticks=100, smoothing=1.0,
                                    grow=2.0, shrink=0.5)
        step(gov, 100, handler_cycles=5)  # 5% → widen (proportional ~2.5x)
        assert gov.tier == TIER_WIDEN
        tsc = 100
        for _ in range(10):
            tsc += 100
            step(gov, tsc)  # quiet windows → narrow
            if engine.period <= 100:
                break
        assert engine.period == 100
        assert gov.tier == TIER_NOMINAL


class TestBackpressureTiers:
    def test_hot_windows_escalate_through_tiers_at_k_max(self):
        gov, engine = make_governor(period=100, overhead_budget=0.02,
                                    decision_ticks=100, k_max=100,
                                    smoothing=1.0)
        step(gov, 100, handler_cycles=50, drops=1)
        assert gov.tier == TIER_SHED_PT
        assert gov.pt.shedding
        step(gov, 200, handler_cycles=50, drops=1)
        assert gov.tier == TIER_HARD_DROP
        assert gov.hard_drop_active
        # Terminal data tier: further hot windows change nothing.
        step(gov, 300, handler_cycles=50, drops=1)
        assert gov.tier == TIER_HARD_DROP

    def test_lagging_ewma_alone_does_not_shed_data(self):
        """Data-shedding tiers are gated on the *current* window being
        hot; a stale smoothed estimate only keeps the period wide."""
        gov, engine = make_governor(period=100, overhead_budget=0.02,
                                    decision_ticks=100, k_max=200,
                                    smoothing=0.5)
        step(gov, 100, handler_cycles=80)  # poison the EWMA (80%)
        assert gov.tier == TIER_WIDEN
        assert engine.period == 200  # clamped to k_max
        # Quiet current window, EWMA still 40%: escalate must not shed.
        step(gov, 200, handler_cycles=0, drops=0)
        assert gov.tier == TIER_WIDEN
        assert not gov.pt.shedding
        assert gov.report.pt_sheds == 0

    def test_relax_unwinds_tiers_in_reverse_order(self):
        gov, engine = make_governor(period=100, overhead_budget=0.02,
                                    decision_ticks=100, k_max=100,
                                    smoothing=1.0)
        step(gov, 100, handler_cycles=50, drops=1)
        step(gov, 200, handler_cycles=50, drops=1)
        assert gov.tier == TIER_HARD_DROP
        step(gov, 300)  # quiet
        assert gov.tier == TIER_SHED_PT
        step(gov, 400)
        assert gov.tier == TIER_WIDEN
        assert not gov.pt.shedding
        assert gov.report.pt_sheds == 1  # the closed shed span

    def test_hard_drop_accounting(self):
        gov, _ = make_governor(period=100)
        gov.account_hard_drop(17)
        assert gov.report.hard_drop_bursts == 1
        assert gov.report.hard_dropped_samples == 17
        assert gov.defects.samples_dropped == 17
        assert gov.defects.drop_bursts == 1


class TestEpochMarkers:
    def test_init_epoch_at_origin(self):
        gov, _ = make_governor(period=100)
        assert gov.epochs[0] == PeriodEpoch(start_tsc=0, period=100,
                                            tier=TIER_NOMINAL,
                                            reason="init", overhead=0.0)

    def test_every_reason_is_serializable(self):
        gov, engine = make_governor(period=100, overhead_budget=0.02,
                                    decision_ticks=100, k_max=100,
                                    smoothing=1.0, k_min=50)
        step(gov, 100, handler_cycles=50, drops=1)   # shed-pt (at k_max)
        step(gov, 200, handler_cycles=50, drops=1)   # hard-drop
        step(gov, 300)                                # resume-drop
        step(gov, 400)                                # resume-pt
        step(gov, 500)                                # narrow
        for epoch in gov.epochs:
            assert epoch.reason in EPOCH_REASONS

    def test_epoch_index_at(self):
        epochs = [PeriodEpoch(0, 100, 0, "init"),
                  PeriodEpoch(500, 200, 1, "widen"),
                  PeriodEpoch(900, 100, 1, "narrow")]
        assert epoch_index_at(epochs, -5) == 0
        assert epoch_index_at(epochs, 0) == 0
        assert epoch_index_at(epochs, 499) == 0
        assert epoch_index_at(epochs, 500) == 1
        assert epoch_index_at(epochs, 899) == 1
        assert epoch_index_at(epochs, 10**9) == 2

    def test_epoch_index_at_empty_raises(self):
        with pytest.raises(ValueError):
            epoch_index_at([], 0)


class TestEffectivePeriod:
    def test_ungoverned_run_keeps_configured_period(self):
        assert effective_period([], 1000, 20) == 20.0

    def test_single_epoch_is_its_period(self):
        epochs = [PeriodEpoch(0, 100, 0, "init")]
        assert effective_period(epochs, 1000, 20) == pytest.approx(100.0)

    def test_piecewise_harmonic_mean(self):
        # Half the run at period 100, half at period 400:
        # expected samples = 500/100 + 500/400 = 6.25 → 1000/6.25 = 160.
        epochs = [PeriodEpoch(0, 100, 0, "init"),
                  PeriodEpoch(500, 400, 1, "widen")]
        assert effective_period(epochs, 1000, 20) == pytest.approx(160.0)

    def test_sync_only_epochs_contribute_no_samples(self):
        epochs = [PeriodEpoch(0, 100, 0, "init"),
                  PeriodEpoch(500, 0, TIER_SYNC_ONLY, "watchdog")]
        # 500 ticks sampled at 100, 500 ticks unsampled → 1000/5 = 200.
        assert effective_period(epochs, 1000, 20) == pytest.approx(200.0)

    def test_never_sampled_is_infinite(self):
        epochs = [PeriodEpoch(0, 0, TIER_SYNC_ONLY, "watchdog")]
        assert effective_period(epochs, 1000, 20) == float("inf")


class TestPerturbation:
    def test_different_governor_seeds_diversify_periods(self):
        periods = set()
        for seed in range(4):
            config = GovernorConfig(overhead_budget=0.02,
                                    decision_ticks=100, seed=seed)
            engine = FakeEngine(100)
            gov = TracingGovernor(config, engine, FakePT(), FakeSync(),
                                  TraceDefects())
            step(gov, 100, handler_cycles=50)
            periods.add(engine.period)
        assert len(periods) > 1

    def test_same_seed_is_deterministic(self):
        results = []
        for _ in range(2):
            config = GovernorConfig(overhead_budget=0.02,
                                    decision_ticks=100, seed=3)
            engine = FakeEngine(100)
            gov = TracingGovernor(config, engine, FakePT(), FakeSync(),
                                  TraceDefects())
            step(gov, 100, handler_cycles=50)
            results.append(engine.period)
        assert results[0] == results[1]


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"overhead_budget": 0.0},
        {"overhead_budget": -0.1},
        {"hysteresis": 1.5},
        {"grow": 1.0},
        {"shrink": 0.0},
        {"shrink": 1.0},
        {"perturb": 1.0},
        {"smoothing": 0.0},
        {"decision_ticks": 0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            GovernorConfig(**kwargs)

    def test_rejects_inverted_bounds(self):
        config = GovernorConfig(k_min=100, k_max=50)
        with pytest.raises(ValueError, match="k_min"):
            TracingGovernor(config, FakeEngine(100), FakePT(), FakeSync(),
                            TraceDefects())


# ---------------------------------------------------------------------------
# Integration: governed trace_run on real workloads
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def bug_program():
    return RACE_BUGS["pbzip2-0.9.4"].build(
        WorkloadScale(iterations=50, threads=4))


class TestGovernedRun:
    def test_bursty_run_widens_and_holds_budget(self, bug_program):
        plan = LoadBurstPlan(seed=0, multiplier=16)
        bundle = trace_run(bug_program, period=2, seed=0,
                           governor=GovernorConfig(overhead_budget=0.02,
                                                   k_max=16384),
                           load_bursts=plan)
        gov = bundle.governor
        assert gov is not None
        assert gov.widenings > 0
        assert gov.final_period > 2
        assert gov.final_overhead <= 0.02
        assert bundle.period_epochs == gov.epochs
        starts = [e.start_tsc for e in gov.epochs]
        assert starts == sorted(starts)

    def test_governed_schedule_matches_ungoverned(self, bug_program):
        """The governor is an observer: it must not perturb the traced
        application, only what the tracers record."""
        plain = trace_run(bug_program, period=2, seed=1)
        governed = trace_run(bug_program, period=2, seed=1,
                             governor=GovernorConfig(overhead_budget=0.02))
        assert governed.run.tsc == plain.run.tsc
        assert governed.run.instructions == plain.run.instructions
        assert governed.sync_records == plain.sync_records

    def test_ungoverned_run_has_no_epochs(self, bug_program):
        bundle = trace_run(bug_program, period=100, seed=0)
        assert bundle.governor is None
        assert bundle.period_epochs == []


class TestWatchdog:
    def test_pebs_stall_degrades_to_sync_only(self, bug_program):
        plan = LoadBurstPlan(seed=0, stall_pebs_at=3000)
        bundle = trace_run(bug_program, period=100, seed=0,
                           governor=GovernorConfig(overhead_budget=0.5),
                           load_bursts=plan)
        gov = bundle.governor
        assert gov.watchdog_trips == 1
        assert gov.final_tier == TIER_SYNC_ONLY
        assert gov.final_period == 0  # PEBS off
        assert gov.epochs[-1].reason == "watchdog"
        assert gov.epochs[-1].period == 0
        # No sample may postdate the stall by more than the threshold.
        stall_tsc = max(s.tsc for s in bundle.samples)
        assert stall_tsc < bundle.run.tsc
        # The declared loss reconciles downstream.
        result = OfflinePipeline(bug_program).analyze(bundle)
        assert result.degradation.governor_active
        assert result.degradation.governor_watchdog_trips == 1

    def test_sync_stall_declares_truncation(self, bug_program):
        plan = LoadBurstPlan(seed=0, stall_sync_at=3000)
        bundle = trace_run(bug_program, period=100, seed=0,
                           governor=GovernorConfig(overhead_budget=0.5),
                           load_bursts=plan)
        gov = bundle.governor
        assert gov.sync_stalls == 1
        assert any(e.reason == "sync-stall" for e in gov.epochs)
        assert bundle.defects is not None
        assert bundle.defects.log_truncated_at_tsc is not None
        # Truncation point is the last record the tracer kept.
        assert bundle.defects.log_truncated_at_tsc <= 3000


# ---------------------------------------------------------------------------
# Timeline epochs
# ---------------------------------------------------------------------------


class TestTimelineEpochs:
    def _built(self, epochs):
        from repro.ptdecode import align_samples, decode_all, locate_syncs

        program = assemble(RACY_ASM, "racy-counter")
        bundle = trace_run(program, period=5, seed=7)
        tid, path = next(iter(
            decode_all(program, bundle.pt_traces).items()))
        aligned = align_samples(path, bundle.samples_of_thread(tid))
        syncs = locate_syncs(
            path, [r for r in bundle.sync_records if r.tid == tid])
        return build_timeline(path, aligned, syncs, epochs=epochs)

    def test_epoch_at_maps_steps_to_epochs(self):
        epochs = (PeriodEpoch(0, 5, 0, "init"),
                  PeriodEpoch(40, 20, 1, "widen"))
        timeline = self._built(epochs)
        assert timeline.epochs == tuple(epochs)
        for step_index in range(timeline.total_steps):
            expected = epochs[
                epoch_index_at(epochs, timeline.tsc_of(step_index))]
            assert timeline.epoch_at(step_index) == expected

    def test_anchors_by_epoch_partitions_all_anchors(self):
        epochs = (PeriodEpoch(0, 5, 0, "init"),
                  PeriodEpoch(40, 20, 1, "widen"))
        timeline = self._built(epochs)
        by_epoch = timeline.anchors_by_epoch()
        total = sum(len(v) for v in by_epoch.values())
        assert total == len(timeline.points)
        assert set(by_epoch) <= set(range(len(epochs)))

    def test_no_epochs_means_single_bucket(self):
        timeline = self._built(())
        assert timeline.epochs == ()
        assert timeline.epoch_at(0) is None
        assert timeline.anchors_by_epoch() == {}
