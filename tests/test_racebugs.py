"""Table 2 race-bug tests: each bug manifests and is detected by the
ProRace pipeline at a small sampling period, with the expected
addressing-mode behaviour."""

import pytest

from repro.analysis import OfflinePipeline
from repro.machine import Machine
from repro.tracing import trace_run
from repro.workloads import (
    MEMORY_INDIRECT,
    PC_RELATIVE,
    RACE_BUGS,
    REGISTER_INDIRECT,
    WorkloadScale,
)

SCALE = WorkloadScale(iterations=8)


def detect(bug, period, mode, seeds):
    program = bug.build(SCALE)
    hits = 0
    for seed in seeds:
        bundle = trace_run(program, period=period, seed=seed)
        result = OfflinePipeline(program, mode=mode).analyze(bundle)
        hits += bug.detected(program, result)
    return hits, len(seeds)


class TestCatalog:
    def test_twelve_bugs(self):
        assert len(RACE_BUGS) == 12

    def test_access_type_distribution_matches_table2(self):
        by_type = {}
        for bug in RACE_BUGS.values():
            by_type.setdefault(bug.access_type, []).append(bug.name)
        assert len(by_type[MEMORY_INDIRECT]) == 5
        assert len(by_type[REGISTER_INDIRECT]) == 4
        assert len(by_type[PC_RELATIVE]) == 3


@pytest.mark.parametrize("name", sorted(RACE_BUGS))
class TestEachBug:
    def test_program_runs(self, name):
        bug = RACE_BUGS[name]
        program = bug.build(SCALE)
        result = Machine(program, seed=1).run()
        assert result.instructions > 0

    def test_has_labelled_racy_instructions(self, name):
        bug = RACE_BUGS[name]
        program = bug.build(SCALE)
        ips = bug.racy_ips(program)
        assert len(ips) >= 2
        for ip in ips:
            assert program[ip].is_memory_access()

    def test_detected_at_period_50(self, name):
        """At a dense sampling period ProRace catches every bug in a
        handful of traces (the Table 2 period-100 column is ~100% for
        ProRace)."""
        bug = RACE_BUGS[name]
        hits, runs = detect(bug, period=50, mode="full", seeds=range(4))
        assert hits >= runs - 1, f"{name}: {hits}/{runs}"


class TestAddressingModes:
    @pytest.mark.parametrize(
        "name",
        [n for n, b in RACE_BUGS.items() if b.access_type == PC_RELATIVE],
    )
    def test_pc_relative_detected_without_any_samples(self, name):
        """The PT path alone recovers PC-relative accesses, so these bugs
        are caught at any sampling period — Table 2's 100% rows."""
        bug = RACE_BUGS[name]
        hits, runs = detect(bug, period=100_000, mode="full", seeds=range(3))
        assert hits == runs

    @pytest.mark.parametrize(
        "name",
        [n for n, b in RACE_BUGS.items()
         if b.access_type == MEMORY_INDIRECT],
    )
    def test_memory_indirect_missed_without_samples(self, name):
        """Memory-indirect racy addresses need PEBS context; with no
        samples they are unrecoverable."""
        bug = RACE_BUGS[name]
        hits, _ = detect(bug, period=100_000, mode="full", seeds=range(3))
        assert hits == 0


class TestRaceZComparison:
    def test_prorace_detects_more_than_racez_overall(self):
        """The headline Table 2 claim, aggregated over a few bugs."""
        prorace_total = racez_total = 0
        for name in ("apache-25520", "mysql-644", "pfscan"):
            bug = RACE_BUGS[name]
            full, _ = detect(bug, period=100, mode="full", seeds=range(3))
            bb, _ = detect(bug, period=100, mode="basicblock",
                           seeds=range(3))
            prorace_total += full
            racez_total += bb
        assert prorace_total > racez_total
