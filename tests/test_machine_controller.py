"""Schedule controllers: driving a Machine to a chosen interleaving.

Two controllers, two strategies:

* :class:`ScheduleController` replays a planner-produced
  :class:`WitnessSchedule` step by step, tolerating bystander slices,
  and reports ``fired`` only when the full schedule matched and the
  racy pair executed back-to-back with no sync between;
* :class:`PairTargetController` free-runs under the machine's own
  seeded scheduler, parks the first thread that reaches one racy
  instruction, and delivers the other access adjacent to it — the
  fallback for value-dependent executions a recorded schedule cannot
  drive.

The soundness property both must uphold: a properly synchronized pair
can NEVER be made to fire (the parked thread holds its guards, so the
other side blocks before its access).
"""

import pytest

from repro.analysis import OfflinePipeline
from repro.detector.witness import WitnessPlanner
from repro.isa import assemble
from repro.machine import Machine, PairTargetController, ScheduleController
from repro.tracing import trace_run

from tests.helpers import CLEAN_COUNTER_ASM, RACY_ASM


def detect(program, period=1, seed=0):
    bundle = trace_run(program, period=period, seed=seed)
    pipeline = OfflinePipeline(program)
    result = pipeline.analyze(bundle)
    events, _replay = pipeline.events_for(bundle)
    plain = [item[1] if isinstance(item, tuple) else item
             for item in events]
    return result, plain


def plan(program, period=1, seed=0):
    """First reported race and its full witness schedule."""
    result, plain = detect(program, period=period, seed=seed)
    assert result.races
    report = result.races[0]
    planner = WitnessPlanner(plain, max_nodes=20_000, tail=None)
    schedule = planner.schedule_for(report)
    assert schedule is not None and not schedule.truncated
    return report, schedule


class TestScheduleController:
    def test_replays_witness_and_fires(self):
        program = assemble(RACY_ASM)
        report, schedule = plan(program)
        controller = ScheduleController(schedule.steps)
        Machine(program, num_cores=4, seed=0, controller=controller).run()
        assert controller.completed
        assert controller.fired
        assert not controller.diverged
        assert controller.cursor == len(schedule.steps)

    def test_determinism_bit_identical_observations(self):
        program = assemble(RACY_ASM)
        _, schedule = plan(program)
        streams = []
        for _ in range(3):
            controller = ScheduleController(schedule.steps)
            Machine(program, num_cores=4, seed=0,
                    controller=controller).run()
            streams.append(repr(controller.observed))
        assert streams[0] == streams[1] == streams[2]

    def test_impossible_schedule_diverges_and_machine_finishes(self):
        """A schedule naming instructions the program never reaches
        deactivates the controller; the run still completes."""
        from dataclasses import replace

        program = assemble(RACY_ASM)
        _, schedule = plan(program)
        bogus = [replace(step, detail=9999) for step in schedule.steps]
        controller = ScheduleController(bogus, step_budget=200)
        machine = Machine(program, num_cores=4, seed=0,
                          controller=controller)
        machine.run()
        assert controller.diverged
        assert not controller.fired


class TestPairTargetController:
    def _racy_ips(self, program):
        result, _ = detect(program)
        report = result.races[0]
        first, second = report.pair
        return first, second, report.address

    @pytest.mark.parametrize("seed", range(4))
    def test_forces_racy_pair_adjacent(self, seed):
        program = assemble(RACY_ASM)
        first, second, address = self._racy_ips(program)
        controller = PairTargetController(first, second, address)
        Machine(program, num_cores=4, seed=seed,
                controller=controller).run()
        assert controller.fired
        last_two = controller.observed[-2:]
        tid_a, tid_b = last_two[0][1], last_two[1][1]
        assert tid_a != tid_b

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("order", ["forward", "reversed"])
    def test_synchronized_pair_never_fires(self, seed, order):
        """Soundness: on the lock-protected counter, targeting the two
        increment instructions can never produce an adjacent unsynced
        pair — the parked thread holds the mutex."""
        program = assemble(CLEAN_COUNTER_ASM)
        # The load and store inside bump() race-lookalike across
        # threads but are mutex-guarded.
        label = program.labels["bump"]
        load_ip, store_ip = label + 1, label + 3
        total = program.symbols["total"]
        if order == "reversed":
            load_ip, store_ip = store_ip, load_ip
        controller = PairTargetController(load_ip, store_ip, total,
                                          step_budget=2000)
        Machine(program, num_cores=4, seed=seed,
                controller=controller).run()
        assert not controller.fired

    def test_budget_exhaustion_deactivates(self):
        program = assemble(RACY_ASM)
        first, second, address = self._racy_ips(program)
        controller = PairTargetController(first, second, address,
                                          step_budget=1)
        machine = Machine(program, num_cores=4, seed=0,
                          controller=controller)
        machine.run()
        # Either it fired immediately (budget spent on the winning
        # slice) or it gave up; it must not wedge the machine.
        assert not controller.active

    def test_machine_result_unaffected_after_deactivation(self):
        """Once the controller completes, the machine free-runs to the
        same final memory a controller-free run reaches."""
        program = assemble(RACY_ASM)
        first, second, address = self._racy_ips(program)
        controller = PairTargetController(first, second, address)
        driven = Machine(program, num_cores=4, seed=0,
                         controller=controller)
        driven.run()
        free = Machine(program, num_cores=4, seed=0)
        free.run()
        racy = program.symbols["racy"]
        # Both runs complete and leave the counter written (the exact
        # value is schedule-dependent — that is the race).
        assert driven.memory.load(racy) != 0
        assert free.memory.load(racy) != 0
