"""Lockset (Eraser) comparator tests — including the false positives
that motivate the paper's happens-before choice (§4.3)."""

import pytest

from repro.detector import (
    Access,
    AccessKind,
    FastTrack,
    LocksetDetector,
    SyncOp,
)

VAR = (0x1000, 0)
LOCK = 0x900


def read(tid, ip=1):
    return Access(tid=tid, var=VAR, kind=AccessKind.READ, ip=ip, tsc=0.0,
                  provenance="test")


def write(tid, ip=2):
    return Access(tid=tid, var=VAR, kind=AccessKind.WRITE, ip=ip, tsc=0.0,
                  provenance="test")


def sync(tid, kind, target=LOCK):
    return SyncOp(tid=tid, kind=kind, target=target, tsc=0.0)


def run(detector, events):
    for event in events:
        if isinstance(event, SyncOp):
            detector.sync(event)
        else:
            detector.access(event)
    return detector


class TestDetection:
    def test_unlocked_shared_write_flagged(self):
        detector = run(LocksetDetector(), [write(0), write(1)])
        assert VAR[0] in detector.racy_addresses()

    def test_consistent_lock_not_flagged(self):
        events = []
        for tid in (0, 1):
            events += [sync(tid, "lock"), write(tid), sync(tid, "unlock")]
        detector = run(LocksetDetector(), events)
        assert not detector.racy_addresses()

    def test_disjoint_locks_flagged(self):
        # Eraser initializes the candidate set at the *second* thread's
        # access, so the empty intersection shows at the third access.
        events = [
            sync(0, "lock", 0x900), write(0), sync(0, "unlock", 0x900),
            sync(1, "lock", 0x901), write(1), sync(1, "unlock", 0x901),
            sync(0, "lock", 0x900), write(0), sync(0, "unlock", 0x900),
        ]
        detector = run(LocksetDetector(), events)
        assert VAR[0] in detector.racy_addresses()

    def test_thread_local_never_flagged(self):
        detector = run(LocksetDetector(), [write(0), read(0), write(0)])
        assert not detector.racy_addresses()

    def test_shared_readonly_never_flagged(self):
        detector = run(LocksetDetector(), [read(0), read(1), read(2)])
        assert not detector.racy_addresses()

    def test_single_warning_per_variable(self):
        detector = run(LocksetDetector(),
                       [write(0), write(1), write(0), write(1)])
        assert len(detector.warnings) == 1


class TestFalsePositives:
    """The imprecision the paper avoids by using happens-before."""

    def test_fork_join_ordering_is_a_lockset_false_positive(self):
        """Parent writes, joins child, writes again — HB-ordered, yet
        lockset sees a lock-free shared-modified variable."""
        events = [
            SyncOp(0, "fork", 1, 0.0),
            write(1),
            SyncOp(0, "join", 1, 0.0),
            write(0),
        ]
        lockset = run(LocksetDetector(), events)
        fasttrack = run(FastTrack(), events)
        assert VAR[0] in lockset.racy_addresses()      # false positive
        assert VAR[0] not in fasttrack.racy_addresses()  # precise

    def test_semaphore_ordering_is_a_lockset_false_positive(self):
        events = [
            write(0),
            sync(0, "sem_post", 0xA00),
            sync(1, "sem_wait", 0xA00),
            write(1),
        ]
        lockset = run(LocksetDetector(), events)
        fasttrack = run(FastTrack(), events)
        assert VAR[0] in lockset.racy_addresses()
        assert VAR[0] not in fasttrack.racy_addresses()


class TestOnRealWorkloads:
    def test_lockset_flags_handoff_patterns_fasttrack_accepts(self):
        """The dedup pipeline hands data through semaphores: race-free
        under HB, flagged by lockset — measured on the real event
        stream via the pipeline's events_for hook."""
        from repro.analysis import OfflinePipeline
        from repro.tracing import trace_run
        from repro.workloads import PARSEC_WORKLOADS, WorkloadScale

        program = PARSEC_WORKLOADS["dedup"].instantiate(
            WorkloadScale(iterations=10)
        )
        bundle = trace_run(program, period=2, seed=3)
        pipeline = OfflinePipeline(program)
        events, _ = pipeline.events_for(bundle)
        fasttrack, lockset = FastTrack(), LocksetDetector()
        for _, event in events:
            for detector in (fasttrack, lockset):
                if isinstance(event, SyncOp):
                    detector.sync(event)
                else:
                    detector.access(event)
        assert not fasttrack.racy_addresses()
        assert lockset.racy_addresses()  # the handoff slots
