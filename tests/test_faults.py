"""Fault-injection subsystem tests: determinism, purity, accounting."""

import dataclasses

import pytest

from repro.faults import (
    BUILTIN_PLAN_NAMES,
    FaultPlan,
    builtin_plans,
    corrupt_trace_file,
)
from repro.pmu.pt import PacketKind
from repro.tracing import TraceFormatError, read_trace, write_trace


ALL_FAULTS = FaultPlan(seed=3, sample_drop=0.3, pt_gap=0.2,
                       log_truncation=0.2, tsc_jitter=0.5)


def snapshot(bundle):
    """Everything apply() may not mutate, in comparable form."""
    return (
        list(bundle.samples),
        {tid: list(t.packets) for tid, t in bundle.pt_traces.items()},
        list(bundle.sync_records),
        list(bundle.alloc_records),
        bundle.pebs_accounting.trace_bytes,
        bundle.pebs_accounting.samples_dropped,
    )


class TestFaultPlan:
    def test_validates_intensities(self):
        with pytest.raises(ValueError, match="sample_drop"):
            FaultPlan(sample_drop=1.5)
        with pytest.raises(ValueError, match="pt_gap"):
            FaultPlan(pt_gap=-0.1)

    def test_intensity_is_strongest_fault(self):
        assert FaultPlan().intensity == 0.0
        assert FaultPlan(sample_drop=0.1, pt_gap=0.4).intensity == 0.4

    def test_deterministic(self, racy_bundle):
        first, first_defects = ALL_FAULTS.apply(racy_bundle)
        second, second_defects = ALL_FAULTS.apply(racy_bundle)
        assert first_defects == second_defects
        assert first.samples == second.samples
        assert first.sync_records == second.sync_records
        for tid in first.pt_traces:
            assert (first.pt_traces[tid].packets
                    == second.pt_traces[tid].packets)

    def test_seed_changes_outcome(self, racy_bundle):
        a, _ = ALL_FAULTS.apply(racy_bundle)
        b, _ = dataclasses.replace(ALL_FAULTS, seed=99).apply(racy_bundle)
        assert (a.samples != b.samples
                or a.sync_records != b.sync_records
                or any(a.pt_traces[t].packets != b.pt_traces[t].packets
                       for t in a.pt_traces))

    def test_apply_is_pure(self, racy_bundle):
        before = snapshot(racy_bundle)
        ALL_FAULTS.apply(racy_bundle)
        assert snapshot(racy_bundle) == before

    def test_zero_plan_is_identity(self, racy_bundle):
        degraded, defects = FaultPlan(seed=5).apply(racy_bundle)
        assert not defects.degraded
        assert degraded.samples == racy_bundle.samples

    def test_defects_travel_with_bundle(self, racy_bundle):
        degraded, defects = ALL_FAULTS.apply(racy_bundle)
        assert degraded.defects is defects


class TestSampleDrops:
    def test_drop_counts_reconcile(self, racy_bundle):
        plan = FaultPlan(seed=1, sample_drop=0.5)
        degraded, defects = plan.apply(racy_bundle)
        assert defects.samples_dropped > 0
        assert (len(racy_bundle.samples) - len(degraded.samples)
                == defects.samples_dropped)

    def test_accounting_updated(self, racy_bundle):
        plan = FaultPlan(seed=1, sample_drop=0.5)
        degraded, defects = plan.apply(racy_bundle)
        dropped = (degraded.pebs_accounting.samples_dropped
                   - racy_bundle.pebs_accounting.samples_dropped)
        assert dropped == defects.samples_dropped
        assert (degraded.pebs_accounting.trace_bytes
                < racy_bundle.pebs_accounting.trace_bytes)

    def test_burst_granularity(self, racy_bundle):
        """Samples vanish in whole DS-segment bursts, never singly."""
        plan = FaultPlan(seed=2, sample_drop=1.0)
        degraded, defects = plan.apply(racy_bundle)
        segment = racy_bundle.pebs_accounting.segment_records
        assert degraded.samples == []
        assert defects.samples_dropped == len(racy_bundle.samples)
        assert defects.drop_bursts > 0
        # Every burst but possibly one trailing partial burst per core
        # is full-size, so the average cannot exceed the segment size.
        assert defects.samples_dropped <= defects.drop_bursts * segment


class TestPTGaps:
    def test_gap_replaces_span_with_ovf(self, racy_bundle):
        plan = FaultPlan(seed=1, pt_gap=0.2)
        degraded, defects = plan.apply(racy_bundle)
        assert defects.pt_gaps > 0
        for tid, trace in degraded.pt_traces.items():
            original = racy_bundle.pt_traces[tid].packets
            ovfs = [p for p in trace.packets if p.kind is PacketKind.OVF]
            if not ovfs:
                continue
            assert len(ovfs) == 1
            marker = ovfs[0]
            assert marker.target >= marker.tsc
            # The span (>= 1 packet) collapses into the one marker.
            assert len(trace.packets) <= len(original)

    def test_packet_loss_reconciles(self, racy_bundle):
        plan = FaultPlan(seed=1, pt_gap=0.2)
        degraded, defects = plan.apply(racy_bundle)
        lost = sum(
            len(racy_bundle.pt_traces[tid].packets) - len(t.packets)
            for tid, t in degraded.pt_traces.items()
        )
        # Each gap removes `length` packets but adds one OVF marker.
        assert lost == defects.pt_packets_lost - defects.pt_gaps


class TestLogTruncation:
    def test_common_tail_cut(self, racy_bundle):
        plan = FaultPlan(seed=1, log_truncation=0.3)
        degraded, defects = plan.apply(racy_bundle)
        cutoff = defects.log_truncated_at_tsc
        assert cutoff is not None
        assert all(r.tsc <= cutoff for r in degraded.sync_records)
        assert all(r.tsc <= cutoff for r in degraded.alloc_records)
        lost = (len(racy_bundle.sync_records)
                - len(degraded.sync_records))
        assert lost == defects.sync_records_lost
        assert defects.sync_records_lost + defects.alloc_records_lost > 0


class TestTSCJitter:
    def test_preserves_per_thread_order(self, racy_bundle):
        plan = FaultPlan(seed=1, tsc_jitter=1.0)
        degraded, defects = plan.apply(racy_bundle)
        assert defects.tsc_perturbed > 0
        last = {}
        for sample in degraded.samples:
            assert last.get(sample.tid, -1) <= sample.tsc
            last[sample.tid] = sample.tsc

    def test_jitter_bounded(self, racy_bundle):
        from repro.faults import MAX_TSC_JITTER

        plan = FaultPlan(seed=1, tsc_jitter=1.0)
        degraded, _ = plan.apply(racy_bundle)
        for before, after in zip(racy_bundle.samples, degraded.samples):
            # Monotonic clamping can only pull a tsc up toward the
            # previous same-thread sample, itself jittered by <= MAX.
            assert abs(after.tsc - before.tsc) <= 2 * MAX_TSC_JITTER


class TestBuiltinPlans:
    def test_suite_shape(self):
        plans = builtin_plans(0.1, seed=7)
        assert set(plans) == set(BUILTIN_PLAN_NAMES)
        assert plans["pebs-overflow"].sample_drop == 0.1
        assert plans["pebs-overflow"].pt_gap == 0.0
        assert plans["combined"].intensity == 0.1
        assert all(p.seed == 7 for p in plans.values())


class TestCorruptTraceFile:
    def test_strict_read_rejects(self, racy_bundle, tmp_path):
        path = tmp_path / "t.prtr"
        write_trace(racy_bundle, path)
        corrupt_trace_file(path, seed=1)
        with pytest.raises(TraceFormatError, match="checksum"):
            read_trace(path)

    def test_salvage_drops_only_damaged_section(
            self, racy_program, racy_bundle, tmp_path):
        path = tmp_path / "t.prtr"
        write_trace(racy_bundle, path)
        index = corrupt_trace_file(path, seed=1, section_index=1)
        loaded = read_trace(path, program=racy_program,
                            allow_partial=True)
        assert loaded.defects is not None
        assert loaded.defects.corrupted_sections == (f"pebs#{index}",)
        # Everything else survives intact.
        assert loaded.sync_records == racy_bundle.sync_records
        assert set(loaded.pt_traces) == set(racy_bundle.pt_traces)
        assert loaded.samples == []
