"""Supervised runtime: retries, crash isolation, timeouts, deadlines,
quarantine, and checkpoint/resume (the §7.6 fleet's survival kit).

The headline contract: supervision changes *how persistently* work
runs, never *what* it computes — every scenario here checks the final
results against the plain serial run bit-for-bit.
"""

import pickle
import time

import pytest

from repro.errors import (
    EXIT_DEADLINE,
    EXIT_QUARANTINE,
    CheckpointError,
    DeadlineExceeded,
    QuarantinedWork,
    WorkerError,
    exit_code_for,
)
from repro.faults import WorkerFaultPlan
from repro.parallel import parallel_map
from repro.supervise import (
    RunLedger,
    SupervisorConfig,
    journal_path,
    open_journal,
    supervised_map,
)
from repro.tracing.serialize import ResultJournal

# Fast config for tests: no backoff sleeps.
FAST = SupervisorConfig(retries=3, backoff_base=0.0)


def _square(x):
    """Module-level so the process executor can pickle it."""
    return x * x


def _boom(x):
    raise ValueError(f"no good: {x}")


def _slow_square(x):
    time.sleep(5.0)
    return x * x


class TestHappyPath:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_matches_serial(self, executor, jobs):
        items = list(range(9))
        results, ledger = supervised_map(_square, items, jobs=jobs,
                                         executor=executor, config=FAST)
        assert results == [x * x for x in items]
        assert ledger.attempts == len(items)
        assert not ledger.eventful

    def test_empty(self):
        results, ledger = supervised_map(_square, [], jobs=4, config=FAST)
        assert results == []
        assert ledger.attempts == 0

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            supervised_map(_square, [1], executor="gpu")


class TestFaultRecovery:
    def test_process_kill_isolated_and_retried(self):
        """A SIGKILLed worker fails only its item; the retry converges
        and results are bit-identical to the no-fault serial run."""
        plan = WorkerFaultPlan(seed=3, kill=0.6)
        items = list(range(8))
        results, ledger = supervised_map(_square, items, jobs=4,
                                         executor="process", config=FAST,
                                         fault_plan=plan)
        assert results == [x * x for x in items]
        assert ledger.crashes > 0
        assert ledger.respawns == ledger.crashes
        assert ledger.retries == ledger.crashes
        assert all(r.outcome == "ok" for r in ledger.items)

    def test_thread_kill_simulated(self):
        """Thread workers simulate the kill via WorkerCrash — same
        accounting, same recovery."""
        plan = WorkerFaultPlan(seed=3, kill=0.6)
        items = list(range(8))
        results, ledger = supervised_map(_square, items, jobs=4,
                                         executor="thread", config=FAST,
                                         fault_plan=plan)
        assert results == [x * x for x in items]
        assert ledger.crashes > 0

    def test_fail_fault_counts_as_failure(self):
        plan = WorkerFaultPlan(seed=5, fail=0.7)
        items = list(range(6))
        results, ledger = supervised_map(_square, items, jobs=2,
                                         executor="thread", config=FAST,
                                         fault_plan=plan)
        assert results == [x * x for x in items]
        assert ledger.failures > 0
        assert ledger.crashes == 0

    def test_hung_worker_killed_and_retried(self):
        """A hung process worker is killed at task_timeout and the item
        retried (the retry attempt is past max_faulty_attempts, so it
        runs clean)."""
        plan = WorkerFaultPlan(seed=1, hang=1.0, hang_seconds=30.0)
        config = SupervisorConfig(retries=2, task_timeout=0.5,
                                  backoff_base=0.0)
        items = [2, 3]
        results, ledger = supervised_map(_square, items, jobs=2,
                                         executor="process", config=config,
                                         fault_plan=plan)
        assert results == [4, 9]
        assert ledger.timeouts == len(items)
        assert ledger.respawns == len(items)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_identical_across_executors_and_jobs(self, executor, jobs):
        """Acceptance criterion: determinism holds across jobs 1/4 and
        thread/process under the same fault plan."""
        plan = WorkerFaultPlan(seed=7, kill=0.3, fail=0.3)
        items = list(range(10))
        results, _ = supervised_map(_square, items, jobs=jobs,
                                    executor=executor, config=FAST,
                                    fault_plan=plan)
        assert results == [x * x for x in items]


class TestQuarantine:
    def test_exhausted_budget_quarantines(self):
        """A permanently faulty item ends in QuarantinedWork naming the
        exact indices, with the survivors' results on the exception."""
        plan = WorkerFaultPlan(seed=5, fail=0.7, max_faulty_attempts=99)
        config = SupervisorConfig(retries=1, backoff_base=0.0)
        items = list(range(6))
        faulty = [i for i in items
                  if plan.action(i, 1) == "fail"]
        assert faulty, "seed must schedule at least one fault"
        with pytest.raises(QuarantinedWork) as excinfo:
            supervised_map(_square, items, jobs=2, executor="thread",
                           config=config, fault_plan=plan)
        error = excinfo.value
        assert list(error.indices) == faulty
        assert exit_code_for(error) == EXIT_QUARANTINE
        for i in items:
            expected = None if i in faulty else i * i
            assert error.partial[i] == expected
        assert error.ledger.quarantined == tuple(faulty)

    def test_plain_exceptions_quarantine_too(self):
        with pytest.raises(QuarantinedWork) as excinfo:
            supervised_map(_boom, [1], config=FAST)
        record = excinfo.value.ledger.items[0]
        assert record.attempts == FAST.retries + 1
        assert "ValueError" in record.error


class TestDeadline:
    def test_deadline_carries_partial_results(self):
        config = SupervisorConfig(retries=0, deadline=0.3,
                                  task_timeout=10.0, backoff_base=0.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            supervised_map(_slow_square, [1, 2, 3], jobs=1,
                           executor="process", config=config)
        error = excinfo.value
        assert exit_code_for(error) == EXIT_DEADLINE
        assert error.ledger.deadline_hit
        assert error.partial == [None, None, None]

    def test_inline_deadline(self):
        config = SupervisorConfig(retries=0, deadline=0.2,
                                  backoff_base=0.0)
        with pytest.raises(DeadlineExceeded):
            supervised_map(_slow_square, [1, 2], jobs=1,
                           executor="serial", config=config)


class TestBackoff:
    def test_deterministic_and_exponential(self):
        config = SupervisorConfig(seed=11, backoff_base=0.05,
                                  backoff_factor=2.0, backoff_jitter=0.1)
        again = SupervisorConfig(seed=11, backoff_base=0.05,
                                 backoff_factor=2.0, backoff_jitter=0.1)
        assert config.backoff(3, 1) == 0.0
        for attempt in (2, 3, 4):
            delay = config.backoff(3, attempt)
            base = 0.05 * 2.0 ** (attempt - 2)
            assert base <= delay <= base * 1.1
            assert delay == again.backoff(3, attempt)

    def test_different_seeds_different_jitter(self):
        a = SupervisorConfig(seed=1).backoff(0, 3)
        b = SupervisorConfig(seed=2).backoff(0, 3)
        assert a != b

    def test_zero_base_disables(self):
        assert FAST.backoff(0, 5) == 0.0


class TestJournal:
    def test_resume_restores_entries(self, tmp_path):
        path = tmp_path / "trial.prjl"
        with ResultJournal(path, key="k1") as journal:
            supervised_map(_square, list(range(6)), config=FAST,
                           journal=journal)
        with ResultJournal(path, key="k1") as journal:
            assert len(journal.entries) == 6
            results, ledger = supervised_map(_square, list(range(6)),
                                             config=FAST, journal=journal)
        assert results == [x * x for x in range(6)]
        assert ledger.resumed == 6
        assert ledger.attempts == 0
        assert all(r.outcome == "resumed" for r in ledger.items)

    def test_partial_journal_runs_only_missing(self, tmp_path):
        path = tmp_path / "trial.prjl"
        with ResultJournal(path, key="k1") as journal:
            journal.append(0, 0)
            journal.append(2, 4)
        with ResultJournal(path, key="k1") as journal:
            results, ledger = supervised_map(_square, list(range(4)),
                                             config=FAST, journal=journal)
        assert results == [0, 1, 4, 9]
        assert ledger.resumed == 2
        assert ledger.attempts == 2

    def test_torn_tail_truncated(self, tmp_path):
        """A crash mid-append leaves a torn record; reopening keeps the
        good prefix and drops the tail."""
        path = tmp_path / "trial.prjl"
        with ResultJournal(path, key="k1") as journal:
            journal.append(0, "a")
            journal.append(1, "b")
        whole = path.read_bytes()
        path.write_bytes(whole[:-3])
        with ResultJournal(path, key="k1") as journal:
            assert journal.entries == {0: "a"}
            # And the truncated journal is append-consistent again.
            journal.append(1, "b")
        with ResultJournal(path, key="k1") as journal:
            assert journal.entries == {0: "a", 1: "b"}

    def test_key_mismatch_rejected(self, tmp_path):
        path = tmp_path / "trial.prjl"
        ResultJournal(path, key="sweep period=50").close()
        with pytest.raises(CheckpointError):
            ResultJournal(path, key="sweep period=100")

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "trial.prjl"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(CheckpointError):
            ResultJournal(path, key="k1")

    def test_payloads_pickled_faithfully(self, tmp_path):
        path = tmp_path / "trial.prjl"
        value = {"cells": [(1, 2), (3, 4)], "nested": {"deep": None}}
        with ResultJournal(path, key="k") as journal:
            journal.append(5, value)
        with ResultJournal(path, key="k") as journal:
            assert journal.entries[5] == value
            assert pickle.dumps(journal.entries[5]) == pickle.dumps(value)


class TestJournalPaths:
    def test_content_addressed(self, tmp_path):
        a = journal_path(tmp_path, "sweep", "key-one")
        b = journal_path(tmp_path, "sweep", "key-two")
        assert a != b
        assert a.name.startswith("sweep-") and a.suffix == ".prjl"

    def test_open_journal_none_without_dir(self):
        assert open_journal(None, "sweep", "k", resume=True) is None

    def test_open_journal_fresh_discards_stale(self, tmp_path):
        journal = open_journal(tmp_path, "sweep", "k", resume=False)
        journal.append(0, "stale")
        journal.close()
        journal = open_journal(tmp_path, "sweep", "k", resume=False)
        try:
            assert journal.entries == {}
        finally:
            journal.close()

    def test_open_journal_resume_keeps(self, tmp_path):
        journal = open_journal(tmp_path, "sweep", "k", resume=False)
        journal.append(0, "kept")
        journal.close()
        journal = open_journal(tmp_path, "sweep", "k", resume=True)
        try:
            assert journal.entries == {0: "kept"}
        finally:
            journal.close()


class TestLedger:
    def test_merge_accumulates(self):
        a = RunLedger()
        b = RunLedger(respawns=2, resumed=1, deadline_hit=True)
        a.merge(b)
        assert a.respawns == 2 and a.resumed == 1 and a.deadline_hit

    def test_to_dict_round_trips_json(self):
        import json

        _, ledger = supervised_map(_square, [1, 2], config=FAST)
        blob = json.dumps(ledger.to_dict())
        assert json.loads(blob)["items"] == 2

    def test_render_mentions_quarantine(self):
        plan = WorkerFaultPlan(seed=5, fail=1.0, max_faulty_attempts=99)
        config = SupervisorConfig(retries=0, backoff_base=0.0)
        with pytest.raises(QuarantinedWork) as excinfo:
            supervised_map(_square, [1], config=config, fault_plan=plan)
        text = excinfo.value.ledger.render()
        assert "quarantined" in text


class TestParallelMapErrors:
    def test_worker_error_names_index(self):
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(_boom, [1], jobs=1)
        assert excinfo.value.index == 0
        assert "ValueError" in str(excinfo.value)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_worker_error_keeps_completed(self, executor):
        def fails_on_two(x):
            if x == 2:
                raise ValueError("two")
            return x * x

        fn = _fails_on_two if executor == "process" else fails_on_two
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(fn, [0, 1, 2, 3], jobs=2, executor=executor)
        error = excinfo.value
        assert error.index == 2
        assert error.completed.get(0) == 0
        assert error.completed.get(1) == 1
        assert 2 not in error.completed

    def test_inline_error_carries_prefix(self):
        def fails_on_one(x):
            if x == 1:
                raise ValueError("one")
            return x

        with pytest.raises(WorkerError) as excinfo:
            parallel_map(fails_on_one, [0, 1, 2], jobs=1)
        assert excinfo.value.index == 1
        assert excinfo.value.completed == {0: 0}


def _fails_on_two(x):
    if x == 2:
        raise ValueError("two")
    return x * x


class TestBackoffDerivation:
    """The per-attempt jitter is *derived* from (seed, item, attempt) —
    no shared RNG stream — so retry timing is independent of scheduling
    order, of other items' retries, and of anything else that consumes
    randomness in the process."""

    def test_pinned_derivation(self):
        """The jitter is the keyed-hash unit draw, pinned so a change
        to the derivation shows up as a test failure, not as silently
        different fleet timing."""
        import hashlib

        config = SupervisorConfig(seed=7, backoff_base=0.05,
                                  backoff_factor=2.0, backoff_jitter=0.1)
        for index, attempt in [(0, 2), (3, 2), (3, 5), (1000, 3)]:
            digest = hashlib.blake2b(
                f"backoff|7|{index}|{attempt}".encode(),
                digest_size=8).digest()
            unit = int.from_bytes(digest, "big") / 2.0 ** 64
            expected = (0.05 * 2.0 ** (attempt - 2)) * (1.0 + 0.1 * unit)
            assert config.backoff(index, attempt) == expected

    def test_order_independent(self):
        config = SupervisorConfig(seed=3, backoff_base=0.01)
        forward = [config.backoff(i, 2) for i in range(8)]
        backward = [config.backoff(i, 2) for i in reversed(range(8))]
        assert forward == list(reversed(backward))

    def test_global_rng_independent(self):
        import random

        config = SupervisorConfig(seed=3, backoff_base=0.01)
        random.seed(123)
        a = config.backoff(5, 3)
        random.seed(999)
        for _ in range(17):
            random.random()
        assert config.backoff(5, 3) == a

    def test_decorrelated_from_worker_fault_plan(self):
        """The fault plan draws from random.Random((seed*1_000_003+i)*
        8_191+attempt); the backoff must not reuse that stream, or
        chaos tests would couple fault schedules to retry timing."""
        import random as random_module

        seed, index, attempt = 11, 3, 2
        plan_rng = random_module.Random(
            (seed * 1_000_003 + index) * 8_191 + attempt)
        config = SupervisorConfig(seed=seed, backoff_base=1.0,
                                  backoff_factor=1.0, backoff_jitter=1.0)
        unit = config.backoff(index, attempt) - 1.0
        assert abs(unit - plan_rng.random()) > 1e-12


class TestJournalCrashConsistency:
    """S1: a writer dying at ANY byte of the final record must leave a
    journal that reopens to the good prefix (never an error, never a
    phantom entry)."""

    def test_truncation_at_every_byte_of_last_record(self, tmp_path):
        path = tmp_path / "crash.prjl"
        with ResultJournal(path, key="k1") as journal:
            journal.append(0, {"payload": "alpha"})
            prefix_len = path.stat().st_size
            journal.append(1, {"payload": "beta" * 7})
        whole = path.read_bytes()
        for cut in range(prefix_len, len(whole)):
            path.write_bytes(whole[:cut])
            with ResultJournal(path, key="k1") as journal:
                assert journal.entries == {0: {"payload": "alpha"}}
                expected_drop = cut - prefix_len
                assert journal.dropped_tail_bytes == expected_drop
            # The torn tail was truncated away on open: reopening again
            # is clean.
            with ResultJournal(path, key="k1") as journal:
                assert journal.dropped_tail_bytes == 0
            path.write_bytes(whole)  # restore for the next offset

    def test_garbage_tail_dropped(self, tmp_path):
        """A final record of CRC-valid garbage (arbitrary bytes whose
        pickle payload is rot) is also a torn tail, not a crash."""
        path = tmp_path / "crash.prjl"
        with ResultJournal(path, key="k1") as journal:
            journal.append(0, "good")
        import struct
        import zlib

        rot = b"this is not a pickle"
        record = struct.pack("<III", 1, len(rot), zlib.crc32(rot)) + rot
        with open(path, "ab") as out:
            out.write(record)
        with ResultJournal(path, key="k1") as journal:
            assert journal.entries == {0: "good"}
            assert journal.dropped_tail_bytes == len(record)

    def test_torn_creation_recovers(self, tmp_path):
        """Dying inside the header write of a brand-new journal leaves
        a file shorter than the header; reopening rewrites it fresh."""
        path = tmp_path / "crash.prjl"
        ResultJournal(path, key="k1").close()
        whole = path.read_bytes()
        for cut in range(len(whole)):
            path.write_bytes(whole[:cut])
            with ResultJournal(path, key="k1") as journal:
                assert journal.entries == {}
                assert journal.dropped_tail_bytes == cut
            path.write_bytes(whole)

    def test_torn_creation_of_other_key_still_rejected(self, tmp_path):
        """A truncated header that does NOT match this key's fresh bytes
        is a foreign/corrupt file, not our torn creation."""
        path = tmp_path / "crash.prjl"
        ResultJournal(path, key="other-key").close()
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) - 2])
        with pytest.raises(CheckpointError):
            ResultJournal(path, key="k1")

    def test_ledger_accounts_dropped_tail(self, tmp_path):
        """supervised_map surfaces the dropped tail in its RunLedger, so
        an operator sees WHY some items re-ran on resume."""
        path = tmp_path / "crash.prjl"
        with ResultJournal(path, key="k1") as journal:
            supervised_map(_square, [2, 3], config=FAST, journal=journal)
        whole = path.read_bytes()
        path.write_bytes(whole[:-2])
        with ResultJournal(path, key="k1") as journal:
            results, ledger = supervised_map(_square, [2, 3], config=FAST,
                                             journal=journal)
        assert results == [4, 9]
        # The whole torn record is dropped, not just the 2 missing
        # bytes: everything after the last intact record.
        dropped = ledger.journal_tail_dropped
        assert dropped > 0
        assert ledger.resumed == 1
        assert "torn tail" in ledger.render()
        assert ledger.to_dict()["journal_tail_dropped"] == dropped

    def test_merge_sums_dropped_tails(self):
        a = RunLedger(journal_tail_dropped=3)
        a.merge(RunLedger(journal_tail_dropped=4))
        assert a.journal_tail_dropped == 7
