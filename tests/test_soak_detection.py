"""Soak test: Table 2's statistical structure over many seeded runs.

Heavier than a unit test but still fast thanks to the machine's slice
scheduler (~20 runs/second): aggregates detection probabilities per
addressing class the way the paper's 100-trace methodology does, and
checks the relationships that should hold with statistical headroom.
"""

import pytest

from repro.analysis import OfflinePipeline, wilson_interval
from repro.tracing import trace_run
from repro.workloads import (
    MEMORY_INDIRECT,
    PC_RELATIVE,
    RACE_BUGS,
    REGISTER_INDIRECT,
    WorkloadScale,
)

RUNS = 20
SCALE = WorkloadScale(iterations=25)

#: One representative per addressing class.
REPRESENTATIVES = {
    PC_RELATIVE: "pfscan",
    REGISTER_INDIRECT: "cherokee-0.9.2",
    MEMORY_INDIRECT: "mysql-3596",
}


def _probability(bug_name, period, mode="full"):
    bug = RACE_BUGS[bug_name]
    program = bug.build(SCALE)
    pipeline = OfflinePipeline(program, mode=mode)
    hits = 0
    for seed in range(RUNS):
        bundle = trace_run(program, period=period, seed=seed)
        hits += bug.detected(program, pipeline.analyze(bundle))
    return hits


class TestStatisticalStructure:
    def test_pc_relative_certain_at_every_period(self):
        for period in (100, 2_000, 50_000):
            hits = _probability(REPRESENTATIVES[PC_RELATIVE], period)
            assert hits == RUNS, period

    def test_probability_decays_with_period(self):
        name = REPRESENTATIVES[REGISTER_INDIRECT]
        dense = _probability(name, 100)
        sparse = _probability(name, 20_000)
        assert dense > sparse

    def test_classes_separate_at_sparse_sampling(self):
        """With almost no samples, only the PT-recoverable class
        survives; the context-needing classes collapse together."""
        period = 50_000
        pc = _probability(REPRESENTATIVES[PC_RELATIVE], period)
        reg = _probability(REPRESENTATIVES[REGISTER_INDIRECT], period)
        mem = _probability(REPRESENTATIVES[MEMORY_INDIRECT], period)
        assert pc > reg and pc > mem

    def test_full_mode_confidently_beats_racez(self):
        """The Wilson intervals of ProRace's and RaceZ's detection
        probabilities must not overlap at a mid period — the Table 2
        separation is statistically solid, not a point-estimate fluke."""
        name = REPRESENTATIVES[REGISTER_INDIRECT]
        period = 400
        prorace = _probability(name, period, mode="full")
        racez = _probability(name, period, mode="basicblock")
        prorace_low, _ = wilson_interval(prorace, RUNS)
        _, racez_high = wilson_interval(racez, RUNS)
        assert prorace_low > racez_high, (prorace, racez)
