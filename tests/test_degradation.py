"""Graceful degradation end-to-end: every consumer survives lossy
inputs, verdicts stay conservative, and the DegradationReport reconciles
with what was injected."""

import pytest

from repro.analysis import OfflinePipeline, render_report, to_json
from repro.faults import BUILTIN_PLAN_NAMES, FaultPlan, builtin_plans, \
    corrupt_trace_file
from repro.ptdecode import GAP_OPEN, decode_all_tolerant, decode_thread
from repro.tracing import read_trace, trace_run, write_trace


@pytest.fixture(params=BUILTIN_PLAN_NAMES)
def plan_name(request):
    return request.param


class TestAcceptanceCriteria:
    """ISSUE.md: under every built-in FaultPlan at 10% intensity,
    analyze() completes without raising, reports zero false positives
    on race-free workloads, and its DegradationReport reconciles
    exactly with the injected fault counts."""

    def test_race_free_stays_race_free(self, clean_program, clean_bundle,
                                       plan_name):
        plan = builtin_plans(0.10, seed=11)[plan_name]
        degraded, defects = plan.apply(clean_bundle)
        result = OfflinePipeline(clean_program).analyze(degraded)
        assert result.races == []
        assert result.racy_addresses == frozenset()

    def test_report_reconciles_with_injection(self, clean_program,
                                              clean_bundle, plan_name):
        plan = builtin_plans(0.10, seed=11)[plan_name]
        degraded, defects = plan.apply(clean_bundle)
        report = OfflinePipeline(clean_program).analyze(degraded).degradation
        # Declared side echoes the injection record exactly.
        assert report.samples_dropped == defects.samples_dropped
        assert report.drop_bursts == defects.drop_bursts
        assert report.pt_packets_lost == defects.pt_packets_lost
        assert report.sync_records_lost == defects.sync_records_lost
        assert report.alloc_records_lost == defects.alloc_records_lost
        assert report.tsc_perturbed == defects.tsc_perturbed
        assert report.log_truncated_at_tsc == defects.log_truncated_at_tsc
        # Observed side: the decoder crossed exactly the injected gaps.
        assert report.gaps_crossed == defects.pt_gaps
        assert report.degraded == defects.degraded

    def test_racy_workload_still_detects(self, racy_program, racy_bundle,
                                         plan_name):
        """Degradation shrinks detection power; at 10% intensity this
        racy run keeps finding its race."""
        plan = builtin_plans(0.10, seed=11)[plan_name]
        degraded, _ = plan.apply(racy_bundle)
        result = OfflinePipeline(racy_program).analyze(degraded)
        assert result.races

    def test_render_and_json_survive(self, clean_program, clean_bundle,
                                     plan_name):
        import json

        plan = builtin_plans(0.10, seed=11)[plan_name]
        degraded, _ = plan.apply(clean_bundle)
        result = OfflinePipeline(clean_program).analyze(degraded)
        text = render_report(clean_program, result)
        if result.degradation.degraded:
            assert "degraded inputs:" in text
        payload = json.loads(to_json(clean_program, result))
        assert payload["degradation"]["degraded"] \
            == result.degradation.degraded


class TestConservativeVerdicts:
    def test_precision_under_faults(self, racy_program):
        """Races reported on a degraded trace are a subset of the
        pristine analysis's: lost data never fabricates races."""
        bundle = trace_run(racy_program, period=4, seed=9)
        pristine = OfflinePipeline(racy_program).analyze(bundle)
        for name, plan in builtin_plans(0.2, seed=5).items():
            degraded, _ = plan.apply(bundle)
            result = OfflinePipeline(racy_program).analyze(degraded)
            assert result.racy_addresses <= pristine.racy_addresses, name

    def test_truncation_suppresses_tail_accesses(self, clean_program,
                                                 clean_bundle):
        plan = FaultPlan(seed=3, log_truncation=0.5)
        degraded, defects = plan.apply(clean_bundle)
        assert defects.sync_records_lost > 0
        result = OfflinePipeline(clean_program).analyze(degraded)
        assert result.races == []
        assert result.degradation.suppressed_accesses > 0

    def test_pristine_run_reports_no_degradation(self, clean_program,
                                                 clean_bundle):
        result = OfflinePipeline(clean_program).analyze(clean_bundle)
        assert not result.degradation.degraded


class TestDecoderResync:
    def _gapped(self, bundle, seed=1, pt_gap=0.25):
        degraded, defects = FaultPlan(seed=seed, pt_gap=pt_gap).apply(bundle)
        assert defects.pt_gaps > 0
        return degraded, defects

    def test_decode_crosses_gaps(self, racy_program, racy_bundle):
        degraded, defects = self._gapped(racy_bundle)
        paths, failures = decode_all_tolerant(
            racy_program, degraded.pt_traces,
            samples={tid: degraded.samples_of_thread(tid)
                     for tid in degraded.pt_traces},
        )
        assert not failures
        assert sum(p.ovf_gaps for p in paths.values()) == defects.pt_gaps
        gapped = [p for p in paths.values() if p.gap_ranges]
        assert gapped

    def test_locate_refuses_gap_interior(self, racy_program, racy_bundle):
        degraded, _ = self._gapped(racy_bundle)
        for tid, trace in degraded.pt_traces.items():
            path = decode_thread(
                racy_program, trace,
                samples=degraded.samples_of_thread(tid),
            )
            for gap_lo, gap_hi in path.gap_ranges:
                if gap_hi is GAP_OPEN:
                    probe = gap_lo + 1
                else:
                    probe = (gap_lo + int(gap_hi)) // 2
                if gap_lo <= probe < gap_hi:
                    assert path.locate(0, probe) is None

    def test_segment_starts_follow_resyncs(self, racy_program,
                                           racy_bundle):
        degraded, _ = self._gapped(racy_bundle)
        for tid, trace in degraded.pt_traces.items():
            path = decode_thread(
                racy_program, trace,
                samples=degraded.samples_of_thread(tid),
            )
            for start in path.segment_starts:
                assert 0 < start <= len(path.steps)

    def test_gap_without_samples_truncates(self, racy_program,
                                           racy_bundle):
        """No post-gap sample to resync at → conservative truncation,
        not an exception."""
        degraded, _ = self._gapped(racy_bundle)
        for tid, trace in degraded.pt_traces.items():
            path = decode_thread(racy_program, trace, samples=[])
            if path.ovf_gaps:
                assert not path.complete


class TestThreadIsolation:
    def test_decode_failure_skips_thread_only(self, racy_program,
                                              racy_bundle):
        """A PT stream decoding to garbage costs that thread, not the
        analysis."""
        import dataclasses

        from repro.pmu.pt import PTPacket, PacketKind

        broken = dict(racy_bundle.pt_traces)
        victim = sorted(broken)[0]
        trace = broken[victim]
        # An indirect-jump packet targeting an out-of-range ip.
        bad = PTPacket(PacketKind.TIP, trace.packets[0].tsc + 1,
                       target=10_000)
        broken[victim] = dataclasses.replace(
            trace, packets=[bad] + list(trace.packets))
        bundle = dataclasses.replace(racy_bundle, pt_traces=broken)
        result = OfflinePipeline(racy_program).analyze(bundle)
        assert victim in result.degradation.threads_skipped

    def test_no_spurious_skips(self, racy_program, racy_bundle):
        result = OfflinePipeline(racy_program).analyze(racy_bundle)
        assert result.degradation.threads_skipped == ()


class TestSalvageAnalysis:
    def test_corrupted_sync_section_analyzed_conservatively(
            self, clean_program, clean_bundle, tmp_path):
        path = tmp_path / "t.prtr"
        write_trace(clean_bundle, path)
        corrupt_trace_file(path, seed=2, section_index=2)  # sync
        loaded = read_trace(path, program=clean_program,
                            allow_partial=True)
        assert loaded.defects.corrupted_sections == ("sync#2",)
        assert loaded.defects.log_truncated_at_tsc == -1
        result = OfflinePipeline(clean_program).analyze(loaded)
        assert result.races == []
        assert result.degradation.corrupted_sections == ("sync#2",)
