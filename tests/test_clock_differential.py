"""Clock reconciliation must be an invisible flag on healthy traces.

Differential evidence for the uncertainty-aware merge keys
(:func:`repro.detector.events.uncertain_merge_tsc`):

* on clean traces, ``reconcile_clock=True`` snaps to the identity
  model and every executor — scalar, columnar-batched, address-sharded
  — returns verdicts bit-identical to the unreconciled run;
* on clock-damaged traces the three executors still agree with *each
  other* bit-for-bit: the corrected keys reach every backend the same
  way, so reconciliation changes what is detected, never which
  executor detects it.
"""

import pytest

from repro.analysis import OfflinePipeline
from repro.faults import FaultPlan, clock_plans
from repro.tracing import trace_run
from repro.workloads import RACE_BUGS, WorkloadScale

SCALE = WorkloadScale(iterations=8, threads=4)
CORPUS = ("pfscan", "mysql-791", "apache-25520")


def _bundle(name, seed, plan=None):
    program = RACE_BUGS[name].build(SCALE)
    bundle = trace_run(program, period=100, seed=seed)
    if plan is not None:
        bundle, _ = plan.apply(bundle)
    return program, bundle


def _assert_identical(left, right):
    fl = left.findings["fasttrack"]
    fr = right.findings["fasttrack"]
    assert fl.races == fr.races
    assert fl.sorted_addresses() == fr.sorted_addresses()
    assert fl.accesses_processed == fr.accesses_processed
    assert fl.sync_processed == fr.sync_processed
    assert left.racy_addresses == right.racy_addresses
    assert [r.pair for r in left.races] == [r.pair for r in right.races]
    assert left.regeneration_rounds == right.regeneration_rounds


@pytest.mark.parametrize("name", CORPUS)
@pytest.mark.parametrize("seed", [0, 3])
def test_reconcile_flag_invisible_on_clean_traces(name, seed):
    """reconcile_clock=True on an undamaged trace: identity model,
    verdicts bit-identical to the flag being off — in every executor."""
    program, bundle = _bundle(name, seed)
    plain = OfflinePipeline(program).analyze(bundle)
    for kwargs in (
        {},
        {"batch": False},
        {"detect_shards": 4, "detect_executor": "thread"},
    ):
        reconciled = OfflinePipeline(program, reconcile_clock=True,
                                     **kwargs).analyze(bundle)
        assert reconciled.clock is not None
        assert not reconciled.clock.active
        _assert_identical(plain, reconciled)


@pytest.mark.parametrize("name", CORPUS)
@pytest.mark.parametrize("plan_name",
                         ["clock-skew", "clock-regress", "clock-combined"])
def test_executors_agree_under_clock_damage(name, plan_name):
    """Scalar, batched and sharded reconciled runs agree bit-for-bit on
    clock-damaged traces: uncertainty-clamped keys are executor-blind."""
    plan = clock_plans(0.4, seed=7)[plan_name]
    program, bundle = _bundle(name, 7, plan)
    scalar = OfflinePipeline(program, reconcile_clock=True,
                             batch=False).analyze(bundle)
    batched = OfflinePipeline(program, reconcile_clock=True).analyze(bundle)
    sharded = OfflinePipeline(program, reconcile_clock=True,
                              detect_shards=4,
                              detect_executor="thread").analyze(bundle)
    _assert_identical(scalar, batched)
    _assert_identical(scalar, sharded)


def test_reconciled_never_exceeds_clean_findings():
    """Reconciliation under damage may lose detection but must not
    fabricate: reconciled racy addresses are a subset of the clean
    run's on every clock plan shape."""
    program, clean = _bundle("apache-25520", 3)
    truth = OfflinePipeline(program).analyze(clean).racy_addresses
    for plan in clock_plans(0.5, seed=3).values():
        damaged, _ = plan.apply(clean)
        result = OfflinePipeline(program,
                                 reconcile_clock=True).analyze(damaged)
        assert result.racy_addresses <= truth
