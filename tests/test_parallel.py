"""The executor abstraction: ordering, determinism, validation."""

import os

import pytest

from repro.parallel import EXECUTORS, parallel_map, resolve_jobs


def _square(x):
    """Module-level so the process executor can pickle it."""
    return x * x


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_auto_uses_cpu_count(self):
        assert resolve_jobs(None) == max(1, os.cpu_count() or 1)
        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)

    def test_negative_clamped(self):
        assert resolve_jobs(-2) == 1


class TestParallelMap:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("jobs", [1, 2, 8])
    def test_preserves_input_order(self, executor, jobs):
        items = list(range(17))
        assert parallel_map(_square, items, jobs=jobs,
                            executor=executor) == [x * x for x in items]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_single_item_runs_inline(self):
        assert parallel_map(_square, [7], jobs=4, executor="process") == [49]

    def test_generator_input(self):
        assert parallel_map(_square, (x for x in range(5)), jobs=2) == \
            [0, 1, 4, 9, 16]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], jobs=2, executor="gpu")

    def test_closures_allowed_on_threads(self):
        offset = 10
        assert parallel_map(lambda x: x + offset, [1, 2, 3], jobs=2,
                            executor="thread") == [11, 12, 13]
