"""Condition-variable semantics and detector integration."""

import pytest

from repro.analysis import OfflinePipeline
from repro.isa import Op, assemble
from repro.machine import Machine, MachineError
from repro.tracing import trace_run

from tests.helpers import run_machine

PRODUCER_CONSUMER = """
.global mtx 0
.global cv 0
.global ready 0
.global slot 0
.global got 0
main:
    spawn consumer, %rbx
    mov $30, %rcx
delay:
    dec %rcx
    cmp $0, %rcx
    jne delay
    lock $mtx
    mov $99, %rax
    mov %rax, slot(%rip)
    mov $1, %rax
    mov %rax, ready(%rip)
    cond_signal $cv
    unlock $mtx
    join %rbx
    halt
consumer:
    lock $mtx
check:
    mov ready(%rip), %rax
    cmp $0, %rax
    jne go
    cond_wait $cv, $mtx
    jmp check
go:
    mov slot(%rip), %rax
    mov %rax, got(%rip)
    unlock $mtx
    halt
"""


class TestCondWaitSignal:
    @pytest.mark.parametrize("seed", range(8))
    def test_producer_consumer(self, seed):
        program = assemble(PRODUCER_CONSUMER)
        machine, result = run_machine(program, seed=seed)
        assert machine.memory.load(program.symbols["got"]) == 99

    def test_lost_signal_deadlocks(self):
        """pthread semantics: a signal with no waiter is lost; a waiter
        that misses it (and whose predicate never turns true again)
        sleeps forever — the machine reports the deadlock."""
        source = """
.global mtx 0
.global cv 0
main:
    cond_signal $cv
    spawn waiter, %rbx
    join %rbx
    halt
waiter:
    lock $mtx
    cond_wait $cv, $mtx
    unlock $mtx
    halt
"""
        with pytest.raises(MachineError, match="deadlock"):
            run_machine(assemble(source), seed=0)

    def test_broadcast_wakes_all(self):
        source = """
.global mtx 0
.global cv 0
.global go 0
.global woken 0
.global wlock 0
main:
    spawn waiter, %rbx
    spawn waiter, %r12
    mov $60, %rcx
spinwork:
    dec %rcx
    cmp $0, %rcx
    jne spinwork
    lock $mtx
    mov $1, %rax
    mov %rax, go(%rip)
    cond_broadcast $cv
    unlock $mtx
    join %rbx
    join %r12
    halt
waiter:
    lock $mtx
check:
    mov go(%rip), %rax
    cmp $0, %rax
    jne done
    cond_wait $cv, $mtx
    jmp check
done:
    unlock $mtx
    lock $wlock
    mov woken(%rip), %rax
    add $1, %rax
    mov %rax, woken(%rip)
    unlock $wlock
    halt
"""
        program = assemble(source)
        for seed in range(6):
            machine, _ = run_machine(program, seed=seed)
            assert machine.memory.load(program.symbols["woken"]) == 2

    def test_waiter_reacquires_mutex_exclusively(self):
        """The signaled waiter must not run its critical section while
        the signaler still holds the mutex."""
        source = """
.global mtx 0
.global cv 0
.global go 0
.global counter 0
main:
    spawn waiter, %rbx
    lock $mtx
    mov $1, %rax
    mov %rax, go(%rip)
    cond_signal $cv
    mov counter(%rip), %rax
    add $1, %rax
    mov %rax, counter(%rip)
    unlock $mtx
    join %rbx
    halt
waiter:
    lock $mtx
check:
    mov go(%rip), %rax
    cmp $0, %rax
    jne done
    cond_wait $cv, $mtx
    jmp check
done:
    mov counter(%rip), %rax
    add $1, %rax
    mov %rax, counter(%rip)
    unlock $mtx
    halt
"""
        program = assemble(source)
        for seed in range(8):
            machine, _ = run_machine(program, seed=seed)
            assert machine.memory.load(program.symbols["counter"]) == 2


class TestDetectorIntegration:
    @pytest.mark.parametrize("seed", range(4))
    def test_condvar_handoff_is_race_free(self, seed):
        program = assemble(PRODUCER_CONSUMER)
        bundle = trace_run(program, period=1, seed=seed)
        result = OfflinePipeline(program).analyze(bundle)
        assert not result.races, [r.describe() for r in result.races]

    def test_sync_records_include_cond_kinds(self):
        program = assemble(PRODUCER_CONSUMER)
        saw_wait_path = False
        for seed in range(30):
            bundle = trace_run(program, period=5, seed=seed)
            kinds = {r.kind for r in bundle.sync_records}
            assert "cond_signal" in kinds  # the signal always happens
            if "cond_wake" in kinds:
                saw_wait_path = True
        # Across 30 schedules, at least one must block on the condvar.
        assert saw_wait_path

    def test_cond_records_serialize(self, tmp_path):
        from repro.tracing import read_trace, write_trace

        program = assemble(PRODUCER_CONSUMER)
        bundle = trace_run(program, period=5, seed=1)
        path = tmp_path / "cv.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        assert loaded.sync_records == bundle.sync_records


class TestClassification:
    def test_cond_ops_are_system_and_sync(self):
        from repro.isa.instructions import Instruction
        from repro.isa.operands import Imm

        wait = Instruction(Op.COND_WAIT, (Imm(1), Imm(2)))
        assert wait.is_system() and wait.is_sync()
        signal = Instruction(Op.COND_SIGNAL, (Imm(1),))
        assert signal.is_system() and signal.is_sync()
