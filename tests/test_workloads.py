"""Workload library tests: every catalogued program runs and terminates
with the expected character."""

import pytest

from repro.analysis import OfflinePipeline
from repro.machine import Machine
from repro.tracing import trace_run
from repro.workloads import (
    ALL_WORKLOADS,
    APP_WORKLOADS,
    PARSEC_WORKLOADS,
    WorkloadScale,
)

SCALE = WorkloadScale(iterations=10)


class TestCatalog:
    def test_thirteen_parsec_members(self):
        assert len(PARSEC_WORKLOADS) == 13

    def test_eight_apps(self):
        assert len(APP_WORKLOADS) == 8
        assert set(APP_WORKLOADS) == {
            "apache", "cherokee", "mysql", "memcached", "transmission",
            "pfscan", "pbzip2", "aget",
        }

    def test_no_name_collisions(self):
        assert len(ALL_WORKLOADS) == 21


@pytest.mark.parametrize("name", sorted(PARSEC_WORKLOADS))
class TestParsecKernels:
    def test_runs_to_completion(self, name):
        program = PARSEC_WORKLOADS[name].instantiate(SCALE)
        result = Machine(program, seed=1).run()
        assert result.instructions > 0
        assert result.threads >= 2

    def test_deterministic_under_seed(self, name):
        workload = PARSEC_WORKLOADS[name]
        first = Machine(workload.instantiate(SCALE), seed=5).run()
        second = Machine(workload.instantiate(SCALE), seed=5).run()
        assert first.instructions == second.instructions
        assert first.tsc == second.tsc

    def test_cpu_bound(self, name):
        result = Machine(
            PARSEC_WORKLOADS[name].instantiate(SCALE), seed=1
        ).run()
        assert result.io_cycles == 0


@pytest.mark.parametrize("name", sorted(APP_WORKLOADS))
class TestApps:
    def test_runs_to_completion(self, name):
        program = APP_WORKLOADS[name].instantiate(SCALE)
        result = Machine(program, seed=1).run()
        assert result.instructions > 0

    def test_io_character_matches_catalog(self, name):
        workload = APP_WORKLOADS[name]
        result = Machine(workload.instantiate(SCALE), seed=1).run()
        if workload.io_bound:
            assert result.idle_cycles > result.cpu_cycles
        else:
            # CPU-dominant (may still do some I/O, e.g. transmission).
            assert result.idle_cycles <= result.cpu_cycles


class TestRaceFreedom:
    """The catalogued workloads are race-free: the detection pipeline
    must stay silent on them (they feed the overhead experiments, not
    the detection ones)."""

    @pytest.mark.parametrize("name", ["blackscholes", "fluidanimate",
                                      "dedup", "streamcluster", "x264"])
    def test_parsec_clean(self, name):
        program = PARSEC_WORKLOADS[name].instantiate(SCALE)
        bundle = trace_run(program, period=2, seed=3)
        result = OfflinePipeline(program).analyze(bundle)
        assert not result.races, [r.describe() for r in result.races]

    @pytest.mark.parametrize("name", ["apache", "mysql", "pbzip2"])
    def test_apps_clean(self, name):
        program = APP_WORKLOADS[name].instantiate(SCALE)
        bundle = trace_run(program, period=2, seed=3)
        result = OfflinePipeline(program).analyze(bundle)
        assert not result.races, [r.describe() for r in result.races]
