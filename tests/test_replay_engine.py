"""Replay engine tests: soundness against ground truth, mode ordering."""

import pytest

from repro.isa import Op, assemble
from repro.replay import PROV_SAMPLED, ReplayEngine
from repro.tracing import trace_run

from tests.helpers import CLEAN_COUNTER_ASM, RACY_ASM


def observable(ins):
    """Accesses the machine reports (CALL/RET stack slots excluded)."""
    return ins.is_memory_access() and ins.op not in (Op.CALL, Op.RET)


def check_soundness(program, bundle, mode):
    """Every reconstructed access must equal the machine-issued one at
    the same path position — reconstruction may be incomplete, never
    wrong."""
    engine = ReplayEngine(program, mode=mode)
    result = engine.replay_bundle(bundle)
    gt_per_thread = bundle.ground_truth.per_thread()
    recovered_total = 0
    for tid, accesses in result.per_thread.items():
        truth = gt_per_thread.get(tid, [])
        path = result.paths[tid]
        mem_steps = [
            j for j, ip in enumerate(path.steps) if observable(program[ip])
        ]
        assert len(mem_steps) == len(truth)
        by_step = dict(zip(mem_steps, truth))
        for access in accesses:
            actual = by_step[access.step_index]
            assert (actual.ip, actual.address, actual.is_store) == \
                (access.ip, access.address, access.is_store)
            recovered_total += 1
    return result, recovered_total


class TestSoundness:
    @pytest.mark.parametrize("mode", ["full", "forward", "basicblock"])
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_clean_program(self, clean_program, mode, seed):
        bundle = trace_run(clean_program, period=4, seed=seed,
                           record_ground_truth=True)
        check_soundness(clean_program, bundle, mode)

    @pytest.mark.parametrize("mode", ["full", "forward", "basicblock"])
    def test_racy_program(self, racy_program, mode):
        bundle = trace_run(racy_program, period=3, seed=5,
                           record_ground_truth=True)
        check_soundness(racy_program, bundle, mode)


class TestModeOrdering:
    def test_full_mode_dominates_ablations(self, racy_program):
        bundle = trace_run(racy_program, period=6, seed=1,
                           record_ground_truth=True)
        counts = {}
        for mode in ("full", "forward", "basicblock"):
            _, counts[mode] = check_soundness(racy_program, bundle, mode)
        assert counts["full"] >= counts["forward"]
        assert counts["full"] >= counts["basicblock"]

    def test_recovery_ratio_exceeds_one_with_samples(self, racy_program):
        bundle = trace_run(racy_program, period=6, seed=1)
        result = ReplayEngine(racy_program, mode="full").replay_bundle(bundle)
        assert result.stats.recovery_ratio > 1.0


class TestSampledAccesses:
    def test_samples_present_with_sampled_provenance(self, racy_program):
        bundle = trace_run(racy_program, period=4, seed=8)
        result = ReplayEngine(racy_program).replay_bundle(bundle)
        sampled = [
            a for accesses in result.per_thread.values() for a in accesses
            if a.provenance == PROV_SAMPLED
        ]
        assert len(sampled) == result.stats.sampled
        assert result.stats.sampled > 0

    def test_sampled_addresses_come_from_records(self, racy_program):
        bundle = trace_run(racy_program, period=4, seed=8)
        result = ReplayEngine(racy_program).replay_bundle(bundle)
        by_key = {
            (s.tid, s.ip, s.tsc): s.address for s in bundle.samples
        }
        for tid, aligned in result.aligned.items():
            for item in aligned:
                key = (tid, item.sample.ip, item.sample.tsc)
                assert by_key[key] == item.sample.address


class TestNoSampleThreads:
    def test_thread_without_samples_still_gets_pc_relative(self):
        source = """
.global flag 0
main:
    spawn quiet, %rbx
    mov $20, %rcx
mloop:
    mov flag(%rip), %rax
    dec %rcx
    cmp $0, %rcx
    jne mloop
    join %rbx
    halt
quiet:
    mov flag(%rip), %rdx
    halt
"""
        program = assemble(source)
        # Period so large the child thread gets no samples.
        bundle = trace_run(program, period=10_000, seed=0)
        result = ReplayEngine(program).replay_bundle(bundle)
        child_accesses = result.per_thread.get(1, [])
        quiet_ip = program.resolve("quiet")
        assert any(a.ip == quiet_ip for a in child_accesses)


class TestInvalidMode:
    def test_rejected(self, racy_program):
        with pytest.raises(ValueError):
            ReplayEngine(racy_program, mode="bogus")
