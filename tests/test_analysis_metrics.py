"""Metrics module tests: aggregates, detection-probability harness,
offline-overhead measurement."""

import pytest

from repro.analysis import (
    geometric_mean,
    arithmetic_mean,
    measure_detection_probability,
    measure_offline_overhead,
)
from repro.analysis.metrics import DetectionProbability, DetectionTrial
from repro.tracing import trace_run


class TestAggregates:
    def test_geometric_mean_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_geometric_mean_skips_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric_leq_arithmetic(self):
        values = [1.2, 3.4, 0.9, 7.7]
        assert geometric_mean(values) <= arithmetic_mean(values) + 1e-12


class TestDetectionProbability:
    def test_empty(self):
        probability = DetectionProbability()
        assert probability.probability == 0.0
        assert probability.runs == 0

    def test_counts(self):
        probability = DetectionProbability(trials=[
            DetectionTrial(seed=0, detected=True, races=1, samples=5),
            DetectionTrial(seed=1, detected=False, races=0, samples=5),
        ])
        assert probability.runs == 2
        assert probability.detections == 1
        assert probability.probability == 0.5

    def test_harness_detects_obvious_race(self, racy_program):
        probability = measure_detection_probability(
            racy_program,
            racy_addresses=[racy_program.symbols["racy"]],
            period=3,
            runs=5,
        )
        assert probability.runs == 5
        assert probability.probability >= 0.8

    def test_harness_clean_program_never_detects(self, clean_program):
        probability = measure_detection_probability(
            clean_program,
            racy_addresses=[clean_program.symbols["total"]],
            period=3,
            runs=4,
        )
        assert probability.probability == 0.0

    def test_seeds_are_distinct(self, racy_program):
        probability = measure_detection_probability(
            racy_program,
            racy_addresses=[racy_program.symbols["racy"]],
            period=3,
            runs=3,
            seed_base=100,
        )
        assert [t.seed for t in probability.trials] == [100, 101, 102]


class TestOfflineOverhead:
    def test_measures(self, racy_program):
        bundle = trace_run(racy_program, period=5, seed=1)
        overhead = measure_offline_overhead(racy_program, bundle)
        assert overhead.analysis_seconds > 0
        assert overhead.execution_seconds > 0
        assert overhead.overhead_per_execution_second > 0
        assert abs(sum(overhead.breakdown.values()) - 1.0) < 1e-9


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        from repro.analysis import wilson_interval

        low, high = wilson_interval(7, 10)
        assert low <= 0.7 <= high

    def test_bounds_in_unit_interval(self):
        from repro.analysis import wilson_interval

        for hits, runs in ((0, 10), (10, 10), (1, 1), (0, 1)):
            low, high = wilson_interval(hits, runs)
            assert 0.0 <= low <= high <= 1.0

    def test_narrows_with_more_runs(self):
        from repro.analysis import wilson_interval

        low10, high10 = wilson_interval(5, 10)
        low100, high100 = wilson_interval(50, 100)
        assert (high100 - low100) < (high10 - low10)

    def test_zero_runs(self):
        from repro.analysis import wilson_interval

        assert wilson_interval(0, 0) == (0.0, 1.0)


class TestExpectedRuns:
    def test_geometric_expectation(self):
        from repro.analysis.metrics import (
            DetectionProbability,
            DetectionTrial,
        )

        probability = DetectionProbability(trials=[
            DetectionTrial(seed=i, detected=(i % 4 == 0), races=1,
                           samples=1)
            for i in range(8)
        ])
        assert probability.probability == 0.25
        assert probability.expected_runs_to_detection() == 4.0

    def test_never_detected_is_infinite(self):
        import math

        from repro.analysis.metrics import (
            DetectionProbability,
            DetectionTrial,
        )

        probability = DetectionProbability(trials=[
            DetectionTrial(seed=0, detected=False, races=0, samples=0)
        ])
        assert math.isinf(probability.expected_runs_to_detection())
