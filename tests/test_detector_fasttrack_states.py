"""FastTrack internal state-machine transitions (the adaptive epoch /
vector-clock representation the algorithm is named for)."""

from repro.detector import Access, AccessKind, FastTrack, SyncOp
from repro.detector.fasttrack import _VarState

VAR = (0x1000, 0)


def read(tid, ip=1):
    return Access(tid=tid, var=VAR, kind=AccessKind.READ, ip=ip, tsc=0.0,
                  provenance="test")


def write(tid, ip=2):
    return Access(tid=tid, var=VAR, kind=AccessKind.WRITE, ip=ip, tsc=0.0,
                  provenance="test")


def bump(ft, tid):
    """Advance a thread's epoch (release on a private lock)."""
    ft.sync(SyncOp(tid, "unlock", 0xF00 + tid, 0.0))


class TestReadRepresentation:
    def test_exclusive_read_stays_epoch(self):
        ft = FastTrack()
        ft.access(read(0))
        state = ft._vars[VAR]
        assert state.read_vc is None
        assert state.read_tid == 0

    def test_ordered_second_reader_stays_epoch(self):
        """A read that happens-after the previous read just replaces the
        epoch — no inflation."""
        ft = FastTrack()
        ft.access(read(0))
        ft.sync(SyncOp(0, "unlock", 0xA, 0.0))
        ft.sync(SyncOp(1, "lock", 0xA, 0.0))
        ft.access(read(1))
        state = ft._vars[VAR]
        assert state.read_vc is None
        assert state.read_tid == 1

    def test_concurrent_readers_inflate_to_vector(self):
        ft = FastTrack()
        ft.access(read(0))
        ft.access(read(1))
        state = ft._vars[VAR]
        assert state.read_vc is not None
        assert state.read_vc.get(0) > 0 and state.read_vc.get(1) > 0

    def test_write_deflates_read_vector(self):
        """After a write, FastTrack discards the shared-read set (all
        reads are ordered-before or reported)."""
        ft = FastTrack()
        ft.access(read(0))
        ft.access(read(1))
        ft.access(write(0))
        state = ft._vars[VAR]
        assert state.read_vc is None
        # Read epoch back to ⊥e (tid == -1 in the int representation).
        assert state.read_tid == -1 and state.read_clock == 0

    def test_same_epoch_read_fast_path(self):
        ft = FastTrack()
        ft.access(read(0))
        processed = ft.accesses_processed
        races = len(ft.races)
        ft.access(read(0))  # same epoch: no state change, no new race
        assert ft.accesses_processed == processed + 1
        assert len(ft.races) == races
        assert ft._vars[VAR].read_vc is None


class TestWriteRepresentation:
    def test_write_epoch_advances_with_thread_clock(self):
        ft = FastTrack()
        ft.access(write(0))
        state = ft._vars[VAR]
        first = (state.write_clock, state.write_tid)
        bump(ft, 0)
        ft.access(write(0))
        second = (state.write_clock, state.write_tid)
        assert second[1] == first[1] == 0
        assert second[0] > first[0]

    def test_same_epoch_write_fast_path_keeps_ip(self):
        ft = FastTrack()
        ft.access(write(0, ip=7))
        ft.access(write(0, ip=8))  # same epoch: shortcut, ip not updated
        assert ft._vars[VAR].write_ip == 7


class TestCounters:
    def test_processed_counts(self):
        ft = FastTrack()
        ft.access(read(0))
        ft.access(write(1))
        ft.sync(SyncOp(0, "unlock", 0xA, 0.0))
        assert ft.accesses_processed == 2
        assert ft.sync_processed == 1

    def test_unknown_sync_kind_rejected(self):
        ft = FastTrack()
        try:
            ft.sync(SyncOp(0, "barrier", 0xA, 0.0))
        except ValueError as exc:
            assert "barrier" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")
