"""Fleet-scale triage: scheduler, spool, ingestion, workers, race DB.

The two headline contracts, each pinned deterministically:

* **Chaos duel** — a seeded fleet run under transport chaos (node
  crashes, duplicate delivery, transiently corrupt copies, reordering)
  commits a race database *bit-identical* to the fault-free run over
  the same workload seeds, with every lost/extra copy reconciled in
  the triage report.
* **PACER rotation** — rotating deep-tracing epochs achieves strictly
  higher fleet detection probability than uniform thin sampling at the
  same fleet-wide overhead budget.
"""

import json
from dataclasses import replace

import pytest

from repro.errors import TraceError, UsageError
from repro.fleet import (
    BundleSpool,
    DeliveryPlan,
    FleetConfig,
    FleetSchedule,
    RaceDatabase,
    decode_envelope,
    encode_envelope,
    fleet_specs,
    ingest,
    produce_fleet,
    run_fleet,
    run_fleet_duel,
    shard_of,
)
from repro.fleet.workers import analyze_bundles, apply_backpressure
from repro.fleet.ingest import AcceptedBundle

# Small but real: every cell traces + analyzes, so keep the grid tight.
SMALL = dict(nodes=4, epochs=3, iterations=8, seed=0)


@pytest.fixture(scope="module")
def produced():
    """One produced fleet, shared by every transport-level test."""
    return produce_fleet(FleetConfig(**SMALL))


def _deliver(spool, produced, plan):
    wire = []
    for bundle in produced:
        envelope = encode_envelope(bundle.meta)
        for _kind, payload in plan.copies(bundle.bundle_id, envelope,
                                          bundle.blob):
            wire.append((bundle.bundle_id, payload))
    for seq, index in enumerate(plan.arrival_order(len(wire))):
        bundle_id, payload = wire[index]
        spool.put(seq, bundle_id, payload)


class TestSchedule:
    def test_rotation_covers_every_node(self):
        schedule = FleetSchedule(policy="rotate", nodes=5, epochs=5)
        seen = set()
        for epoch in range(5):
            deep = schedule.deep_nodes(epoch)
            assert len(deep) == schedule.deep_slots
            seen |= deep
        assert seen == set(range(5))

    def test_same_fleet_budget_both_policies(self):
        """Nominal per-node budgets average to the fleet budget under
        rotate (when slots divide evenly) and equal it under uniform."""
        schedule = FleetSchedule(nodes=4, epochs=3, fleet_budget=0.005,
                                 deep_budget=0.02)
        rotate_mean = sum(
            schedule.assignment(node, 0).budget for node in range(4)
        ) / 4
        assert rotate_mean == pytest.approx(0.005)
        uniform = FleetSchedule(policy="uniform", nodes=4, epochs=3,
                                fleet_budget=0.005, deep_budget=0.02)
        assert all(uniform.assignment(n, 0).budget == 0.005
                   for n in range(4))
        # And the uniform period stretches by the budget ratio.
        assert uniform.uniform_period == uniform.deep_period * 4

    def test_deep_assignment_fields(self):
        schedule = FleetSchedule(nodes=4, epochs=2)
        deep_node = next(iter(schedule.deep_nodes(0)))
        a = schedule.assignment(deep_node, 0)
        assert a.deep and a.governed and a.period == schedule.deep_period
        idle = schedule.assignment((deep_node + 1) % 4, 0)
        assert not idle.deep and not idle.governed
        assert idle.period == schedule.idle_period

    def test_validation(self):
        with pytest.raises(UsageError):
            FleetSchedule(policy="nope")
        with pytest.raises(UsageError):
            FleetSchedule(fleet_budget=0.1, deep_budget=0.05)
        with pytest.raises(UsageError):
            FleetConfig(workloads=("not-a-bug",))

    def test_specs_are_deterministic(self):
        a = fleet_specs(FleetConfig(**SMALL))
        b = fleet_specs(FleetConfig(**SMALL))
        assert a == b
        assert len({s.bundle_id for s in a}) == len(a)


class TestEnvelope:
    def test_roundtrip(self):
        meta = {"bundle_id": "abcd", "node": 1, "epoch": 2}
        wire = encode_envelope(meta) + b"TRACE"
        got, trace = decode_envelope(wire)
        assert got == meta and trace == b"TRACE"

    def test_torn_and_foreign_rejected(self):
        with pytest.raises(TraceError):
            decode_envelope(b"PRFB1 {\"bundle_id\": \"x\"")  # no newline
        with pytest.raises(TraceError):
            decode_envelope(b"garbage\nmore")
        with pytest.raises(TraceError):
            decode_envelope(b"PRFB1 {\"no_id\": 1}\npayload")


class TestDeliveryPlan:
    def test_deterministic(self, produced):
        plan = DeliveryPlan(seed=5, node_crash_rate=0.5,
                            duplicate_rate=0.5, corrupt_rate=0.5)
        bundle = produced[0]
        envelope = encode_envelope(bundle.meta)
        a = plan.copies(bundle.bundle_id, envelope, bundle.blob)
        b = plan.copies(bundle.bundle_id, envelope, bundle.blob)
        assert a == b
        assert plan.arrival_order(10) == plan.arrival_order(10)

    def test_always_ends_with_intact_copy(self, produced):
        plan = DeliveryPlan(seed=1, node_crash_rate=1.0,
                            duplicate_rate=0.0, corrupt_rate=1.0)
        bundle = produced[0]
        envelope = encode_envelope(bundle.meta)
        copies = plan.copies(bundle.bundle_id, envelope, bundle.blob)
        kinds = [kind for kind, _ in copies]
        assert kinds == ["torn", "corrupt", "intact"]
        assert copies[-1][1] == envelope + bundle.blob

    def test_poison_is_total(self, produced):
        plan = DeliveryPlan(seed=1, poison_rate=1.0)
        bundle = produced[0]
        copies = plan.copies(bundle.bundle_id,
                             encode_envelope(bundle.meta), bundle.blob)
        assert [kind for kind, _ in copies] == ["poison", "poison"]
        for _, payload in copies:
            with pytest.raises(TraceError):
                decode_envelope(payload)


class TestIngest:
    def test_clean_spool(self, produced, tmp_path):
        spool = BundleSpool(tmp_path / "spool")
        _deliver(spool, produced, DeliveryPlan(seed=0))
        result = ingest(spool)
        assert len(result.accepted) == len(produced)
        assert result.stats.deduped == 0
        assert result.stats.reconciles

    def test_duplicates_deduped(self, produced, tmp_path):
        spool = BundleSpool(tmp_path / "spool")
        _deliver(spool, produced, DeliveryPlan(seed=0, duplicate_rate=1.0))
        result = ingest(spool)
        assert len(result.accepted) == len(produced)
        assert result.stats.deduped == len(produced)
        assert result.stats.reconciles

    def test_torn_recovered_by_redelivery(self, produced, tmp_path):
        spool = BundleSpool(tmp_path / "spool")
        _deliver(spool, produced,
                 DeliveryPlan(seed=0, node_crash_rate=1.0, reorder=False))
        result = ingest(spool)
        assert len(result.accepted) == len(produced)
        assert not any(a.salvaged for a in result.accepted)
        assert result.stats.unreadable_copies == len(produced)
        assert result.stats.quarantined == 0
        assert result.stats.reconciles

    def test_sticky_corruption_salvaged(self, produced, tmp_path):
        spool = BundleSpool(tmp_path / "spool")
        _deliver(spool, produced,
                 DeliveryPlan(seed=0, sticky_corrupt_rate=1.0))
        result = ingest(spool)
        assert len(result.accepted) == len(produced)
        assert all(a.salvaged for a in result.accepted)
        assert result.stats.salvaged == len(produced)
        assert result.stats.reconciles

    def test_poison_quarantined_with_payloads(self, produced, tmp_path):
        spool = BundleSpool(tmp_path / "spool")
        _deliver(spool, produced, DeliveryPlan(seed=0, poison_rate=1.0))
        result = ingest(spool, retries=2)
        assert result.accepted == []
        assert result.stats.quarantined == len(produced)
        # Bounded retries happened and are accounted.
        assert result.ledger is not None
        assert result.stats.parse_retries == 2 * len(produced)
        # Payloads moved aside for the operator, grouped by bundle.
        grouped = spool.quarantined()
        assert set(grouped) == {p.bundle_id for p in produced}
        assert all(len(paths) == 2 for paths in grouped.values())
        # ... and off the live spool.
        assert spool.scan() == []


class TestBackpressure:
    def _bundle(self, bundle_id, node, epoch, period, deep):
        return AcceptedBundle(
            meta={"bundle_id": bundle_id, "node": node, "epoch": epoch,
                  "period": period, "deep": deep},
            trace=b"",
        )

    def test_sheds_sparsest_first(self):
        deep = self._bundle("aa", 0, 0, 160, True)
        mid = self._bundle("bb", 1, 0, 640, False)
        idle = self._bundle("cc", 2, 0, 50_000, False)
        kept, shed = apply_backpressure([idle, mid, deep], 2)
        assert {a.bundle_id for a in kept} == {"aa", "bb"}
        assert [s.bundle_id for s in shed] == ["cc"]
        assert shed[0].to_dict()["reason"] == "backpressure"

    def test_no_budget_no_shedding(self):
        bundles = [self._bundle("aa", 0, 0, 160, True)]
        kept, shed = apply_backpressure(bundles, None)
        assert kept == bundles and shed == []

    def test_shard_stability(self):
        assert shard_of("deadbeef00", 4) == shard_of("deadbeef00", 4)
        assert 0 <= shard_of("deadbeef00", 4) < 4


class TestRaceDatabase:
    SIGS = [{"workload": "w", "variable": "v", "context": ["a", "b"],
             "pair": [1, 2], "key": "k1", "desc": "race"}]

    def test_apply_is_idempotent_on_disk(self, tmp_path):
        path = tmp_path / "races.db"
        with RaceDatabase(path) as db:
            assert db.apply_bundle("b1", self.SIGS, node=0, epoch=0,
                                   probability=0.5)
            blob = path.read_bytes()
            assert not db.apply_bundle("b1", self.SIGS, node=0, epoch=0,
                                       probability=0.5)
            assert path.read_bytes() == blob
            assert db.entries["k1"].count == 1
            assert db.double_counted == 0

    def test_replay_idempotent(self, tmp_path):
        path = tmp_path / "races.db"
        with RaceDatabase(path) as db:
            db.apply_bundle("b1", self.SIGS, probability=0.5)
            db.apply_bundle("b2", self.SIGS, probability=0.7)
        with RaceDatabase(path) as db:
            assert db.entries["k1"].count == 2
            assert db.entries["k1"].mean_probability == pytest.approx(0.6)
            # Redelivery across process restarts is still refused.
            assert not db.apply_bundle("b1", self.SIGS, probability=0.5)

    def test_duplicate_sig_within_bundle_counts_once(self, tmp_path):
        with RaceDatabase(tmp_path / "races.db") as db:
            db.apply_bundle("b1", self.SIGS + self.SIGS)
            assert db.entries["k1"].count == 1

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "races.db"
        with RaceDatabase(path) as db:
            db.apply_bundle("b1", self.SIGS)
            db.apply_bundle("b2", self.SIGS)
        whole = path.read_bytes()
        path.write_bytes(whole[:-4])
        with RaceDatabase(path) as db:
            assert db.dropped_tail_bytes > 0
            assert db.entries["k1"].count == 1
            assert "b2" not in db.applied
            # The torn record was truncated: a redelivered b2 applies
            # cleanly and the file ends up exactly as it should be.
            db.apply_bundle("b2", self.SIGS)
        assert path.read_bytes() == whole

    def test_suppression(self, tmp_path):
        path = tmp_path / "races.db"
        with RaceDatabase(path) as db:
            assert db.suppress("k1", "filed as BUG-7")
            size = path.stat().st_size
            assert not db.suppress("k1", "again")  # idempotent: no append
            assert path.stat().st_size == size
            db.apply_bundle("b1", self.SIGS)
            assert db.suppressed_hits == 1
            assert db.ranked() == []
            assert [e.key for e in db.ranked(include_suppressed=True)] \
                == ["k1"]

    def test_ranking_recurrence_times_probability(self, tmp_path):
        rare_hot = [{**self.SIGS[0], "key": "hot"}]
        common_cold = [{**self.SIGS[0], "key": "cold"}]
        with RaceDatabase(tmp_path / "races.db") as db:
            for i in range(2):
                db.apply_bundle(f"h{i}", rare_hot, probability=0.9)
            for i in range(3):
                db.apply_bundle(f"c{i}", common_cold, probability=0.1)
            ranked = db.ranked()
            # 2 × 0.9 = 1.8 beats 3 × 0.1 = 0.3.
            assert [e.key for e in ranked] == ["hot", "cold"]


class TestFleetService:
    def test_chaos_duel_bit_identical_database(self, tmp_path):
        """THE acceptance test: crashes + duplicates + transiently
        corrupt copies + reordering change nothing about the committed
        race database — same bytes, same ranking."""
        clean_cfg = FleetConfig(**SMALL)
        clean = run_fleet(clean_cfg, tmp_path / "clean.db",
                          tmp_path / "spool-clean")
        chaos_cfg = replace(clean_cfg, node_crash_rate=0.6,
                            duplicate_rate=0.6, corrupt_rate=0.5)
        chaos = run_fleet(chaos_cfg, tmp_path / "chaos.db",
                          tmp_path / "spool-chaos")
        assert (tmp_path / "clean.db").read_bytes() == \
            (tmp_path / "chaos.db").read_bytes()
        assert clean.top_races == chaos.top_races
        assert chaos.db_double_counted == 0
        # The chaos run really was chaotic, and every copy reconciled.
        assert chaos.deliveries > clean.deliveries
        assert chaos.deduped > 0 and chaos.unreadable_copies > 0
        assert chaos.reconciles and clean.reconciles
        assert not chaos.lossy

    def test_rotate_beats_uniform_at_same_budget(self, tmp_path):
        """The PACER claim: concentrating the fleet budget into
        rotating deep epochs strictly beats spreading it uniformly."""
        duel = run_fleet_duel(FleetConfig(**SMALL), tmp_path)
        assert duel["rotate_wins"]
        assert duel["rotate_detection"] > duel["uniform_detection"]
        # Same nominal fleet budget on both sides.
        assert (duel["rotate"]["schedule"]["fleet_budget"]
                == duel["uniform"]["schedule"]["fleet_budget"])

    def test_poison_quarantine_is_lossy_but_consistent(self, tmp_path):
        config = FleetConfig(**SMALL, poison_rate=0.3)
        report = run_fleet(config, tmp_path / "races.db",
                           tmp_path / "spool")
        assert report.quarantined >= 1
        assert report.lossy and report.reconciles
        assert report.db_double_counted == 0
        assert (tmp_path / "spool" / "quarantine").is_dir()
        # Quarantine records point at real payload files.
        for record in report.quarantine_records:
            assert record["paths"]
        assert report.to_dict()["lossy"] is True

    def test_backpressure_shed_accounted(self, tmp_path):
        config = FleetConfig(**SMALL, backlog_budget=5)
        report = run_fleet(config, tmp_path / "races.db",
                           tmp_path / "spool")
        assert report.shed == 12 - 5 and report.analyzed == 5
        assert report.lossy and report.reconciles
        # Deep bundles survive: they are the highest priority.
        analyzed_deep = sum(
            1 for r in report.shed_records if r["deep"]
        )
        assert analyzed_deep == 0

    def test_checkpoint_resume_skips_analysis(self, tmp_path):
        config = FleetConfig(**SMALL)
        first = run_fleet(config, tmp_path / "a.db", tmp_path / "spool-a",
                          checkpoint_dir=tmp_path / "ckpt")
        resumed = run_fleet(config, tmp_path / "b.db",
                            tmp_path / "spool-b",
                            checkpoint_dir=tmp_path / "ckpt", resume=True)
        assert resumed.worker_ledger.resumed == first.analyzed
        assert resumed.worker_ledger.attempts == 0
        assert (tmp_path / "a.db").read_bytes() == \
            (tmp_path / "b.db").read_bytes()

    def test_redelivery_across_runs_refused_by_db(self, tmp_path):
        """At-least-once across whole triage cycles: running the same
        fleet twice against one database applies nothing the second
        time (and the file does not grow)."""
        config = FleetConfig(**SMALL)
        db = tmp_path / "races.db"
        first = run_fleet(config, db, tmp_path / "spool-1")
        size = db.stat().st_size
        second = run_fleet(config, db, tmp_path / "spool-2")
        assert first.db_applied == first.analyzed
        assert second.db_applied == 0
        assert second.db_redundant == second.analyzed
        assert db.stat().st_size == size
        assert second.db_double_counted == 0
        # Everything is recurring now, nothing new.
        assert second.db_new == [] and len(second.db_recurring) >= 1

    def test_suppression_workflow(self, tmp_path):
        config = FleetConfig(**SMALL)
        first = run_fleet(config, tmp_path / "races.db",
                          tmp_path / "spool-1")
        assert first.top_races
        key = first.top_races[0]["key"]
        second = run_fleet(config, tmp_path / "races.db",
                           tmp_path / "spool-2", suppress=(key,))
        assert second.db_suppressed == 1
        assert all(entry["key"] != key for entry in second.top_races)
