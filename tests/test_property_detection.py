"""End-to-end detection properties over random racy programs.

At period 1 the pipeline sees every retired access (the extended trace
*is* the full trace), so the injected race must be reported in every
run and on every schedule — a completeness property for the whole
decode → reconstruct → detect stack.  Sparser sampling may only shrink
the verdict set (monotonicity) and never invent races the full-trace
analysis did not see (precision).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OfflinePipeline
from repro.tracing import trace_run
from repro.workloads import GeneratorConfig, generate_racy_program

CONFIG = GeneratorConfig(threads=2, body_length=24, loop_iterations=2)


def _pairs(result):
    return {r.pair for r in result.races}


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_injected_race_always_found_at_period_one(seed):
    program, (read_ip, write_ip) = generate_racy_program(seed, CONFIG)
    bundle = trace_run(program, period=1, seed=seed)
    result = OfflinePipeline(program).analyze(bundle)
    assert tuple(sorted((read_ip, write_ip))) in _pairs(result)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_sparser_sampling_never_invents_races(seed):
    """Every race the sparse analysis reports must also be found by the
    full-trace (period 1) analysis of the *same* run — sampling loses
    information, it cannot create it."""
    program, _ = generate_racy_program(seed, CONFIG)
    # Same machine schedule for both: period only changes the PMU.
    full = OfflinePipeline(program).analyze(
        trace_run(program, period=1, seed=seed)
    )
    sparse = OfflinePipeline(program).analyze(
        trace_run(program, period=17, seed=seed)
    )
    assert sparse.racy_addresses <= full.racy_addresses


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_incremental_context_equals_from_scratch(seed):
    """The cached/incremental analysis context (decode once, selective
    per-thread re-replay across §5.1 rounds, streaming merge) must be an
    *invisible* optimization: identical races, addresses, rounds and
    replay statistics to the from-scratch per-round pipeline."""
    program, _ = generate_racy_program(seed, CONFIG)
    bundle = trace_run(program, period=5, seed=seed)
    cached = OfflinePipeline(program, round_cache=True).analyze(bundle)
    scratch = OfflinePipeline(program, round_cache=False).analyze(bundle)
    assert _pairs(cached) == _pairs(scratch)
    assert cached.racy_addresses == scratch.racy_addresses
    assert cached.regeneration_rounds == scratch.regeneration_rounds
    assert cached.replay.stats == scratch.replay.stats
    assert cached.replay.per_thread == scratch.replay.per_thread


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_injected_race_detected_even_with_no_samples(seed):
    """The injected accesses are PC-relative: the PT path alone recovers
    them, so even an absurdly sparse period finds the race (the Table 2
    pc-relative phenomenon, generalized)."""
    program, (read_ip, write_ip) = generate_racy_program(seed, CONFIG)
    bundle = trace_run(program, period=1_000_000, seed=seed)
    result = OfflinePipeline(program).analyze(bundle)
    assert tuple(sorted((read_ip, write_ip))) in _pairs(result)
