"""Property-based round-trip tests: program→text→program and
bundle→file→bundle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble
from repro.machine import Machine
from repro.tracing import read_trace, trace_run, write_trace
from repro.workloads import GeneratorConfig, generate_program

CONFIG = GeneratorConfig(threads=2, body_length=30, loop_iterations=2)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_to_asm_roundtrip_preserves_execution(seed):
    """assemble(p.to_asm()) must execute identically to p."""
    program = generate_program(seed, CONFIG)
    clone = assemble(program.to_asm(), program.name)
    assert len(clone) == len(program)
    original = Machine(program, seed=seed).run()
    replica = Machine(clone, seed=seed).run()
    assert original.instructions == replica.instructions
    assert original.tsc == replica.tsc
    assert original.memory_ops == replica.memory_ops
    assert original.sync_ops == replica.sync_ops


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_to_asm_roundtrip_preserves_data_layout(seed):
    program = generate_program(seed, CONFIG)
    clone = assemble(program.to_asm(), program.name)
    assert clone.symbols == program.symbols
    assert clone.data == program.data
    assert clone.labels == program.labels


@given(seed=st.integers(min_value=0, max_value=10_000),
       period=st.sampled_from([2, 7, 31]))
@settings(max_examples=15, deadline=None)
def test_trace_file_roundtrip(seed, period, tmp_path_factory):
    """write_trace → read_trace preserves every record."""
    program = generate_program(seed, CONFIG)
    bundle = trace_run(program, period=period, seed=seed)
    path = tmp_path_factory.mktemp("traces") / f"t{seed}.prtr"
    write_trace(bundle, path)
    loaded = read_trace(path, program=program)
    assert loaded.samples == bundle.samples
    assert loaded.sync_records == bundle.sync_records
    assert loaded.alloc_records == bundle.alloc_records
    for tid, trace in bundle.pt_traces.items():
        assert loaded.pt_traces[tid].packets == trace.packets
