"""Fleet-side confirmation: verdict tiers flow worker → database →
triage, the ranking prefers proven races, and the conservation law
holds — every ranked race carries exactly one verdict."""

import pytest

from repro.fleet import FleetConfig, run_fleet
from repro.fleet.racedb import RaceDatabase, RaceEntry


def entry(key="k", score_count=1, probability=0.5):
    e = RaceEntry(key=key, signature={}, description="")
    e.count = score_count
    e.probability_sum = probability * score_count
    return e


class TestRaceEntryVerdicts:
    def test_note_verdict_keeps_strongest_tier(self):
        e = entry()
        e.note_verdict("unconfirmed", 5)
        assert e.verdict == "unconfirmed"
        e.note_verdict("confirmed", 2)
        assert e.verdict == "confirmed"
        e.note_verdict("flaky", 4)          # weaker: ignored
        assert e.verdict == "confirmed"

    def test_note_verdict_keeps_fewest_replays(self):
        e = entry()
        e.note_verdict("confirmed", 3)
        e.note_verdict("confirmed", 1)
        e.note_verdict("confirmed", 4)
        assert e.replays == 1

    def test_unknown_or_missing_verdict_ignored(self):
        e = entry()
        e.note_verdict(None)
        e.note_verdict("bogus-tier", 1)
        assert e.verdict is None
        assert e.replays is None

    def test_verdict_rank_uniform_without_verdicts(self):
        a, b = entry("a"), entry("b")
        assert a.verdict_rank == b.verdict_rank
        a.note_verdict("inapplicable")
        assert a.verdict_rank < b.verdict_rank

    def test_to_dict_keys_additive(self):
        e = entry()
        assert "verdict" not in e.to_dict()
        e.note_verdict("flaky", 4)
        row = e.to_dict()
        assert row["verdict"] == "flaky"
        assert row["replays"] == 4


class TestDatabaseRanking:
    def test_confirmed_outranks_higher_scoring_unconfirmed(self, tmp_path):
        with RaceDatabase(tmp_path / "races.db") as db:
            db.apply_bundle("b1", races=[
                {"key": "hot", "workload": "w", "variable": "v",
                 "context": ["a", "a"], "pair": [1, 2], "desc": "",
                 "verdict": "unconfirmed", "replays": 5},
            ], node=0, epoch=0, probability=0.9)
            db.apply_bundle("b2", races=[
                {"key": "proven", "workload": "w", "variable": "v",
                 "context": ["a", "a"], "pair": [3, 4], "desc": "",
                 "verdict": "confirmed", "replays": 1},
            ], node=1, epoch=0, probability=0.1)
            ranked = db.ranked()
        assert [e.key for e in ranked] == ["proven", "hot"]

    def test_verdict_free_database_keeps_score_order(self, tmp_path):
        with RaceDatabase(tmp_path / "races.db") as db:
            db.apply_bundle("b1", races=[
                {"key": "low", "workload": "w", "variable": "v",
                 "context": ["a", "a"], "pair": [1, 2], "desc": ""},
            ], node=0, epoch=0, probability=0.1)
            db.apply_bundle("b2", races=[
                {"key": "high", "workload": "w", "variable": "v",
                 "context": ["a", "a"], "pair": [3, 4], "desc": ""},
            ], node=1, epoch=0, probability=0.9)
            ranked = db.ranked()
        assert [e.key for e in ranked] == ["high", "low"]

    def test_verdicts_survive_log_replay(self, tmp_path):
        path = tmp_path / "races.db"
        with RaceDatabase(path) as db:
            db.apply_bundle("b1", races=[
                {"key": "k", "workload": "w", "variable": "v",
                 "context": ["a", "a"], "pair": [1, 2], "desc": "",
                 "verdict": "confirmed", "replays": 2},
            ], node=0, epoch=0, probability=0.5)
        with RaceDatabase(path) as reopened:
            e = reopened.entries["k"]
            assert e.verdict == "confirmed"
            assert e.replays == 2


@pytest.fixture(scope="module")
def confirmed_fleet(tmp_path_factory):
    work = tmp_path_factory.mktemp("fleet-confirm")
    config = FleetConfig(nodes=2, epochs=2, iterations=8, threads=4,
                         seed=3, confirm=True)
    report = run_fleet(config, db_path=work / "races.db",
                       spool_dir=work / "spool")
    return report


class TestFleetRun:
    def test_every_ranked_race_carries_a_verdict(self, confirmed_fleet):
        report = confirmed_fleet
        assert report.confirm_enabled
        assert report.verdicts_conserved
        assert report.top_races
        for row in report.top_races:
            assert row["verdict"] in ("confirmed", "flaky", "unconfirmed",
                                      "inapplicable")
            assert row["replays"] >= 1

    def test_true_races_reach_confirmed(self, confirmed_fleet):
        """The Table 2 corpus workload's races all carry re-execution
        proof after the fleet's confirming analysis."""
        report = confirmed_fleet
        assert report.db_confirmed == len(report.top_races)
        assert report.db_unconfirmed == 0

    def test_confirm_block_in_report_dict(self, confirmed_fleet):
        blob = confirmed_fleet.to_dict()
        confirm = blob["confirm"]
        assert confirm["enabled"]
        assert confirm["conserved"]
        assert confirm["confirmed"] >= 1

    def test_config_key_records_confirmation(self):
        plain = FleetConfig(seed=3)
        confirming = FleetConfig(seed=3, confirm=True)
        assert "confirm" not in plain.key()
        assert "confirm=True" in confirming.key()

    def test_non_confirming_run_has_no_verdicts(self, tmp_path):
        config = FleetConfig(nodes=1, epochs=1, iterations=8, threads=4,
                             seed=3)
        report = run_fleet(config, db_path=tmp_path / "races.db",
                           spool_dir=tmp_path / "spool")
        assert not report.confirm_enabled
        for row in report.top_races:
            assert "verdict" not in row
