"""Unit tests for the register file."""

import pytest

from repro.isa.registers import (
    ALL_REGISTERS,
    GP_REGISTERS,
    MASK64,
    RegisterFile,
    check_register,
    is_register,
    to_signed,
    to_unsigned,
)


class TestRegisterNames:
    def test_sixteen_gp_registers(self):
        assert len(GP_REGISTERS) == 16

    def test_all_registers_includes_rip(self):
        assert "rip" in ALL_REGISTERS
        assert len(ALL_REGISTERS) == 17

    def test_is_register(self):
        assert is_register("rax")
        assert is_register("r15")
        assert not is_register("eax")
        assert not is_register("")

    def test_check_register_returns_name(self):
        assert check_register("rbx") == "rbx"

    def test_check_register_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown register"):
            check_register("xmm0")


class TestRegisterFile:
    def test_initial_zero(self):
        regs = RegisterFile()
        assert all(regs[name] == 0 for name in ALL_REGISTERS)

    def test_set_get(self):
        regs = RegisterFile()
        regs["rax"] = 42
        assert regs["rax"] == 42

    def test_values_masked_to_64_bits(self):
        regs = RegisterFile()
        regs["rax"] = 1 << 70
        assert regs["rax"] == 0
        regs["rbx"] = -1
        assert regs["rbx"] == MASK64

    def test_unknown_register_read_raises(self):
        regs = RegisterFile()
        with pytest.raises(ValueError):
            regs["nope"]

    def test_unknown_register_write_raises(self):
        regs = RegisterFile()
        with pytest.raises(ValueError):
            regs["nope"] = 1

    def test_snapshot_is_a_copy(self):
        regs = RegisterFile()
        regs["rcx"] = 9
        snap = regs.snapshot()
        regs["rcx"] = 10
        assert snap["rcx"] == 9

    def test_restore(self):
        regs = RegisterFile()
        regs.restore({"rdx": 5, "rip": 100})
        assert regs["rdx"] == 5
        assert regs["rip"] == 100

    def test_copy_is_independent(self):
        regs = RegisterFile({"rax": 1})
        clone = regs.copy()
        clone["rax"] = 2
        assert regs["rax"] == 1

    def test_constructor_values(self):
        regs = RegisterFile({"rsi": 77})
        assert regs["rsi"] == 77

    def test_equality(self):
        assert RegisterFile({"rax": 3}) == RegisterFile({"rax": 3})
        assert RegisterFile({"rax": 3}) != RegisterFile({"rax": 4})


class TestSignedness:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed(MASK64) == -1
        assert to_signed(1 << 63) == -(1 << 63)

    def test_to_unsigned_roundtrip(self):
        for value in (0, 1, -1, -12345, 2**63 - 1, -(2**63)):
            assert to_signed(to_unsigned(value)) == value
