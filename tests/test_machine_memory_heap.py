"""Unit tests for Memory and the recycling Heap."""

import pytest

from repro.isa.program import HEAP_BASE
from repro.machine.heap import Heap, HeapError
from repro.machine.memory import Memory


class TestMemory:
    def test_unwritten_reads_zero(self):
        assert Memory().load(0x1234) == 0

    def test_store_load(self):
        mem = Memory()
        mem.store(0x10, 99)
        assert mem.load(0x10) == 99

    def test_values_masked(self):
        mem = Memory()
        mem.store(0x10, -1)
        assert mem.load(0x10) == (1 << 64) - 1

    def test_initial_contents(self):
        mem = Memory({0x20: 5})
        assert mem.load(0x20) == 5

    def test_contains(self):
        mem = Memory()
        assert 0x30 not in mem
        mem.store(0x30, 0)
        assert 0x30 in mem

    def test_copy_independent(self):
        mem = Memory({1: 1})
        clone = mem.copy()
        clone.store(1, 2)
        assert mem.load(1) == 1


class TestHeap:
    def test_malloc_returns_heap_addresses(self):
        heap = Heap()
        addr = heap.malloc(16, tsc=0)
        assert addr >= HEAP_BASE

    def test_size_rounded_to_words(self):
        heap = Heap()
        a = heap.malloc(1, tsc=0)
        b = heap.malloc(1, tsc=0)
        assert b - a == 8

    def test_free_then_malloc_recycles_address(self):
        """§4.3's aliasing hazard: same address, different object."""
        heap = Heap()
        a = heap.malloc(32, tsc=0)
        heap.free(a, tsc=1)
        b = heap.malloc(32, tsc=2)
        assert a == b

    def test_different_size_not_recycled(self):
        heap = Heap()
        a = heap.malloc(32, tsc=0)
        heap.free(a, tsc=1)
        b = heap.malloc(64, tsc=2)
        assert a != b

    def test_double_free_rejected(self):
        heap = Heap()
        a = heap.malloc(8, tsc=0)
        heap.free(a, tsc=1)
        with pytest.raises(HeapError):
            heap.free(a, tsc=2)

    def test_free_of_unallocated_rejected(self):
        with pytest.raises(HeapError):
            Heap().free(0x999, tsc=0)

    def test_non_positive_malloc_rejected(self):
        with pytest.raises(HeapError):
            Heap().malloc(0, tsc=0)

    def test_history_records_generations(self):
        heap = Heap()
        a = heap.malloc(8, tsc=10)
        heap.free(a, tsc=20)
        heap.malloc(8, tsc=30)
        history = heap.history()
        assert len(history) == 2
        assert history[0].free_tsc == 20
        assert history[1].alloc_tsc == 30
        assert history[1].live

    def test_live_allocations(self):
        heap = Heap()
        a = heap.malloc(8, tsc=0)
        b = heap.malloc(8, tsc=0)
        heap.free(a, tsc=1)
        live = heap.live_allocations()
        assert [x.address for x in live] == [b]
