"""Allocation-generation disambiguation tests (§4.3)."""

from repro.analysis.generations import AllocationIndex
from repro.isa.program import DATA_BASE, HEAP_BASE
from repro.pmu.records import AllocRecord


def malloc(address, tsc, size=32, tid=0):
    return AllocRecord(tsc=tsc, tid=tid, ip=0, kind="malloc",
                       address=address, size=size)


def free(address, tsc, size=32, tid=0):
    return AllocRecord(tsc=tsc, tid=tid, ip=0, kind="free",
                       address=address, size=size)


ADDR = HEAP_BASE + 0x100


class TestGenerations:
    def test_non_heap_is_generation_zero(self):
        index = AllocationIndex([])
        assert index.generation(DATA_BASE + 8, tsc=100) == 0

    def test_single_allocation(self):
        index = AllocationIndex([malloc(ADDR, 10)])
        assert index.generation(ADDR, 50) == 0

    def test_recycled_address_distinct_generation(self):
        index = AllocationIndex(
            [malloc(ADDR, 10), free(ADDR, 20), malloc(ADDR, 30)]
        )
        assert index.generation(ADDR, 15) == 0
        assert index.generation(ADDR, 40) == 1

    def test_interpolated_tsc_between_generations(self):
        index = AllocationIndex(
            [malloc(ADDR, 10), free(ADDR, 20), malloc(ADDR, 30)]
        )
        assert index.generation(ADDR, 29.5) == 0
        assert index.generation(ADDR, 30.5) == 1

    def test_interior_pointer_resolves_to_block(self):
        index = AllocationIndex(
            [malloc(ADDR, 10, size=64), free(ADDR, 20, size=64),
             malloc(ADDR, 30, size=64)]
        )
        assert index.generation(ADDR + 24, 15) == 0
        assert index.generation(ADDR + 24, 35) == 1

    def test_pointer_past_block_is_its_own_variable(self):
        index = AllocationIndex([malloc(ADDR, 10, size=16)])
        # Address beyond the block: no generations known.
        assert index.generation(ADDR + 64, 50) == 0

    def test_unordered_records_sorted(self):
        index = AllocationIndex(
            [malloc(ADDR, 30), malloc(ADDR, 10), free(ADDR, 20)]
        )
        assert index.generation(ADDR, 15) == 0
        assert index.generation(ADDR, 35) == 1
