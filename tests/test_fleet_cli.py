"""CLI surface of the fleet triage service (plus subcommand hygiene)."""

import json

from repro.cli import main
from repro.errors import (
    EXIT_FLEET_LOSSY,
    EXIT_OK,
    EXIT_RACES,
    EXIT_TRACE_ERROR,
    EXIT_USAGE,
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out + captured.err


FAST = ("--nodes", "4", "--epochs", "3", "--iterations", "8",
        "--seed", "0")


class TestFleetCommand:
    def test_clean_run_finds_races(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "fleet", *FAST, "--workdir", str(tmp_path),
        )
        assert code == EXIT_RACES
        assert "fleet triage" in out
        assert "books reconcile" in out
        assert "apache-25520" in out

    def test_chaos_run_stays_clean_exit(self, capsys, tmp_path):
        """Transport chaos alone is recovered, not lossy: same exit as
        the clean run."""
        code, out = run_cli(
            capsys, "fleet", *FAST, "--workdir", str(tmp_path),
            "--node-crash-rate", "0.6", "--duplicate-rate", "0.6",
            "--corrupt-rate", "0.5",
        )
        assert code == EXIT_RACES
        assert "deduped" in out

    def test_poison_run_exits_lossy(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "fleet", *FAST, "--workdir", str(tmp_path),
            "--poison-rate", "0.3",
        )
        assert code == EXIT_FLEET_LOSSY
        assert "quarantined" in out
        assert "LOSSY" in out

    def test_json_report_structure(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "fleet", *FAST, "--workdir", str(tmp_path),
            "--poison-rate", "0.3", "--json",
        )
        assert code == EXIT_FLEET_LOSSY
        report = json.loads(out)
        assert report["bundles"]["reconciles"] is True
        assert report["bundles"]["quarantined"] >= 1
        assert report["db"]["double_counted"] == 0
        assert report["lossy"] is True
        assert report["scheduler"]["node_epochs"] == 12

    def test_duel_reports_verdict(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "fleet", *FAST, "--workdir", str(tmp_path), "--duel",
        )
        assert code == EXIT_RACES
        assert "duel: rotate beats uniform" in out

    def test_suppression_silences_exit(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "fleet", *FAST, "--workdir", str(tmp_path), "--json",
        )
        report = json.loads(out)
        keys = [race["key"] for race in report["db"]["top"]]
        assert code == EXIT_RACES and keys
        argv = ["fleet", *FAST, "--workdir", str(tmp_path), "--json"]
        for key in keys:
            argv += ["--suppress", key]
        code, out = run_cli(capsys, *argv)
        report = json.loads(out)
        assert code == EXIT_OK
        assert report["db"]["suppressed"] == len(keys)
        assert report["db"]["top"] == []

    def test_bad_workload_is_usage_error(self, capsys, tmp_path):
        code, out = run_cli(capsys, "fleet", "--workloads", "not-a-bug",
                            "--workdir", str(tmp_path))
        assert code == EXIT_USAGE
        assert "unknown fleet workload" in out


class TestUnknownSubcommand:
    def test_did_you_mean(self, capsys):
        code, out = run_cli(capsys, "fleeet")
        assert code == EXIT_TRACE_ERROR
        assert "did you mean 'fleet'" in out

    def test_no_suggestion_for_gibberish(self, capsys):
        code, out = run_cli(capsys, "zzzzqqq")
        assert code == EXIT_TRACE_ERROR
        assert "unknown command" in out
        assert "did you mean" not in out

    def test_flags_still_reach_argparse(self, capsys):
        import pytest
        with pytest.raises(SystemExit):
            main(["--definitely-not-a-flag"])


class TestSharedFaultFlags:
    def test_chaos_and_fleet_share_parent(self, capsys, tmp_path):
        """Both subcommands accept the same seeded worker-fault flags
        (one argparse parent, not copy-pasted options)."""
        code, _ = run_cli(
            capsys, "chaos", "aget-bug2", "--runs", "2", "--jobs", "2",
            "--iterations", "8", "--kill-workers", "0.4", "--retries", "2",
        )
        assert code == EXIT_OK
        code, out = run_cli(
            capsys, "fleet", *FAST, "--workdir", str(tmp_path),
            "--kill-workers", "0.3", "--retries", "3", "--jobs", "2",
        )
        # Worker kills are retried; the triage still completes.
        assert code in (EXIT_RACES, EXIT_FLEET_LOSSY)
        assert "fleet triage" in out
