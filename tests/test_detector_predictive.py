"""Predictive backend: candidate pairs from the HB pre-pass must be
confirmed by an explicit reordering witness — a feasible schedule under
lock mutual exclusion and fork/join order that brings the pair
back-to-back."""

from repro.detector import (
    Access,
    AccessKind,
    PredictiveDetector,
    SyncOp,
    WitnessSchedule,
)

VAR = (0x1000, 0)
LOCK = 0x900


def access(tid, kind, ip, tsc, var=VAR):
    return Access(tid=tid, var=var, kind=kind, ip=ip, tsc=float(tsc),
                  provenance="test")


def sync(tid, kind, tsc, target=LOCK):
    return SyncOp(tid=tid, kind=kind, target=target, tsc=float(tsc))


def run(events, **kwargs):
    detector = PredictiveDetector(**kwargs)
    for event in events:
        if isinstance(event, SyncOp):
            detector.sync(event)
        else:
            detector.access(event)
    return detector.finish()


class TestWitnessSearch:
    def test_plain_race_gets_witness(self):
        findings = run([
            access(0, AccessKind.WRITE, ip=10, tsc=0),
            access(1, AccessKind.READ, ip=11, tsc=1),
        ])
        assert len(findings.races) == 1
        witness = findings.races[0].witness
        assert isinstance(witness, WitnessSchedule)
        assert witness.total_steps >= 2
        # The witness ends with the racy pair back-to-back.
        last_two = witness.steps[-2:]
        assert {step.op for step in last_two} <= {"read", "write"}
        assert {step.detail for step in last_two} == {10, 11}

    def test_locked_accesses_produce_nothing(self):
        events = []
        tsc = 0
        for tid in (0, 1):
            events += [
                sync(tid, "lock", tsc),
                access(tid, AccessKind.WRITE, ip=10 + tid, tsc=tsc + 1),
                sync(tid, "unlock", tsc + 2),
            ]
            tsc += 3
        findings = run(events)
        assert not findings.races
        assert findings.details["candidates"] == 0

    def test_fork_join_ordered_produces_nothing(self):
        findings = run([
            access(0, AccessKind.WRITE, ip=10, tsc=0),
            sync(0, "fork", tsc=1, target=1),
            access(1, AccessKind.WRITE, ip=11, tsc=2),
        ])
        assert not findings.races

    def test_witness_respects_lock_mutual_exclusion(self):
        """A candidate whose threads both hold the same lock around the
        pair can still be witnessed — but only via a schedule where the
        lock is released between the critical sections."""
        events = [
            sync(0, "lock", 0),
            access(0, AccessKind.WRITE, ip=10, tsc=1),
            sync(0, "unlock", 2),
            access(0, AccessKind.WRITE, ip=12, tsc=3),
            access(1, AccessKind.WRITE, ip=13, tsc=4),
        ]
        findings = run(events)
        assert findings.races
        for report in findings.races:
            witness = report.witness
            held = {}
            for step in witness.steps:
                if step.op == "lock":
                    # Mutual exclusion: nobody else may hold it.
                    assert held.get(step.detail) in (None, step.tid)
                    held[step.detail] = step.tid
                elif step.op == "unlock":
                    held.pop(step.detail, None)

    def test_node_budget_degrades_to_unverified(self):
        # Extra program-order predecessors force the search to actually
        # schedule moves; a zero node budget then cannot reach the goal.
        findings = run(
            [
                access(0, AccessKind.READ, ip=8, tsc=0, var=(0x2000, 0)),
                access(1, AccessKind.READ, ip=9, tsc=1, var=(0x2008, 0)),
                access(0, AccessKind.WRITE, ip=10, tsc=2),
                access(1, AccessKind.WRITE, ip=11, tsc=3),
            ],
            max_nodes=0,
        )
        # Candidate found by the pre-pass but not witnessed: dropped
        # from races, accounted in details.
        assert not findings.races
        assert findings.details["candidates"] == 1
        assert findings.details["unverified"] == 1

    def test_details_account_candidates(self):
        findings = run([
            access(0, AccessKind.WRITE, ip=10, tsc=0),
            access(1, AccessKind.WRITE, ip=11, tsc=1),
        ])
        details = findings.details
        assert details["candidates"] == 1
        assert details["witnessed"] == 1
        assert details["unverified"] == 0
        assert details["search_nodes"] >= 1

    def test_deterministic(self):
        events = [
            access(0, AccessKind.WRITE, ip=10, tsc=0),
            access(1, AccessKind.READ, ip=11, tsc=1),
            access(1, AccessKind.WRITE, ip=12, tsc=2),
        ]
        first = run(list(events))
        second = run(list(events))
        assert [r.pair for r in first.races] == [r.pair
                                                 for r in second.races]
        assert [r.witness.describe() for r in first.races] == [
            r.witness.describe() for r in second.races
        ]

    def test_witness_describe_readable(self):
        findings = run([
            access(0, AccessKind.WRITE, ip=10, tsc=0),
            access(1, AccessKind.READ, ip=11, tsc=1),
        ])
        text = findings.races[0].witness.describe()
        assert "steps:" in text
        assert "T0:w@ip=10" in text
        assert "T1:r@ip=11" in text
