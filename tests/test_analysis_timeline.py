"""Timeline tests: monotone, exact-at-anchors TSC assignment."""

from repro.analysis.timeline import ThreadTimeline, build_timeline
from repro.isa import assemble
from repro.ptdecode import align_samples, decode_all, locate_syncs
from repro.tracing import trace_run

from tests.helpers import RACY_ASM


class TestThreadTimeline:
    def _timeline(self):
        return ThreadTimeline(
            tid=0, points=[(0, 10), (5, 30), (10, 100)], total_steps=12
        )

    def test_exact_at_points(self):
        tl = self._timeline()
        assert tl.tsc_of(0) == 10
        assert tl.tsc_of(5) == 30
        assert tl.tsc_of(10) == 100

    def test_interpolation_strictly_inside(self):
        tl = self._timeline()
        for step in range(1, 5):
            assert 10 < tl.tsc_of(step) < 30

    def test_monotone(self):
        tl = self._timeline()
        values = [tl.tsc_of(s) for s in range(12)]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_extrapolation_beyond_last(self):
        tl = self._timeline()
        assert tl.tsc_of(11) == 101.0

    def test_extrapolation_before_first(self):
        tl = ThreadTimeline(tid=0, points=[(3, 10)], total_steps=5)
        assert tl.tsc_of(1) == 8.0


class TestBuildTimeline:
    def _built(self, seed=4):
        program = assemble(RACY_ASM)
        bundle = trace_run(program, period=4, seed=seed)
        paths = decode_all(program, bundle.pt_traces)
        timelines = {}
        for tid, path in paths.items():
            aligned = align_samples(path, bundle.samples_of_thread(tid))
            syncs = locate_syncs(
                path, [r for r in bundle.sync_records if r.tid == tid]
            )
            timelines[tid] = (path, aligned, syncs,
                              build_timeline(path, aligned, syncs))
        return program, bundle, timelines

    def test_sample_steps_get_exact_tsc(self):
        _, _, timelines = self._built()
        for path, aligned, _, timeline in timelines.values():
            for item in aligned:
                assert timeline.tsc_of(item.step_index) == item.sample.tsc

    def test_sync_steps_get_exact_tsc(self):
        _, _, timelines = self._built()
        for path, _, syncs, timeline in timelines.values():
            for record, step in syncs:
                assert timeline.tsc_of(step) == record.tsc

    def test_every_step_monotone(self):
        _, _, timelines = self._built()
        for path, _, _, timeline in timelines.values():
            previous = float("-inf")
            for step in range(len(path.steps)):
                value = timeline.tsc_of(step)
                assert value > previous
                previous = value

    def test_interpolated_within_true_execution_window(self):
        """Interpolated TSCs stay within the anchor windows that really
        bounded the step's execution — never crossing a sync boundary."""
        _, _, timelines = self._built()
        for path, _, syncs, timeline in timelines.values():
            sync_steps = {step: record.tsc for record, step in syncs}
            for step, true_tsc in sync_steps.items():
                if step > 0:
                    assert timeline.tsc_of(step - 1) < true_tsc
                if step + 1 < len(path.steps):
                    assert timeline.tsc_of(step + 1) > true_tsc
