"""Race confirmation end-to-end: every report gets a replay-backed
verdict, true races confirm, synchronized pairs never do, and the
whole pass is deterministic (satellite: same seed + same schedules →
bit-identical verdicts across runs and across ``--jobs``)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OfflinePipeline
from repro.confirm import (
    ConfirmConfig,
    ConfirmationReport,
    RaceVerdict,
    VERDICT_TIERS,
    confirm_races,
)
from repro.detector.events import Access, AccessKind, RaceReport
from repro.errors import EXIT_OK, EXIT_UNCONFIRMED
from repro.isa import assemble
from repro.tracing import trace_run
from repro.workloads import (
    GeneratorConfig,
    RACE_BUGS,
    WorkloadScale,
    generate_racy_program,
    generate_server_program,
)

from tests.helpers import CLEAN_COUNTER_ASM

GEN_CONFIG = GeneratorConfig(threads=2, body_length=24, loop_iterations=2)


def detect(program, period=2, seed=0):
    bundle = trace_run(program, period=period, seed=seed)
    pipeline = OfflinePipeline(program)
    result = pipeline.analyze(bundle)
    events, _replay = pipeline.events_for(bundle)
    return result, events


def confirm(program, period=2, seed=0, **cfg):
    result, events = detect(program, period=period, seed=seed)
    config = ConfirmConfig(seed=seed, machine_seed=seed, **cfg)
    report = confirm_races(program, result.races, events, config=config)
    return result, report


class TestConfirmsTrueRaces:
    def test_generated_racy_program_confirms(self):
        program, (read_ip, write_ip) = generate_racy_program(7, GEN_CONFIG)
        result, report = confirm(program, seed=7)
        assert result.races
        assert report.conserves
        pair = tuple(sorted((read_ip, write_ip)))
        verdict = report.verdict_for(
            next(r.address for r in result.races if r.pair == pair), pair
        )
        assert verdict is not None
        assert verdict.verdict == "confirmed"
        assert report.exit_code() == EXIT_OK

    def test_table2_bug_confirms(self):
        bug = RACE_BUGS["apache-25520"]
        program = bug.build(WorkloadScale(iterations=8, threads=4))
        result, report = confirm(program, period=2, seed=3)
        assert result.races
        assert report.conserves
        assert report.confirmed == report.races_reported
        assert all(v.fired_on is not None and v.fired_on <= 3
                   for v in report.verdicts)

    def test_server_workload_confirms_injected_race(self):
        program, (read_ip, write_ip) = generate_server_program(1)
        result, report = confirm(program, period=7, seed=1)
        pair = tuple(sorted((read_ip, write_ip)))
        assert pair in {r.pair for r in result.races}
        verdict = next(v for v in report.verdicts if v.pair == pair)
        assert verdict.verdict == "confirmed"
        assert report.exit_code() == EXIT_OK


class TestNeverConfirmsSynchronized:
    def test_fabricated_locked_pair_is_not_confirmed(self):
        """Zero false confirms: a hand-forged report naming the two
        mutex-guarded increment instructions must never reach
        ``confirmed`` — the planner finds no feasible schedule and the
        pair targeter cannot break the lock."""
        program = assemble(CLEAN_COUNTER_ASM)
        bundle = trace_run(program, period=1, seed=0)
        pipeline = OfflinePipeline(program)
        assert not pipeline.analyze(bundle).races
        events, _replay = pipeline.events_for(bundle)
        label = program.labels["bump"]
        total = program.symbols["total"]
        fake = RaceReport(
            var=(total, 0),
            first_tid=0,
            first_kind=AccessKind.READ,
            first_ip=label + 1,
            second=Access(tid=1, var=(total, 0), kind=AccessKind.WRITE,
                          ip=label + 3, tsc=0.0, provenance="forged"),
        )
        report = confirm_races(program, [fake], events,
                               config=ConfirmConfig(seed=0, machine_seed=0))
        assert report.conserves
        verdict = report.verdicts[0]
        assert verdict.verdict in ("unconfirmed", "inapplicable")
        assert report.exit_code() == EXIT_UNCONFIRMED


class TestPolicy:
    def test_suppressed_schedules_all_inapplicable_exit_8(self):
        program, _ = generate_racy_program(7, GEN_CONFIG)
        result, report = confirm(program, seed=7, suppress_schedules=True)
        assert result.races
        assert report.conserves
        assert report.inapplicable == report.races_reported
        assert report.replays_total == 0
        assert report.exit_code() == EXIT_UNCONFIRMED

    def test_no_races_exit_ok(self):
        program = assemble(CLEAN_COUNTER_ASM)
        _, report = confirm(program, period=1, seed=0)
        assert report.races_reported == 0
        assert report.exit_code() == EXIT_OK

    def test_verdict_tiers_and_labels(self):
        assert VERDICT_TIERS == ("confirmed", "flaky", "unconfirmed",
                                 "inapplicable")
        flaky = RaceVerdict(address=0x10, pair=(1, 2), verdict="flaky",
                            attempts=5, successes=2, fired_on=4)
        assert flaky.label == "flaky(2-of-5)"
        assert flaky.fired

    def test_report_dict_round_trip_fields(self):
        program, _ = generate_racy_program(7, GEN_CONFIG)
        _, report = confirm(program, seed=7)
        blob = report.to_dict()
        assert blob["conserves"]
        assert blob["races_reported"] == len(blob["verdicts"])
        counts = blob["counts"]
        assert sum(counts.values()) == blob["races_reported"]


class TestDeterminism:
    """Satellite: confirmation is a pure function of (seed, schedules).

    Same seed → bit-identical verdicts and matched-event digests,
    across repeated runs and across ``--jobs`` values / executors.
    """

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=6, deadline=None)
    def test_repeat_runs_bit_identical(self, seed):
        program, _ = generate_racy_program(seed, GEN_CONFIG)
        _, first = confirm(program, seed=seed)
        _, second = confirm(program, seed=seed)
        assert first.to_dict() == second.to_dict()

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=4, deadline=None)
    def test_jobs_invariance(self, seed):
        """Fan-out width must not leak into verdicts: serial and
        2-way threaded confirmation produce identical reports."""
        program, _ = generate_racy_program(seed, GEN_CONFIG)
        result, events = detect(program, seed=seed)
        config = ConfirmConfig(seed=seed, machine_seed=seed)
        serial = confirm_races(program, result.races, events,
                               config=config, jobs=1, executor="serial")
        threaded = confirm_races(program, result.races, events,
                                 config=config, jobs=2, executor="thread")
        assert serial.to_dict() == threaded.to_dict()

    def test_digest_stability_pins_event_stream(self):
        """The digest is over the matched-event stream, so two runs
        that fired the same way carry the same digest string."""
        program, _ = generate_racy_program(11, GEN_CONFIG)
        _, first = confirm(program, seed=11)
        _, second = confirm(program, seed=11)
        for a, b in zip(first.verdicts, second.verdicts):
            assert a.digest == b.digest
