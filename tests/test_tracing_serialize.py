"""Trace-file serialization tests: round-trip, corruption, analysis
equivalence."""

import struct

import pytest

from repro.analysis import OfflinePipeline
from repro.isa import assemble
from repro.tracing import TraceFormatError, read_trace, trace_run, write_trace

from tests.helpers import CLEAN_COUNTER_ASM, RACY_ASM


@pytest.fixture
def traced(racy_program):
    return racy_program, trace_run(racy_program, period=4, seed=9)


class TestRoundTrip:
    def test_samples_preserved(self, traced, tmp_path):
        program, bundle = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        assert loaded.samples == bundle.samples

    def test_pt_streams_preserved(self, traced, tmp_path):
        program, bundle = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        assert set(loaded.pt_traces) == set(bundle.pt_traces)
        for tid, trace in bundle.pt_traces.items():
            other = loaded.pt_traces[tid]
            assert other.packets == trace.packets
            assert other.start_ip == trace.start_ip
            assert other.start_tsc == trace.start_tsc
            assert other.end_tsc == trace.end_tsc

    def test_sync_and_alloc_preserved(self, tmp_path):
        source = """
.global g 0
main:
    malloc $16, %rax
    mov $1, %rdx
    mov %rdx, (%rax)
    free %rax
    spawn w, %rbx
    join %rbx
    halt
w:
    mov g(%rip), %rax
    halt
"""
        program = assemble(source)
        bundle = trace_run(program, period=2, seed=1)
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        assert loaded.sync_records == bundle.sync_records
        assert loaded.alloc_records == bundle.alloc_records

    def test_run_metadata_preserved(self, traced, tmp_path):
        program, bundle = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        assert loaded.run.tsc == bundle.run.tsc
        assert loaded.run.instructions == bundle.run.instructions
        assert loaded.run.threads == bundle.run.threads

    def test_analysis_equivalent(self, traced, tmp_path):
        """Analyzing a deserialized trace gives identical verdicts."""
        program, bundle = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        direct = OfflinePipeline(program).analyze(bundle)
        from_file = OfflinePipeline(program).analyze(loaded)
        assert direct.racy_addresses == from_file.racy_addresses
        assert len(direct.races) == len(from_file.races)

    def test_ground_truth_never_serialized(self, racy_program, tmp_path):
        bundle = trace_run(racy_program, period=4, seed=9,
                           record_ground_truth=True)
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=racy_program)
        assert loaded.ground_truth is None


class TestCorruption:
    def _write(self, program, tmp_path):
        bundle = trace_run(program, period=5, seed=1)
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        return path

    def test_bitflip_detected(self, clean_program, tmp_path):
        path = self._write(clean_program, tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="checksum"):
            read_trace(path)

    def test_truncation_detected(self, clean_program, tmp_path):
        path = self._write(clean_program, tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 10])
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.prtr"
        blob = b"NOPE" + b"\x00" * 64
        blob += struct.pack("<I", __import__("zlib").crc32(blob))
        path.write_bytes(blob)
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace(path)

    def test_bad_version(self, clean_program, tmp_path):
        import zlib

        path = self._write(clean_program, tmp_path)
        blob = bytearray(path.read_bytes())[:-4]
        blob[4] = 99  # version field
        blob += struct.pack("<I", zlib.crc32(bytes(blob)))
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="version"):
            read_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.prtr"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            read_trace(path)


class TestDriverTag:
    def test_driver_identity_roundtrips(self, clean_program, tmp_path):
        from repro.pmu import VANILLA_DRIVER

        bundle = trace_run(clean_program, period=5, seed=1,
                           driver=VANILLA_DRIVER)
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path)
        assert loaded.pebs_accounting.driver.name == "vanilla"
