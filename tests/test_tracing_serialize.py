"""Trace-file serialization tests: round-trip, corruption, analysis
equivalence."""

import struct

import pytest

from repro.analysis import OfflinePipeline
from repro.isa import assemble
from repro.tracing import TraceFormatError, read_trace, trace_run, write_trace

from tests.helpers import CLEAN_COUNTER_ASM, RACY_ASM


@pytest.fixture
def traced(racy_program):
    return racy_program, trace_run(racy_program, period=4, seed=9)


class TestRoundTrip:
    def test_samples_preserved(self, traced, tmp_path):
        program, bundle = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        assert loaded.samples == bundle.samples

    def test_pt_streams_preserved(self, traced, tmp_path):
        program, bundle = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        assert set(loaded.pt_traces) == set(bundle.pt_traces)
        for tid, trace in bundle.pt_traces.items():
            other = loaded.pt_traces[tid]
            assert other.packets == trace.packets
            assert other.start_ip == trace.start_ip
            assert other.start_tsc == trace.start_tsc
            assert other.end_tsc == trace.end_tsc

    def test_sync_and_alloc_preserved(self, tmp_path):
        source = """
.global g 0
main:
    malloc $16, %rax
    mov $1, %rdx
    mov %rdx, (%rax)
    free %rax
    spawn w, %rbx
    join %rbx
    halt
w:
    mov g(%rip), %rax
    halt
"""
        program = assemble(source)
        bundle = trace_run(program, period=2, seed=1)
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        assert loaded.sync_records == bundle.sync_records
        assert loaded.alloc_records == bundle.alloc_records

    def test_run_metadata_preserved(self, traced, tmp_path):
        program, bundle = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        assert loaded.run.tsc == bundle.run.tsc
        assert loaded.run.instructions == bundle.run.instructions
        assert loaded.run.threads == bundle.run.threads

    def test_analysis_equivalent(self, traced, tmp_path):
        """Analyzing a deserialized trace gives identical verdicts."""
        program, bundle = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        direct = OfflinePipeline(program).analyze(bundle)
        from_file = OfflinePipeline(program).analyze(loaded)
        assert direct.racy_addresses == from_file.racy_addresses
        assert len(direct.races) == len(from_file.races)

    def test_ground_truth_never_serialized(self, racy_program, tmp_path):
        bundle = trace_run(racy_program, period=4, seed=9,
                           record_ground_truth=True)
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=racy_program)
        assert loaded.ground_truth is None


class TestVersions:
    """Both container versions round-trip; v2 adds per-section CRCs."""

    @pytest.mark.parametrize("version", [1, 2])
    def test_round_trip(self, traced, tmp_path, version):
        program, bundle = traced
        path = tmp_path / f"v{version}.prtr"
        write_trace(bundle, path, version=version)
        loaded = read_trace(path, program=program)
        assert loaded.samples == bundle.samples
        assert loaded.sync_records == bundle.sync_records
        assert loaded.alloc_records == bundle.alloc_records
        for tid, trace in bundle.pt_traces.items():
            assert loaded.pt_traces[tid].packets == trace.packets
        assert loaded.run.tsc == bundle.run.tsc
        assert loaded.defects is None

    def test_default_is_v2(self, traced, tmp_path):
        import struct as struct_mod

        program, bundle = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        _, version, _, _ = struct_mod.unpack_from(
            "<4sHHI", path.read_bytes(), 0)
        assert version == 2

    def test_v2_is_larger_by_section_crcs(self, traced, tmp_path):
        program, bundle = traced
        v1 = tmp_path / "v1.prtr"
        v2 = tmp_path / "v2.prtr"
        size1 = write_trace(bundle, v1, version=1)
        size2 = write_trace(bundle, v2, version=2)
        assert size2 > size1

    def test_unsupported_write_version(self, traced, tmp_path):
        _, bundle = traced
        with pytest.raises(ValueError, match="version"):
            write_trace(bundle, tmp_path / "t.prtr", version=5)

    def test_v1_has_no_salvage(self, clean_program, tmp_path):
        """allow_partial needs per-section CRCs; a corrupt v1 file is
        rejected either way."""
        from repro.faults import corrupt_trace_file

        bundle = trace_run(clean_program, period=5, seed=1)
        path = tmp_path / "t.prtr"
        write_trace(bundle, path, version=1)
        corrupt_trace_file(path, seed=1, section_index=1)
        with pytest.raises(TraceFormatError, match="checksum"):
            read_trace(path, allow_partial=True)

    def test_v2_salvage_round_trips_damage_free_sections(
            self, traced, tmp_path):
        from repro.faults import corrupt_trace_file

        program, bundle = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        corrupt_trace_file(path, seed=1, section_index=0)  # meta
        loaded = read_trace(path, program=program, allow_partial=True)
        assert loaded.defects.corrupted_sections == ("meta#0",)
        assert loaded.samples == bundle.samples
        assert loaded.sync_records == bundle.sync_records
        assert loaded.run.tsc == 0  # zeroed stand-in header


class TestCorruption:
    def _write(self, program, tmp_path):
        bundle = trace_run(program, period=5, seed=1)
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        return path

    def test_bitflip_detected(self, clean_program, tmp_path):
        path = self._write(clean_program, tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="checksum"):
            read_trace(path)

    def test_truncation_detected(self, clean_program, tmp_path):
        path = self._write(clean_program, tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 10])
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.prtr"
        blob = b"NOPE" + b"\x00" * 64
        blob += struct.pack("<I", __import__("zlib").crc32(blob))
        path.write_bytes(blob)
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace(path)

    def test_bad_version(self, clean_program, tmp_path):
        import zlib

        path = self._write(clean_program, tmp_path)
        blob = bytearray(path.read_bytes())[:-4]
        blob[4] = 99  # version field
        blob += struct.pack("<I", zlib.crc32(bytes(blob)))
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="version"):
            read_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.prtr"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            read_trace(path)


class TestDriverTag:
    def test_driver_identity_roundtrips(self, clean_program, tmp_path):
        from repro.pmu import VANILLA_DRIVER

        bundle = trace_run(clean_program, period=5, seed=1,
                           driver=VANILLA_DRIVER)
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path)
        assert loaded.pebs_accounting.driver.name == "vanilla"


@pytest.fixture
def governed(racy_program):
    from repro.faults import LoadBurstPlan
    from repro.pmu.governor import GovernorConfig

    bundle = trace_run(racy_program, period=2, seed=9,
                       governor=GovernorConfig(overhead_budget=0.02,
                                               decision_ticks=20),
                       load_bursts=LoadBurstPlan(seed=9, multiplier=8))
    assert bundle.governor is not None
    return racy_program, bundle


class TestGovernedContainer:
    """v3: the period-epoch section of governed bundles."""

    def test_governed_bundle_defaults_to_v3(self, governed, tmp_path):
        _, bundle = governed
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        _, version, _, _ = struct.unpack_from("<4sHHI",
                                              path.read_bytes(), 0)
        assert version == 3

    def test_epochs_and_report_round_trip(self, governed, tmp_path):
        program, bundle = governed
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        assert loaded.period_epochs == bundle.period_epochs
        assert loaded.samples == bundle.samples
        report, original = loaded.governor, bundle.governor
        assert report.overhead_budget == original.overhead_budget
        assert report.base_period == original.base_period
        assert report.widenings == original.widenings
        assert report.tier_transitions == original.tier_transitions
        assert report.final_period == original.final_period
        assert report.final_tier == original.final_tier
        assert report.final_overhead == pytest.approx(
            original.final_overhead)
        assert report.epochs == original.epochs

    @pytest.mark.parametrize("version", [1, 2])
    def test_older_write_versions_drop_only_the_epochs(
            self, governed, tmp_path, version):
        program, bundle = governed
        path = tmp_path / f"v{version}.prtr"
        write_trace(bundle, path, version=version)
        loaded = read_trace(path, program=program)
        assert loaded.governor is None
        assert loaded.period_epochs == []
        assert loaded.samples == bundle.samples
        assert loaded.sync_records == bundle.sync_records

    def test_corrupt_epoch_section_salvages_the_data(
            self, governed, tmp_path):
        """Damage to the epoch section loses the period history, never
        the trace data it annotates."""
        from repro.faults import corrupt_trace_file

        program, bundle = governed
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        # The epoch section is written last: meta, pebs, sync, alloc,
        # one pt stream per thread, epochs.
        epoch_index = 4 + len(bundle.pt_traces)
        corrupt_trace_file(path, seed=3, section_index=epoch_index)
        with pytest.raises(TraceFormatError):
            read_trace(path, program=program)
        loaded = read_trace(path, program=program, allow_partial=True)
        assert any(name.startswith("epochs")
                   for name in loaded.defects.corrupted_sections)
        assert loaded.governor is None
        assert loaded.period_epochs == []
        assert loaded.samples == bundle.samples
        assert loaded.sync_records == bundle.sync_records

    def test_governed_v3_analysis_equivalent_after_round_trip(
            self, governed, tmp_path):
        program, bundle = governed
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        loaded = read_trace(path, program=program)
        direct = OfflinePipeline(program).analyze(bundle)
        reread = OfflinePipeline(program).analyze(loaded)
        assert {r.pair for r in direct.races} == \
            {r.pair for r in reread.races}
        assert direct.degradation.governor_active
        assert reread.degradation.governor_active
        assert (reread.degradation.governor_epochs
                == direct.degradation.governor_epochs)
