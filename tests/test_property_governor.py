"""Governor properties: declared losses always reconcile downstream,
and a disabled governor is invisible — ungoverned runs and their trace
files are byte-identical to a build that never had one.

These are the robustness contracts of the closed-loop online stage: the
governor may shed data (that is its job under pressure), but every shed
must be *declared*, and the declaration must survive the trip through
serialization and the offline pipeline.  And because the governor ships
default-off, turning it off must mean exactly that."""

import json
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OfflinePipeline
from repro.analysis.report import to_json
from repro.faults import LoadBurstPlan
from repro.isa import assemble
from repro.pmu.governor import GovernorConfig
from repro.tracing import read_trace, trace_run, write_trace

from tests.helpers import RACY_ASM

_PROGRAM = assemble(RACY_ASM, "racy-counter")

seeds = st.integers(min_value=0, max_value=500)


@given(seed=seeds,
       multiplier=st.integers(min_value=1, max_value=32),
       period=st.integers(min_value=2, max_value=8))
@settings(max_examples=25, deadline=None, derandomize=True)
def test_governed_degradation_always_reconciles(seed, multiplier, period):
    """Whatever the governor shed under seeded burst load, the offline
    DegradationReport can match every declared loss against degradation
    it actually observed."""
    bundle = trace_run(
        _PROGRAM, period=period, seed=seed,
        governor=GovernorConfig(overhead_budget=0.02, decision_ticks=20),
        load_bursts=LoadBurstPlan(seed=seed, multiplier=multiplier),
    )
    result = OfflinePipeline(_PROGRAM).analyze(bundle)
    deg = result.degradation
    assert deg.governor_active
    assert deg.governor_reconciles is True
    # The governor's own epoch count is what the report re-renders.
    assert deg.governor_epochs == len(bundle.governor.epochs)


@given(seed=seeds,
       multiplier=st.integers(min_value=1, max_value=32))
@settings(max_examples=15, deadline=None, derandomize=True)
def test_governed_reconciliation_survives_serialization(
        seed, multiplier, tmp_path_factory):
    bundle = trace_run(
        _PROGRAM, period=2, seed=seed,
        governor=GovernorConfig(overhead_budget=0.02, decision_ticks=20),
        load_bursts=LoadBurstPlan(seed=seed, multiplier=multiplier),
    )
    path = Path(tmp_path_factory.mktemp("gov")) / "t.prtr"
    write_trace(bundle, path)
    loaded = read_trace(path, program=_PROGRAM)
    deg = OfflinePipeline(_PROGRAM).analyze(loaded).degradation
    assert deg.governor_active
    assert deg.governor_reconciles is True


@given(seed=seeds, period=st.integers(min_value=2, max_value=50))
@settings(max_examples=25, deadline=None, derandomize=True)
def test_governor_off_is_bit_identical(seed, period, tmp_path_factory):
    """An ungoverned run must produce a byte-identical trace file and an
    identical report whether the build knows about governors or not:
    passing governor=None is indistinguishable from the seed behavior
    (no epochs, no v3 container, no governor JSON key)."""
    plain = trace_run(_PROGRAM, period=period, seed=seed)
    explicit = trace_run(_PROGRAM, period=period, seed=seed,
                         governor=None, load_bursts=None)
    tmp = Path(tmp_path_factory.mktemp("bit"))
    write_trace(plain, tmp / "plain.prtr")
    write_trace(explicit, tmp / "explicit.prtr")
    assert (tmp / "plain.prtr").read_bytes() == \
        (tmp / "explicit.prtr").read_bytes()
    # The container stays v2: readable by pre-governor readers.
    assert (tmp / "plain.prtr").read_bytes()[4] == 2
    # And the analysis JSON carries no governor key at all.
    result = OfflinePipeline(_PROGRAM).analyze(explicit)
    payload = json.loads(to_json(_PROGRAM, result))
    assert "governor" not in payload
    assert plain.period_epochs == [] and explicit.period_epochs == []
