"""Unit tests for mutexes, semaphores, and the sync table."""

import pytest

from repro.machine.sync import Mutex, Semaphore, SyncError, SyncTable


class TestMutex:
    def test_uncontended_acquire(self):
        m = Mutex(0x100)
        assert m.acquire(1)
        assert m.owner == 1

    def test_contended_acquire_blocks(self):
        m = Mutex(0x100)
        m.acquire(1)
        assert not m.acquire(2)
        assert list(m.waiters) == [2]

    def test_release_hands_off_fifo(self):
        m = Mutex(0x100)
        m.acquire(1)
        m.acquire(2)
        m.acquire(3)
        assert m.release(1) == 2
        assert m.owner == 2
        assert m.release(2) == 3

    def test_release_without_waiters_frees(self):
        m = Mutex(0x100)
        m.acquire(1)
        assert m.release(1) is None
        assert m.owner is None

    def test_release_by_non_owner_rejected(self):
        m = Mutex(0x100)
        m.acquire(1)
        with pytest.raises(SyncError):
            m.release(2)

    def test_recursive_lock_rejected(self):
        m = Mutex(0x100)
        m.acquire(1)
        with pytest.raises(SyncError):
            m.acquire(1)


class TestSemaphore:
    def test_wait_on_zero_blocks(self):
        s = Semaphore(0x200)
        assert not s.wait(1)
        assert list(s.waiters) == [1]

    def test_post_wakes_waiter(self):
        s = Semaphore(0x200)
        s.wait(1)
        assert s.post() == 1
        assert s.count == 0

    def test_post_without_waiters_increments(self):
        s = Semaphore(0x200)
        assert s.post() is None
        assert s.count == 1
        assert s.wait(2)
        assert s.count == 0

    def test_initial_count(self):
        s = Semaphore(0x200, count=2)
        assert s.wait(1)
        assert s.wait(2)
        assert not s.wait(3)


class TestSyncTable:
    def test_same_address_same_object(self):
        table = SyncTable()
        assert table.mutex(0x10) is table.mutex(0x10)

    def test_mutex_and_semaphore_cannot_share_address(self):
        table = SyncTable()
        table.mutex(0x10)
        with pytest.raises(SyncError):
            table.semaphore(0x10)

    def test_held_anywhere(self):
        table = SyncTable()
        assert not table.held_anywhere()
        table.mutex(0x10).acquire(1)
        assert table.held_anywhere()
