"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.isa import assemble
from repro.tracing import trace_run

from tests.helpers import CLEAN_COUNTER_ASM, RACY_ASM


@pytest.fixture
def clean_program():
    return assemble(CLEAN_COUNTER_ASM, "clean-counter")


@pytest.fixture
def racy_program():
    return assemble(RACY_ASM, "racy-counter")


@pytest.fixture
def clean_bundle(clean_program):
    return trace_run(clean_program, period=5, seed=7,
                     record_ground_truth=True)


@pytest.fixture
def racy_bundle(racy_program):
    return trace_run(racy_program, period=5, seed=7,
                     record_ground_truth=True)
