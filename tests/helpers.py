"""Shared helpers and program sources for the test suite."""

from __future__ import annotations

from repro.machine import Machine

#: A small two-thread program with a lock-protected counter (no races).
CLEAN_COUNTER_ASM = """
.global total 0
.global lockvar 0
main:
    mov $6, %rcx
    spawn worker, %rbx
loop:
    call bump
    dec %rcx
    cmp $0, %rcx
    jne loop
    join %rbx
    halt
bump:
    lock $lockvar
    mov total(%rip), %rax
    add $1, %rax
    mov %rax, total(%rip)
    unlock $lockvar
    ret
worker:
    mov $5, %rcx
wloop:
    call bump
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
"""

#: A small two-thread program with an obvious data race on `racy`.
RACY_ASM = """
.global racy 0
.global lockvar 0
.reserve workbuf 16
main:
    spawn worker, %rbx
    mov $8, %rcx
mloop:
    mov racy(%rip), %rax
    add $1, %rax
    mov %rax, racy(%rip)
    mov %rcx, %r10
    and $15, %r10
    mov workbuf(,%r10,8), %r11
    dec %rcx
    cmp $0, %rcx
    jne mloop
    join %rbx
    halt
worker:
    mov $8, %rcx
wloop:
    mov racy(%rip), %rax
    add $2, %rax
    mov %rax, racy(%rip)
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
"""


def run_machine(program, seed=0, **kwargs):
    """Convenience: run a program on a fresh machine."""
    machine = Machine(program, seed=seed, **kwargs)
    result = machine.run()
    return machine, result


def record_states(program, seed=0, num_cores=4):
    """Run *program* recording, per thread, the executed instruction
    addresses and the register snapshot *before* each instruction.

    Returns {tid: [(ip, regs_before_dict), ...]} in execution order —
    the oracle several replay tests drive WindowReplayer with.
    """
    machine = Machine(program, seed=seed, num_cores=num_cores)
    states = {}
    original_step = machine._step

    def wrapped(thread):
        snapshot = thread.registers.snapshot()
        states.setdefault(thread.tid, []).append((thread.ip, snapshot))
        original_step(thread)

    machine._step = wrapped
    machine.run()
    return machine, states
