"""Lazy trace-reader regressions: zero-copy payloads, pay-per-decode.

The old reader materialized a ``bytes`` copy of every section payload —
a full second copy of the file — and decoded all of them whether or not
anyone looked.  :class:`~repro.tracing.serialize.TraceReader` must hand
out :class:`memoryview` slices of the original blob and decode only
what is asked for, while :meth:`~TraceReader.bundle` stays
semantically identical to the eager path (including salvage).
"""

import pytest

from repro.faults import corrupt_trace_file
from repro.tracing import (
    TraceFormatError,
    open_trace,
    read_trace,
    read_trace_bytes,
    trace_run,
    trace_to_bytes,
    write_trace,
)
from repro.tracing.serialize import _SEC_PT, TraceReader
from repro.workloads import RACE_BUGS, WorkloadScale


@pytest.fixture(scope="module")
def traced():
    program = RACE_BUGS["pfscan"].build(
        WorkloadScale(iterations=6, threads=4))
    bundle = trace_run(program, period=50, seed=2)
    return program, bundle, trace_to_bytes(bundle)


class TestLaziness:
    def test_construction_decodes_nothing(self, traced):
        _, _, blob = traced
        reader = TraceReader(blob)
        assert reader.file_intact
        assert len(reader.sections) > 0
        assert reader.sections_decoded == 0
        assert reader.bytes_decoded == 0

    def test_payload_is_zero_copy_view(self, traced):
        """No per-section bytes copy: every payload is a memoryview
        whose backing object IS the container blob."""
        _, _, blob = traced
        reader = TraceReader(blob)
        for entry in reader.sections:
            view = reader.payload(entry)
            assert isinstance(view, memoryview)
            assert view.obj is reader.blob
            assert len(view) == entry.length
        # Handing out views costs no decode accounting.
        assert reader.bytes_decoded == 0

    def test_decode_is_memoized_and_counted_once(self, traced):
        _, _, blob = traced
        reader = TraceReader(blob)
        entry = reader.sections[0]
        first = reader.decode(entry)
        after_one = (reader.sections_decoded, reader.bytes_decoded)
        assert after_one == (1, entry.length)
        assert reader.decode(entry) is first
        assert (reader.sections_decoded, reader.bytes_decoded) == after_one

    def test_pt_tid_peeks_without_decoding(self, traced):
        _, bundle, blob = traced
        reader = TraceReader(blob)
        peeked = {
            reader.pt_tid(entry)
            for entry in reader.sections if entry.kind == _SEC_PT
        }
        assert peeked == set(bundle.pt_traces)
        assert reader.bytes_decoded == 0

    def test_verify_is_free_on_intact_files(self, traced):
        _, _, blob = traced
        reader = TraceReader(blob)
        assert all(reader.verify(entry) for entry in reader.sections)
        assert reader.bytes_decoded == 0


class TestThreadSubset:
    def test_subset_skips_foreign_pt_decode(self, traced):
        """A worker touching one thread must not pay for the others:
        foreign PT sections are neither decoded nor counted."""
        program, bundle, blob = traced
        tids = sorted(bundle.pt_traces)
        assert len(tids) >= 2
        keep = frozenset(tids[:1])
        reader = TraceReader(blob)
        partial = reader.bundle(program=program, threads=keep)
        assert set(partial.pt_traces) == set(keep)
        assert reader.bytes_decoded < reader.total_payload_bytes
        skipped_pt = sum(
            entry.length for entry in reader.sections
            if entry.kind == _SEC_PT and reader.pt_tid(entry) not in keep
        )
        assert skipped_pt > 0
        assert (reader.bytes_decoded
                == reader.total_payload_bytes - skipped_pt)

    def test_subset_bundle_matches_full_outside_pt(self, traced):
        program, bundle, blob = traced
        tids = sorted(bundle.pt_traces)
        keep = frozenset(tids[:2])
        full = read_trace_bytes(blob, program=program)
        partial = read_trace_bytes(blob, program=program, threads=keep)
        assert set(partial.pt_traces) == set(keep)
        for tid in keep:
            assert (partial.pt_traces[tid].packets
                    == full.pt_traces[tid].packets)
        assert partial.samples == full.samples
        assert partial.sync_records == full.sync_records
        assert partial.alloc_records == full.alloc_records
        assert partial.run == full.run

    def test_read_trace_threads_filter(self, traced, tmp_path):
        program, bundle, _ = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        tid = sorted(bundle.pt_traces)[0]
        loaded = read_trace(path, program=program,
                            threads=frozenset({tid}))
        assert set(loaded.pt_traces) == {tid}


class TestBundleParity:
    def test_full_bundle_matches_eager_read(self, traced):
        program, bundle, blob = traced
        loaded = read_trace_bytes(blob, program=program)
        assert loaded.samples == bundle.samples
        assert set(loaded.pt_traces) == set(bundle.pt_traces)
        assert loaded.sync_records == bundle.sync_records
        assert loaded.alloc_records == bundle.alloc_records
        assert loaded.run.tsc == bundle.run.tsc
        assert loaded.run.memory_ops == bundle.run.memory_ops
        assert loaded.defects is None

    def test_salvage_parity_through_reader(self, traced, tmp_path):
        program, bundle, _ = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        corrupt_trace_file(path, seed=1, section_index=1)  # pebs
        reader = open_trace(path, allow_partial=True)
        assert not reader.file_intact
        assert reader.salvage
        loaded = reader.bundle(program=program)
        assert loaded.defects is not None
        assert loaded.defects.corrupted_sections == ("pebs#1",)
        assert loaded.samples == []
        assert loaded.sync_records == bundle.sync_records

    def test_corrupt_section_raises_without_salvage(self, traced,
                                                    tmp_path):
        program, bundle, _ = traced
        path = tmp_path / "t.prtr"
        write_trace(bundle, path)
        corrupt_trace_file(path, seed=1, section_index=1)
        with pytest.raises(TraceFormatError):
            read_trace(path, program=program)

    def test_truncated_blob_rejected_at_open(self, traced):
        _, _, blob = traced
        with pytest.raises(TraceFormatError):
            TraceReader(blob[: len(blob) // 2], allow_partial=True)
