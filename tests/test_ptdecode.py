"""PT decode tests: decoded paths must equal the executed paths."""

import pytest

from repro.isa import Op, assemble
from repro.machine import Machine, MachineObserver
from repro.pmu import PTConfig, PTPacketizer
from repro.ptdecode import DecodeError, align_samples, decode_all, decode_thread
from repro.tracing import trace_run

from tests.helpers import CLEAN_COUNTER_ASM, RACY_ASM


class _StepRecorder(MachineObserver):
    """Records every executed instruction address per thread (oracle)."""

    def __init__(self, machine):
        self.machine = machine
        self.steps = {}
        machine_step = machine._step

        def wrapped(thread):
            self.steps.setdefault(thread.tid, []).append(thread.ip)
            machine_step(thread)

        machine._step = wrapped


def _decode_and_compare(source, seed=0, config=None):
    program = assemble(source)
    machine = Machine(program, seed=seed)
    recorder = _StepRecorder(machine)
    pt = PTPacketizer(config or PTConfig())
    machine.attach(pt)
    machine.run()
    paths = decode_all(program, pt.traces)
    for tid, path in paths.items():
        assert path.steps == recorder.steps[tid], f"thread {tid} mismatch"
    return program, paths


class TestDecodeFidelity:
    def test_straight_line(self):
        _decode_and_compare("main:\n    mov $1, %rax\n    nop\n    halt\n")

    def test_loop(self):
        _decode_and_compare(
            "main:\n    mov $5, %rcx\nl:\n    dec %rcx\n    cmp $0, %rcx\n"
            "    jne l\n    halt\n"
        )

    def test_calls_and_rets(self):
        _decode_and_compare(
            "main:\n    call f\n    call f\n    call g\n    halt\n"
            "f:\n    nop\n    ret\n"
            "g:\n    call f\n    ret\n"
        )

    def test_indirect_jmp(self):
        _decode_and_compare(
            "main:\n    mov $4, %rax\n    jmp %rax\n    halt\n    halt\n"
            "t:\n    nop\n    halt\n"
        )

    def test_multithreaded(self):
        _decode_and_compare(CLEAN_COUNTER_ASM, seed=11)

    def test_racy_program(self):
        _decode_and_compare(RACY_ASM, seed=3)

    def test_ret_compression_disabled(self):
        _decode_and_compare(
            "main:\n    call f\n    halt\nf:\n    ret\n",
            config=PTConfig(ret_compression=False),
        )

    def test_many_seeds(self):
        for seed in range(6):
            _decode_and_compare(CLEAN_COUNTER_ASM, seed=seed)


class TestAnchors:
    def test_anchor_tscs_are_exact_branch_times(self, clean_program):
        bundle = trace_run(clean_program, period=3, seed=5)
        paths = decode_all(clean_program, bundle.pt_traces)
        for tid, path in paths.items():
            for step_index, tsc in path.anchors[1:]:
                # Every anchored step is a branch/halt retirement.
                ins = clean_program[path.steps[step_index]]
                assert ins.is_branch() or ins.op == Op.HALT

    def test_first_anchor_at_step_zero(self, clean_bundle, clean_program):
        paths = decode_all(clean_program, clean_bundle.pt_traces)
        for path in paths.values():
            assert path.anchors[0][0] == 0


class TestAlignment:
    def test_all_samples_align_uniquely(self, racy_program):
        bundle = trace_run(racy_program, period=3, seed=9)
        paths = decode_all(racy_program, bundle.pt_traces)
        aligned_total = 0
        for tid, path in paths.items():
            aligned = align_samples(path, bundle.samples_of_thread(tid))
            for item in aligned:
                assert path.steps[item.step_index] == item.sample.ip
            assert path.ambiguous == 0
            aligned_total += len(aligned)
        assert aligned_total == len(bundle.samples)

    def test_alignment_positions_monotone_in_tsc(self, racy_program):
        bundle = trace_run(racy_program, period=4, seed=2)
        paths = decode_all(racy_program, bundle.pt_traces)
        for tid, path in paths.items():
            aligned = align_samples(path, bundle.samples_of_thread(tid))
            indices = [a.step_index for a in aligned]
            assert indices == sorted(indices)


class TestFilteredDecode:
    def test_filtered_trace_decodes_prefix_only(self):
        source = (
            "main:\n    nop\n    nop\n    mov $3, %rcx\nl:\n    dec %rcx\n"
            "    cmp $0, %rcx\n    jne l\n    halt\n"
        )
        program = assemble(source)
        config = PTConfig(filters=((0, 3),))  # branches excluded
        machine = Machine(program, seed=0)
        pt = PTPacketizer(config)
        machine.attach(pt)
        machine.run()
        path = decode_thread(program, pt.traces[0], config=config)
        assert not path.complete
        # Decode stops before the first filtered-out branch.
        assert path.steps == [0, 1, 2, 3, 4]


class TestDecodeErrors:
    def test_inconsistent_stream_raises(self):
        program = assemble("main:\n    cmp $0, %rax\n    je x\nx:\n    halt\n")
        machine = Machine(program, seed=0)
        pt = PTPacketizer()
        machine.attach(pt)
        machine.run()
        trace = pt.traces[0]
        trace.packets.pop(0)  # lose the TNT for the je
        with pytest.raises(DecodeError):
            decode_thread(program, trace)
