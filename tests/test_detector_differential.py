"""Differential detector testing over the Table 2 corpus.

All backends consume the *same* merged event stream in one pipeline
pass, so their verdicts are directly comparable:

* FastTrack and the reference DJIT+ detector implement the same
  happens-before relation — they must agree **bit-identically** on racy
  addresses, on every bundle, including degraded ones;
* lockset (Eraser) warns on every unprotected variable whether or not a
  real interleaving exists — its verdict set must be a **superset**;
* the O(1)-samples detector only ever checks a subset of what FastTrack
  checks — its verdict set must be a **subset**.
"""

import pytest

from repro.analysis import OfflinePipeline
from repro.faults import builtin_plans
from repro.tracing import trace_run
from repro.workloads import RACE_BUGS, WorkloadScale

SCALE = WorkloadScale(iterations=8, threads=4)
DETECTORS = ("fasttrack", "reference", "lockset", "o1")

#: One bug per Table 2 addressing class keeps the grid affordable.
CORPUS = ("pfscan", "mysql-791", "apache-25520")


def analyze(name, seed, plan=None):
    bug = RACE_BUGS[name]
    program = bug.build(SCALE)
    bundle = trace_run(program, period=100, seed=seed)
    if plan is not None:
        bundle, _ = plan.apply(bundle)
    return OfflinePipeline(program, detectors=DETECTORS).analyze(bundle)


@pytest.mark.parametrize("name", CORPUS)
@pytest.mark.parametrize("seed", [0, 3])
class TestPristineBundles:
    def test_hb_backends_bit_identical(self, name, seed):
        result = analyze(name, seed)
        fasttrack = result.findings["fasttrack"]
        reference = result.findings["reference"]
        assert fasttrack.racy_addresses == reference.racy_addresses
        assert fasttrack.sorted_addresses() == reference.sorted_addresses()

    def test_lockset_superset(self, name, seed):
        result = analyze(name, seed)
        fasttrack = result.findings["fasttrack"]
        lockset = result.findings["lockset"]
        assert fasttrack.racy_addresses <= lockset.racy_addresses

    def test_o1_subset(self, name, seed):
        result = analyze(name, seed)
        fasttrack = result.findings["fasttrack"]
        sampled = result.findings["o1"]
        assert sampled.racy_addresses <= fasttrack.racy_addresses

    def test_primary_matches_fasttrack_solo(self, name, seed):
        """Running extra backends must not perturb the primary verdict:
        a fasttrack-first multi-backend run reports exactly what a
        fasttrack-only run reports."""
        multi = analyze(name, seed)
        bug = RACE_BUGS[name]
        program = bug.build(SCALE)
        bundle = trace_run(program, period=100, seed=seed)
        solo = OfflinePipeline(program).analyze(bundle)
        assert multi.racy_addresses == solo.racy_addresses
        assert [r.pair for r in multi.races] == [r.pair for r in solo.races]
        assert multi.regeneration_rounds == solo.regeneration_rounds


@pytest.mark.parametrize("plan_name", ["pebs-overflow", "pt-gap"])
def test_invariants_hold_on_degraded_bundles(plan_name):
    """Seeded fault plans change *what* the stream contains, never the
    cross-backend relationships."""
    for seed in (0, 1):
        plan = builtin_plans(0.2, seed=seed)[plan_name]
        result = analyze("pfscan", seed, plan=plan)
        fasttrack = result.findings["fasttrack"]
        assert (fasttrack.racy_addresses
                == result.findings["reference"].racy_addresses)
        assert (fasttrack.racy_addresses
                <= result.findings["lockset"].racy_addresses)
        assert (result.findings["o1"].racy_addresses
                <= fasttrack.racy_addresses)
