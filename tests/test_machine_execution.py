"""Per-opcode semantics tests for the machine interpreter."""

import pytest

from repro.isa import MASK64, assemble
from repro.machine import Machine, MachineError

from tests.helpers import run_machine


def run_asm(source, seed=0, **kwargs):
    program = assemble(source)
    machine, result = run_machine(program, seed=seed, **kwargs)
    return program, machine, result


class TestDataMovement:
    def test_mov_imm_and_store(self):
        p, m, _ = run_asm(
            ".global g 0\nmain:\n    mov $42, %rax\n"
            "    mov %rax, g(%rip)\n    halt\n"
        )
        assert m.memory.load(p.symbols["g"]) == 42

    def test_load(self):
        p, m, _ = run_asm(
            ".global g 9\nmain:\n    mov g(%rip), %rbx\n"
            "    mov %rbx, %rcx\n    mov %rcx, g(%rip)\n    halt\n"
        )
        assert m.memory.load(p.symbols["g"]) == 9

    def test_indexed_addressing(self):
        p, m, _ = run_asm(
            ".array a 1 2 3 4\nmain:\n    mov $2, %r8\n"
            "    mov a(,%r8,8), %rax\n    mov %rax, a(%rip)\n    halt\n"
        )
        assert m.memory.load(p.symbols["a"]) == 3

    def test_lea(self):
        p, m, _ = run_asm(
            ".global g 0\nmain:\n    mov $5, %r8\n"
            "    lea 16(,%r8,8), %rax\n    mov %rax, g(%rip)\n    halt\n"
        )
        assert m.memory.load(p.symbols["g"]) == 56

    def test_push_pop(self):
        p, m, _ = run_asm(
            ".global g 0\nmain:\n    mov $7, %rax\n    push %rax\n"
            "    mov $0, %rax\n    pop %rbx\n    mov %rbx, g(%rip)\n    halt\n"
        )
        assert m.memory.load(p.symbols["g"]) == 7


class TestAlu:
    @pytest.mark.parametrize(
        "op,initial,operand,expected",
        [
            ("add", 5, 3, 8),
            ("sub", 5, 3, 2),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("imul", 6, 7, 42),
            ("shl", 3, 2, 12),
            ("shr", 12, 2, 3),
        ],
    )
    def test_binary(self, op, initial, operand, expected):
        p, m, _ = run_asm(
            f".global g 0\nmain:\n    mov ${initial}, %rax\n"
            f"    {op} ${operand}, %rax\n    mov %rax, g(%rip)\n    halt\n"
        )
        assert m.memory.load(p.symbols["g"]) == expected

    @pytest.mark.parametrize(
        "op,initial,expected",
        [("inc", 5, 6), ("dec", 5, 4), ("neg", 5, MASK64 - 4),
         ("not", 0, MASK64)],
    )
    def test_unary(self, op, initial, expected):
        p, m, _ = run_asm(
            f".global g 0\nmain:\n    mov ${initial}, %rax\n"
            f"    {op} %rax\n    mov %rax, g(%rip)\n    halt\n"
        )
        assert m.memory.load(p.symbols["g"]) == expected

    def test_alu_with_memory_source(self):
        p, m, _ = run_asm(
            ".global g 10\n.global out 0\nmain:\n    mov $1, %rax\n"
            "    add g(%rip), %rax\n    mov %rax, out(%rip)\n    halt\n"
        )
        assert m.memory.load(p.symbols["out"]) == 11


class TestControlFlow:
    def test_loop_runs_expected_trips(self):
        p, m, _ = run_asm(
            ".global g 0\nmain:\n    mov $5, %rcx\nloop:\n"
            "    mov g(%rip), %rax\n    add $2, %rax\n"
            "    mov %rax, g(%rip)\n    dec %rcx\n    cmp $0, %rcx\n"
            "    jne loop\n    halt\n"
        )
        assert m.memory.load(p.symbols["g"]) == 10

    def test_call_ret(self):
        p, m, _ = run_asm(
            ".global g 0\nmain:\n    call f\n    call f\n    halt\n"
            "f:\n    mov g(%rip), %rax\n    add $1, %rax\n"
            "    mov %rax, g(%rip)\n    ret\n"
        )
        assert m.memory.load(p.symbols["g"]) == 2

    def test_indirect_jmp(self):
        p, m, _ = run_asm(
            ".global g 0\nmain:\n    mov $5, %rax\n    jmp %rax\n"
            "    halt\n    halt\n    halt\n"
            "target:\n    mov $1, %rbx\n    mov %rbx, g(%rip)\n    halt\n"
        )
        assert m.memory.load(p.symbols["g"]) == 1

    @pytest.mark.parametrize(
        "jump,a,b,taken",
        [
            ("je", 3, 3, True), ("je", 3, 4, False),
            ("jne", 3, 4, True), ("jne", 3, 3, False),
            ("jl", 5, 3, True), ("jl", 3, 5, False),
            ("jg", 3, 5, True), ("jg", 5, 3, False),
            ("jle", 3, 3, True), ("jge", 3, 3, True),
        ],
    )
    def test_conditional_branches(self, jump, a, b, taken):
        # cmp $a, %rax(=b); j?? taken iff (b ?? a).
        p, m, _ = run_asm(
            f".global g 0\nmain:\n    mov ${b}, %rax\n    cmp ${a}, %rax\n"
            f"    {jump} yes\n    halt\n"
            "yes:\n    mov $1, %rbx\n    mov %rbx, g(%rip)\n    halt\n"
        )
        assert (m.memory.load(p.symbols["g"]) == 1) == taken


class TestThreadsAndSync:
    def test_spawn_copies_registers(self):
        p, m, _ = run_asm(
            ".global g 0\nmain:\n    mov $77, %rdi\n    spawn w, %rbx\n"
            "    join %rbx\n    halt\n"
            "w:\n    mov %rdi, g(%rip)\n    halt\n"
        )
        assert m.memory.load(p.symbols["g"]) == 77

    def test_join_waits_for_child(self):
        p, m, _ = run_asm(
            ".global g 0\nmain:\n    spawn w, %rbx\n    join %rbx\n"
            "    mov g(%rip), %rax\n    add $1, %rax\n"
            "    mov %rax, g(%rip)\n    halt\n"
            "w:\n    mov $10, %rax\n    mov %rax, g(%rip)\n    halt\n"
        )
        # Join ensures main's increment happens after the child's store.
        assert m.memory.load(p.symbols["g"]) == 11

    def test_join_on_unknown_tid(self):
        with pytest.raises(MachineError):
            run_asm("main:\n    mov $99, %rax\n    join %rax\n    halt\n")

    def test_lock_mutual_exclusion(self, clean_program):
        for seed in range(8):
            machine, _ = run_machine(clean_program, seed=seed)
            assert machine.memory.load(
                clean_program.symbols["total"]) == 11

    def test_semaphore_orders_producer_consumer(self):
        src = """
.global sem 0
.global slot 0
.global got 0
main:
    spawn consumer, %rbx
    mov $123, %rax
    mov %rax, slot(%rip)
    sem_post $sem
    join %rbx
    halt
consumer:
    sem_wait $sem
    mov slot(%rip), %rax
    mov %rax, got(%rip)
    halt
"""
        for seed in range(8):
            p, m, _ = run_asm(src, seed=seed)
            assert m.memory.load(p.symbols["got"]) == 123

    def test_deadlock_detected(self):
        src = """
.global l1 0
main:
    lock $l1
    spawn w, %rbx
    join %rbx
    unlock $l1
    halt
w:
    lock $l1
    unlock $l1
    halt
"""
        with pytest.raises(MachineError, match="deadlock"):
            run_asm(src)

    def test_malloc_free_roundtrip(self):
        p, m, _ = run_asm(
            ".global g 0\nmain:\n    malloc $32, %rax\n"
            "    mov $5, %rbx\n    mov %rbx, 8(%rax)\n"
            "    mov 8(%rax), %rcx\n    mov %rcx, g(%rip)\n"
            "    free %rax\n    halt\n"
        )
        assert m.memory.load(p.symbols["g"]) == 5

    def test_io_advances_time(self):
        _, _, result = run_asm("main:\n    io $5000\n    halt\n")
        assert result.tsc >= 5000
        assert result.idle_cycles > 0

    def test_ret_from_thread_entry_exits(self):
        p, m, result = run_asm(
            "main:\n    spawn w, %rbx\n    join %rbx\n    halt\nw:\n    ret\n"
        )
        assert result.threads == 2


class TestRunResult:
    def test_instruction_counts(self, clean_program):
        _, result = run_machine(clean_program, seed=1)
        assert result.instructions == sum(
            result.per_thread_retired.values())
        assert result.memory_ops > 0
        assert result.sync_ops > 0

    def test_machine_single_use(self, clean_program):
        machine, _ = run_machine(clean_program)
        with pytest.raises(MachineError):
            machine.run()

    def test_budget_guard(self):
        src = "main:\nloop:\n    jmp loop\n"
        program = assemble(src)
        machine = Machine(program, max_instructions=1000)
        with pytest.raises(MachineError, match="budget"):
            machine.run()
