"""Property-based reproduction-soundness tests over random programs.

The central invariant of the whole offline stage (DESIGN.md §5): every
reconstructed memory access must equal — in instruction, address, and
kind — the access the machine actually issued at that path position.
Reconstruction may be *incomplete*; it must never be *wrong*.  Checked
over randomly generated multithreaded programs, all replay modes, and
multiple schedules/sampling phases, along with decode fidelity and the
recovery-monotonicity ordering.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Op
from repro.machine import Machine
from repro.pmu import PTPacketizer
from repro.ptdecode import align_samples, decode_all
from repro.replay import ReplayEngine
from repro.tracing import trace_run
from repro.workloads import GeneratorConfig, generate_program

CONFIG = GeneratorConfig(threads=2, body_length=40, loop_iterations=2)


def observable(ins):
    return ins.is_memory_access() and ins.op not in (Op.CALL, Op.RET)


def soundness_oracle(program, bundle, mode):
    """Assert every reconstructed access matches ground truth; return the
    number of recovered accesses."""
    result = ReplayEngine(program, mode=mode).replay_bundle(bundle)
    gt = bundle.ground_truth.per_thread()
    recovered = 0
    for tid, accesses in result.per_thread.items():
        truth = gt.get(tid, [])
        path = result.paths[tid]
        mem_steps = [
            j for j, ip in enumerate(path.steps)
            if observable(program[ip])
        ]
        assert len(mem_steps) == len(truth)
        by_step = dict(zip(mem_steps, truth))
        for access in accesses:
            actual = by_step[access.step_index]
            assert actual.ip == access.ip
            assert actual.address == access.address, (
                f"{mode}: wrong address at step {access.step_index}: "
                f"{access} vs truth {actual}"
            )
            assert actual.is_store == access.is_store
            recovered += 1
    return recovered


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_reconstruction_soundness_full_mode(seed):
    program = generate_program(seed, CONFIG)
    bundle = trace_run(program, period=5, seed=seed,
                       record_ground_truth=True)
    soundness_oracle(program, bundle, "full")


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_reconstruction_soundness_all_modes_and_monotonicity(seed):
    program = generate_program(seed, CONFIG)
    bundle = trace_run(program, period=7, seed=seed * 3 + 1,
                       record_ground_truth=True)
    counts = {
        mode: soundness_oracle(program, bundle, mode)
        for mode in ("full", "forward", "basicblock")
    }
    # full dominates both ablations; forward and basicblock are
    # incomparable in general (basicblock includes in-block *backward*
    # propagation that the pure-forward ablation lacks).
    assert counts["full"] >= counts["forward"]
    assert counts["full"] >= counts["basicblock"]


@given(seed=st.integers(min_value=0, max_value=10_000),
       period=st.sampled_from([1, 3, 11, 50]))
@settings(max_examples=15, deadline=None)
def test_soundness_across_periods(seed, period):
    program = generate_program(seed, CONFIG)
    bundle = trace_run(program, period=period, seed=seed,
                       record_ground_truth=True)
    soundness_oracle(program, bundle, "full")


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_decode_matches_executed_path(seed):
    """PT decode fidelity over random programs."""
    program = generate_program(seed, CONFIG)
    machine = Machine(program, seed=seed)
    executed = {}
    original_step = machine._step

    def wrapped(thread):
        executed.setdefault(thread.tid, []).append(thread.ip)
        original_step(thread)

    machine._step = wrapped
    pt = PTPacketizer()
    machine.attach(pt)
    machine.run()
    paths = decode_all(program, pt.traces)
    for tid, path in paths.items():
        assert path.steps == executed[tid]


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_sample_alignment_unique_and_correct(seed):
    program = generate_program(seed, CONFIG)
    bundle = trace_run(program, period=4, seed=seed)
    paths = decode_all(program, bundle.pt_traces)
    total = 0
    for tid, path in paths.items():
        aligned = align_samples(path, bundle.samples_of_thread(tid))
        assert path.ambiguous == 0
        for item in aligned:
            assert path.steps[item.step_index] == item.sample.ip
        total += len(aligned)
    assert total == len(bundle.samples)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_machine_determinism(seed):
    program_a = generate_program(seed, CONFIG)
    program_b = generate_program(seed, CONFIG)
    result_a = Machine(program_a, seed=seed).run()
    result_b = Machine(program_b, seed=seed).run()
    assert result_a.instructions == result_b.instructions
    assert result_a.tsc == result_b.tsc
    assert result_a.memory_ops == result_b.memory_ops
