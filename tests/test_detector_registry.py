"""Detector backend registry: resolution, the common protocol, and the
deterministic findings accessors every backend shares."""

import pytest

from repro.detector import (
    Access,
    AccessKind,
    DEFAULT_DETECTOR,
    DetectionFindings,
    DetectorBackend,
    FastTrack,
    SyncOp,
    backend_names,
    create_backend,
    register_backend,
    resolve_detector,
    resolve_detectors,
)
from repro.errors import EXIT_TRACE_ERROR, UnknownDetectorError, UsageError

VAR = (0x1000, 0)


def write(tid, ip=2):
    return Access(tid=tid, var=VAR, kind=AccessKind.WRITE, ip=ip, tsc=0.0,
                  provenance="test")


class TestResolution:
    def test_all_backends_registered(self):
        assert set(backend_names()) >= {
            "fasttrack", "reference", "lockset", "o1", "predict",
        }

    def test_default_is_fasttrack(self):
        assert DEFAULT_DETECTOR == "fasttrack"
        assert resolve_detectors(()) == ("fasttrack",)

    def test_create_returns_fresh_instances(self):
        first = create_backend("fasttrack")
        second = create_backend("fasttrack")
        assert isinstance(first, FastTrack)
        assert first is not second

    def test_names_normalize(self):
        assert resolve_detector(" FastTrack ") == "fasttrack"

    def test_comma_lists_and_dedup(self):
        assert resolve_detectors(["fasttrack,o1", "o1", "lockset"]) == (
            "fasttrack", "o1", "lockset",
        )

    def test_unknown_name_raises_usage_error(self):
        with pytest.raises(UnknownDetectorError) as info:
            resolve_detector("fastrack")
        error = info.value
        assert isinstance(error, UsageError)
        assert error.exit_code == EXIT_TRACE_ERROR == 2
        assert error.suggestion == "fasttrack"
        assert "did you mean 'fasttrack'" in str(error)

    def test_unknown_name_without_lookalike(self):
        with pytest.raises(UnknownDetectorError) as info:
            resolve_detector("zzzzz")
        assert info.value.suggestion is None
        assert "available:" in str(info.value)

    def test_register_new_backend(self):
        class Null(DetectorBackend):
            name = "nulltest"

            def sync(self, op):
                self.sync_processed += 1

            def access(self, access):
                self.accesses_processed += 1

        register_backend("nulltest", Null)
        try:
            assert "nulltest" in backend_names()
            backend = create_backend("nulltest")
            backend.access(write(0))
            findings = backend.finish()
            assert findings.backend == "nulltest"
            assert findings.accesses_processed == 1
        finally:
            from repro.detector import registry

            del registry._REGISTRY["nulltest"]


class TestFindingsAccessors:
    """Satellite: every backend exposes the same deterministic, sorted
    findings accessors (the old distinct_races/racy_addresses asymmetry
    is gone)."""

    def _racy_backend(self, name):
        backend = create_backend(name)
        backend.access(write(0, ip=10))
        backend.access(write(1, ip=11))
        return backend

    @pytest.mark.parametrize("name", ["fasttrack", "reference", "lockset",
                                      "o1", "predict"])
    def test_protocol_surface(self, name):
        backend = self._racy_backend(name)
        findings = backend.finish()
        assert isinstance(findings, DetectionFindings)
        assert findings.backend == name
        assert findings.accesses_processed == 2
        # Identical accessor family on instance and findings.
        assert backend.racy_addresses() == findings.racy_addresses
        assert backend.sorted_addresses() == findings.sorted_addresses()
        assert backend.sorted_pairs() == findings.sorted_pairs()
        assert [r.var for r in backend.sorted_races()] == [
            r.var for r in findings.sorted_races()
        ]

    @pytest.mark.parametrize("name", ["fasttrack", "reference", "lockset",
                                      "o1"])
    def test_two_unlocked_writes_are_racy(self, name):
        findings = self._racy_backend(name).finish()
        assert VAR[0] in findings.racy_addresses
        assert findings.sorted_addresses() == (VAR[0],)

    def test_sorted_accessors_are_sorted_and_stable(self):
        backend = create_backend("fasttrack")
        for address in (0x3000, 0x1000, 0x2000):
            var = (address, 0)
            backend.access(Access(tid=0, var=var, kind=AccessKind.WRITE,
                                  ip=1, tsc=0.0, provenance="test"))
            backend.access(Access(tid=1, var=var, kind=AccessKind.WRITE,
                                  ip=2, tsc=0.0, provenance="test"))
        findings = backend.finish()
        assert findings.sorted_addresses() == (0x1000, 0x2000, 0x3000)
        assert findings.sorted_pairs() == tuple(sorted(findings.racy_pairs))
        races = findings.sorted_races()
        assert list(races) == sorted(
            races, key=lambda r: (r.var, r.pair, r.first_tid,
                                  r.second.tid, r.first_kind.value,
                                  r.second.kind.value)
        )

    def test_to_dict_round_trips_json(self):
        import json

        findings = self._racy_backend("fasttrack").finish()
        payload = json.loads(json.dumps(findings.to_dict()))
        assert payload["backend"] == "fasttrack"
        assert payload["distinct_races"] == 1
        assert payload["racy_addresses"] == [hex(VAR[0])]


class TestSyncCounters:
    @pytest.mark.parametrize("name", ["fasttrack", "reference", "lockset",
                                      "o1", "predict"])
    def test_sync_processed_counts(self, name):
        backend = create_backend(name)
        backend.sync(SyncOp(tid=0, kind="lock", target=0x900, tsc=0.0))
        backend.sync(SyncOp(tid=0, kind="unlock", target=0x900, tsc=1.0))
        findings = backend.finish()
        assert findings.sync_processed == 2
