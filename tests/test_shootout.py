"""Precision/recall shoot-out harness tests."""

import json

import pytest

from repro.analysis import BackendScore, ShootoutResult, run_shootout
from repro.analysis.shootout import grade_pairs
from repro.workloads import RACE_BUGS, WorkloadScale

SCALE = WorkloadScale(iterations=8, threads=4)


class TestGrading:
    def test_grade_pairs(self):
        targets = frozenset({10, 11})
        tp, fp, detected = grade_pairs([(10, 11), (10, 12)], targets)
        assert (tp, fp, detected) == (1, 1, True)

    def test_grade_pairs_empty(self):
        assert grade_pairs([], frozenset({10})) == (0, 0, False)

    def test_precision_degenerates_to_one_when_silent(self):
        score = BackendScore(name="quiet", kind="backend", trials=4)
        assert score.precision == 1.0
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_f1(self):
        score = BackendScore(name="x", kind="backend", true_positives=2,
                             false_positives=2, detections=2, trials=2)
        assert score.precision == 0.5
        assert score.recall == 1.0
        assert score.f1 == pytest.approx(2 / 3)


class TestHarness:
    @pytest.fixture(scope="class")
    def result(self):
        bugs = {name: RACE_BUGS[name] for name in ("pfscan", "mysql-791")}
        return run_shootout(
            bugs, SCALE, period=100, runs=2,
            detectors=("fasttrack", "o1", "lockset"),
            baselines=("datacollider",),
        )

    def test_all_contenders_scored(self, result):
        assert set(result.scores) == {"fasttrack", "o1", "lockset",
                                      "datacollider"}
        for score in result.scores.values():
            assert score.trials == 4  # 2 bugs x 2 runs

    def test_fasttrack_wins_or_ties(self, result):
        ranked = result.ranked()
        fasttrack = result.scores["fasttrack"]
        assert ranked[0].f1 == pytest.approx(
            max(score.f1 for score in result.scores.values())
        )
        # HB over reconstructed traces beats a 4-watchpoint sampler.
        assert fasttrack.f1 >= result.scores["datacollider"].f1

    def test_lockset_never_more_precise_than_fasttrack(self, result):
        assert (result.scores["lockset"].precision
                <= result.scores["fasttrack"].precision)

    def test_render_is_ranked_table(self, result):
        text = result.render()
        assert "shootout: 2 bugs x 2 runs" in text
        assert "fasttrack" in text and "datacollider" in text
        # Rank column starts at 1.
        assert text.splitlines()[3].lstrip().startswith("1")

    def test_json_round_trip(self, result, tmp_path):
        path = tmp_path / "BENCH_detectors.json"
        result.write_json(path)
        payload = json.loads(path.read_text())
        assert payload["bugs"] == ["pfscan", "mysql-791"]
        assert payload["runs"] == 2
        names = [row["name"] for row in payload["ranked"]]
        assert set(names) == set(result.scores)
        f1s = [row["f1"] for row in payload["ranked"]]
        assert f1s == sorted(f1s, reverse=True)

    def test_deterministic(self, result):
        bugs = {name: RACE_BUGS[name] for name in ("pfscan", "mysql-791")}
        again = run_shootout(
            bugs, SCALE, period=100, runs=2,
            detectors=("fasttrack", "o1", "lockset"),
            baselines=("datacollider",),
        )
        for name, score in result.scores.items():
            other = again.scores[name]
            assert (score.true_positives, score.false_positives,
                    score.detections) == (
                other.true_positives, other.false_positives,
                other.detections,
            )


class TestValidation:
    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError, match="unknown baseline"):
            run_shootout({"pfscan": RACE_BUGS["pfscan"]}, SCALE,
                         baselines=("tsan",))

    def test_unknown_detector_rejected(self):
        from repro.errors import UnknownDetectorError

        with pytest.raises(UnknownDetectorError):
            run_shootout({"pfscan": RACE_BUGS["pfscan"]}, SCALE,
                         detectors=("fastrack",))
