"""Driver accounting unit tests: throttle math, steady-state handler,
pollution model."""

import pytest

from repro.pmu.drivers import (
    DriverAccounting,
    PRORACE_DRIVER,
    VANILLA_DRIVER,
)


def accounting(driver=PRORACE_DRIVER, segment_records=16):
    return DriverAccounting(driver, segment_records=segment_records)


class TestThrottle:
    def test_relaxed_arrivals_kept(self):
        acc = accounting()
        assert acc.on_buffer_full(core=0, n_records=16, tsc_now=1_000_000)
        assert acc.samples_written == 16
        assert acc.samples_dropped == 0

    def test_back_to_back_arrivals_dropped(self):
        acc = accounting(VANILLA_DRIVER)
        acc.on_buffer_full(core=0, n_records=16, tsc_now=1_000_000)
        # The next buffer lands almost immediately: the handler cannot
        # keep up within the throttle fraction.
        kept = acc.on_buffer_full(core=0, n_records=16, tsc_now=1_000_100)
        assert not kept
        assert acc.samples_dropped == 16
        assert acc.dropped_interrupts == 1

    def test_throttle_is_per_core(self):
        acc = accounting(VANILLA_DRIVER)
        acc.on_buffer_full(core=0, n_records=16, tsc_now=1_000_000)
        # Same instant on another core: that core's own gap is huge.
        assert acc.on_buffer_full(core=1, n_records=16, tsc_now=1_000_000)

    def test_forced_drain_never_dropped_and_counted_separately(self):
        acc = accounting(VANILLA_DRIVER)
        acc.on_buffer_full(core=0, n_records=16, tsc_now=10**6)
        # Forced drain one cycle later would fail the throttle if it were
        # subject to it; it is not.
        kept = acc.on_buffer_full(core=0, n_records=16, tsc_now=10**6 + 1,
                                  force=True)
        assert kept
        assert acc.exit_drain_cycles > 0
        assert acc.samples_written == 32

    def test_conservation(self):
        acc = accounting(VANILLA_DRIVER)
        for i in range(5):
            acc.on_buffer_full(core=0, n_records=16,
                               tsc_now=1_000 + i * 200)
        assert acc.samples_written + acc.samples_dropped == 5 * 16


class TestThrottleBoundary:
    """The keep/drop decision at exactly cost == gap * f/(1-f)."""

    def _driver(self):
        # f = 0.5 makes the budget equal the gap itself; zero per-record
        # cycles make the cost exactly per_interrupt_cycles.
        from dataclasses import replace

        return replace(PRORACE_DRIVER, throttle_fraction=0.5,
                       per_interrupt_cycles=100, per_record_cycles=0)

    def test_equality_is_kept(self):
        acc = accounting(self._driver())
        acc.on_buffer_full(core=0, n_records=16, tsc_now=1_000)
        # gap == 100 → budget == 100 == cost: `<=` keeps the buffer.
        assert acc.on_buffer_full(core=0, n_records=16, tsc_now=1_100)
        assert acc.samples_dropped == 0

    def test_one_tick_under_is_dropped(self):
        acc = accounting(self._driver())
        acc.on_buffer_full(core=0, n_records=16, tsc_now=1_000)
        # gap == 99 → budget 99 < cost 100: dropped.
        assert not acc.on_buffer_full(core=0, n_records=16, tsc_now=1_099)
        assert acc.samples_dropped == 16

    def test_dropped_interrupt_still_advances_throttle_state(self):
        """A dropped buffer updates the per-core last-interrupt TSC, so
        a sustained too-fast stream stays starved instead of admitting
        every second buffer against a stale gap."""
        acc = accounting(self._driver())
        acc.on_buffer_full(core=0, n_records=16, tsc_now=1_000)
        for i in range(1, 6):
            kept = acc.on_buffer_full(core=0, n_records=16,
                                      tsc_now=1_000 + i * 99)
            assert not kept
        assert acc.samples_dropped == 5 * 16


class TestSteadyHandler:
    def test_scales_with_samples(self):
        acc = accounting()
        acc.on_buffer_full(core=0, n_records=16, tsc_now=10**6)
        one = acc.steady_handler_cycles()
        acc.on_buffer_full(core=0, n_records=16, tsc_now=2 * 10**6)
        assert acc.steady_handler_cycles() == pytest.approx(2 * one)

    def test_dropped_interrupts_still_cost_entry(self):
        acc = accounting(VANILLA_DRIVER)
        acc.on_buffer_full(core=0, n_records=16, tsc_now=10**6)
        before = acc.steady_handler_cycles()
        acc.on_buffer_full(core=0, n_records=16, tsc_now=10**6 + 1)
        after = acc.steady_handler_cycles()
        assert after == pytest.approx(
            before + VANILLA_DRIVER.per_interrupt_cycles
        )

    def test_vanilla_per_sample_costlier(self):
        vanilla, prorace = accounting(VANILLA_DRIVER), accounting()
        for acc in (vanilla, prorace):
            acc.on_buffer_full(core=0, n_records=16, tsc_now=10**6)
        assert vanilla.steady_handler_cycles() > \
            prorace.steady_handler_cycles()


class TestPollution:
    def test_pollution_grows_with_occupancy(self):
        acc = accounting()
        acc.on_buffer_full(core=0, n_records=16, tsc_now=10**6)
        handler = acc.steady_handler_cycles()
        busy = acc.tracing_cycles(cpu_cycles=int(handler * 2))
        idle = acc.tracing_cycles(cpu_cycles=int(handler * 1000))
        # Same handler work costs more of the application's time when it
        # occupies a larger share (cache/TLB pollution).
        fixed_busy = PRORACE_DRIVER.fixed_overhead_fraction * handler * 2
        fixed_idle = PRORACE_DRIVER.fixed_overhead_fraction * handler * 1000
        assert (busy - fixed_busy) > (idle - fixed_idle)

    def test_pollution_capped(self):
        acc = accounting()
        acc.on_buffer_full(core=0, n_records=16, tsc_now=10**6)
        handler = acc.steady_handler_cycles()
        total = acc.tracing_cycles(cpu_cycles=1)  # occupancy → ∞
        cap = PRORACE_DRIVER.pollution_cap
        assert total <= acc.hw_assist_total_cycles + handler * (1 + cap) + 1


class TestZeroActivity:
    def test_no_samples_no_cost_beyond_fixed(self):
        acc = accounting()
        cycles = acc.tracing_cycles(cpu_cycles=1_000_000)
        assert cycles == pytest.approx(
            PRORACE_DRIVER.fixed_overhead_fraction * 1_000_000
        )
