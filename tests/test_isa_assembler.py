"""Unit tests for the text assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Op
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.program import DATA_BASE


class TestDirectives:
    def test_global_word(self):
        program = assemble(".global x 7\nmain:\n    halt\n")
        addr = program.symbols["x"]
        assert program.data[addr] == 7
        assert addr >= DATA_BASE

    def test_array(self):
        program = assemble(".array a 1 2 3\nmain:\n    halt\n")
        base = program.symbols["a"]
        assert [program.data[base + i * 8] for i in range(3)] == [1, 2, 3]

    def test_reserve(self):
        program = assemble(".reserve buf 4\nmain:\n    halt\n")
        base = program.symbols["buf"]
        assert all(program.data[base + i * 8] == 0 for i in range(4))

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".bogus x\nmain:\n    halt\n")


class TestOperands:
    def test_register(self):
        program = assemble("main:\n    mov %rax, %rbx\n    halt\n")
        assert program[0].operands == (Reg("rax"), Reg("rbx"))

    def test_immediate_decimal_and_hex(self):
        program = assemble("main:\n    mov $10, %rax\n    mov $0x10, %rbx\n    halt\n")
        assert program[0].operands[0] == Imm(10)
        assert program[1].operands[0] == Imm(16)

    def test_symbol_immediate(self):
        program = assemble(".global g 0\nmain:\n    mov $g, %rax\n    halt\n")
        assert program[0].operands[0] == Imm(program.symbols["g"])

    def test_memory_full_form(self):
        program = assemble("main:\n    mov 0x8(%rbp,%rbx,4), %rdx\n    halt\n")
        assert program[0].operands[0] == Mem(base="rbp", index="rbx",
                                             scale=4, disp=8)

    def test_memory_base_only(self):
        program = assemble("main:\n    mov (%rsi), %rax\n    halt\n")
        assert program[0].operands[0] == Mem(base="rsi")

    def test_memory_index_only(self):
        program = assemble("main:\n    mov (,%r8,8), %rax\n    halt\n")
        assert program[0].operands[0] == Mem(index="r8", scale=8)

    def test_symbol_indexed(self):
        program = assemble(
            ".reserve tab 4\nmain:\n    mov tab(,%r8,8), %rax\n    halt\n"
        )
        mem = program[0].operands[0]
        assert mem.disp == program.symbols["tab"]
        assert mem.index == "r8" and mem.scale == 8

    def test_rip_relative_symbol(self):
        program = assemble(".global g 0\nmain:\n    mov g(%rip), %rax\n    halt\n")
        mem = program[0].operands[0]
        assert mem.rip_relative
        # disp resolves so that instruction address + disp == symbol.
        assert 0 + mem.disp == program.symbols["g"]

    def test_rip_relative_site_dependent(self):
        program = assemble(
            ".global g 0\nmain:\n    nop\n    mov g(%rip), %rax\n    halt\n"
        )
        mem = program[1].operands[0]
        assert 1 + mem.disp == program.symbols["g"]

    def test_negative_displacement(self):
        program = assemble("main:\n    mov -8(%rbp), %rax\n    halt\n")
        mem = program[0].operands[0]
        assert mem.disp == -8

    def test_unparseable_operand(self):
        with pytest.raises(AssemblerError):
            assemble("main:\n    mov @x, %rax\n    halt\n")


class TestControlFlow:
    def test_branch_target(self):
        program = assemble("main:\nl:\n    jmp l\n")
        assert program[0].target == "l"
        assert program.resolve("l") == 0

    def test_indirect_jmp(self):
        program = assemble("main:\n    jmp %rax\n")
        assert program[0].target is None
        assert program[0].operands == (Reg("rax"),)

    def test_spawn_default_tid_register(self):
        program = assemble("main:\n    spawn w\n    halt\nw:\n    halt\n")
        assert program[0].op == Op.SPAWN
        assert program[0].operands == (Reg("rax"),)
        assert program[0].target == "w"

    def test_spawn_custom_tid_register(self):
        program = assemble("main:\n    spawn w, %r9\n    halt\nw:\n    halt\n")
        assert program[0].operands == (Reg("r9"),)

    def test_unknown_label(self):
        with pytest.raises(Exception):
            assemble("main:\n    jmp nowhere\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("main:\nmain:\n    halt\n")


class TestComments:
    def test_hash_comments_stripped(self):
        program = assemble("main:  # entry\n    halt  # done\n")
        assert len(program) == 1

    def test_blank_lines_ignored(self):
        program = assemble("\n\nmain:\n\n    halt\n\n")
        assert len(program) == 1


class TestFigure5Listing:
    """The paper's Figure 5 example assembles verbatim (modulo movslq,
    which the ISA spells mov)."""

    SOURCE = """
main:
    mov %rax,0x8(%rsp)
    mov 0x0(%rbp,%rbx,4),%rdx
    mov (%r15,%rbx,8),%rsi
    mov 0x8(%rsi),%rax
    mov %r10,%rdi
    mov 0x8(%r14),%rax
    add %rax,%r13
    xor %rax,%rax
    mov %r13,0x8(%r14)
    mov 0x8(%rsp),%rcx
    mov (%r15,%r12,8),%rsi
    halt
"""

    def test_assembles(self):
        program = assemble(self.SOURCE)
        assert len(program) == 12
        assert program[3].operands[0] == Mem(base="rsi", disp=8)
        assert program[10].operands[0] == Mem(base="r15", index="r12",
                                              scale=8)
