"""FastTrack detector tests: the classic happens-before scenarios."""

import pytest

from repro.detector import (
    Access,
    AccessKind,
    FastTrack,
    ReferenceDetector,
    SyncOp,
)

VAR = (0x1000, 0)
LOCK = 0x2000


def read(tid, var=VAR, ip=1, tsc=0.0):
    return Access(tid=tid, var=var, kind=AccessKind.READ, ip=ip, tsc=tsc,
                  provenance="test")


def write(tid, var=VAR, ip=2, tsc=0.0):
    return Access(tid=tid, var=var, kind=AccessKind.WRITE, ip=ip, tsc=tsc,
                  provenance="test")


def sync(tid, kind, target=LOCK):
    return SyncOp(tid=tid, kind=kind, target=target, tsc=0.0)


@pytest.fixture(params=[FastTrack, ReferenceDetector])
def detector(request):
    return request.param()


class TestRaces:
    def test_unordered_write_write_races(self, detector):
        detector.access(write(0))
        detector.access(write(1))
        assert VAR[0] in detector.racy_addresses()

    def test_unordered_write_read_races(self, detector):
        detector.access(write(0))
        detector.access(read(1))
        assert VAR[0] in detector.racy_addresses()

    def test_unordered_read_write_races(self, detector):
        detector.access(read(0))
        detector.access(write(1))
        assert VAR[0] in detector.racy_addresses()

    def test_concurrent_reads_do_not_race(self, detector):
        detector.access(read(0))
        detector.access(read(1))
        detector.access(read(2))
        assert not detector.racy_addresses()

    def test_same_thread_never_races(self, detector):
        detector.access(write(0))
        detector.access(read(0))
        detector.access(write(0))
        assert not detector.racy_addresses()


class TestLockOrdering:
    def test_lock_protected_accesses_do_not_race(self, detector):
        for tid in (0, 1):
            detector.sync(sync(tid, "lock"))
            detector.access(write(tid))
            detector.sync(sync(tid, "unlock"))
        assert not detector.racy_addresses()

    def test_distinct_locks_do_not_order(self, detector):
        detector.sync(sync(0, "lock", target=0x111))
        detector.access(write(0))
        detector.sync(sync(0, "unlock", target=0x111))
        detector.sync(sync(1, "lock", target=0x222))
        detector.access(write(1))
        detector.sync(sync(1, "unlock", target=0x222))
        assert VAR[0] in detector.racy_addresses()

    def test_partially_locked_still_races(self, detector):
        detector.sync(sync(0, "lock"))
        detector.access(write(0))
        detector.sync(sync(0, "unlock"))
        detector.access(write(1))  # no lock
        assert VAR[0] in detector.racy_addresses()


class TestForkJoin:
    def test_fork_orders_parent_before_child(self, detector):
        detector.access(write(0))
        detector.sync(SyncOp(tid=0, kind="fork", target=1, tsc=0.0))
        detector.access(write(1))
        assert not detector.racy_addresses()

    def test_join_orders_child_before_parent(self, detector):
        detector.sync(SyncOp(tid=0, kind="fork", target=1, tsc=0.0))
        detector.access(write(1))
        detector.sync(SyncOp(tid=0, kind="join", target=1, tsc=0.0))
        detector.access(write(0))
        assert not detector.racy_addresses()

    def test_sibling_threads_race(self, detector):
        detector.sync(SyncOp(tid=0, kind="fork", target=1, tsc=0.0))
        detector.sync(SyncOp(tid=0, kind="fork", target=2, tsc=0.0))
        detector.access(write(1))
        detector.access(write(2))
        assert VAR[0] in detector.racy_addresses()


class TestSemaphores:
    def test_post_wait_orders(self, detector):
        detector.access(write(0))
        detector.sync(sync(0, "sem_post", target=0x300))
        detector.sync(sync(1, "sem_wait", target=0x300))
        detector.access(write(1))
        assert not detector.racy_addresses()


class TestAllocationGenerations:
    def test_distinct_generations_never_race(self, detector):
        """Recycled heap addresses are distinct variables (§4.3)."""
        detector.access(write(0, var=(0x5000, 0)))
        detector.access(write(1, var=(0x5000, 1)))
        assert not detector.racy_addresses()


class TestFastTrackSpecifics:
    def test_read_shared_then_write_reports_all_unordered_readers(self):
        ft = FastTrack()
        ft.access(read(0, ip=10))
        ft.access(read(1, ip=11))
        ft.access(read(2, ip=12))
        ft.access(write(3, ip=13))
        racy_ips = {r.first_ip for r in ft.races}
        assert racy_ips == {10, 11, 12}

    def test_same_epoch_fast_path_no_duplicate_reports(self):
        ft = FastTrack()
        ft.access(write(0))
        ft.access(write(1))
        before = len(ft.races)
        ft.access(write(1))  # same epoch: no recheck, no new race
        assert len(ft.races) == before

    def test_distinct_races_dedup(self):
        ft = FastTrack()
        ft.access(write(0, ip=1))
        ft.access(write(1, ip=2))
        ft.sync(sync(1, "unlock"))  # bump t1's epoch
        ft.access(write(1, ip=2))
        # write_epoch now t1's; next t0 write races again with same pair.
        assert len(ft.distinct_races()) <= len(ft.races)

    def test_report_metadata(self):
        ft = FastTrack()
        ft.access(write(0, ip=5))
        ft.access(write(1, ip=6))
        report = ft.races[0]
        assert report.first_tid == 0
        assert report.second.tid == 1
        assert report.pair == (5, 6)
        assert "race on" in report.describe()


class TestDifferential:
    """FastTrack must agree with the reference detector on racy vars."""

    def _scenario(self, detector, script):
        for item in script:
            if isinstance(item, SyncOp):
                detector.sync(item)
            else:
                detector.access(item)
        return frozenset(detector.racy_addresses())

    @pytest.mark.parametrize("script", [
        [write(0), write(1), read(2)],
        [read(0), read(1), write(0)],
        [sync(0, "lock"), write(0), sync(0, "unlock"),
         sync(1, "lock"), read(1), sync(1, "unlock")],
        [write(0), sync(0, "sem_post"), sync(1, "sem_wait"), write(1),
         write(2)],
        [SyncOp(0, "fork", 1, 0.0), write(1),
         SyncOp(0, "join", 1, 0.0), write(0), read(1, var=(0x7777, 0))],
    ])
    def test_agreement(self, script):
        assert self._scenario(FastTrack(), script) == \
            self._scenario(ReferenceDetector(), script)
