"""Sweep-API tests."""

import pytest

from repro.analysis.sweeps import (
    DetectionSweepResult,
    SweepResult,
    detection_sweep,
    overhead_sweep,
    tracesize_sweep,
)
from repro.pmu import VANILLA_DRIVER
from repro.workloads import PARSEC_WORKLOADS, RACE_BUGS, WorkloadScale

SCALE = WorkloadScale(iterations=20)
SMALL_SET = {name: PARSEC_WORKLOADS[name]
             for name in ("blackscholes", "streamcluster")}


class TestOverheadSweep:
    def test_grid_complete(self):
        result = overhead_sweep(SMALL_SET, SCALE, periods=(10, 1_000))
        assert set(result.cells) == set(SMALL_SET)
        for row in result.cells.values():
            assert set(row) == {10, 1_000}

    def test_overhead_decreases_with_period(self):
        result = overhead_sweep(SMALL_SET, SCALE, periods=(10, 10_000))
        geo = result.geomeans()
        assert geo[10] > geo[10_000]

    def test_vanilla_worse(self):
        # Needs runs long enough that both drivers actually sample (the
        # vanilla driver's fixed-start counter never fires on runs with
        # fewer than `period` events per core).
        scale = WorkloadScale(iterations=200)
        prorace = overhead_sweep(SMALL_SET, scale, periods=(100,))
        vanilla = overhead_sweep(SMALL_SET, scale, periods=(100,),
                                 driver=VANILLA_DRIVER)
        assert vanilla.geomeans()[100] > prorace.geomeans()[100]

    def test_render(self):
        result = overhead_sweep(SMALL_SET, SCALE, periods=(100,))
        text = result.render()
        assert "geomean" in text and "blackscholes" in text


class TestTracesizeSweep:
    def test_rates_positive_and_decreasing(self):
        result = tracesize_sweep(SMALL_SET, SCALE, periods=(10, 10_000))
        for row in result.cells.values():
            assert row[10] > row[10_000] > 0


class TestDetectionSweep:
    def test_matches_table2_shape(self):
        bugs = {"aget-bug2": RACE_BUGS["aget-bug2"],
                "mysql-644": RACE_BUGS["mysql-644"]}
        result = detection_sweep(
            bugs, WorkloadScale(iterations=8), periods=(50,), runs=3
        )
        assert result.cells["aget-bug2"][50] == 3  # pc-relative: always
        totals = result.totals()
        assert totals[50] >= 3
        text = result.render()
        assert "total" in text and "aget-bug2" in text
