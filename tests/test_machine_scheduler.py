"""Scheduler behaviour: determinism, diversity, TSC properties."""

from repro.isa import assemble
from repro.machine import Machine, MachineObserver

from tests.helpers import CLEAN_COUNTER_ASM


class _OrderRecorder(MachineObserver):
    def __init__(self):
        self.order = []

    def on_memory_access(self, event, registers):
        self.order.append((event.tid, event.tsc, event.ip))


def _record(program, seed):
    machine = Machine(program, seed=seed)
    recorder = _OrderRecorder()
    machine.attach(recorder)
    machine.run()
    return recorder.order


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        program = assemble(CLEAN_COUNTER_ASM)
        assert _record(program, 5) == _record(assemble(CLEAN_COUNTER_ASM), 5)

    def test_different_seeds_differ(self):
        """Seeds must produce interleaving diversity (needed for the
        Table 2 detection-probability methodology)."""
        program_a = assemble(CLEAN_COUNTER_ASM)
        program_b = assemble(CLEAN_COUNTER_ASM)
        orders = {tuple(_record(p, s)) for p, s in
                  ((program_a, 1), (program_b, 2))}
        assert len(orders) == 2


class TestTsc:
    def test_tsc_strictly_increases_per_event(self):
        program = assemble(CLEAN_COUNTER_ASM)
        order = _record(program, 3)
        tscs = [t for _, t, _ in order]
        assert tscs == sorted(tscs)
        assert len(set(tscs)) == len(tscs)  # one instruction per tsc

    def test_per_thread_program_order_preserved(self):
        program = assemble(CLEAN_COUNTER_ASM)
        order = _record(program, 3)
        by_thread = {}
        for tid, tsc, _ in order:
            by_thread.setdefault(tid, []).append(tsc)
        for tscs in by_thread.values():
            assert tscs == sorted(tscs)


class TestCoreAssignment:
    def test_threads_pinned_round_robin(self):
        program = assemble(CLEAN_COUNTER_ASM)
        machine = Machine(program, num_cores=2, seed=0)
        machine.run()
        for tid, thread in machine.threads.items():
            assert thread.core == tid % 2
