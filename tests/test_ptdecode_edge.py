"""Decoder edge cases: window lookup, locate misses, torn tails."""

import pytest

from repro.isa import assemble
from repro.ptdecode.decoder import DecodedPath
from repro.pmu.records import SyncRecord
from repro.ptdecode import locate_syncs
from repro.tracing import trace_run


def _path():
    return DecodedPath(
        tid=0,
        steps=[10, 11, 12, 13, 14, 15, 16],
        anchors=[(0, 100), (3, 200), (6, 300)],
    )


class TestSegmentLookup:
    def test_inside_window(self):
        assert _path().segment_for_tsc(150) == (0, 3)
        assert _path().segment_for_tsc(250) == (3, 6)

    def test_exactly_at_anchor(self):
        # Window is half-open on the left: tsc == anchor maps to the
        # segment *ending* at that anchor.
        assert _path().segment_for_tsc(200) == (0, 3)

    def test_before_first_anchor(self):
        assert _path().segment_for_tsc(50) == (-1, 0)

    def test_after_last_anchor(self):
        assert _path().segment_for_tsc(999) == (6, 6)


class TestLocate:
    def test_unique_hit(self):
        path = _path()
        assert path.locate(12, 150) == 2

    def test_wrong_window_misses(self):
        path = _path()
        # ip 12 executed in the first window; searching the second
        # window's time range must not find it.
        assert path.locate(12, 250) is None

    def test_unknown_ip_misses(self):
        assert _path().locate(99, 150) is None

    def test_ambiguity_counted(self):
        path = DecodedPath(
            tid=0, steps=[10, 11, 10, 12], anchors=[(0, 100), (3, 200)],
        )
        index = path.locate(10, 150)
        assert index == 0  # first occurrence
        assert path.ambiguous == 1


class TestLocateSyncs:
    def test_records_from_other_windows_skipped(self, clean_program):
        bundle = trace_run(clean_program, period=3, seed=2)
        from repro.ptdecode import decode_all

        paths = decode_all(clean_program, bundle.pt_traces)
        # A fabricated record whose ip never executed must be dropped.
        bogus = SyncRecord(tsc=5, seq=0, tid=0, ip=10_000, kind="lock",
                           target=1)
        located = locate_syncs(paths[0], [bogus])
        assert located == []

    def test_all_real_records_locate(self, clean_program):
        bundle = trace_run(clean_program, period=3, seed=2)
        from repro.ptdecode import decode_all

        paths = decode_all(clean_program, bundle.pt_traces)
        for tid, path in paths.items():
            records = [r for r in bundle.sync_records if r.tid == tid]
            located = locate_syncs(path, records)
            assert len(located) == len(records)
            for record, step in located:
                assert path.steps[step] == record.ip


class TestLazyLocateIndices:
    """The bisect-backed query indices must behave exactly like the old
    linear window scan, ambiguity accounting included."""

    def test_locate_equals_naive_scan(self):
        path = DecodedPath(
            tid=0,
            steps=[10, 11, 10, 12, 10, 11, 13],
            anchors=[(0, 100), (3, 200), (6, 300)],
        )
        for tsc in (50, 100, 150, 200, 250, 300, 400):
            lo, hi = path.segment_for_tsc(tsc)
            for ip in (10, 11, 12, 13, 99):
                naive = [
                    j for j in range(max(lo, 0),
                                     min(hi, len(path.steps) - 1) + 1)
                    if path.steps[j] == ip
                ]
                expected = naive[0] if naive else None
                assert path.locate(ip, tsc) == expected

    def test_ambiguous_window_counted_once(self):
        path = DecodedPath(
            tid=0, steps=[10, 10, 10], anchors=[(0, 100), (2, 200)],
        )
        assert path.locate(10, 150) == 0
        assert path.ambiguous == 1

    def test_gap_still_refuses_placement(self):
        path = DecodedPath(
            tid=0, steps=[10, 11], anchors=[(0, 100), (1, 200)],
            gap_ranges=[(120, 180)],
        )
        assert path.locate(10, 150) is None
        assert path.locate(11, 200) == 1
