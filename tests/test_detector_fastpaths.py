"""Units for the detector micro-optimizations.

Copy-on-write vector clocks and the allocation-free same-epoch fast
paths in FastTrack are throughput work; these tests pin down the
sharing/splitting behavior and that the fast paths return without
touching shadow state.  Semantic coverage (races found/not found) lives
in test_detector_fasttrack*.py and the property suites.
"""

from repro.detector.events import Access, AccessKind
from repro.detector.fasttrack import FastTrack
from repro.detector.vectorclock import VectorClock


def _access(tid, kind, var=(0x100, 0), ip=1):
    return Access(tid=tid, var=var, kind=kind, ip=ip, tsc=0.0,
                  provenance="test")


class TestVectorClockCOW:
    def test_copy_shares_storage_until_mutation(self):
        vc = VectorClock({1: 3, 2: 5})
        clone = vc.copy()
        assert clone._clocks is vc._clocks
        clone.increment(1)
        assert clone._clocks is not vc._clocks
        assert vc.get(1) == 3
        assert clone.get(1) == 4

    def test_mutating_original_does_not_leak_into_copy(self):
        vc = VectorClock({1: 3})
        clone = vc.copy()
        vc.set(2, 9)
        assert vc.get(2) == 9
        assert clone.get(2) == 0

    def test_increment_after_copy_isolates_both_ways(self):
        vc = VectorClock({1: 1})
        clone = vc.copy()
        vc.increment(1)
        clone.increment(1)
        vc.increment(1)
        assert vc.get(1) == 3
        assert clone.get(1) == 2

    def test_noop_join_keeps_sharing(self):
        vc = VectorClock({1: 5})
        clone = vc.copy()
        clone.join(VectorClock({1: 2}))
        assert clone._clocks is vc._clocks
        clone.join(VectorClock({3: 1}))
        assert clone._clocks is not vc._clocks
        assert clone.get(3) == 1
        assert vc.get(3) == 0

    def test_chained_copies(self):
        a = VectorClock({1: 1})
        b = a.copy()
        c = b.copy()
        c.set(2, 7)
        assert a.get(2) == 0
        assert b.get(2) == 0
        assert c.get(2) == 7
        b.set(3, 4)
        assert a.get(3) == 0
        assert c.get(3) == 0


class TestFastTrackSameEpochFastPath:
    def test_repeated_read_leaves_state_untouched(self):
        ft = FastTrack()
        read = _access(1, AccessKind.READ)
        ft.access(read)
        state = ft._vars[read.var]
        epoch = (state.read_clock, state.read_tid)
        ft.access(read)
        ft.access(read)
        assert ft._vars[read.var] is state
        assert (state.read_clock, state.read_tid) == epoch
        assert state.read_vc is None
        assert ft.accesses_processed == 3
        assert ft.races == []

    def test_repeated_write_leaves_state_untouched(self):
        ft = FastTrack()
        write = _access(1, AccessKind.WRITE)
        ft.access(write)
        state = ft._vars[write.var]
        epoch = (state.write_clock, state.write_tid)
        ft.access(write)
        assert ft._vars[write.var] is state
        assert (state.write_clock, state.write_tid) == epoch
        assert ft.accesses_processed == 2

    def test_shared_read_fast_path(self):
        """Once reads inflate to a vector clock, a same-epoch re-read by
        either thread is still a fast-path return."""
        ft = FastTrack()
        write = _access(1, AccessKind.WRITE)
        ft.access(write)  # racy with t2's read: forces the report path
        ft.access(_access(1, AccessKind.READ))
        ft.access(_access(2, AccessKind.READ))
        state = ft._vars[write.var]
        assert state.read_vc is not None
        snapshot = dict(state.read_vc.items())
        ft.access(_access(1, AccessKind.READ))
        ft.access(_access(2, AccessKind.READ))
        assert dict(state.read_vc.items()) == snapshot

    def test_fast_path_does_not_swallow_new_epochs(self):
        """After the accessor's clock advances, the same access misses
        the fast path and updates shadow state."""
        ft = FastTrack()
        read = _access(1, AccessKind.READ)
        ft.access(read)
        first = ft._vars[read.var].read_clock
        ft._threads[1].increment(1)
        ft.access(read)
        second = ft._vars[read.var].read_clock
        assert second == first + 1
