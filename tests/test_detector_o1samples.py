"""O(1)-samples sampling detector: constant-size shadow state, seeded
determinism, and the precision guarantee (its checks are a strict subset
of FastTrack's, so reported addresses always are too)."""

import random

import pytest

from repro.detector import (
    Access,
    AccessKind,
    FastTrack,
    O1SamplesDetector,
    SyncOp,
)

LOCK = 0x900


def access(tid, address, kind, ip, tsc):
    return Access(tid=tid, var=(address, 0), kind=kind, ip=ip,
                  tsc=float(tsc), provenance="test")


def random_stream(seed, threads=4, addresses=8, length=400):
    """A seeded mix of reads, writes and lock/unlock pairs."""
    rng = random.Random(seed)
    events = []
    held = {tid: None for tid in range(threads)}
    tsc = 0.0
    for step in range(length):
        tsc += 1.0
        tid = rng.randrange(threads)
        roll = rng.random()
        if roll < 0.08 and held[tid] is None:
            held[tid] = LOCK + rng.randrange(2)
            events.append(SyncOp(tid=tid, kind="lock", target=held[tid],
                                 tsc=tsc))
        elif roll < 0.16 and held[tid] is not None:
            events.append(SyncOp(tid=tid, kind="unlock", target=held[tid],
                                 tsc=tsc))
            held[tid] = None
        else:
            kind = (AccessKind.WRITE if rng.random() < 0.4
                    else AccessKind.READ)
            events.append(access(tid, 0x1000 + 8 * rng.randrange(addresses),
                                 kind, ip=step, tsc=tsc))
    return events


def run(detector, events):
    for event in events:
        if isinstance(event, SyncOp):
            detector.sync(event)
        else:
            detector.access(event)
    return detector.finish()


class TestBasics:
    def test_write_write_race_found(self):
        findings = run(O1SamplesDetector(), [
            access(0, 0x1000, AccessKind.WRITE, ip=1, tsc=0),
            access(1, 0x1000, AccessKind.WRITE, ip=2, tsc=1),
        ])
        assert 0x1000 in findings.racy_addresses

    def test_write_read_race_found(self):
        findings = run(O1SamplesDetector(), [
            access(0, 0x1000, AccessKind.WRITE, ip=1, tsc=0),
            access(1, 0x1000, AccessKind.READ, ip=2, tsc=1),
        ])
        assert 0x1000 in findings.racy_addresses

    def test_locked_accesses_clean(self):
        events = []
        tsc = 0
        for tid in (0, 1):
            events += [
                SyncOp(tid=tid, kind="lock", target=LOCK, tsc=tsc),
                access(tid, 0x1000, AccessKind.WRITE, ip=1 + tid,
                       tsc=tsc + 1),
                SyncOp(tid=tid, kind="unlock", target=LOCK, tsc=tsc + 2),
            ]
            tsc += 3
        findings = run(O1SamplesDetector(), events)
        assert not findings.racy_addresses

    def test_constant_space_details(self):
        events = random_stream(seed=5)
        findings = run(O1SamplesDetector(seed=1), events)
        details = findings.details
        assert details["slots_per_var"] == 2
        assert details["sample_seed"] == 1
        # Heavy read traffic must actually be sampled out, not tracked.
        assert details["reads_sampled_out"] > 0


class TestDeterminismAndPrecision:
    def test_same_seed_same_findings(self):
        events = random_stream(seed=11)
        first = run(O1SamplesDetector(seed=3), list(events))
        second = run(O1SamplesDetector(seed=3), list(events))
        assert first.racy_addresses == second.racy_addresses
        assert first.details == second.details

    @pytest.mark.parametrize("stream_seed", range(6))
    @pytest.mark.parametrize("sample_seed", [0, 1])
    def test_subset_of_fasttrack(self, stream_seed, sample_seed):
        """Sampling can only *miss* racy variables, never invent them:
        both slots hold real accesses with exact epochs, so any race the
        O(1) detector reports is a genuine unordered conflicting pair,
        and FastTrack always reports at least the first race on each
        such variable.  (Instruction *pairs* may legitimately differ:
        the read reservoir can hold an older read than FastTrack's
        current read state, naming the same race by another witness.)"""
        events = random_stream(seed=stream_seed)
        sampled = run(O1SamplesDetector(seed=sample_seed), list(events))
        full = run(FastTrack(), list(events))
        assert sampled.racy_addresses <= full.racy_addresses

    def test_write_slot_always_current(self):
        """The write slot is exact (not sampled), so write/write races
        are found regardless of the read reservoir."""
        events = [access(0, 0x1000, AccessKind.READ, ip=i, tsc=i)
                  for i in range(50)]
        events.append(access(0, 0x1000, AccessKind.WRITE, ip=100, tsc=100))
        events.append(access(1, 0x1000, AccessKind.WRITE, ip=101, tsc=101))
        findings = run(O1SamplesDetector(seed=9), events)
        assert 0x1000 in findings.racy_addresses
