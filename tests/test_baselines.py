"""Baseline detector tests: RaceZ, LiteRace, Pacer, DataCollider."""

import pytest

from repro.baselines import (
    DataCollider,
    LiteRace,
    MAX_WATCHPOINTS,
    Pacer,
    RaceZ,
    run_datacollider,
    run_literace,
    run_pacer,
)
from repro.isa import assemble
from repro.pmu import VANILLA_DRIVER
from repro.workloads import RACE_BUGS, WorkloadScale

from tests.helpers import CLEAN_COUNTER_ASM, RACY_ASM

SCALE = WorkloadScale(iterations=8)


class TestRaceZ:
    def test_uses_vanilla_driver_and_basicblock_mode(self):
        racez = RaceZ()
        assert racez.driver is VANILLA_DRIVER
        assert racez.mode == "basicblock"

    def test_no_false_positives_on_clean_program(self):
        program = assemble(CLEAN_COUNTER_ASM)
        result = RaceZ().detect(program, period=2, seed=1)
        assert not result.races

    def test_detects_race_when_sampling_is_dense(self):
        program = assemble(RACY_ASM)
        hits = sum(
            bool(RaceZ().detect(program, period=2, seed=s).races)
            for s in range(5)
        )
        assert hits >= 3

    def test_weaker_than_prorace_at_sparse_sampling(self):
        from repro.analysis import OfflinePipeline
        from repro.tracing import trace_run

        bug = RACE_BUGS["cherokee-0.9.2"]
        program = bug.build(SCALE)
        prorace = racez = 0
        for seed in range(4):
            bundle = trace_run(program, period=200, seed=seed)
            full = OfflinePipeline(program, mode="full").analyze(bundle)
            bb = OfflinePipeline(program, mode="basicblock").analyze(bundle)
            prorace += bug.detected(program, full)
            racez += bug.detected(program, bb)
        assert prorace > racez


class TestLiteRace:
    def test_detects_races(self):
        program = assemble(RACY_ASM)
        literace = run_literace(program, seed=0)
        assert program.symbols["racy"] in literace.racy_addresses()

    def test_clean_program_silent(self):
        program = assemble(CLEAN_COUNTER_ASM)
        literace = run_literace(program, seed=0)
        assert not literace.racy_addresses()

    def test_cold_function_rate_decays(self):
        from repro.baselines.literace import _FunctionSampler

        sampler = _FunctionSampler()
        assert sampler.should_sample(0.0)  # first execution: 100%
        assert sampler.rate == 0.5
        for _ in range(20):
            sampler.should_sample(0.0)
        assert sampler.rate == sampler.floor

    def test_overhead_grows_with_logging(self):
        program = assemble(RACY_ASM)
        literace = run_literace(program, seed=0)
        assert literace.overhead_cycles() > 0
        assert literace.logged_accesses > 0


class TestPacer:
    def test_full_rate_equals_full_detection(self):
        program = assemble(RACY_ASM)
        pacer = run_pacer(program, sampling_rate=1.0, seed=0)
        assert program.symbols["racy"] in pacer.racy_addresses()

    def test_zero_rate_detects_nothing(self):
        program = assemble(RACY_ASM)
        pacer = run_pacer(program, sampling_rate=0.0, seed=0)
        assert not pacer.racy_addresses()

    def test_detection_roughly_proportional_to_rate(self):
        """§2: Pacer's coverage is approximately proportional to the
        sampling rate."""
        program_src = RACY_ASM
        hits = {rate: 0 for rate in (0.05, 0.9)}
        for rate in hits:
            for seed in range(8):
                pacer = run_pacer(assemble(program_src),
                                  sampling_rate=rate, seed=seed)
                hits[rate] += bool(pacer.racy_addresses())
        assert hits[0.9] > hits[0.05]

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Pacer(assemble(RACY_ASM), sampling_rate=1.5)

    def test_clean_program_silent(self):
        pacer = run_pacer(assemble(CLEAN_COUNTER_ASM), sampling_rate=1.0)
        assert not pacer.racy_addresses()


class TestDataCollider:
    def test_detects_overlapping_race(self):
        program = assemble(RACY_ASM)
        hits = 0
        for seed in range(8):
            collider = run_datacollider(
                program, period=5, delay_cycles=500, seed=seed
            )
            hits += bool(collider.racy_addresses())
        assert hits >= 1

    def test_read_read_not_reported(self):
        source = """
.global shared 7
main:
    spawn w, %rbx
    mov $20, %rcx
l:
    mov shared(%rip), %rax
    dec %rcx
    cmp $0, %rcx
    jne l
    join %rbx
    halt
w:
    mov $20, %rcx
wl:
    mov shared(%rip), %rdx
    dec %rcx
    cmp $0, %rcx
    jne wl
    halt
"""
        program = assemble(source)
        for seed in range(5):
            collider = run_datacollider(program, period=3,
                                        delay_cycles=1000, seed=seed)
            assert not collider.collisions

    def test_watchpoint_limit_respected(self):
        program = assemble(RACY_ASM)
        collider = DataCollider(program, period=1, delay_cycles=10**9)
        from repro.machine import Machine

        machine = Machine(program, seed=0)
        machine.attach(collider)
        machine.run()
        # With never-expiring watchpoints and period 1, the four debug
        # registers saturate.
        assert collider.delays <= collider.samples
        assert len(collider._watchpoints) <= MAX_WATCHPOINTS

    def test_overhead_proportional_to_delays(self):
        program = assemble(RACY_ASM)
        collider = run_datacollider(program, period=5, delay_cycles=100,
                                    seed=0)
        assert collider.overhead_cycles() == collider.delays * 100
