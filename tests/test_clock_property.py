"""Property tests for the clock-reconciliation laws (Hypothesis).

Three laws the pipeline's correctness argument leans on, stated over
arbitrary inputs rather than hand-picked examples:

* monotonicity repair is idempotent and insensitive to the order the
  bundle's (disjoint) streams are repaired in;
* the sync-stream repair restores exactly the two invariants ordering
  needs — globally nondecreasing in ``seq`` order, strictly increasing
  per thread — moving no record backwards;
* the uncertainty clamp always lands inside the thread's own sync
  window ``(prev, next]``, whatever the estimate claims;
* zero injected clock faults leave traces and analysis byte-identical
  (the snap-to-identity guarantee).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import (
    estimate_clock_model,
    apply_clock_correction,
    inject_clock_faults,
    repair_monotonic,
    repair_streams,
)
from repro.clock.repair import REPAIR_STREAMS, RepairStats, _repair_sync
from repro.detector.events import uncertain_merge_tsc
from repro.pmu.records import SyncRecord
from repro.tracing import trace_run, trace_to_bytes
from repro.workloads import RACE_BUGS, SMALL


@pytest.fixture(scope="module")
def disturbed_bundle():
    program = RACE_BUGS["apache-21287"].build(SMALL)
    clean = trace_run(program, period=100, seed=3)
    disturbed, _ = inject_clock_faults(clean, skew=1.0, drift=0.5,
                                       step=0.5, regress=0.3, seed=3)
    return disturbed


# ----------------------------------------------------------------------
# repair_monotonic: running-max clamp laws
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
def test_repair_monotonic_laws(values):
    repaired, moved, worst = repair_monotonic(values)
    assert len(repaired) == len(values)
    assert all(a <= b for a, b in zip(repaired, repaired[1:]))
    # Never runs ahead of the input: each output is some input prefix max.
    for i, value in enumerate(repaired):
        assert value == max(values[:i + 1])
    assert moved == sum(1 for v, r in zip(values, repaired) if v != r)
    assert worst == max(
        (r - v for v, r in zip(values, repaired)), default=0)
    # Idempotent.
    again, moved_again, _ = repair_monotonic(repaired)
    assert again == repaired and moved_again == 0


# ----------------------------------------------------------------------
# _repair_sync: the two ordering invariants
# ----------------------------------------------------------------------

sync_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=500),
              st.integers(min_value=0, max_value=3)),
    max_size=40,
)


@given(sync_streams)
def test_repair_sync_invariants(raw):
    records = [
        SyncRecord(tsc=tsc, seq=seq, tid=tid, ip=0, kind="lock",
                   target=0x10)
        for seq, (tsc, tid) in enumerate(raw)
    ]
    repaired, changed = _repair_sync(records, RepairStats())
    tscs = [r.tsc for r in repaired]
    assert all(a <= b for a, b in zip(tscs, tscs[1:]))
    for tid in {r.tid for r in repaired}:
        own = [r.tsc for r in repaired if r.tid == tid]
        assert all(a < b for a, b in zip(own, own[1:]))
    # Records only ever move forward, and untouched streams come back
    # as the same object.
    assert all(r.tsc >= o.tsc for r, o in zip(repaired, records))
    if not changed:
        assert repaired is records
    # Idempotent.
    again, changed_again = _repair_sync(repaired, RepairStats())
    assert not changed_again and again is repaired


# ----------------------------------------------------------------------
# repair_streams: order-insensitive, idempotent
# ----------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.permutations(REPAIR_STREAMS))
def test_repair_streams_order_insensitive(disturbed_bundle, order):
    # Structural equality, not serialized bytes: a *disturbed* bundle
    # may carry negative TSCs the unsigned container rightly refuses.
    canonical, stats = repair_streams(disturbed_bundle)
    assert stats.total_moved > 0
    permuted, _ = repair_streams(disturbed_bundle, order=tuple(order))
    assert permuted.sync_records == canonical.sync_records
    assert permuted.samples == canonical.samples
    assert permuted.alloc_records == canonical.alloc_records
    assert permuted.pt_traces == canonical.pt_traces
    # Idempotent: a repaired bundle comes back as the same object.
    again, again_stats = repair_streams(canonical)
    assert again is canonical
    assert again_stats.total_moved == 0


# ----------------------------------------------------------------------
# uncertain_merge_tsc: the clamp never leaves (prev, next]
# ----------------------------------------------------------------------

@given(
    tsc=st.floats(min_value=0, max_value=1e6),
    half_width=st.floats(min_value=0, max_value=1e5),
    prev_gap=st.none() | st.floats(min_value=0, max_value=1e5),
    next_gap=st.floats(min_value=1.0, max_value=1e5),
    has_next=st.booleans(),
)
def test_uncertain_merge_stays_in_window(tsc, half_width, prev_gap,
                                         next_gap, has_next):
    prev_sync = None if prev_gap is None else tsc - prev_gap
    next_sync = (prev_sync if prev_sync is not None else tsc) + next_gap \
        if has_next else None
    value = uncertain_merge_tsc(tsc, half_width, prev_sync, next_sync)
    if prev_sync is not None:
        assert value > prev_sync
    if next_sync is not None:
        assert value <= next_sync
    if prev_sync is None and next_sync is None:
        assert value == tsc + half_width


# ----------------------------------------------------------------------
# Snap-to-identity: zero clock faults leave everything byte-identical
# ----------------------------------------------------------------------

@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40))
def test_zero_clock_faults_byte_identical(seed):
    program = RACE_BUGS["pbzip2-0.9.4"].build(SMALL)
    clean = trace_run(program, period=150, seed=seed)
    before = trace_to_bytes(clean)
    model = estimate_clock_model(clean)
    assert model.is_identity
    corrected, _model, stats = apply_clock_correction(clean)
    assert corrected is clean
    assert stats.total_moved == 0
    assert trace_to_bytes(corrected) == before
