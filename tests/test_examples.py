"""Smoke tests: the shipped examples must run and make their point."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "races detected" in out
        assert "balance" in out

    def test_replay_anatomy_matches_paper(self, capsys):
        _load("replay_anatomy").main()
        out = capsys.readouterr().out
        assert "[backward]" in out
        assert "exactly as in the paper" in out

    def test_all_examples_importable(self):
        for path in EXAMPLES.glob("*.py"):
            module = _load(path.stem)
            assert hasattr(module, "main"), path.name
