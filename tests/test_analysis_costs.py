"""Cost model tests: overhead estimation and trace-size accounting."""

import pytest

from repro.analysis import estimate_overhead, trace_rate_mb_per_s
from repro.pmu import PRORACE_DRIVER, VANILLA_DRIVER
from repro.tracing import trace_run
from repro.workloads import APP_WORKLOADS, PARSEC_WORKLOADS, WorkloadScale

SCALE = WorkloadScale(iterations=40)


def _overhead(workload, period, driver=PRORACE_DRIVER, seed=0):
    program = workload.instantiate(SCALE)
    bundle = trace_run(program, period=period, driver=driver, seed=seed)
    return estimate_overhead(bundle)


class TestOverheadShape:
    def test_smaller_period_costs_more(self):
        w = PARSEC_WORKLOADS["blackscholes"]
        overheads = [
            _overhead(w, period).overhead for period in (10, 100, 1000)
        ]
        assert overheads[0] > overheads[1] > overheads[2]

    def test_prorace_driver_cheaper_than_vanilla(self):
        w = PARSEC_WORKLOADS["streamcluster"]
        for period in (10, 100, 1000):
            prorace = _overhead(w, period, PRORACE_DRIVER).overhead
            vanilla = _overhead(w, period, VANILLA_DRIVER).overhead
            assert prorace < vanilla, f"period {period}"

    def test_io_bound_app_hides_overhead(self):
        """§7.2: network-I/O-dominant applications show negligible
        overhead even at period 10."""
        apache = _overhead(APP_WORKLOADS["apache"], period=10)
        assert apache.overhead < 0.02

    def test_cpu_bound_app_pays(self):
        pbzip2 = _overhead(APP_WORKLOADS["pbzip2"], period=10)
        assert pbzip2.overhead > 0.5

    def test_pebs_dominates_tracing(self):
        """§7.2: PEBS contributes 97–99% of tracing cost at small
        periods; PT and sync stay small."""
        est = _overhead(PARSEC_WORKLOADS["blackscholes"], period=10)
        breakdown = est.breakdown()
        assert breakdown["pebs"] > 0.9
        assert breakdown["pt"] < 0.1

    def test_breakdown_sums_to_one(self):
        est = _overhead(PARSEC_WORKLOADS["vips"], period=100)
        assert abs(sum(est.breakdown().values()) - 1.0) < 1e-9

    def test_normalized_runtime(self):
        est = _overhead(PARSEC_WORKLOADS["vips"], period=100)
        assert est.normalized_runtime == pytest.approx(1 + est.overhead)


class TestTraceSize:
    def test_rate_positive(self):
        program = PARSEC_WORKLOADS["canneal"].instantiate(SCALE)
        bundle = trace_run(program, period=10, seed=0)
        assert trace_rate_mb_per_s(bundle) > 0

    def test_smaller_period_bigger_trace(self):
        program = PARSEC_WORKLOADS["canneal"].instantiate(SCALE)
        small = trace_run(program, period=10, seed=0)
        large = trace_run(program, period=1000, seed=0)
        assert small.total_trace_bytes > large.total_trace_bytes

    def test_pebs_dominates_bytes_at_small_period(self):
        program = PARSEC_WORKLOADS["facesim"].instantiate(SCALE)
        bundle = trace_run(program, period=10, seed=0)
        assert bundle.pebs_size_bytes > bundle.pt_size_bytes

    def test_pt_size_independent_of_period(self):
        """§7.3: the PT trace size is constant across PEBS configs."""
        program = PARSEC_WORKLOADS["facesim"].instantiate(SCALE)
        sizes = {
            trace_run(program, period=p, seed=0).pt_size_bytes
            for p in (10, 100, 1000)
        }
        assert len(sizes) == 1

    def test_vanilla_records_inflate_trace(self):
        program = PARSEC_WORKLOADS["facesim"].instantiate(SCALE)
        vanilla = trace_run(program, period=10, driver=VANILLA_DRIVER, seed=0)
        prorace = trace_run(program, period=10, driver=PRORACE_DRIVER, seed=0)
        written_v = vanilla.pebs_accounting.samples_written
        written_p = prorace.pebs_accounting.samples_written
        if written_v and written_p:
            assert (vanilla.pebs_size_bytes / written_v) > \
                (prorace.pebs_size_bytes / written_p)
