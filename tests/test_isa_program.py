"""Unit tests for Program, ProgramBuilder and basic-block extraction."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Op
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.program import (
    DATA_BASE,
    HEAP_BASE,
    Program,
    ProgramBuilder,
    ProgramError,
    STACK_BASE,
)


class TestAddressSpaces:
    def test_segments_do_not_overlap(self):
        assert DATA_BASE < HEAP_BASE < STACK_BASE


class TestBuilder:
    def test_globals_are_word_spaced(self):
        b = ProgramBuilder()
        a = b.global_word("a", 1)
        c = b.global_word("c", 2)
        assert c == a + 8

    def test_array_layout(self):
        b = ProgramBuilder()
        base = b.global_array("arr", [5, 6, 7])
        b.label("main")
        b.halt()
        program = b.build()
        assert program.data[base + 8] == 6

    def test_duplicate_global_rejected(self):
        b = ProgramBuilder()
        b.global_word("x")
        with pytest.raises(ProgramError):
            b.global_word("x")

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("a")
        with pytest.raises(ProgramError):
            b.label("a")

    def test_mem_to_mem_mov_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(ProgramError):
            b.mov(Mem(base="rax"), Mem(base="rbx"))

    def test_unknown_symbol(self):
        b = ProgramBuilder()
        with pytest.raises(ProgramError):
            b.symbol("missing")

    def test_builds_runnable_program(self):
        b = ProgramBuilder("tiny")
        addr = b.global_word("g", 3)
        b.label("main")
        b.load(Mem(disp=addr), Reg("rax"))
        b.add(Imm(1), Reg("rax"))
        b.store(Reg("rax"), Mem(disp=addr))
        b.halt()
        program = b.build()
        assert len(program) == 4
        assert program.name == "tiny"


class TestValidation:
    def test_unknown_target_rejected(self):
        with pytest.raises(ProgramError, match="unknown label"):
            Program([Instruction(Op.JMP, (), "nowhere")], {})

    def test_two_memory_operands_rejected(self):
        bad = Instruction(Op.CMP, (Mem(base="rax"), Mem(base="rbx")))
        with pytest.raises(ProgramError, match="memory operands"):
            Program([bad], {})

    def test_label_out_of_range(self):
        with pytest.raises(ProgramError, match="out of range"):
            Program([Instruction(Op.HALT)], {"x": 5})


class TestBasicBlocks:
    SOURCE = """
main:
    mov $3, %rcx
loop:
    dec %rcx
    cmp $0, %rcx
    jne loop
    halt
"""

    def test_partition(self):
        program = assemble(self.SOURCE)
        blocks = program.basic_blocks()
        starts = [b.start for b in blocks]
        # Leaders: 0 (entry), 1 (branch target `loop`), 4 (after jne).
        assert starts == [0, 1, 4]

    def test_blocks_cover_program(self):
        program = assemble(self.SOURCE)
        covered = sorted(
            addr for b in program.basic_blocks() for addr in b.addresses()
        )
        assert covered == list(range(len(program)))

    def test_block_containing(self):
        program = assemble(self.SOURCE)
        block = program.block_containing(2)
        assert block.start == 1 and block.end == 4

    def test_marker_labels_do_not_split_blocks(self):
        program = assemble(
            "main:\n    mov $1, %rax\nmarker:\n    mov $2, %rbx\n    halt\n"
        )
        assert len(program.basic_blocks()) == 1

    def test_spawn_target_is_leader(self):
        program = assemble(
            "main:\n    spawn w\n    halt\nw:\n    nop\n    halt\n"
        )
        starts = [b.start for b in program.basic_blocks()]
        assert program.resolve("w") in starts

    def test_block_containing_invalid(self):
        program = assemble(self.SOURCE)
        with pytest.raises(ProgramError):
            program.block_containing(999)


class TestListing:
    def test_listing_mentions_labels_and_instructions(self):
        program = assemble("main:\n    mov $1, %rax\n    halt\n")
        listing = program.listing()
        assert "main:" in listing
        assert "halt" in listing
