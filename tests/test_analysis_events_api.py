"""The events_for API: ordering guarantees alternative detectors rely on."""

import pytest

from repro.analysis import OfflinePipeline
from repro.detector import Access, SyncOp
from repro.tracing import trace_run

from tests.helpers import CLEAN_COUNTER_ASM, RACY_ASM
from repro.isa import assemble


@pytest.fixture
def events_and_replay(racy_program):
    bundle = trace_run(racy_program, period=4, seed=6)
    return OfflinePipeline(racy_program).events_for(bundle)


class TestEventStream:
    def test_sorted_by_key(self, events_and_replay):
        events, _ = events_and_replay
        keys = [key for key, _ in events]
        assert keys == sorted(keys)

    def test_per_thread_program_order(self, events_and_replay):
        """Within one thread, event order must follow program order —
        the property that makes the stream HB-consistent."""
        events, replay = events_and_replay
        last_tsc = {}
        for key, event in events:
            tsc = key[0]
            tid = event.tid
            assert tsc >= last_tsc.get(tid, float("-inf"))
            last_tsc[tid] = tsc

    def test_unlock_precedes_matching_lock(self, clean_program):
        """For every lock address, the stream alternates so that each
        acquisition is preceded by the release it synchronizes with."""
        bundle = trace_run(clean_program, period=4, seed=3)
        events, _ = OfflinePipeline(clean_program).events_for(bundle)
        held = {}
        for _, event in events:
            if not isinstance(event, SyncOp):
                continue
            if event.kind == "lock":
                assert held.get(event.target) is None, \
                    "lock acquired while held"
                held[event.target] = event.tid
            elif event.kind == "unlock":
                assert held.get(event.target) == event.tid
                held[event.target] = None

    def test_access_count_matches_replay(self, events_and_replay):
        events, replay = events_and_replay
        accesses = [e for _, e in events if isinstance(e, Access)]
        expected = sum(len(v) for v in replay.per_thread.values())
        assert len(accesses) == expected

    def test_sampled_accesses_have_exact_integer_tsc(self, events_and_replay):
        events, _ = events_and_replay
        for _, event in events:
            if isinstance(event, Access) and event.provenance == "sampled":
                assert float(event.tsc).is_integer()


class TestSharedKeyHelpers:
    """Satellite: the (tsc, kind, tid, seq) total-order key lives in one
    place — repro.detector.events — and the stream's keys are exactly
    what those helpers produce."""

    def test_stream_keys_match_shared_helpers(self, events_and_replay):
        from types import SimpleNamespace

        from repro.detector.events import (
            EVENT_KIND_ACCESS,
            EVENT_KIND_SYNC,
            access_sort_key,
            sync_sort_key,
        )

        events, _ = events_and_replay
        assert events
        for key, event in events:
            if isinstance(event, Access):
                assert key == access_sort_key(event.tsc, event.tid, key[3])
                assert key[1] == EVENT_KIND_ACCESS
            else:
                assert key == sync_sort_key(
                    SimpleNamespace(tsc=event.tsc, seq=key[3])
                )
                assert key[1] == EVENT_KIND_SYNC

    def test_access_sorts_before_sync_at_equal_tsc(self):
        from types import SimpleNamespace

        from repro.detector.events import access_sort_key, sync_sort_key

        access_key = access_sort_key(5.0, 3, 9)
        sync_key = sync_sort_key(SimpleNamespace(tsc=5.0, seq=0))
        assert access_key < sync_key
