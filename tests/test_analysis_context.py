"""AnalysisContext: round-invariant caching, selective invalidation,
streaming merge — the offline stage's artifact cache (§5.1, §7.6).

The contract under test:

* PT decode, record location and timeline construction happen exactly
  once per multi-round ``analyze()`` — regeneration rounds reuse them;
* a regeneration round re-replays only the threads whose program maps
  emulated a newly poisoned address; everything else is reused;
* the incremental (cached) pipeline reports exactly the same verdicts,
  rounds and replay statistics as the from-scratch per-round pipeline;
* the merged event stream is sorted strictly by the global event key and
  is reproducible across fresh contexts.
"""

import pytest

import repro.analysis.context as context_mod
from repro.analysis import AnalysisContext, OfflinePipeline
from repro.errors import UsageError
from repro.isa import assemble
from repro.tracing import trace_run

# The pointer-flipper scenario of §5.1: `cell` holds a pointer that one
# thread races on, and the main thread's reconstructed accesses go
# *through* the emulated pointer value — detecting the race on `cell`
# poisons it and forces a regeneration round.
REGEN_ASM = """
.global cell 0
.array a1 1 1 1 1
.array a2 2 2 2 2
.reserve workbuf 16
main:
    spawn flipper, %rbx
    mov $10, %rcx
mloop:
    mov $a1, %rax
    mov %rax, cell(%rip)
    mov %rcx, %r10
    and $15, %r10
    mov workbuf(,%r10,8), %r11
    mov cell(%rip), %rsi
    mov 8(%rsi), %rdx
    dec %rcx
    cmp $0, %rcx
    jne mloop
    join %rbx
    halt
flipper:
    mov $10, %rcx
floop:
    mov $a2, %rax
    mov %rax, cell(%rip)
    dec %rcx
    cmp $0, %rcx
    jne floop
    halt
"""


@pytest.fixture(scope="module")
def regen_case():
    """A (program, bundle) pair whose analysis regenerates (>1 round)."""
    program = assemble(REGEN_ASM)
    cell = program.symbols["cell"]
    for seed in range(10):
        bundle = trace_run(program, period=4, seed=seed)
        result = OfflinePipeline(program).analyze(bundle)
        if result.detected(cell) and result.regeneration_rounds > 1:
            return program, bundle
    pytest.fail("no seed produced a regenerating analysis")


class TestDecodeOnce:
    def test_decode_called_exactly_once_across_rounds(self, regen_case,
                                                      monkeypatch):
        """The seed re-decoded nothing per round, but the context must
        guarantee it: one decode_all call for a whole multi-round
        analyze, observed from outside the cache."""
        program, bundle = regen_case
        calls = []
        real_decode_all = context_mod.decode_all_tolerant

        def counting_decode_all(*args, **kwargs):
            calls.append(1)
            return real_decode_all(*args, **kwargs)

        monkeypatch.setattr(context_mod, "decode_all_tolerant",
                            counting_decode_all)
        result = OfflinePipeline(program).analyze(bundle)
        assert result.regeneration_rounds > 1
        assert len(calls) == 1

    def test_context_counters(self, regen_case):
        program, bundle = regen_case
        pipeline = OfflinePipeline(program)
        context = pipeline.context_for(bundle)
        context.replay(frozenset())
        first_replayed = context.stats.threads_replayed
        assert context.stats.decode_calls == 1
        assert context.stats.timeline_builds == 1
        assert first_replayed == len(context.paths)
        # A second identical round reuses everything.
        context.replay(frozenset())
        assert context.stats.decode_calls == 1
        assert context.stats.timeline_builds == 1
        assert context.stats.threads_replayed == first_replayed
        assert context.stats.threads_reused >= len(context.paths)
        assert not context.last_replay_changed


class TestSelectiveInvalidation:
    def test_unrelated_poison_reuses_all_threads(self, regen_case):
        """Poisoning an address no replay emulated must not invalidate
        anything — the exact-invalidation predicate at work."""
        program, bundle = regen_case
        context = OfflinePipeline(program).context_for(bundle)
        first = context.replay(frozenset())
        emulated = set()
        for touched in first.emulated_touched.values():
            emulated |= touched
        bogus = max(emulated | {0}) + 10_000
        second = context.replay(frozenset({bogus}))
        assert not context.last_replay_changed
        assert second.per_thread == first.per_thread
        assert second.stats == first.stats

    def test_growing_poison_replays_only_touching_threads(self, regen_case):
        program, bundle = regen_case
        cell = program.symbols["cell"]
        context = OfflinePipeline(program).context_for(bundle)
        first = context.replay(frozenset())
        touching = [
            tid for tid, touched in first.emulated_touched.items()
            if cell in touched
        ]
        assert touching, "scenario must emulate the racy cell"
        before = context.stats.threads_replayed
        context.replay(frozenset({cell}))
        assert context.stats.threads_replayed - before == len(touching)

    def test_incremental_matches_from_scratch(self, regen_case):
        """The headline §5.1 property: the cached incremental context and
        a from-scratch pipeline agree on every verdict and statistic."""
        program, bundle = regen_case
        cached = OfflinePipeline(program, round_cache=True).analyze(bundle)
        scratch = OfflinePipeline(program, round_cache=False).analyze(bundle)
        assert {r.pair for r in cached.races} == \
            {r.pair for r in scratch.races}
        assert cached.racy_addresses == scratch.racy_addresses
        assert cached.regeneration_rounds == scratch.regeneration_rounds
        assert cached.replay.stats == scratch.replay.stats
        assert cached.replay.per_thread == scratch.replay.per_thread
        assert cached.events_processed == scratch.events_processed


class TestMergedStream:
    def test_keys_strictly_increasing(self, regen_case):
        program, bundle = regen_case
        context = OfflinePipeline(program).context_for(bundle)
        context.replay(frozenset())
        keys = [key for key, _ in context.merged_events()]
        assert keys, "stream must not be empty"
        assert all(a < b for a, b in zip(keys, keys[1:])), \
            "the (tsc, kind, tid, seq) event key must be a strict total order"

    def test_stream_reproducible_across_contexts(self, regen_case):
        """Fixed seed ⇒ bit-identical stream from two fresh contexts (the
        seed's sort left same-TSC cross-thread order to dict iteration;
        the total key pins it down)."""
        program, bundle = regen_case
        pipeline = OfflinePipeline(program)
        first_events, _ = pipeline.events_for(bundle)
        second_events, _ = pipeline.events_for(bundle)
        assert first_events == second_events

    def test_merged_events_requires_replay(self, regen_case):
        program, bundle = regen_case
        context = OfflinePipeline(program).context_for(bundle)
        # A usage bug, not a runtime fault: the typed taxonomy keeps the
        # two distinguishable for callers.
        with pytest.raises(UsageError):
            list(context.merged_events())

    def test_events_for_matches_context_stream(self, regen_case):
        program, bundle = regen_case
        pipeline = OfflinePipeline(program)
        events, _ = pipeline.events_for(bundle)
        context = pipeline.context_for(bundle)
        context.replay(frozenset())
        assert events == list(context.merged_events())


class TestTimingAttribution:
    def test_events_for_and_analyze_attribute_identically(self, regen_case):
        """The seed billed timeline construction to reconstruction in
        analyze() but left it untimed in events_for(); both now flow
        through the same context accumulators."""
        program, bundle = regen_case
        pipeline = OfflinePipeline(program)
        context = pipeline.context_for(bundle)
        context.replay(frozenset())
        list(context.merged_events())
        assert context.decode_seconds > 0
        assert context.reconstruction_seconds > 0

        analyzed = pipeline.analyze(bundle)
        assert analyzed.timings.decode_seconds > 0
        assert analyzed.timings.reconstruction_seconds > 0
        assert analyzed.timings.detection_seconds > 0


class TestSampledMode:
    def test_sampled_context_rounds_reuse(self, regen_case):
        program, bundle = regen_case
        context = AnalysisContext(program, bundle, mode="sampled")
        first = context.replay(frozenset())
        second = context.replay(frozenset({123}))
        assert not context.last_replay_changed
        assert first.per_thread == second.per_thread
        assert first.stats.sampled == len(bundle.samples) or \
            first.stats.sampled <= len(bundle.samples)
