"""Reader-writer lock and barrier semantics: sync objects, machine
execution, and what the detectors see through them."""

import pytest

from repro.analysis import OfflinePipeline
from repro.isa import assemble
from repro.machine.sync import Barrier, RWLock, SyncError
from repro.tracing import trace_run

from tests.helpers import run_machine


class TestRWLock:
    def test_readers_share(self):
        lk = RWLock(0x100)
        assert lk.acquire_rd(1)
        assert lk.acquire_rd(2)
        assert lk.readers == {1, 2}

    def test_writer_excludes_readers(self):
        lk = RWLock(0x100)
        assert lk.acquire_wr(1)
        assert not lk.acquire_rd(2)
        assert not lk.acquire_wr(3)
        assert list(lk.waiters) == [(2, "rd"), (3, "wr")]

    def test_readers_exclude_writer(self):
        lk = RWLock(0x100)
        lk.acquire_rd(1)
        assert not lk.acquire_wr(2)

    def test_fifo_fairness_reader_behind_writer_waits(self):
        """A reader arriving behind a queued writer blocks even though
        the lock is read-held — writers cannot starve."""
        lk = RWLock(0x100)
        lk.acquire_rd(1)
        assert not lk.acquire_wr(2)
        assert not lk.acquire_rd(3)
        assert list(lk.waiters) == [(2, "wr"), (3, "rd")]

    def test_release_hands_to_writer_first(self):
        lk = RWLock(0x100)
        lk.acquire_rd(1)
        lk.acquire_wr(2)
        lk.acquire_rd(3)
        assert lk.release(1) == [(2, "wr")]
        assert lk.writer == 2

    def test_writer_release_wakes_reader_batch(self):
        lk = RWLock(0x100)
        lk.acquire_wr(1)
        lk.acquire_rd(2)
        lk.acquire_rd(3)
        lk.acquire_wr(4)
        assert lk.release(1) == [(2, "rd"), (3, "rd")]
        assert lk.readers == {2, 3}
        assert list(lk.waiters) == [(4, "wr")]

    def test_reacquire_rejected(self):
        lk = RWLock(0x100)
        lk.acquire_rd(1)
        with pytest.raises(SyncError):
            lk.acquire_wr(1)

    def test_release_not_held_rejected(self):
        lk = RWLock(0x100)
        with pytest.raises(SyncError):
            lk.release(1)


class TestBarrier:
    def test_last_arrival_releases_generation(self):
        bar = Barrier(0x200)
        assert bar.arrive(1, 3) is None
        assert bar.arrive(2, 3) is None
        assert bar.arrive(3, 3) == [1, 2, 3]

    def test_cyclic_reuse(self):
        bar = Barrier(0x200)
        bar.arrive(1, 2)
        assert bar.arrive(2, 2) == [1, 2]
        assert bar.arrive(2, 2) is None
        assert bar.arrive(1, 2) == [2, 1]

    def test_party_count_mismatch_rejected(self):
        bar = Barrier(0x200)
        bar.arrive(1, 3)
        with pytest.raises(SyncError):
            bar.arrive(2, 4)


RWLOCK_COUNTER = """
.global lk 0
.global counter 0
.global snapshots 0 0 0 0
main:
    spawn writer, %rbx
    spawn reader, %rcx
    spawn writer2, %rdx
    join %rbx
    join %rcx
    join %rdx
    halt
writer:
    rwlock_wr $lk
    mov counter(%rip), %rax
    add $1, %rax
    mov %rax, counter(%rip)
    rwlock_unlock $lk
    halt
writer2:
    rwlock_wr $lk
    mov counter(%rip), %rax
    add $1, %rax
    mov %rax, counter(%rip)
    rwlock_unlock $lk
    halt
reader:
    rwlock_rd $lk
    mov counter(%rip), %rax
    mov %rax, snapshots(%rip)
    rwlock_unlock $lk
    halt
"""

BARRIER_INIT = """
.global bar 0
.global shared 0
.global out 0
main:
    spawn peer, %rbx
    mov $7, %rax
    mov %rax, shared(%rip)
    barrier_wait $bar, $2
    join %rbx
    halt
peer:
    barrier_wait $bar, $2
    mov shared(%rip), %rax
    mov %rax, out(%rip)
    halt
"""

RD_LOCKED_WRITERS = """
.global lk 0
.global shared 0
main:
    spawn peer, %rbx
    rwlock_rd $lk
    mov $1, %rax
    mov %rax, shared(%rip)
    rwlock_unlock $lk
    join %rbx
    halt
peer:
    rwlock_rd $lk
    mov $2, %rax
    mov %rax, shared(%rip)
    rwlock_unlock $lk
    halt
"""


class TestMachineIntegration:
    @pytest.mark.parametrize("seed", range(6))
    def test_rwlock_counter_race_free(self, seed):
        """Two wr-mode writers and one rd-mode reader: both increments
        land and no schedule yields a race report at full sampling."""
        program = assemble(RWLOCK_COUNTER)
        machine, _result = run_machine(program, seed=seed)
        assert machine.memory.load(program.symbols["counter"]) == 2
        bundle = trace_run(program, period=1, seed=seed)
        assert not OfflinePipeline(program).analyze(bundle).races

    @pytest.mark.parametrize("seed", range(6))
    def test_barrier_orders_init_before_use(self, seed):
        program = assemble(BARRIER_INIT)
        machine, _result = run_machine(program, seed=seed)
        assert machine.memory.load(program.symbols["out"]) == 7
        bundle = trace_run(program, period=1, seed=seed)
        assert not OfflinePipeline(program).analyze(bundle).races

    def test_rd_mode_does_not_protect_writes(self):
        """Two writers sharing the lock in *reader* mode race: shared
        acquisition is mutual exclusion only against writers."""
        program = assemble(RD_LOCKED_WRITERS)
        shared = program.symbols["shared"]
        racy = set()
        for seed in range(8):
            bundle = trace_run(program, period=1, seed=seed)
            result = OfflinePipeline(program).analyze(bundle)
            racy |= {r.address for r in result.races}
        assert shared in racy
