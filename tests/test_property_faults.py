"""Fault-transparency properties: no seeded degradation of a trace
bundle may crash the offline pipeline or manufacture a race.

The analogue of the cache-transparency property in
test_property_detection: fault injection is allowed to *shrink* the
verdict set (lost data costs detection power) but never to grow it, and
the analysis must always run to completion and account for what it
skipped."""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OfflinePipeline
from repro.analysis.sweeps import detection_sweep
from repro.faults import FaultPlan, WorkerFaultPlan
from repro.isa import assemble
from repro.supervise import SupervisorConfig
from repro.tracing import trace_run
from repro.workloads import RACE_BUGS, GeneratorConfig, WorkloadScale, \
    generate_racy_program

from tests.helpers import CLEAN_COUNTER_ASM

CONFIG = GeneratorConfig(threads=2, body_length=24, loop_iterations=2)

_CLEAN_PROGRAM = assemble(CLEAN_COUNTER_ASM, "clean-counter")
_CLEAN_BUNDLE = trace_run(_CLEAN_PROGRAM, period=5, seed=7)

intensity = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)

plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=10_000),
    sample_drop=intensity,
    pt_gap=intensity,
    log_truncation=intensity,
    tsc_jitter=intensity,
)


@given(plan=plans)
@settings(max_examples=30, deadline=None, derandomize=True)
def test_degraded_race_free_run_stays_race_free(plan):
    """analyze() completes and reports nothing on a race-free workload,
    whatever the fault plan."""
    degraded, defects = plan.apply(_CLEAN_BUNDLE)
    result = OfflinePipeline(_CLEAN_PROGRAM).analyze(degraded)
    assert result.races == []
    assert result.racy_addresses == frozenset()
    assert result.degradation.gaps_crossed == defects.pt_gaps


@given(seed=st.integers(min_value=0, max_value=10_000), plan=plans)
@settings(max_examples=10, deadline=None, derandomize=True)
def test_degradation_never_invents_races(seed, plan):
    """On a random racy program, the degraded verdict set is a subset
    of the pristine one — information loss cannot create evidence."""
    program, _ = generate_racy_program(seed, CONFIG)
    bundle = trace_run(program, period=5, seed=seed)
    pristine = OfflinePipeline(program).analyze(bundle)
    degraded, _ = plan.apply(bundle)
    result = OfflinePipeline(program).analyze(degraded)
    assert result.racy_addresses <= pristine.racy_addresses


@given(plan=plans)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_fault_application_is_deterministic(plan):
    first, first_defects = plan.apply(_CLEAN_BUNDLE)
    second, second_defects = plan.apply(_CLEAN_BUNDLE)
    assert first_defects == second_defects
    assert first.samples == second.samples
    assert first.sync_records == second.sync_records


# ---------------------------------------------------------------------------
# Supervised-runtime transparency (worker faults, not trace faults)
# ---------------------------------------------------------------------------

_SWEEP_BUGS = {"aget-bug2": RACE_BUGS["aget-bug2"]}
_SWEEP_SCALE = WorkloadScale(iterations=8)
_SWEEP_PERIODS = (100,)
_SWEEP_RUNS = 2

# One serial, fault-free baseline shared by every Hypothesis example.
_SWEEP_BASELINE = detection_sweep(
    _SWEEP_BUGS, _SWEEP_SCALE, periods=_SWEEP_PERIODS, runs=_SWEEP_RUNS,
    jobs=1, executor="serial",
).to_dict()

worker_plans = st.builds(
    WorkerFaultPlan,
    seed=st.integers(min_value=0, max_value=10_000),
    kill=st.floats(min_value=0.0, max_value=0.8,
                   allow_nan=False, allow_infinity=False),
    fail=st.floats(min_value=0.0, max_value=0.2,
                   allow_nan=False, allow_infinity=False),
)


@given(plan=worker_plans)
@settings(max_examples=5, deadline=None, derandomize=True)
def test_supervised_sweep_transparent_to_worker_faults(plan):
    """Whatever workers a seeded fault plan kills or fails, a supervised
    sweep with retries — interrupted and resumed from its checkpoint —
    produces the deterministic payload of the serial no-fault run,
    bit-identical.  (max_faulty_attempts=1, the default, guarantees the
    retries converge.)"""
    config = SupervisorConfig(retries=3, backoff_base=0.0, seed=plan.seed)
    with tempfile.TemporaryDirectory() as checkpoint:
        first = detection_sweep(
            _SWEEP_BUGS, _SWEEP_SCALE, periods=_SWEEP_PERIODS,
            runs=_SWEEP_RUNS, jobs=2, executor="process",
            supervisor=config, fault_plan=plan, checkpoint_dir=checkpoint,
        )
        resumed = detection_sweep(
            _SWEEP_BUGS, _SWEEP_SCALE, periods=_SWEEP_PERIODS,
            runs=_SWEEP_RUNS, jobs=2, executor="process",
            supervisor=config, checkpoint_dir=checkpoint, resume=True,
        )
    for result in (first, resumed):
        payload = result.to_dict()
        assert payload["cells"] == _SWEEP_BASELINE["cells"]
        assert payload["totals"] == _SWEEP_BASELINE["totals"]
    assert resumed.ledger.resumed == len(_SWEEP_PERIODS) * _SWEEP_RUNS
    # Every perturbed attempt is visible in the ledger, none fatal.
    faulted = sum(
        1 for index in range(len(_SWEEP_PERIODS) * _SWEEP_RUNS)
        if plan.action(index, 1) is not None
    )
    assert first.ledger.retries == faulted
