"""Fault-transparency properties: no seeded degradation of a trace
bundle may crash the offline pipeline or manufacture a race.

The analogue of the cache-transparency property in
test_property_detection: fault injection is allowed to *shrink* the
verdict set (lost data costs detection power) but never to grow it, and
the analysis must always run to completion and account for what it
skipped."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OfflinePipeline
from repro.faults import FaultPlan
from repro.isa import assemble
from repro.tracing import trace_run
from repro.workloads import GeneratorConfig, generate_racy_program

from tests.helpers import CLEAN_COUNTER_ASM

CONFIG = GeneratorConfig(threads=2, body_length=24, loop_iterations=2)

_CLEAN_PROGRAM = assemble(CLEAN_COUNTER_ASM, "clean-counter")
_CLEAN_BUNDLE = trace_run(_CLEAN_PROGRAM, period=5, seed=7)

intensity = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)

plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=10_000),
    sample_drop=intensity,
    pt_gap=intensity,
    log_truncation=intensity,
    tsc_jitter=intensity,
)


@given(plan=plans)
@settings(max_examples=30, deadline=None, derandomize=True)
def test_degraded_race_free_run_stays_race_free(plan):
    """analyze() completes and reports nothing on a race-free workload,
    whatever the fault plan."""
    degraded, defects = plan.apply(_CLEAN_BUNDLE)
    result = OfflinePipeline(_CLEAN_PROGRAM).analyze(degraded)
    assert result.races == []
    assert result.racy_addresses == frozenset()
    assert result.degradation.gaps_crossed == defects.pt_gaps


@given(seed=st.integers(min_value=0, max_value=10_000), plan=plans)
@settings(max_examples=10, deadline=None, derandomize=True)
def test_degradation_never_invents_races(seed, plan):
    """On a random racy program, the degraded verdict set is a subset
    of the pristine one — information loss cannot create evidence."""
    program, _ = generate_racy_program(seed, CONFIG)
    bundle = trace_run(program, period=5, seed=seed)
    pristine = OfflinePipeline(program).analyze(bundle)
    degraded, _ = plan.apply(bundle)
    result = OfflinePipeline(program).analyze(degraded)
    assert result.racy_addresses <= pristine.racy_addresses


@given(plan=plans)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_fault_application_is_deterministic(plan):
    first, first_defects = plan.apply(_CLEAN_BUNDLE)
    second, second_defects = plan.apply(_CLEAN_BUNDLE)
    assert first_defects == second_defects
    assert first.samples == second.samples
    assert first.sync_records == second.sync_records
