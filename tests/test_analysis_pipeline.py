"""End-to-end offline pipeline tests: precision, detection, regeneration."""

import pytest

from repro.analysis import OfflinePipeline
from repro.isa import assemble
from repro.tracing import trace_run

from tests.helpers import CLEAN_COUNTER_ASM, RACY_ASM


class TestPrecision:
    """No false positives: the paper chooses happens-before detection
    precisely for this property (§4.3)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_clean_program_reports_nothing(self, clean_program, seed):
        bundle = trace_run(clean_program, period=2, seed=seed)
        result = OfflinePipeline(clean_program).analyze(bundle)
        assert not result.races, [r.describe() for r in result.races]

    @pytest.mark.parametrize("seed", range(4))
    def test_semaphore_ordering_respected(self, seed):
        source = """
.global sem 0
.global shared 0
main:
    spawn consumer, %rbx
    mov $55, %rax
    mov %rax, shared(%rip)
    sem_post $sem
    join %rbx
    halt
consumer:
    sem_wait $sem
    mov shared(%rip), %rax
    mov %rax, shared(%rip)
    halt
"""
        program = assemble(source)
        bundle = trace_run(program, period=1, seed=seed)
        result = OfflinePipeline(program).analyze(bundle)
        assert not result.races

    def test_recycled_heap_address_not_a_race(self):
        """§4.3's malloc/free scenario: thread A uses an object, frees
        it after a join-ordered handoff... two objects at one address
        across threads with no direct sync must not be reported."""
        source = """
.global sink 0
main:
    malloc $16, %rax
    mov $1, %rdx
    mov %rdx, (%rax)
    free %rax
    spawn w, %rbx
    join %rbx
    halt
w:
    malloc $16, %rax
    mov $2, %rdx
    mov %rdx, (%rax)
    free %rax
    halt
"""
        # Note: the spawn creates a fork edge, so even same-generation
        # accesses are ordered here — the real test is the generation
        # split below.
        program = assemble(source)
        bundle = trace_run(program, period=1, seed=0)
        result = OfflinePipeline(program).analyze(bundle)
        assert not result.races

    def test_recycled_address_across_unordered_threads(self):
        """Two unordered threads each malloc/free; the allocator recycles
        the address.  Without generation tracking this is a false race."""
        source = """
.global handoff_lock 0
main:
    spawn w, %rbx
    malloc $24, %rax
    mov $1, %rdx
    mov %rdx, (%rax)
    free %rax
    join %rbx
    halt
w:
    malloc $24, %rax
    mov $2, %rdx
    mov %rdx, (%rax)
    free %rax
    halt
"""
        program = assemble(source)
        detected_any = False
        for seed in range(8):
            bundle = trace_run(program, period=1, seed=seed)
            result = OfflinePipeline(program).analyze(bundle)
            # The two (%rax) stores may share an address (recycling) but
            # never a generation.
            assert not result.races, [r.describe() for r in result.races]
            detected_any = True
        assert detected_any


class TestDetection:
    def test_racy_program_detected_at_small_period(self, racy_program):
        detected = 0
        racy_addr = racy_program.symbols["racy"]
        for seed in range(6):
            bundle = trace_run(racy_program, period=3, seed=seed)
            result = OfflinePipeline(racy_program).analyze(bundle)
            if result.detected(racy_addr):
                detected += 1
        assert detected >= 4

    def test_sampled_mode_weaker_than_full(self, racy_program):
        racy_addr = racy_program.symbols["racy"]
        full_hits = sampled_hits = 0
        for seed in range(6):
            bundle = trace_run(racy_program, period=8, seed=seed)
            full = OfflinePipeline(racy_program, mode="full").analyze(bundle)
            sampled = OfflinePipeline(
                racy_program, mode="sampled").analyze(bundle)
            full_hits += full.detected(racy_addr)
            sampled_hits += sampled.detected(racy_addr)
            # Anything sampled-only finds, full must find too.
            assert sampled.racy_addresses <= full.racy_addresses | {racy_addr}
        assert full_hits >= sampled_hits

    def test_report_metadata(self, racy_program):
        bundle = trace_run(racy_program, period=2, seed=1)
        result = OfflinePipeline(racy_program).analyze(bundle)
        assert result.races
        report = result.races[0]
        assert report.address == racy_program.symbols["racy"]
        assert report.second.provenance in (
            "sampled", "forward", "backward", "basicblock"
        )


class TestRegeneration:
    def test_regeneration_counts_rounds(self, racy_program):
        bundle = trace_run(racy_program, period=3, seed=2)
        result = OfflinePipeline(racy_program).analyze(bundle)
        assert result.regeneration_rounds >= 1

    def test_racy_emulated_location_triggers_regeneration(self):
        """A pointer cell that is itself racy: reconstructed accesses that
        trusted its emulated value must be retracted (§5.1)."""
        source = """
.global cell 0
.array a1 1 1 1 1
.array a2 2 2 2 2
.reserve workbuf 16
main:
    spawn flipper, %rbx
    mov $10, %rcx
mloop:
    mov $a1, %rax
    mov %rax, cell(%rip)     # emulated store of the pointer...
    mov %rcx, %r10
    and $15, %r10
    mov workbuf(,%r10,8), %r11
    mov cell(%rip), %rsi     # ...loaded back through emulation
    mov 8(%rsi), %rdx        # reconstructed address depends on `cell`
    dec %rcx
    cmp $0, %rcx
    jne mloop
    join %rbx
    halt
flipper:
    mov $10, %rcx
floop:
    mov $a2, %rax
    mov %rax, cell(%rip)     # racy write to the pointer cell
    dec %rcx
    cmp $0, %rcx
    jne floop
    halt
"""
        program = assemble(source)
        saw_regeneration = False
        cell = program.symbols["cell"]
        for seed in range(10):
            bundle = trace_run(program, period=4, seed=seed)
            result = OfflinePipeline(program).analyze(bundle)
            if result.detected(cell) and result.regeneration_rounds > 1:
                saw_regeneration = True
                break
        assert saw_regeneration


class TestTimings:
    def test_phases_measured(self, racy_program):
        bundle = trace_run(racy_program, period=4, seed=0)
        result = OfflinePipeline(racy_program).analyze(bundle)
        timings = result.timings
        assert timings.decode_seconds > 0
        assert timings.reconstruction_seconds > 0
        assert timings.detection_seconds > 0
        breakdown = result.timings.breakdown()
        assert abs(sum(breakdown.values()) - 1.0) < 1e-9
