"""Unit tests for shared instruction semantics (ALU, flags, addresses)."""

import pytest

from repro.isa.instructions import Op
from repro.isa.operands import Mem
from repro.isa.registers import MASK64
from repro.isa.semantics import (
    Flags,
    alu,
    alu_unary,
    compare,
    effective_address,
    reverse_alu,
    reverse_alu_src,
)
from repro.isa.semantics import test_bits as bits_flags


class TestAlu:
    def test_add_wraps(self):
        assert alu(Op.ADD, 1, MASK64) == 0

    def test_sub_wraps(self):
        assert alu(Op.SUB, 1, 0) == MASK64

    def test_xor(self):
        assert alu(Op.XOR, 0b1010, 0b0110) == 0b1100

    def test_imul_signed(self):
        minus_two = MASK64 - 1
        assert alu(Op.IMUL, minus_two, 3) == (MASK64 - 5)  # -2*3 == -6

    def test_shl_shr(self):
        assert alu(Op.SHL, 4, 1) == 16
        assert alu(Op.SHR, 4, 32) == 2

    def test_unary(self):
        assert alu_unary(Op.INC, 1) == 2
        assert alu_unary(Op.DEC, 0) == MASK64
        assert alu_unary(Op.NEG, 5) == MASK64 - 4
        assert alu_unary(Op.NOT, 0) == MASK64

    def test_non_alu_rejected(self):
        with pytest.raises(ValueError):
            alu(Op.MOV, 1, 2)
        with pytest.raises(ValueError):
            alu_unary(Op.ADD, 1)


class TestReverseExecution:
    @pytest.mark.parametrize("op", [Op.ADD, Op.SUB, Op.XOR])
    @pytest.mark.parametrize("src,dst", [(3, 10), (0, 0), (MASK64, 7)])
    def test_reverse_recovers_old_dst(self, op, src, dst):
        result = alu(op, src, dst)
        assert reverse_alu(op, src, result) == dst

    @pytest.mark.parametrize("op", [Op.ADD, Op.SUB, Op.XOR])
    def test_reverse_recovers_src(self, op):
        src, dst = 41, 1000
        result = alu(op, src, dst)
        assert reverse_alu_src(op, dst, result) == src

    def test_irreversible_rejected(self):
        with pytest.raises(ValueError):
            reverse_alu(Op.AND, 1, 2)
        with pytest.raises(ValueError):
            reverse_alu_src(Op.IMUL, 1, 2)


class TestFlags:
    def test_compare_matches_att_direction(self):
        # cmp $3, %rax with rax=5: jg taken (5 > 3).
        flags = compare(3, 5)
        assert flags.taken(Op.JG)
        assert not flags.taken(Op.JL)
        assert not flags.taken(Op.JE)

    def test_compare_equal(self):
        flags = compare(4, 4)
        assert flags.taken(Op.JE)
        assert flags.taken(Op.JLE)
        assert flags.taken(Op.JGE)
        assert not flags.taken(Op.JNE)

    def test_compare_signed(self):
        # -1 < 3 under signed comparison.
        flags = compare(3, MASK64)
        assert flags.taken(Op.JL)

    def test_test_bits(self):
        assert bits_flags(0b100, 0b011).eq
        assert not bits_flags(0b100, 0b110).eq

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            Flags().taken(Op.MOV)


class TestEffectiveAddress:
    def test_base_index_scale_disp(self):
        mem = Mem(base="rbx", index="rcx", scale=8, disp=16)
        regs = {"rbx": 1000, "rcx": 3}
        assert effective_address(mem, regs, ip=0) == 1040

    def test_rip_relative_uses_ip(self):
        mem = Mem(disp=100, rip_relative=True)
        assert effective_address(mem, {}, ip=7) == 107

    def test_wraps_to_64_bits(self):
        mem = Mem(base="rbx", disp=10)
        assert effective_address(mem, {"rbx": MASK64}, ip=0) == 9
