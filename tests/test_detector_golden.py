"""Golden bit-identity: the backend-registry refactor must not change a
byte of the default FastTrack report.

The files under ``tests/golden/`` were captured on the pre-registry
pipeline (direct FastTrack, no backend indirection) with::

    scale = WorkloadScale(iterations=10, threads=4)
    bundle = trace_run(bug.build(scale), period=100, seed=3)
    render_report(program, OfflinePipeline(program).analyze(bundle))

Any diff here means the registry changed observable behaviour — the one
thing a refactor must not do.
"""

from pathlib import Path

import pytest

from repro.analysis import OfflinePipeline, render_report
from repro.tracing import trace_run
from repro.workloads import RACE_BUGS, WorkloadScale

GOLDEN_DIR = Path(__file__).parent / "golden"
SCALE = WorkloadScale(iterations=10, threads=4)


@pytest.mark.parametrize("name", ["pfscan", "mysql-644", "apache-21287"])
def test_default_report_bit_identical(name):
    program = RACE_BUGS[name].build(SCALE)
    bundle = trace_run(program, period=100, seed=3)
    result = OfflinePipeline(program).analyze(bundle)
    text = render_report(program, result)
    golden = (GOLDEN_DIR / f"{name}.txt").read_text()
    assert text == golden


def test_explicit_fasttrack_matches_default():
    """``--detector fasttrack`` must be the same thing as no flag."""
    program = RACE_BUGS["pfscan"].build(SCALE)
    bundle = trace_run(program, period=100, seed=3)
    default = OfflinePipeline(program).analyze(bundle)
    explicit = OfflinePipeline(
        program, detectors=("fasttrack",)
    ).analyze(bundle)
    assert (render_report(program, explicit)
            == render_report(program, default))
