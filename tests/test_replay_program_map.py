"""Unit tests for the availability-tracked program map."""

from repro.replay.program_map import Known, ProgramMap, merge_taint


class TestTaint:
    def test_merge_none(self):
        assert merge_taint(None, None) is None

    def test_merge_one_sided(self):
        t = frozenset({1})
        assert merge_taint(t, None) == t
        assert merge_taint(None, t) == t

    def test_merge_union(self):
        assert merge_taint(frozenset({1}), frozenset({2})) == frozenset({1, 2})


class TestRegisters:
    def test_start_unavailable(self):
        pm = ProgramMap()
        assert pm.get_register("rax") is None

    def test_restore_makes_all_available(self):
        pm = ProgramMap()
        pm.restore_registers({"rax": 5, "rbx": 6})
        assert pm.get_register("rax") == Known(5)
        assert pm.available_registers() == frozenset({"rax", "rbx"})

    def test_set_none_marks_unavailable(self):
        pm = ProgramMap()
        pm.restore_registers({"rax": 5})
        pm.set_register("rax", None)
        assert pm.get_register("rax") is None

    def test_values_masked(self):
        pm = ProgramMap()
        pm.set_register("rax", Known(-1))
        assert pm.get_register("rax").value == (1 << 64) - 1

    def test_registers_view(self):
        pm = ProgramMap()
        pm.restore_registers({"rax": 1, "rbx": 2})
        assert pm.registers_view() == {"rax": 1, "rbx": 2}


class TestMemoryEmulation:
    def test_memory_starts_unavailable(self):
        assert ProgramMap().load_memory(0x100) is None

    def test_store_then_load(self):
        pm = ProgramMap()
        pm.store_memory(0x100, Known(7))
        loaded = pm.load_memory(0x100)
        assert loaded.value == 7

    def test_loaded_value_tainted_by_its_address(self):
        """A value read from emulated memory is only trustworthy if the
        emulation of that location is — the taint records this (§5.1)."""
        pm = ProgramMap()
        pm.store_memory(0x100, Known(7))
        assert 0x100 in pm.load_memory(0x100).taint

    def test_unavailable_store_evicts(self):
        pm = ProgramMap()
        pm.store_memory(0x100, Known(7))
        pm.store_memory(0x100, None)
        assert pm.load_memory(0x100) is None

    def test_invalidate_clears_all(self):
        pm = ProgramMap()
        pm.store_memory(0x100, Known(1))
        pm.store_memory(0x200, Known(2))
        pm.invalidate_memory()
        assert pm.load_memory(0x100) is None
        assert pm.emulated_addresses() == frozenset()
        assert pm.memory_invalidations == 1

    def test_poisoned_address_never_emulated(self):
        pm = ProgramMap(poisoned={0x100})
        pm.store_memory(0x100, Known(7))
        assert pm.load_memory(0x100) is None

    def test_memory_copy_roundtrip(self):
        pm = ProgramMap()
        pm.store_memory(0x100, Known(9))
        other = ProgramMap()
        other.set_memory_map(pm.memory_copy())
        assert other.load_memory(0x100).value == 9
