"""Differential tests for the compiled replay path.

The micro-op executor and the block effect-summary cache are pure
performance work: they must be *invisible* — bit-identical
``RecoveredAccess`` streams (position, ip, address, kind, provenance,
taint) against the interpreter on every workload, every replay mode,
every fault plan, cold or warm cache.  These tests are the contract.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OfflinePipeline
from repro.faults import FaultPlan
from repro.isa import SYSTEM_OPS
from repro.isa.lowering import lowered
from repro.replay import BlockSummaryCache, ReplayEngine
from repro.tracing import trace_run
from repro.workloads import GeneratorConfig, generate_racy_program

CONFIG = GeneratorConfig(threads=2, body_length=24, loop_iterations=2)


def replay(program, bundle, mode="full", jit=True, cache=None):
    engine = ReplayEngine(program, mode=mode, jit=jit, summary_cache=cache)
    return engine.replay_bundle(bundle)


class TestDifferential:
    @pytest.mark.parametrize("mode", ["full", "forward", "basicblock"])
    @pytest.mark.parametrize("period", [1, 4, 17])
    def test_fixture_programs_bit_identical(self, clean_program,
                                            racy_program, mode, period):
        for program in (clean_program, racy_program):
            bundle = trace_run(program, period=period, seed=3)
            interp = replay(program, bundle, mode=mode, jit=False)
            jit = replay(program, bundle, mode=mode, jit=True)
            cache = BlockSummaryCache()
            replay(program, bundle, mode=mode, cache=cache)
            warm = replay(program, bundle, mode=mode, cache=cache)
            assert jit.per_thread == interp.per_thread
            assert warm.per_thread == interp.per_thread

    @given(seed=st.integers(min_value=0, max_value=10_000),
           period=st.sampled_from([1, 3, 7, 23]))
    @settings(max_examples=12, deadline=None)
    def test_random_programs_bit_identical(self, seed, period):
        program, _ = generate_racy_program(seed, CONFIG)
        bundle = trace_run(program, period=period, seed=seed)
        interp = replay(program, bundle, jit=False)
        jit = replay(program, bundle, jit=True)
        assert jit.per_thread == interp.per_thread

    @given(seed=st.integers(min_value=0, max_value=10_000),
           plan=st.builds(
               FaultPlan,
               seed=st.integers(min_value=0, max_value=1_000),
               sample_drop=st.floats(0.0, 1.0),
               pt_gap=st.floats(0.0, 1.0),
               log_truncation=st.floats(0.0, 1.0),
               tsc_jitter=st.floats(0.0, 1.0),
           ))
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_faulted_bundles_bit_identical(self, seed, plan):
        """Degraded traces (gaps, dropped samples, torn logs) exercise
        segment boundaries and window aborts; the JIT must track the
        interpreter through all of them."""
        program, _ = generate_racy_program(seed, CONFIG)
        bundle = trace_run(program, period=5, seed=seed)
        degraded, _ = plan.apply(bundle)
        interp = replay(program, degraded, jit=False)
        jit = replay(program, degraded, jit=True)
        assert jit.per_thread == interp.per_thread

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_pipeline_jit_is_invisible(self, seed):
        """End to end: identical races, addresses, regeneration rounds
        and access streams with and without the JIT (the `--no-jit`
        contract)."""
        program, _ = generate_racy_program(seed, CONFIG)
        bundle = trace_run(program, period=5, seed=seed)
        jit = OfflinePipeline(program, jit=True).analyze(bundle)
        nojit = OfflinePipeline(program, jit=False).analyze(bundle)
        assert {r.pair for r in jit.races} == {r.pair for r in nojit.races}
        assert jit.racy_addresses == nojit.racy_addresses
        assert jit.regeneration_rounds == nojit.regeneration_rounds
        assert jit.replay.per_thread == nojit.replay.per_thread


class TestSummaryCacheEffectiveness:
    def test_warm_cache_hits_and_stays_identical(self, racy_program):
        bundle = trace_run(racy_program, period=4, seed=2)
        cache = BlockSummaryCache()
        cold = replay(racy_program, bundle, cache=cache)
        assert cache.window_hits == 0
        assert cache.window_stores > 0
        saved_after_cold = cache.steps_saved
        warm = replay(racy_program, bundle, cache=cache)
        assert warm.per_thread == cold.per_thread
        # A repeat replay of the same bundle is served whole windows
        # from the memo and steps (almost) nothing.
        assert cache.window_hits > 0
        assert cache.steps_saved > saved_after_cold
        assert warm.stats.window_hits > 0
        assert warm.stats.executed_steps < cold.stats.executed_steps

    def test_span_layer_hits_within_a_cold_run(self):
        """The span layer pays off inside a single replay: fixed-point
        re-iterations of a window re-enter spans recorded by earlier
        passes (window memo keys never repeat intra-run)."""
        config = GeneratorConfig(threads=2, body_length=24,
                                 loop_iterations=4)
        program, _ = generate_racy_program(2, config)
        bundle = trace_run(program, period=8, seed=2)
        cache = BlockSummaryCache()
        cold = replay(program, bundle, cache=cache)
        assert cache.hits > 0
        assert cold.stats.summary_hits > 0
        assert cold.stats.summary_steps > 0

    def test_no_jit_never_touches_summaries(self, racy_program):
        bundle = trace_run(racy_program, period=4, seed=2)
        cache = BlockSummaryCache()
        result = replay(racy_program, bundle, jit=False, cache=cache)
        assert len(cache) == 0
        assert cache.window_entries() == 0
        assert cache.hits == cache.misses == cache.stores == 0
        assert cache.window_hits == cache.window_stores == 0
        assert result.stats.summary_hits == 0
        assert result.stats.summary_steps == 0
        assert result.stats.window_hits == 0


class TestSummaryCacheInvalidation:
    def test_poison_scopes_are_distinct(self):
        cache = BlockSummaryCache()
        clean = cache.scope(frozenset())
        poisoned = cache.scope(frozenset({0x40}))
        assert clean is not poisoned
        assert cache.scope(frozenset()) is clean
        assert cache.scope(frozenset({0x40})) is poisoned

    def test_invalidate_single_scope(self):
        cache = BlockSummaryCache()
        cache.scope(frozenset())["k"] = "clean-entry"
        cache.scope(frozenset({0x40}))["k"] = "poisoned-entry"
        assert len(cache) == 2
        cache.invalidate(frozenset({0x40}))
        assert len(cache) == 1
        assert "k" in cache.scope(frozenset())

    def test_invalidate_everything(self):
        cache = BlockSummaryCache()
        cache.scope(frozenset())["k"] = "entry"
        cache.scope(frozenset({0x40}))["k"] = "entry"
        cache.invalidate()
        assert len(cache) == 0

    def test_syscalls_and_clobbers_never_summarized(self, racy_program):
        """System ops invalidate emulated memory; no stored span may
        contain one (they are excluded at lowering time)."""
        compiled = lowered(racy_program)
        sys_ips = [ip for ip in range(len(racy_program))
                   if racy_program[ip].op in SYSTEM_OPS]
        assert sys_ips, "fixture must contain synchronization ops"
        assert not any(compiled.summarizable[ip] for ip in sys_ips)

        cache = BlockSummaryCache()
        bundle = trace_run(racy_program, period=3, seed=1)
        replay(racy_program, bundle, cache=cache)
        replay(racy_program, bundle, cache=cache)
        assert len(cache) > 0
        for table in cache._by_poison.values():
            for (path, _sig) in table:
                for ip in path:
                    assert compiled.summarizable[ip]

    def test_span_keys_carry_their_path(self, racy_program):
        """Summary keys embed the recorded instruction path, so a span
        may follow control flow across block boundaries without ever
        being replayed onto a window that took a different path."""
        compiled = lowered(racy_program)
        cache = BlockSummaryCache()
        bundle = trace_run(racy_program, period=4, seed=1)
        replay(racy_program, bundle, cache=cache)
        assert len(cache) > 0
        crossing = 0
        for table in cache._by_poison.values():
            for (path, _sig) in table:
                assert len(path) >= 2
                if len({compiled.block_id[ip] for ip in path}) > 1:
                    crossing += 1
        assert crossing > 0

    def test_decode_segment_boundaries_stay_bit_identical(self, racy_program):
        """PT gaps split decode into segments; windows (and therefore
        spans) never cross them, and a warm cache changes nothing."""
        program = racy_program
        bundle = trace_run(program, period=4, seed=7)
        degraded, defects = FaultPlan(seed=3, pt_gap=0.4).apply(bundle)
        assert defects.pt_gaps > 0
        interp = replay(program, degraded, jit=False)
        cache = BlockSummaryCache()
        cold = replay(program, degraded, cache=cache)
        warm = replay(program, degraded, cache=cache)
        assert cold.per_thread == interp.per_thread
        assert warm.per_thread == interp.per_thread
