"""Documentation consistency: the docs describe the repo that exists."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestDesignIndex:
    def test_every_bench_target_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        targets = set(re.findall(r"`benchmarks/(test_\w+\.py)`", design))
        assert targets, "experiment index lists no bench targets"
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_every_inventory_package_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        packages = set(re.findall(r"`repro\.(\w+)`", design))
        for package in packages:
            assert (ROOT / "src" / "repro" / package).exists() or \
                (ROOT / "src" / "repro" / f"{package}.py").exists(), package


class TestReadme:
    def test_quickstart_code_runs_and_detects(self, capsys):
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.S)
        assert blocks, "README has no python quickstart"
        namespace = {}
        exec(blocks[0], namespace)  # noqa: S102 - our own README
        out = capsys.readouterr().out
        assert "race on" in out

    def test_linked_docs_exist(self):
        readme = (ROOT / "README.md").read_text()
        for link in re.findall(r"\]\(([\w/.-]+\.md)\)", readme):
            assert (ROOT / link).exists(), link
        for link in re.findall(r"`(examples/[\w_]+\.py)`", readme):
            assert (ROOT / link).exists(), link

    def test_cli_commands_documented_match_parser(self):
        from repro.cli import build_parser

        readme = (ROOT / "README.md").read_text()
        parser = build_parser()
        subactions = next(
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction"
        )
        for command in subactions.choices:
            assert f"``{command}``" in readme, command


class TestExperimentsDoc:
    def test_mentions_every_figure_and_table(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for item in ("Table 1", "Table 2", "Figure 6", "Figure 7",
                     "Figure 8", "Figure 9", "Figure 10", "Figure 11",
                     "Figure 12"):
            assert item in text, item
