"""Race report rendering tests."""

import json

from repro.analysis import (
    FleetSummary,
    OfflinePipeline,
    render_race,
    render_report,
    to_json,
)
from repro.tracing import trace_run


def _analyzed(program, seed=1):
    bundle = trace_run(program, period=3, seed=seed)
    return OfflinePipeline(program).analyze(bundle)


class TestRenderRace:
    def test_names_the_symbol(self, racy_program):
        result = _analyzed(racy_program)
        assert result.races
        text = render_race(racy_program, result.races[0])
        assert "racy" in text
        assert "data race on" in text

    def test_marks_racing_instructions(self, racy_program):
        result = _analyzed(racy_program)
        text = render_race(racy_program, result.races[0])
        assert ">" in text
        assert "thread" in text

    def test_mentions_provenance(self, racy_program):
        result = _analyzed(racy_program)
        text = render_race(racy_program, result.races[0])
        assert "reconstructed via" in text


class TestRenderReport:
    def test_racy_report(self, racy_program):
        result = _analyzed(racy_program)
        text = render_report(racy_program, result)
        assert "recovery ratio" in text
        assert f"distinct races: {len(result.races)}" in text

    def test_clean_report(self, clean_program):
        result = _analyzed(clean_program)
        text = render_report(clean_program, result)
        assert "no data races detected" in text


class TestJson:
    def test_valid_json_with_expected_fields(self, racy_program):
        result = _analyzed(racy_program)
        payload = json.loads(to_json(racy_program, result))
        assert payload["program"] == racy_program.name
        assert payload["stats"]["sampled"] >= 0
        assert payload["races"]
        race = payload["races"][0]
        assert {"address", "symbol", "first", "second"} <= set(race)
        assert race["symbol"].startswith("racy")

    def test_timings_present(self, clean_program):
        result = _analyzed(clean_program)
        payload = json.loads(to_json(clean_program, result))
        assert payload["timings_seconds"]["reconstruction"] > 0


class TestFleetSummary:
    def test_aggregates_across_runs(self, racy_program):
        summary = FleetSummary()
        for seed in range(4):
            bundle = trace_run(racy_program, period=3, seed=seed)
            summary.add(OfflinePipeline(racy_program).analyze(bundle))
        assert summary.runs == 4
        assert summary.runs_with_races >= 3
        text = summary.render(racy_program)
        assert "distinct race sites" in text
        assert "racy" in text

    def test_clean_fleet(self, clean_program):
        summary = FleetSummary()
        for seed in range(2):
            bundle = trace_run(clean_program, period=3, seed=seed)
            summary.add(OfflinePipeline(clean_program).analyze(bundle))
        assert summary.runs_with_races == 0
        assert not summary.race_sites


class TestSymbolResolution:
    def test_address_below_all_symbols(self, racy_program):
        from repro.analysis.report import _symbol_for

        assert _symbol_for(racy_program, 0x10) is None

    def test_interior_offset_named(self, racy_program):
        from repro.analysis.report import _symbol_for

        base = racy_program.symbols["workbuf"]
        assert _symbol_for(racy_program, base + 0x18) == "workbuf+0x18"

    def test_no_symbols_program(self):
        from repro.analysis.report import _symbol_for
        from repro.isa import assemble

        program = assemble("main:\n    halt\n")
        assert _symbol_for(program, 0x10000) is None


class TestCodeContext:
    def test_out_of_range_ip(self, racy_program):
        from repro.analysis.report import _code_context

        assert _code_context(racy_program, 10_000) == \
            ["    <unknown instruction>"]
        assert _code_context(racy_program, None) == \
            ["    <unknown instruction>"]

    def test_labels_shown(self, racy_program):
        from repro.analysis.report import _code_context

        worker_ip = racy_program.resolve("worker")
        lines = _code_context(racy_program, worker_ip + 1)
        assert any("worker:" in line for line in lines)
