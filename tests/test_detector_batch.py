"""The columnar batch pipeline must be an invisible optimization.

Three layers of differential evidence:

* **pipeline-level**: ``batch=True`` (default), ``batch=False`` and
  address-sharded ``detect_shards > 1`` produce bit-identical findings
  over the Table 2 corpus, pristine and degraded — including
  crash-truncated bundles, where suppression is baked into the batch
  columns instead of filtered per event;
* **stream-level**: the spliced batch merge enumerates exactly the
  events (and keys, and global indices) the scalar heap merge does;
* **detector-level** (hypothesis): on random multi-thread access/sync
  streams, ``feed_batch`` and per-shard ``feed_batch_shard`` + merge
  agree with the scalar ``access()`` loop report-for-report, in order.
"""

import heapq
from operator import itemgetter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OfflinePipeline
from repro.analysis.context import AnalysisContext
from repro.detector.batch import BATCH_SYNC, EventBatch
from repro.detector.events import ACCESS_READ, ACCESS_WRITE, SyncOp
from repro.detector.fasttrack import FastTrack
from repro.detector.vectorclock import Epoch, VectorClock
from repro.faults import builtin_plans
from repro.tracing import trace_run
from repro.workloads import RACE_BUGS, WorkloadScale

SCALE = WorkloadScale(iterations=8, threads=4)
CORPUS = ("pfscan", "mysql-791", "apache-25520")
PLANS = ("pebs-overflow", "pt-gap", "crash-truncation", "tsc-jitter")


def _bundle(name, seed, plan_name=None):
    program = RACE_BUGS[name].build(SCALE)
    bundle = trace_run(program, period=100, seed=seed)
    if plan_name is not None:
        bundle, _ = builtin_plans(0.2, seed=seed)[plan_name].apply(bundle)
    return program, bundle


def _assert_identical(scalar, batched):
    fs = scalar.findings["fasttrack"]
    fb = batched.findings["fasttrack"]
    assert fs.races == fb.races
    assert fs.sorted_addresses() == fb.sorted_addresses()
    assert fs.accesses_processed == fb.accesses_processed
    assert fs.sync_processed == fb.sync_processed
    assert scalar.racy_addresses == batched.racy_addresses
    assert [r.pair for r in scalar.races] == [r.pair for r in batched.races]
    assert scalar.regeneration_rounds == batched.regeneration_rounds


# ----------------------------------------------------------------------
# Pipeline-level differential: batched vs scalar vs sharded
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", CORPUS)
@pytest.mark.parametrize("seed", [0, 3])
def test_batched_matches_scalar_pristine(name, seed):
    program, bundle = _bundle(name, seed)
    scalar = OfflinePipeline(program, batch=False).analyze(bundle)
    batched = OfflinePipeline(program, batch=True).analyze(bundle)
    _assert_identical(scalar, batched)


@pytest.mark.parametrize("name", CORPUS)
@pytest.mark.parametrize("plan_name", PLANS)
def test_batched_matches_scalar_degraded(name, plan_name):
    program, bundle = _bundle(name, 0, plan_name)
    scalar = OfflinePipeline(program, batch=False).analyze(bundle)
    batched = OfflinePipeline(program, batch=True).analyze(bundle)
    _assert_identical(scalar, batched)


@pytest.mark.parametrize("shards", [2, 3])
def test_sharded_matches_serial(shards):
    for name in CORPUS:
        program, bundle = _bundle(name, 0)
        serial = OfflinePipeline(program).analyze(bundle)
        sharded = OfflinePipeline(
            program, detect_shards=shards).analyze(bundle)
        _assert_identical(serial, sharded)
        details = sharded.findings["fasttrack"].details
        assert details["shards"] == shards


def test_sharded_thread_executor_matches():
    """The executor the fleet workers use (threads, to avoid nesting
    process pools) is just as exact."""
    program, bundle = _bundle("pfscan", 1)
    serial = OfflinePipeline(program).analyze(bundle)
    sharded = OfflinePipeline(
        program, detect_shards=2, detect_executor="thread").analyze(bundle)
    _assert_identical(serial, sharded)


def test_sharded_matches_serial_on_truncated_bundle():
    program, bundle = _bundle("apache-25520", 0, "crash-truncation")
    serial = OfflinePipeline(program, batch=False).analyze(bundle)
    sharded = OfflinePipeline(
        program, detect_shards=3, detect_executor="thread").analyze(bundle)
    _assert_identical(serial, sharded)


# ----------------------------------------------------------------------
# Stream-level: the splice merge IS the scalar merge
# ----------------------------------------------------------------------


@pytest.mark.parametrize("plan_name", [None, "crash-truncation"])
def test_merged_batches_enumerates_merged_events(plan_name):
    """Flattening the batch runs must reproduce the scalar stream
    exactly: same events, same keys, contiguous global indices, and the
    same truncation-suppression count."""
    program, bundle = _bundle("pfscan", 0, plan_name)
    ctx = AnalysisContext(program, bundle)
    ctx.replay()

    scalar = list(ctx.merged_events())
    scalar_suppressed = ctx.suppressed_accesses

    flat = []
    for item in ctx.merged_batches():
        if item[0] == BATCH_SYNC:
            _, op, gindex = item
            flat.append((gindex, None, op))
        else:
            _, batch, start, stop, gindex = item
            assert 0 <= start < stop <= len(batch)
            for i in range(start, stop):
                flat.append((gindex + i - start, batch.key_at(i),
                             batch.access_at(i)))
    assert ctx.suppressed_accesses == scalar_suppressed

    assert len(flat) == len(scalar)
    assert [g for g, _, _ in flat] == list(range(len(scalar)))
    for (gindex, key, event), (scalar_key, scalar_event) in zip(flat,
                                                                scalar):
        if key is not None:
            assert key == scalar_key
        assert event == scalar_event


def test_default_feed_batch_fallback_is_scalar():
    """A backend without a columnar fast path gets the default
    materialize-and-delegate feed_batch — same verdicts either way."""
    program, bundle = _bundle("mysql-791", 0)
    scalar = OfflinePipeline(
        program, detectors=("lockset",), batch=False).analyze(bundle)
    batched = OfflinePipeline(
        program, detectors=("lockset",), batch=True).analyze(bundle)
    ls, lb = scalar.findings["lockset"], batched.findings["lockset"]
    assert ls.races == lb.races
    assert ls.accesses_processed == lb.accesses_processed


# ----------------------------------------------------------------------
# Batch internals
# ----------------------------------------------------------------------


def _hand_batch(tid, triples):
    """Build a batch from (var_address, kind, tsc) triples directly."""
    batch = EventBatch(tid)
    batch.prov_table.append("sampled")
    for i, (address, kind, tsc) in enumerate(triples):
        batch.tscs.append(float(tsc))
        batch.vars.append((address, 0))
        batch.kinds.append(kind)
        batch.ips.append(1000 * tid + i)
        batch.steps.append(i)
        batch.prov_codes.append(0)
    return batch


@given(pairs=st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), st.booleans()),
    max_size=60,
))
@settings(max_examples=60, deadline=None)
def test_next_change_is_first_differing_position(pairs):
    triples = [(8 * var, ACCESS_WRITE if is_write else ACCESS_READ, i)
               for i, (var, is_write) in enumerate(pairs)]
    batch = _hand_batch(0, triples)
    nxt = batch.next_change
    n = len(pairs)
    assert len(nxt) == n
    for i in range(n):
        expected = next(
            (j for j in range(i + 1, n) if pairs[j] != pairs[i]), n)
        assert nxt[i] == expected
    # Cached: the second access returns the same array object.
    assert batch.next_change is nxt


@given(
    entries=st.dictionaries(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=6), max_size=5),
    clock=st.integers(min_value=0, max_value=7),
    tid=st.integers(min_value=-1, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_covers_raw_matches_covers_epoch(entries, clock, tid):
    vc = VectorClock(dict(entries))
    assert vc.covers_raw(clock, tid) == vc.covers_epoch(Epoch(clock, tid))


# ----------------------------------------------------------------------
# Detector-level hypothesis differential
# ----------------------------------------------------------------------

#: One stream event: (tid 0-2, var 0-3, is_write) or a sync op
#: (lock/unlock on one of two locks).
_ACCESS = st.tuples(
    st.just("access"),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=3),
    st.booleans(),
)
_SYNC = st.tuples(
    st.just("sync"),
    st.integers(min_value=0, max_value=2),
    st.sampled_from(["lock", "unlock"]),
    st.integers(min_value=0, max_value=1),
)
_STREAM = st.lists(st.one_of(_ACCESS, _SYNC), min_size=1, max_size=80)


def _lower(stream):
    """Lower a generated stream into per-thread batches plus the merged
    run/sync plan (the same shape ``merged_batches`` emits)."""
    batches = {}
    plan = []
    gindex = 0
    for event in stream:
        if event[0] == "sync":
            _, tid, kind, lock = event
            plan.append(("sync", SyncOp(tid=tid, kind=kind,
                                        target=0x9000 + 16 * lock,
                                        tsc=float(gindex))))
            gindex += 1
            continue
        _, tid, var, is_write = event
        batch = batches.get(tid)
        if batch is None:
            batch = batches[tid] = _hand_batch(tid, [])
        position = len(batch)
        batch.tscs.append(float(gindex))
        batch.vars.append((0x8000 + 8 * var, 0))
        batch.kinds.append(ACCESS_WRITE if is_write else ACCESS_READ)
        batch.ips.append(1000 * tid + position)
        batch.steps.append(position)
        batch.prov_codes.append(0)
        if plan and plan[-1][0] == "run" and plan[-1][1] is batch:
            plan[-1] = ("run", batch, plan[-1][2], position + 1,
                        plan[-1][4])
        else:
            plan.append(("run", batch, position, position + 1, gindex))
        gindex += 1
    return batches, plan


def _run_scalar(plan):
    detector = FastTrack()
    for item in plan:
        if item[0] == "sync":
            detector.sync(item[1])
        else:
            _, batch, start, stop, _base = item
            for i in range(start, stop):
                detector.access(batch.access_at(i))
    return detector


def _run_batched(plan):
    detector = FastTrack()
    for item in plan:
        if item[0] == "sync":
            detector.sync(item[1])
        else:
            _, batch, start, stop, base = item
            detector.feed_batch(batch, start, stop, base)
    return detector


def _run_sharded(plan, nshards):
    per_shard = []
    for shard in range(nshards):
        detector = FastTrack()
        for item in plan:
            if item[0] == "sync":
                detector.sync(item[1])
            else:
                _, batch, start, stop, base = item
                detector.feed_batch_shard(batch, start, stop, base,
                                          shard, nshards)
        per_shard.append(detector)
    merged = heapq.merge(
        *(list(zip(d.race_indices, d.races)) for d in per_shard),
        key=itemgetter(0))
    races = [report for _gidx, report in merged]
    accesses = sum(d.accesses_processed for d in per_shard)
    return races, accesses


@given(stream=_STREAM)
@settings(max_examples=120, deadline=None)
def test_feed_batch_matches_scalar_access_loop(stream):
    batches, plan = _lower(stream)
    scalar = _run_scalar(plan)
    batched = _run_batched(plan)
    assert batched.races == scalar.races
    assert batched.accesses_processed == scalar.accesses_processed
    assert batched.sync_processed == scalar.sync_processed


@given(stream=_STREAM, nshards=st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_sharded_merge_matches_scalar_order(stream, nshards):
    _batches, plan = _lower(stream)
    scalar = _run_scalar(plan)
    races, accesses = _run_sharded(plan, nshards)
    assert races == scalar.races
    assert accesses == scalar.accesses_processed


def test_race_indices_are_global_stream_positions():
    """Regression: a run starting deep inside one batch must not tag
    its reports with inflated indices, or the per-shard k-way merge
    reorders nearby races from different shards.  Thread 1's second run
    starts at batch position 50 while thread 2's runs start near 0; the
    two races land at consecutive stream positions 51 and 52."""
    stream = []
    for g in range(50):  # t1 filler; vC at stream position 10
        stream.append(("access", 1, 3 if g == 10 else 0, True))
    stream[0] = ("access", 1, 1, True)
    stream.append(("access", 2, 2, True))   # gidx 50: t2 writes vB
    stream.append(("access", 1, 2, True))   # gidx 51: race on vB
    stream.append(("access", 2, 3, True))   # gidx 52: race on vC
    _batches, plan = _lower(stream)
    batched = _run_batched(plan)
    assert batched.race_indices == [51, 52]
    scalar = _run_scalar(plan)
    for nshards in (2, 3):
        races, _ = _run_sharded(plan, nshards)
        assert races == scalar.races == batched.races
