"""Differential tests: Eraser lockset vs FastTrack on reader-writer
locks and barriers.

The lockset backend refines Eraser with read-shared/write-exclusive
semantics: a rd-held rwlock protects *reads* (it excludes every
writer) but not *writes* (other readers run concurrently).  These
tests pin that refinement against FastTrack on the same event streams
— agreement where the semantics are unambiguous, and the documented
lockset false positive on barrier ordering (sync that orders without
locking)."""

from repro.detector import (
    Access,
    AccessKind,
    FastTrack,
    LocksetDetector,
    SyncOp,
)
from repro.workloads import generate_server_program
from repro.analysis import OfflinePipeline
from repro.tracing import trace_run

VAR = (0x1000, 0)
RW = 0x900
BAR = 0xB00


def read(tid, ip=1):
    return Access(tid=tid, var=VAR, kind=AccessKind.READ, ip=ip, tsc=0.0,
                  provenance="test")


def write(tid, ip=2):
    return Access(tid=tid, var=VAR, kind=AccessKind.WRITE, ip=ip, tsc=0.0,
                  provenance="test")


def sync(tid, kind, target=RW):
    return SyncOp(tid=tid, kind=kind, target=target, tsc=0.0)


def run(detector, events):
    for event in events:
        if isinstance(event, SyncOp):
            detector.sync(event)
        else:
            detector.access(event)
    return detector


def both(events):
    return (run(LocksetDetector(), events), run(FastTrack(), events))


def rd_section(tid, access):
    return [sync(tid, "rwlock_rd"), access, sync(tid, "rwlock_unlock")]


def wr_section(tid, access):
    return [sync(tid, "rwlock_wr"), access, sync(tid, "rwlock_unlock")]


class TestAgreement:
    def test_concurrent_rd_readers_clean_in_both(self):
        events = rd_section(0, read(0)) + rd_section(1, read(1))
        lockset, fasttrack = both(events)
        assert not lockset.racy_addresses()
        assert not fasttrack.racy_addresses()

    def test_wr_writers_clean_in_both(self):
        events = wr_section(0, write(0)) + wr_section(1, write(1))
        lockset, fasttrack = both(events)
        assert not lockset.racy_addresses()
        assert not fasttrack.racy_addresses()

    def test_rd_reader_vs_wr_writer_clean_in_both(self):
        events = wr_section(0, write(0)) + rd_section(1, read(1))
        lockset, fasttrack = both(events)
        assert not lockset.racy_addresses()
        assert not fasttrack.racy_addresses()

    def test_rd_held_writes_race_in_both(self):
        """Write-exclusive refinement: a rd-held rwlock does not guard
        writes, and no HB edge orders one reader's critical section
        after another's."""
        events = rd_section(0, write(0)) + rd_section(1, write(1))
        lockset, fasttrack = both(events)
        assert VAR[0] in lockset.racy_addresses()
        assert VAR[0] in fasttrack.racy_addresses()

    def test_unlocked_writer_vs_rd_reader_race_in_both(self):
        events = rd_section(0, read(0)) + [write(1)]
        lockset, fasttrack = both(events)
        assert VAR[0] in lockset.racy_addresses()
        assert VAR[0] in fasttrack.racy_addresses()


class TestDivergence:
    """Where the backends must disagree — the imprecision the paper's
    happens-before choice avoids."""

    def test_barrier_ordering_is_a_lockset_false_positive(self):
        """Write, everyone crosses a barrier, other thread writes: HB
        orders the pair (barrier releases join every arrival), but
        barriers carry no lockset information."""
        events = [
            write(0),
            sync(0, "barrier_arrive", BAR),
            sync(0, "barrier_wait", BAR),
            sync(1, "barrier_arrive", BAR),
            sync(1, "barrier_wait", BAR),
            write(1),
        ]
        lockset, fasttrack = both(events)
        assert VAR[0] in lockset.racy_addresses()        # false positive
        assert VAR[0] not in fasttrack.racy_addresses()  # precise

    def test_writer_release_orders_later_reader(self):
        """wr-unlock → rd-lock is an HB edge (release/acquire), so a
        reader after the writer's section is ordered even though the
        sections share no *write-mode* lock for lockset's read rule to
        need — both stay clean, for different reasons."""
        events = wr_section(0, write(0)) + rd_section(1, read(1))
        _, fasttrack = both(events)
        assert not fasttrack.racy_addresses()


class TestOnGeneratedServerWorkload:
    def test_injected_race_found_and_rwlock_traffic_clean(self):
        """The generated server workload exercises rwlocks, barriers,
        semaphores, and mutexes; at period 1 FastTrack must report the
        injected racy pair and nothing in the synchronized traffic."""
        program, (read_ip, write_ip) = generate_server_program(3)
        injected = program.symbols["injected_racy"]
        bundle = trace_run(program, period=1, seed=3)
        result = OfflinePipeline(program).analyze(bundle)
        assert {r.address for r in result.races} == {injected}
        assert tuple(sorted((read_ip, write_ip))) in {
            r.pair for r in result.races
        }

    def test_lockset_flags_superset_of_fasttrack_sites(self):
        """Differential containment on the full server event stream:
        every FastTrack race site is also a lockset site (lockset
        over-approximates; it never misses a true unlocked pair)."""
        program, _ = generate_server_program(5)
        bundle = trace_run(program, period=1, seed=5)
        pipeline = OfflinePipeline(program)
        events, _replay = pipeline.events_for(bundle)
        plain = [item[1] if isinstance(item, tuple) else item
                 for item in events]
        lockset = run(LocksetDetector(), plain)
        fasttrack = run(FastTrack(), plain)
        assert (set(fasttrack.racy_addresses())
                <= set(lockset.racy_addresses()))
