"""Clock reconciliation: adversarial time (docs/robustness.md).

Covers the whole `repro.clock` contract:

* fault injection is pure and fully declared in ``TraceDefects``;
* estimation triggers on either evidence channel (sync-log inversions,
  per-stream regressions) and snaps to the exact identity on clean
  traces;
* monotonicity repair restores the two invariants ordering rests on;
* the uncertainty clamp never crosses a thread's own sync window;
* the v4 container round-trips the calibration section (v1–v3 stay
  readable, a corrupt clock section salvages away);
* the acceptance duel — under injected skew/drift/regressions the
  reconciled pipeline reports zero false races while naive-TSC
  ordering demonstrably fabricates one;
* fleet ingest removes per-node epoch offsets before the fold.
"""

from __future__ import annotations

import pytest

from repro.analysis import OfflinePipeline
from repro.analysis.report import render_report, to_json
from repro.clock import (
    ClockModel,
    apply_clock_correction,
    estimate_clock_model,
    inject_clock_faults,
    repair_streams,
    shift_bundle_tscs,
)
from repro.clock.repair import RepairStats, _repair_sync
from repro.detector.events import uncertain_merge_tsc
from repro.faults import CLOCK_PLAN_NAMES, FaultPlan, clock_plans
from repro.fleet.ingest import CLOCK_OFFSET_FLOOR, _earliest_tsc, \
    _normalize_clock, IngestStats
from repro.fleet.nodes import node_clock_offset
from repro.pmu.records import SyncRecord
from repro.tracing import (
    read_trace,
    read_trace_bytes,
    trace_run,
    trace_to_bytes,
    write_trace,
)
from repro.workloads import RACE_BUGS, SMALL

BUG = "apache-21287"


@pytest.fixture(scope="module")
def bundle():
    program = RACE_BUGS[BUG].build(SMALL)
    return program, trace_run(program, period=100, seed=3)


@pytest.fixture(scope="module")
def dense_bundle():
    """A workload whose sync log is dense and multi-threaded, so pure
    skew/drift (no regressions) leaves cross-core anchor evidence."""
    from repro.workloads import ALL_WORKLOADS

    program = ALL_WORKLOADS["bodytrack"].build(SMALL)
    return program, trace_run(program, period=100, seed=3)


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------

def test_injection_is_pure_and_declared(bundle):
    _program, clean = bundle
    before = trace_to_bytes(clean)
    disturbed, stats = inject_clock_faults(
        clean, skew=1.0, drift=0.5, step=0.5, regress=0.3, seed=3)
    assert trace_to_bytes(clean) == before  # input untouched
    assert disturbed is not clean
    assert stats.skewed_cores or stats.drifted_cores
    assert stats.regressions > 0


def test_fault_plan_records_clock_provenance(bundle):
    _program, clean = bundle
    degraded, defects = FaultPlan(seed=3, clock_skew=1.0,
                                  clock_regress=0.3).apply(clean)
    assert defects.clock_disturbed
    assert defects.clock_skewed_cores > 0
    assert defects.clock_regressions > 0
    assert degraded is not clean


def test_clock_plans_catalogued():
    plans = clock_plans(0.5, seed=1)
    assert set(plans) == set(CLOCK_PLAN_NAMES)
    for plan in plans.values():
        assert plan.clock_intensity > 0


# ----------------------------------------------------------------------
# Estimation: two evidence channels, snap-to-identity
# ----------------------------------------------------------------------

def test_clean_trace_estimates_exact_identity(bundle):
    _program, clean = bundle
    model = estimate_clock_model(clean)
    assert model.is_identity
    corrected, _model, stats = apply_clock_correction(clean)
    assert corrected is clean  # the byte-identity guarantee
    assert stats.total_moved == 0


def test_skew_evidence_produces_fits(dense_bundle):
    _program, clean = dense_bundle
    disturbed, _ = inject_clock_faults(clean, skew=1.0, drift=0.5,
                                       step=0.0, regress=0.0, seed=3)
    model = estimate_clock_model(disturbed)
    assert not model.is_identity
    assert model.fits  # per-core affine fits from sync anchors
    assert model.max_half_width > 0


def test_regression_evidence_without_sync_inversions(bundle):
    """A sparse sync log can stay sorted while per-stream regressions
    scream; the second evidence channel must still engage."""
    _program, clean = bundle
    disturbed, stats = inject_clock_faults(clean, skew=0.0, drift=0.0,
                                           step=0.0, regress=0.3, seed=3)
    assert stats.regressions > 0
    model = estimate_clock_model(disturbed)
    assert not model.is_identity
    assert model.inversions > 0
    assert model.default_half_width > 0


def test_correction_repairs_monotonicity(dense_bundle):
    _program, clean = dense_bundle
    disturbed, _ = inject_clock_faults(clean, skew=1.0, drift=0.5,
                                       step=0.5, regress=0.3, seed=3)
    corrected, model, _stats = apply_clock_correction(disturbed)
    assert not model.is_identity
    records = sorted(corrected.sync_records, key=lambda r: r.seq)
    assert all(a.tsc <= b.tsc for a, b in zip(records, records[1:]))
    for tid in {r.tid for r in records}:
        own = [r.tsc for r in records if r.tid == tid]
        assert all(a < b for a, b in zip(own, own[1:]))
    for sample_tid in {s.tid for s in corrected.samples}:
        tscs = [s.tsc for s in corrected.samples if s.tid == sample_tid]
        assert all(a <= b for a, b in zip(tscs, tscs[1:]))


# ----------------------------------------------------------------------
# Sync repair and the uncertainty clamp
# ----------------------------------------------------------------------

def _sync(tsc, seq, tid):
    return SyncRecord(tsc=tsc, seq=seq, tid=tid, ip=0, kind="lock",
                      target=0x10)


def test_repair_sync_global_and_per_thread():
    records = [_sync(10, 0, 1), _sync(4, 1, 2), _sync(10, 2, 1),
               _sync(10, 3, 2)]
    stats = RepairStats()
    repaired, changed = _repair_sync(records, stats)
    assert changed
    tscs = [r.tsc for r in repaired]
    assert all(a <= b for a, b in zip(tscs, tscs[1:]))
    for tid in (1, 2):
        own = [r.tsc for r in repaired if r.tid == tid]
        assert all(a < b for a, b in zip(own, own[1:]))
    # Idempotent: a repaired stream comes back as-is.
    again, changed_again = _repair_sync(repaired, RepairStats())
    assert not changed_again and again is repaired


def test_uncertain_merge_clamps_to_own_sync_window():
    # Free access: merges at the late edge of its interval.
    assert uncertain_merge_tsc(10.0, 3.0, None, None) == 13.0
    # Upper clamp: never past the thread's own next sync.
    assert uncertain_merge_tsc(10.0, 3.0, None, 11.0) == 11.0
    # Two-sided: even a (regressed) estimate BELOW the next sync is
    # clamped down to it when uncertainty would overshoot — program
    # order beats interpolated time.
    assert uncertain_merge_tsc(12.0, 5.0, None, 14.0) == 14.0
    # Lower clamp: strictly past the previous own sync.
    assert uncertain_merge_tsc(1.0, 0.0, 5.0, 9.0) == 6.0
    # Degenerate-window safety: the key stays inside (prev, next].
    assert uncertain_merge_tsc(1.0, 0.0, 5.0, 6.0) == 6.0


# ----------------------------------------------------------------------
# v4 container
# ----------------------------------------------------------------------

def test_version_matrix_round_trip(bundle, tmp_path):
    program, clean = bundle
    for version in (1, 2, 3):
        path = tmp_path / f"v{version}.prtr"
        write_trace(clean, path, version=version)
        loaded = read_trace(path, program=program)
        assert len(loaded.samples) == len(clean.samples)
        assert loaded.clock is None


def test_v4_round_trips_clock_calibration(dense_bundle, tmp_path):
    program, clean = dense_bundle
    disturbed, _ = inject_clock_faults(clean, skew=1.0, drift=0.5,
                                       step=0.0, regress=0.0, seed=3)
    corrected, model, _stats = apply_clock_correction(disturbed)
    path = tmp_path / "v4.prtr"
    write_trace(corrected, path)
    loaded = read_trace(path, program=program)
    assert loaded.clock is not None
    assert loaded.clock.inversions == model.inversions
    assert loaded.clock.default_half_width == model.default_half_width
    assert [f.to_dict() for f in loaded.clock.fits] \
        == [f.to_dict() for f in model.fits]


def test_clean_bundle_still_writes_v3_or_older(bundle, tmp_path):
    """An unreconciled bundle must stay byte-identical to pre-clock
    builds — the v4 section only appears when a model was attached."""
    _program, clean = bundle
    assert clean.clock is None
    blob = trace_to_bytes(clean)
    assert blob[4] < 4  # container version byte


def test_corrupt_clock_section_salvages(dense_bundle, tmp_path):
    program, clean = dense_bundle
    disturbed, _ = inject_clock_faults(clean, skew=1.0, drift=0.0,
                                       step=0.0, regress=0.0, seed=3)
    corrected, _model, _stats = apply_clock_correction(disturbed)
    blob = bytearray(trace_to_bytes(corrected))
    # The clock section is written last: its final payload byte sits
    # just before the 4-byte file trailer.  Flipping it breaks exactly
    # that section's CRC (and the trailer), nothing else.
    blob[-5] ^= 0xFF
    from repro.tracing import TraceFormatError

    with pytest.raises(TraceFormatError):
        read_trace_bytes(bytes(blob), program=program)
    salvaged = read_trace_bytes(bytes(blob), program=program,
                                allow_partial=True)
    assert salvaged.clock is None  # calibration lost, trace usable
    assert len(salvaged.samples) == len(corrected.samples)
    assert any(entry.startswith("clock#")
               for entry in salvaged.defects.corrupted_sections)


# ----------------------------------------------------------------------
# Pipeline byte-identity and the acceptance duel
# ----------------------------------------------------------------------

def test_zero_fault_reports_byte_identical(bundle):
    program, clean = bundle
    plain = OfflinePipeline(program).analyze(clean)
    reconciled = OfflinePipeline(program,
                                 reconcile_clock=True).analyze(clean)
    assert reconciled.clock is not None
    assert not reconciled.clock.active
    # Verdicts identical; the text report differs by exactly the one
    # "timestamps trusted as-is" line the clock section contributes.
    assert [r.address for r in plain.races] \
        == [r.address for r in reconciled.races]
    plain_lines = render_report(program, plain).splitlines()
    recon_lines = [line for line in
                   render_report(program, reconciled).splitlines()
                   if not line.startswith("clock reconciliation:")]
    assert plain_lines == recon_lines
    import json

    plain_json = json.loads(to_json(program, plain))
    recon_json = json.loads(to_json(program, reconciled))
    recon_json.pop("clock")  # the only permitted delta
    for payload in (plain_json, recon_json):  # wall-clock noise
        payload.pop("timings_seconds", None)
        payload.pop("replay_speed", None)
    assert plain_json == recon_json


@pytest.mark.parametrize("plan_kwargs", [
    {"clock_regress": 0.3},
    {"clock_skew": 0.8, "clock_drift": 0.5, "clock_regress": 0.3},
], ids=["regress", "combo"])
def test_acceptance_reconciled_beats_naive(bundle, plan_kwargs):
    """The ISSUE acceptance criterion: under injected clock faults the
    naive-TSC pipeline fabricates a race the program cannot have, while
    the reconciled pipeline reports zero false races and still detects
    the true one."""
    program, clean = bundle
    truth = {r.address for r in OfflinePipeline(program)
             .analyze(clean).races}
    assert truth
    degraded, _ = FaultPlan(seed=3, **plan_kwargs).apply(clean)
    naive = OfflinePipeline(program).analyze(degraded)
    reconciled = OfflinePipeline(program,
                                 reconcile_clock=True).analyze(degraded)
    naive_addresses = {r.address for r in naive.races}
    recon_addresses = {r.address for r in reconciled.races}
    assert naive_addresses - truth, "naive ordering must fabricate"
    assert not (recon_addresses - truth), "reconciled must not"
    assert recon_addresses & truth, "and must keep the true race"
    clock = reconciled.clock
    assert clock is not None and clock.active
    assert clock.reconciles is True  # faults were declared
    deg = reconciled.degradation
    assert deg.clock_declared


def test_undeclared_clock_damage_flagged(dense_bundle):
    """Clock damage with no declared fault plan must read as
    non-reconciling — silent damage never passes for clean."""
    program, clean = dense_bundle
    disturbed, _ = inject_clock_faults(clean, skew=1.0, drift=0.5,
                                       step=0.0, regress=0.0, seed=3)
    result = OfflinePipeline(program,
                             reconcile_clock=True).analyze(disturbed)
    assert result.clock is not None
    assert result.clock.active
    assert result.clock.reconciles is False
    assert "DECLARED" in render_report(program, result)


# ----------------------------------------------------------------------
# Fleet: per-node epoch offsets
# ----------------------------------------------------------------------

def test_node_clock_offset_seeded_and_gated():
    assert node_clock_offset(0, 1, 0.0) == 0
    first = node_clock_offset(7, 1, 1.0)
    assert first == node_clock_offset(7, 1, 1.0)
    assert first > CLOCK_OFFSET_FLOOR
    assert node_clock_offset(7, 2, 1.0) != first


def test_ingest_normalizes_node_offsets(bundle):
    _program, clean = bundle
    offset = 123_456
    shifted = shift_bundle_tscs(clean, offset)
    assert _earliest_tsc(shifted) == _earliest_tsc(clean) + offset
    stats = IngestStats()
    normalized_blob = _normalize_clock(shifted, trace_to_bytes(shifted),
                                       stats)
    assert stats.clock_reconciled == 1
    normalized = read_trace_bytes(normalized_blob)
    assert _earliest_tsc(normalized) == 0
    # Within-bundle orderings are untouched: same relative sync order.
    assert [r.seq for r in normalized.sync_records] \
        == [r.seq for r in clean.sync_records]
    # A native bundle passes through untouched.
    stats = IngestStats()
    blob = trace_to_bytes(clean)
    assert _normalize_clock(clean, blob, stats) is blob
    assert stats.clock_reconciled == 0


def test_repair_streams_rejects_bad_order(bundle):
    _program, clean = bundle
    with pytest.raises(ValueError):
        repair_streams(clean, order=("sync", "sync", "allocs", "packets"))


def test_identity_model_constructors():
    model = ClockModel.identity()
    assert model.is_identity
    assert model.correct(41, core=2) == 41
    assert model.half_width_of(9) == 0.0
