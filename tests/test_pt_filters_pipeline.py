"""PT region filtering through the full pipeline: graceful degradation.

§4.2: ProRace configures PT's four address filters to the main
executable; anything outside produces no packets and is invisible
offline.  The pipeline must degrade — losing coverage past the first
filtered branch — without corrupting anything it can still see.
"""

import pytest

from repro.analysis import OfflinePipeline
from repro.isa import assemble
from repro.pmu import PTConfig
from repro.tracing import trace_run

from tests.helpers import RACY_ASM


def traced_with_filter(program, filters, seed=1, period=3):
    return trace_run(
        program, period=period, seed=seed,
        pt_config=PTConfig(filters=filters),
    )


class TestWholeProgramFilter:
    def test_equivalent_to_unfiltered(self, racy_program):
        whole = ((0, len(racy_program)),)
        filtered = traced_with_filter(racy_program, whole)
        unfiltered = trace_run(racy_program, period=3, seed=1)
        result_f = OfflinePipeline(racy_program).analyze(filtered)
        result_u = OfflinePipeline(racy_program).analyze(unfiltered)
        assert result_f.racy_addresses == result_u.racy_addresses


class TestTruncatingFilter:
    def test_analysis_survives_truncation(self, racy_program):
        # Exclude everything: every thread's path stops at its first
        # packet-needing branch.
        bundle = traced_with_filter(racy_program, ((9_000, 9_001),))
        result = OfflinePipeline(racy_program).analyze(bundle)
        # Nothing decodable past the first branches → no races visible,
        # but no crash and no fabricated accesses either.
        for accesses in result.replay.per_thread.values():
            for access in accesses:
                assert 0 <= access.ip < len(racy_program)

    def test_truncated_paths_flagged(self, racy_program):
        bundle = traced_with_filter(racy_program, ((9_000, 9_001),))
        from repro.ptdecode import decode_all

        paths = decode_all(racy_program, bundle.pt_traces,
                           config=bundle.pt_config)
        assert all(not p.complete for p in paths.values())

    def test_partial_region_keeps_prefix_coverage(self):
        source = """
.global a 0
.global b 0
main:
    mov a(%rip), %rax
    mov %rax, a(%rip)
    mov $3, %rcx
loop:
    mov b(%rip), %rdx
    dec %rcx
    cmp $0, %rcx
    jne loop
    halt
"""
        program = assemble(source)
        # Cover only up to (not including) the loop's branch.
        bundle = traced_with_filter(program, ((0, 3),), period=100)
        from repro.ptdecode import decode_all

        paths = decode_all(program, bundle.pt_traces,
                           config=bundle.pt_config)
        path = paths[0]
        assert not path.complete
        # The straight-line prefix is decoded.
        assert path.steps[:3] == [0, 1, 2]
        result = OfflinePipeline(program).analyze(bundle)
        prefix_ips = {a.ip for accs in result.replay.per_thread.values()
                      for a in accs}
        assert {0, 1} <= prefix_ips  # pc-relative prefix recovered
