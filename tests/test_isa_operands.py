"""Unit tests for operand types."""

import pytest

from repro.isa.operands import Imm, Mem, Reg


class TestReg:
    def test_valid(self):
        assert Reg("rax").name == "rax"

    def test_invalid(self):
        with pytest.raises(ValueError):
            Reg("zzz")

    def test_str(self):
        assert str(Reg("r12")) == "%r12"

    def test_hashable_and_equal(self):
        assert Reg("rax") == Reg("rax")
        assert len({Reg("rax"), Reg("rax"), Reg("rbx")}) == 2


class TestImm:
    def test_str_small(self):
        assert str(Imm(5)) == "$5"

    def test_str_large_hex(self):
        assert str(Imm(0x1000)) == "$0x1000"


class TestMem:
    def test_base_only(self):
        mem = Mem(base="rbx")
        assert mem.address_registers() == frozenset({"rbx"})

    def test_base_index_scale(self):
        mem = Mem(base="rbp", index="rbx", scale=4, disp=0x10)
        assert mem.address_registers() == frozenset({"rbp", "rbx"})

    def test_rip_relative_needs_no_registers(self):
        mem = Mem(disp=0x40, rip_relative=True)
        assert mem.address_registers() == frozenset()

    def test_rip_relative_rejects_base(self):
        with pytest.raises(ValueError):
            Mem(base="rax", rip_relative=True)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            Mem(base="rax", index="rbx", scale=3)

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            Mem(base="bogus")

    def test_str_full_form(self):
        text = str(Mem(base="rbp", index="rbx", scale=4, disp=0x10))
        assert text == "0x10(%rbp,%rbx,4)"

    def test_str_rip(self):
        assert str(Mem(disp=8, rip_relative=True)) == "0x8(%rip)"
