"""Assembler error handling and the .ptr directive."""

import pytest

from repro.isa import AssemblerError, assemble


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("main:\n    frobnicate %rax\n")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            assemble("main:\n    mov %eax, %rbx\n    halt\n")

    def test_bad_immediate(self):
        with pytest.raises(AssemblerError, match="bad immediate"):
            assemble("main:\n    mov $zzz, %rax\n    halt\n")

    def test_unknown_rip_symbol(self):
        with pytest.raises(AssemblerError, match="unknown symbol"):
            assemble("main:\n    mov nope(%rip), %rax\n    halt\n")

    def test_unknown_indexed_symbol(self):
        with pytest.raises(AssemblerError, match="unknown symbol"):
            assemble("main:\n    mov nope(,%r8,8), %rax\n    halt\n")

    def test_bad_scale(self):
        with pytest.raises(AssemblerError, match="scale"):
            assemble("main:\n    mov (%rax,%rbx,3), %rcx\n    halt\n")

    def test_jump_expects_one_target(self):
        with pytest.raises(AssemblerError, match="one target"):
            assemble("main:\n    jmp a, b\n")

    def test_spawn_needs_entry(self):
        with pytest.raises(AssemblerError, match="entry label"):
            assemble("main:\n    spawn\n")

    def test_line_numbers_in_messages(self):
        try:
            assemble("main:\n    nop\n    bogus %rax\n")
        except AssemblerError as exc:
            assert "line 3" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected AssemblerError")

    def test_directive_argument_errors(self):
        with pytest.raises(AssemblerError, match="bad directive"):
            assemble(".global\nmain:\n    halt\n")
        with pytest.raises(AssemblerError, match="bad directive"):
            assemble(".reserve buf xyz\nmain:\n    halt\n")


class TestPtrDirective:
    def test_ptr_holds_target_address(self):
        program = assemble(
            ".reserve buf 4\n.ptr buf_ptr buf\nmain:\n    halt\n"
        )
        cell = program.symbols["buf_ptr"]
        assert program.data[cell] == program.symbols["buf"]

    def test_ptr_forward_reference_rejected(self):
        with pytest.raises(AssemblerError, match="unknown symbol"):
            assemble(".ptr p later\n.global later 0\nmain:\n    halt\n")

    def test_ptr_loads_like_any_global(self):
        from repro.machine import Machine

        source = """
.array data 7 8 9
.ptr data_ptr data
.global out 0
main:
    mov data_ptr(%rip), %rsi
    mov 8(%rsi), %rax
    mov %rax, out(%rip)
    halt
"""
        program = assemble(source)
        machine = Machine(program)
        machine.run()
        assert machine.memory.load(program.symbols["out"]) == 8


class TestCondvarSyntax:
    def test_cond_ops_parse(self):
        program = assemble(
            ".global cv 0\n.global m 0\nmain:\n"
            "    cond_signal $cv\n"
            "    cond_broadcast $cv\n"
            "    halt\n"
        )
        assert len(program) == 3

    def test_cond_wait_two_operands(self):
        program = assemble(
            ".global cv 0\n.global m 0\nmain:\n"
            "    cond_wait $cv, $m\n    halt\n"
        )
        assert len(program[0].operands) == 2
