"""Property test (S3): delivery chaos never changes the race database.

For *any* interleaving of duplicate, torn, junk, out-of-order, and
crash-resumed deliveries, the committed race database is bit-identical
to the one produced by a clean single-delivery run.  Hypothesis drives
the interleavings; the fleet is produced once (tracing is the expensive
part) and every example replays transport + ingestion + the DB fold.

Analysis itself is deterministic on bytes, so instead of re-running the
offline pipeline per example we assert the stronger fact that ingestion
hands analysis the *exact original payload bytes* for every bundle,
then fold the once-computed findings.
"""

import functools
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.fleet import (
    BundleSpool,
    FleetConfig,
    RaceDatabase,
    encode_envelope,
    ingest,
    produce_fleet,
)
from repro.fleet.workers import analyze_bundles

SMALL = dict(nodes=2, epochs=2, iterations=8, seed=0)


@functools.lru_cache(maxsize=1)
def _fleet():
    """(produced bundles, per-bundle findings, clean DB bytes) — traced
    and analyzed exactly once per test process."""
    produced = produce_fleet(FleetConfig(**SMALL))
    with tempfile.TemporaryDirectory() as tmp:
        spool = BundleSpool(Path(tmp) / "spool")
        for seq, bundle in enumerate(produced):
            spool.put(seq, bundle.bundle_id,
                      encode_envelope(bundle.meta) + bundle.blob)
        accepted = ingest(spool).accepted
        outcome = analyze_bundles(accepted)
        findings = sorted(outcome.findings,
                          key=lambda f: (f["epoch"], f["node"],
                                         f["bundle_id"]))
        baseline = _fold(Path(tmp) / "races.db", findings,
                         crash_after=len(findings))
    return produced, findings, baseline


def _fold(path, findings, crash_after):
    """Fold findings into a fresh DB, simulating a triage-service crash
    after *crash_after* applies (close, reopen, redeliver everything)."""
    with RaceDatabase(path) as db:
        for finding in findings[:crash_after]:
            db.apply_bundle(finding["bundle_id"], finding["races"],
                            node=finding["node"], epoch=finding["epoch"],
                            probability=finding["probability"])
    with RaceDatabase(path) as db:  # resumed process re-applies all
        for finding in findings:
            db.apply_bundle(finding["bundle_id"], finding["races"],
                            node=finding["node"], epoch=finding["epoch"],
                            probability=finding["probability"])
    return path.read_bytes()


# Per-bundle extra copies beyond the guaranteed intact one.
EXTRA = st.lists(
    st.one_of(
        st.just(("dup", None)),
        st.tuples(st.just("torn"), st.floats(0.05, 0.95)),
        st.just(("junk", None)),
    ),
    max_size=3,
)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(extras=st.lists(EXTRA, min_size=4, max_size=4),
       order_seed=st.integers(0, 2**32 - 1),
       crash_after=st.integers(0, 4))
def test_any_interleaving_yields_identical_database(
        extras, order_seed, crash_after):
    import random

    produced, findings, baseline = _fleet()
    assert len(produced) == 4

    wire = []
    for bundle, extra in zip(produced, extras):
        intact = encode_envelope(bundle.meta) + bundle.blob
        wire.append((bundle.bundle_id, intact))
        for kind, param in extra:
            if kind == "dup":
                wire.append((bundle.bundle_id, intact))
            elif kind == "torn":
                cut = max(1, int(len(intact) * param))
                wire.append((bundle.bundle_id, intact[:cut]))
            else:
                wire.append((bundle.bundle_id, b"junk not a bundle"))
    random.Random(order_seed).shuffle(wire)

    with tempfile.TemporaryDirectory() as tmp:
        spool = BundleSpool(Path(tmp) / "spool")
        for seq, (bundle_id, payload) in enumerate(wire):
            spool.put(seq, bundle_id, payload)
        result = ingest(spool)

        # Every bundle arrives exactly once, carrying its original bytes.
        by_id = {a.bundle_id: a for a in result.accepted}
        assert set(by_id) == {b.bundle_id for b in produced}
        for bundle in produced:
            accepted = by_id[bundle.bundle_id]
            assert not accepted.salvaged
            assert accepted.trace == bundle.blob
        assert result.stats.reconciles
        assert result.stats.quarantined == 0

        # The deterministic fold — interrupted anywhere — commits the
        # same bytes as the clean single-delivery run.
        got = _fold(Path(tmp) / "races.db", findings, crash_after)
    assert got == baseline
