"""Unit tests for instruction classification and dataflow metadata."""

import pytest

from repro.isa.instructions import Instruction, Op
from repro.isa.operands import Imm, Mem, Reg


def ins(op, *operands, target=None):
    return Instruction(op, tuple(operands), target)


class TestClassification:
    def test_mov_load(self):
        load = ins(Op.MOV, Mem(base="rbx"), Reg("rax"))
        assert load.is_load() and not load.is_store()
        assert load.is_memory_access()

    def test_mov_store(self):
        store = ins(Op.MOV, Reg("rax"), Mem(base="rbx"))
        assert store.is_store() and not store.is_load()

    def test_mov_reg_reg_not_memory(self):
        assert not ins(Op.MOV, Reg("rax"), Reg("rbx")).is_memory_access()

    def test_lea_is_not_memory_access(self):
        lea = ins(Op.LEA, Mem(base="rbx", disp=8), Reg("rax"))
        assert not lea.is_memory_access()

    def test_alu_with_memory_source_is_load(self):
        add = ins(Op.ADD, Mem(base="rbx"), Reg("rax"))
        assert add.is_load() and not add.is_store()

    def test_push_is_store_pop_is_load(self):
        assert ins(Op.PUSH, Reg("rax")).is_store()
        assert ins(Op.POP, Reg("rax")).is_load()

    def test_cmp_with_memory_is_load(self):
        cmp = ins(Op.CMP, Mem(base="rbx"), Reg("rax"))
        assert cmp.is_load()

    def test_branch_classification(self):
        assert ins(Op.JMP, target="x").is_branch()
        assert ins(Op.JE, target="x").is_cond_branch()
        assert ins(Op.CALL, target="x").is_branch()
        assert ins(Op.RET).is_branch()
        assert not ins(Op.NOP).is_branch()

    def test_system_classification(self):
        assert ins(Op.LOCK, Imm(0)).is_system()
        assert ins(Op.MALLOC, Imm(8), Reg("rax")).is_system()
        assert not ins(Op.MOV, Reg("rax"), Reg("rbx")).is_system()

    def test_sync_classification(self):
        assert ins(Op.SPAWN, Reg("rax"), target="w").is_sync()
        assert ins(Op.SEM_POST, Imm(0)).is_sync()
        assert not ins(Op.MALLOC, Imm(8), Reg("rax")).is_sync()


class TestDataflow:
    def test_mov_reg_reg(self):
        mov = ins(Op.MOV, Reg("rax"), Reg("rbx"))
        assert mov.reads_registers() == frozenset({"rax"})
        assert mov.writes_registers() == frozenset({"rbx"})

    def test_mov_load_reads_address_registers(self):
        load = ins(Op.MOV, Mem(base="rbp", index="rbx", scale=4), Reg("rdx"))
        assert load.reads_registers() == frozenset({"rbp", "rbx"})
        assert load.writes_registers() == frozenset({"rdx"})

    def test_mov_store_reads_source_and_address(self):
        store = ins(Op.MOV, Reg("rax"), Mem(base="rsp", disp=8))
        assert store.reads_registers() == frozenset({"rax", "rsp"})
        assert store.writes_registers() == frozenset()

    def test_rip_relative_reads_nothing(self):
        load = ins(Op.MOV, Mem(disp=4, rip_relative=True), Reg("rax"))
        assert load.reads_registers() == frozenset()

    def test_alu_binary_reads_both(self):
        add = ins(Op.ADD, Reg("rax"), Reg("rbx"))
        assert add.reads_registers() == frozenset({"rax", "rbx"})
        assert add.writes_registers() == frozenset({"rbx"})

    def test_alu_unary(self):
        inc = ins(Op.INC, Reg("rcx"))
        assert inc.reads_registers() == frozenset({"rcx"})
        assert inc.writes_registers() == frozenset({"rcx"})

    def test_push_pop_touch_rsp(self):
        push = ins(Op.PUSH, Reg("rax"))
        assert "rsp" in push.reads_registers()
        assert push.writes_registers() == frozenset({"rsp"})
        pop = ins(Op.POP, Reg("rax"))
        assert pop.writes_registers() == frozenset({"rax", "rsp"})

    def test_spawn_writes_tid_destination(self):
        spawn = ins(Op.SPAWN, Reg("r9"), target="w")
        assert spawn.writes_registers() == frozenset({"r9"})
        assert spawn.reads_registers() == frozenset()

    def test_malloc_reads_size_writes_dst(self):
        malloc = ins(Op.MALLOC, Reg("rdi"), Reg("rax"))
        assert malloc.reads_registers() == frozenset({"rdi"})
        assert malloc.writes_registers() == frozenset({"rax"})

    def test_join_reads_tid(self):
        join = ins(Op.JOIN, Reg("rbx"))
        assert join.reads_registers() == frozenset({"rbx"})

    def test_str_rendering(self):
        assert str(ins(Op.MOV, Reg("rax"), Mem(base="rsp", disp=8))) == \
            "mov %rax,0x8(%rsp)"
