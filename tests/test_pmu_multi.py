"""Multiple PMU consumers and configuration interplay."""

import pytest

from repro.isa import assemble
from repro.machine import Machine
from repro.pmu import (
    PEBSConfig,
    PEBSEngine,
    PRORACE_DRIVER,
    PTConfig,
    PTPacketizer,
    VANILLA_DRIVER,
)
from repro.tracing import GroundTruthRecorder

from tests.helpers import CLEAN_COUNTER_ASM


class TestMultipleObservers:
    def test_two_pebs_engines_sample_independently(self):
        """Two engines at different periods coexist without interfering
        (each keeps its own counters; snapshots are built when either
        asks)."""
        program = assemble(CLEAN_COUNTER_ASM)
        machine = Machine(program, seed=1)
        fine = PEBSEngine(PEBSConfig(period=2), seed=2)
        coarse = PEBSEngine(PEBSConfig(period=10), seed=3)
        machine.attach(fine)
        machine.attach(coarse)
        result = machine.run()
        assert fine.accounting.samples_taken > \
            coarse.accounting.samples_taken
        assert fine.accounting.samples_taken == result.memory_ops // 2

    def test_pebs_and_ground_truth_agree(self):
        """Every PEBS sample must match the ground-truth access at the
        same TSC — the hardware never fabricates."""
        program = assemble(CLEAN_COUNTER_ASM)
        machine = Machine(program, seed=4)
        pebs = PEBSEngine(PEBSConfig(period=3), seed=5)
        truth = GroundTruthRecorder()
        machine.attach(pebs)
        machine.attach(truth)
        machine.run()
        by_tsc = {(a.tid, a.tsc): a for a in truth.accesses}
        assert pebs.samples
        for sample in pebs.samples:
            actual = by_tsc[(sample.tid, sample.tsc)]
            assert actual.ip == sample.ip
            assert actual.address == sample.address
            assert actual.is_store == sample.is_store

    def test_observer_order_does_not_matter(self):
        program_a = assemble(CLEAN_COUNTER_ASM)
        program_b = assemble(CLEAN_COUNTER_ASM)
        first = Machine(program_a, seed=6)
        pebs_a = PEBSEngine(PEBSConfig(period=4), seed=7)
        pt_a = PTPacketizer()
        first.attach(pebs_a)
        first.attach(pt_a)
        first.run()
        second = Machine(program_b, seed=6)
        pebs_b = PEBSEngine(PEBSConfig(period=4), seed=7)
        pt_b = PTPacketizer()
        second.attach(pt_b)  # reversed order
        second.attach(pebs_b)
        second.run()
        assert [s.tsc for s in pebs_a.samples] == \
            [s.tsc for s in pebs_b.samples]
        assert pt_a.packets_emitted == pt_b.packets_emitted


class TestSegmentSizing:
    def test_explicit_segment_override(self):
        program = assemble(CLEAN_COUNTER_ASM)
        machine = Machine(program, seed=1)
        pebs = PEBSEngine(PEBSConfig(period=1), seed=2, segment_records=4)
        machine.attach(pebs)
        machine.run()
        assert pebs.segment_records == 4
        # With forced drains exempt, every sample still survives or is
        # accounted as dropped.
        acc = pebs.accounting
        assert acc.samples_taken == acc.samples_written + \
            acc.samples_dropped

    def test_default_segment_scales_down_hardware_size(self):
        pebs = PEBSEngine(PEBSConfig(period=10))
        assert pebs.segment_records < PRORACE_DRIVER.records_per_segment
        assert pebs.segment_records >= 4


class TestDriverBehaviourFlags:
    def test_pollution_cap_differs(self):
        assert VANILLA_DRIVER.pollution_cap > PRORACE_DRIVER.pollution_cap

    def test_fixed_overhead_differs(self):
        assert VANILLA_DRIVER.fixed_overhead_fraction > \
            PRORACE_DRIVER.fixed_overhead_fraction

    def test_exit_drain_not_in_tracing_cost(self):
        program = assemble(CLEAN_COUNTER_ASM)
        machine = Machine(program, seed=1)
        pebs = PEBSEngine(PEBSConfig(period=50), seed=2)
        machine.attach(pebs)
        machine.run()
        acc = pebs.accounting
        assert acc.exit_drain_cycles > 0
        assert acc.handler_cycles == 0  # everything drained at exit
