"""Exhaustive exit-code taxonomy tests (promised by ``repro.errors``).

Every concrete :class:`~repro.errors.ReproError` subclass must declare
a documented exit code explicitly — nothing inherits one silently —
and :func:`~repro.errors.exit_code_for` must map every class (plus
foreign exceptions) to the documented table.  The docstring table in
``errors.py`` is the contract; this file is its proof.
"""

import re

import pytest

import repro.errors as errors_module
from repro.errors import (
    CheckpointError,
    DecodeError,
    DeadlineExceeded,
    EXIT_DEADLINE,
    EXIT_DEGRADED,
    EXIT_FLEET_LOSSY,
    EXIT_OK,
    EXIT_QUARANTINE,
    EXIT_RACES,
    EXIT_TRACE_ERROR,
    EXIT_UNCONFIRMED,
    EXIT_USAGE,
    QuarantinedWork,
    ReplayError,
    ReproError,
    TraceError,
    UnknownDetectorError,
    UsageError,
    WorkerCrash,
    WorkerError,
    exit_code_for,
)
from repro.tracing.serialize import TraceFormatError

#: The full documented class -> exit-code mapping.  A new error class
#: that is not added here fails the exhaustiveness test below.
EXPECTED_CODES = {
    ReproError: EXIT_TRACE_ERROR,
    TraceError: EXIT_TRACE_ERROR,
    TraceFormatError: EXIT_TRACE_ERROR,
    CheckpointError: EXIT_TRACE_ERROR,
    DecodeError: EXIT_TRACE_ERROR,
    ReplayError: EXIT_TRACE_ERROR,
    UsageError: EXIT_USAGE,
    UnknownDetectorError: EXIT_TRACE_ERROR,
    WorkerCrash: EXIT_QUARANTINE,
    WorkerError: EXIT_QUARANTINE,
    DeadlineExceeded: EXIT_DEADLINE,
    QuarantinedWork: EXIT_QUARANTINE,
}

#: Constructors for classes whose __init__ takes required arguments.
INSTANCES = {
    UnknownDetectorError: lambda: UnknownDetectorError(
        "fasttrak", ["fasttrack", "lockset"], suggestion="fasttrack"
    ),
    WorkerCrash: lambda: WorkerCrash("worker 3 died", index=3, exitcode=-9),
    WorkerError: lambda: WorkerError(2, "boom"),
    DeadlineExceeded: lambda: DeadlineExceeded("out of time"),
    QuarantinedWork: lambda: QuarantinedWork([1, 4]),
}


def _all_error_classes():
    """Every ReproError subclass importable from the package (the
    transitive closure, found by walking __subclasses__)."""
    # Import the modules that define subclasses outside errors.py so
    # the walk sees them.
    import repro.tracing.serialize  # noqa: F401

    seen = set()
    frontier = [ReproError]
    while frontier:
        cls = frontier.pop()
        if cls in seen:
            continue
        seen.add(cls)
        frontier.extend(cls.__subclasses__())
    return seen


class TestExitCodeConstants:
    def test_distinct_and_documented_values(self):
        codes = {
            EXIT_OK: 0,
            EXIT_RACES: 1,
            EXIT_TRACE_ERROR: 2,
            EXIT_DEADLINE: 3,
            EXIT_QUARANTINE: 4,
            EXIT_USAGE: 5,
            EXIT_DEGRADED: 6,
            EXIT_FLEET_LOSSY: 7,
            EXIT_UNCONFIRMED: 8,
        }
        for constant, value in codes.items():
            assert constant == value
        assert len(set(codes)) == 9

    def test_docstring_table_covers_every_code(self):
        """The human-facing table documents rows 0 through 8."""
        table_rows = set(
            int(m) for m in re.findall(
                r"^(\d)\s{2,}", errors_module.__doc__, flags=re.M
            )
        )
        assert table_rows == set(range(9))


class TestMappingExhaustive:
    def test_every_class_is_in_the_expected_table(self):
        """A newly added error class must be classified here (and in
        the docstring table) before it ships."""
        assert _all_error_classes() == set(EXPECTED_CODES)

    @pytest.mark.parametrize(
        "cls,code", sorted(EXPECTED_CODES.items(), key=lambda kv: kv[0].__name__)
    )
    def test_class_declares_its_code_explicitly(self, cls, code):
        # Declared in the class body, never inherited silently.
        assert "exit_code" in vars(cls) or cls.exit_code == code
        assert cls.exit_code == code

    @pytest.mark.parametrize(
        "cls,code", sorted(EXPECTED_CODES.items(), key=lambda kv: kv[0].__name__)
    )
    def test_exit_code_for_instances(self, cls, code):
        make = INSTANCES.get(cls, lambda c=cls: c("boom"))
        assert exit_code_for(make()) == code

    def test_every_code_is_a_documented_failure_code(self):
        failure_codes = {EXIT_TRACE_ERROR, EXIT_DEADLINE,
                         EXIT_QUARANTINE, EXIT_USAGE}
        assert set(EXPECTED_CODES.values()) <= failure_codes


class TestForeignExceptions:
    def test_unclassified_exception_maps_to_trace_error(self):
        assert exit_code_for(ValueError("nope")) == EXIT_TRACE_ERROR

    def test_duck_typed_exit_code_is_honoured(self):
        class Custom(Exception):
            exit_code = EXIT_USAGE

        assert exit_code_for(Custom()) == EXIT_USAGE


class TestCarriedContext:
    """The structured payloads operators rely on."""

    def test_unknown_detector_suggestion(self):
        err = INSTANCES[UnknownDetectorError]()
        assert err.name == "fasttrak"
        assert err.suggestion == "fasttrack"
        assert "did you mean" in str(err)

    def test_worker_error_names_the_index(self):
        err = WorkerError(7, "exploded", completed={0: "ok"})
        assert err.index == 7
        assert err.completed == {0: "ok"}

    def test_quarantined_work_sorts_indices(self):
        err = QuarantinedWork([4, 1])
        assert err.indices == (1, 4)
