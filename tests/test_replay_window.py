"""Window replay unit tests, including the paper's Figure 5 example."""

import pytest

from repro.isa import assemble
from repro.machine import Machine
from repro.replay import (
    PROV_BACKWARD,
    PROV_FORWARD,
    WindowReplayer,
)
from repro.replay.program_map import Known

from tests.helpers import record_states


def _single_thread_window(source, start, end, seed=0):
    """Build a WindowReplayer over thread 0's straight-line execution."""
    program = assemble(source)
    machine, states = record_states(program, seed=seed)
    steps = [ip for ip, _ in states[0]]
    entry = states[0][start][1] if start < len(states[0]) else None
    exit_regs = states[0][end][1] if end < len(states[0]) else None
    replayer = WindowReplayer(
        program, steps, start, end, tid=0,
        entry_registers=entry, exit_registers=exit_regs,
    )
    return program, machine, steps, replayer


FIGURE5 = """
.reserve stack_pad 4
.array darray 11 22 33 44 55 66 77 88
.array parray 0 0 0 0
main:
    mov $darray, %rbp
    mov $1, %rbx
    mov $parray, %r15
    mov $darray, %r9
    mov %r9, parray(%rip)
    mov %r9, 8(%r15)
    mov $darray, %r14
    mov $0, %r12
    mov $7, %r10
    mov $3, %r13
    mov %rax, 0x8(%rsp)         # 10: sampled store (paper line 0)
    mov 0x0(%rbp,%rbx,4), %rdx  # 11
    mov (%r15,%rbx,8), %rsi     # 12: load makes rsi unavailable
    mov 0x8(%rsi), %rax         # 13: needs rsi -> backward replay
    mov %r10, %rdi              # 14
    mov 0x8(%r14), %rax         # 15
    add %rax, %r13              # 16
    xor %rax, %rax              # 17
    mov %r13, 0x8(%r14)         # 18
    mov 0x8(%rsp), %rcx         # 19
    mov (%r15,%r12,8), %rsi     # 20: next sample (paper line 10)
    halt
"""


class TestFigure5:
    """The paper's worked example, §5.1–§5.2 / Figure 5."""

    def _replay(self):
        # Window = paper lines 0..10 → our instruction 10 (sample) to 20
        # (next sample, exclusive).
        return _single_thread_window(FIGURE5, start=10, end=20)

    def test_forward_recovers_lines_0_1_2_5_8_9(self):
        program, machine, steps, replayer = self._replay()
        recovered = {a.ip: a for a in replayer.run()}
        # Paper: "forward replay can successfully reconstruct ... line 1,
        # 2, 5, 8, 9" (plus the sampled line 0 itself).
        for ip in (10, 11, 12, 15, 18, 19):
            assert ip in recovered, f"instruction {ip} not recovered"

    def test_line3_needs_backward_replay(self):
        program, machine, steps, replayer = self._replay()
        recovered = {a.ip: a for a in replayer.run()}
        assert 13 in recovered
        assert recovered[13].provenance == PROV_BACKWARD

    def test_line3_address_is_correct(self):
        program, machine, steps, replayer = self._replay()
        recovered = {a.ip: a for a in replayer.run()}
        darray = program.symbols["darray"]
        assert recovered[13].address == darray + 8

    def test_forward_only_misses_line3(self):
        program, machine, steps, _ = self._replay()
        _, states = record_states(program)
        fwd = WindowReplayer(
            program, steps, 10, 20, tid=0,
            entry_registers=states[0][10][1], exit_registers=None,
        )
        recovered = {a.ip for a in fwd.run()}
        assert 13 not in recovered
        assert 18 in recovered

    def test_all_recovered_addresses_match_ground_truth(self):
        program, machine, steps, replayer = self._replay()
        _, states = record_states(program)
        from repro.isa.semantics import effective_address

        for access in replayer.run():
            ins = program[access.ip]
            mem = ins.memory_operand()
            regs = states[0][access.step_index][1]
            truth = effective_address(mem, regs, access.ip)
            if ins.op.value == "push":
                truth = (regs["rsp"] - 8) & ((1 << 64) - 1)
            assert access.address == truth


class TestEdgeWindows:
    SOURCE = """
.global g 2
.array arr 1 2 3 4
main:
    mov g(%rip), %rax
    mov g(%rip), %rbx
    mov arr(,%rbx,8), %rcx
    mov %rcx, g(%rip)
    mov (%rbx), %rdx
    halt
"""

    def test_head_window_recovers_rip_relative_without_registers(self):
        """Before the first sample, only the PT path is known — yet
        PC-relative accesses are recoverable (§5.1, Table 2)."""
        program, machine, steps, _ = _single_thread_window(
            self.SOURCE, 0, 0
        )
        replayer = WindowReplayer(
            program, steps, 0, len(steps), tid=0,
            entry_registers=None, exit_registers=None,
        )
        recovered = {a.ip for a in replayer.run()}
        assert 0 in recovered  # mov g(%rip), %rax
        assert 3 in recovered  # mov %rcx, g(%rip)
        assert 2 not in recovered  # needs %rbx, loaded from memory

    def test_head_window_backward_from_first_sample(self):
        program = assemble(self.SOURCE)
        machine, states = record_states(program)
        steps = [ip for ip, _ in states[0]]
        # First sample at instruction 4; backward covers 0..3.
        replayer = WindowReplayer(
            program, steps, 0, 4, tid=0,
            entry_registers=None, exit_registers=states[0][4][1],
        )
        recovered = {a.ip: a for a in replayer.run()}
        # arr(,%rbx,8): rbx live until the end → backward recoverable.
        assert 2 in recovered
        assert recovered[2].provenance == PROV_BACKWARD
        arr = program.symbols["arr"]
        assert recovered[2].address == arr + 16


class TestReverseExecution:
    def test_add_chain_reversed(self):
        """dst = dst + imm chains are invertible back past the update."""
        source = """
.array arr 9 9 9 9 9 9 9 9
main:
    mov $1, %rbx
    mov arr(,%rbx,8), %rcx   # 1: load -> rbx stays, rcx unavailable
    add $2, %rbx             # 2: rbx = 3
    mov arr(,%rbx,8), %rdx   # 3: uses updated rbx
    halt
"""
        program = assemble(source)
        machine, states = record_states(program)
        steps = [ip for ip, _ in states[0]]
        # Window 1..4 with no entry context; exit context before halt.
        replayer = WindowReplayer(
            program, steps, 1, 4, tid=0,
            entry_registers=None, exit_registers=states[0][4][1],
        )
        recovered = {a.ip: a for a in replayer.run()}
        arr = program.symbols["arr"]
        # Instruction 3 via plain back-propagation of rbx.
        assert recovered[3].address == arr + 24
        # Instruction 1 needs reverse execution through `add $2, %rbx`.
        assert recovered[1].address == arr + 8
        assert recovered[1].provenance == PROV_BACKWARD

    def test_unary_inverted(self):
        source = """
.array arr 9 9 9 9 9 9 9 9
main:
    mov $3, %rbx
    mov arr(,%rbx,8), %rcx
    inc %rbx
    halt
"""
        program = assemble(source)
        machine, states = record_states(program)
        steps = [ip for ip, _ in states[0]]
        replayer = WindowReplayer(
            program, steps, 1, 3, tid=0,
            entry_registers=None, exit_registers=states[0][3][1],
        )
        recovered = {a.ip: a for a in replayer.run()}
        assert recovered[1].address == program.symbols["arr"] + 24

    def test_mov_copy_back_propagates(self):
        source = """
.array arr 9 9 9 9 9 9 9 9
main:
    mov $2, %rbx
    mov arr(,%rbx,8), %rcx
    mov %rbx, %rdx
    mov $0, %rbx
    halt
"""
        program = assemble(source)
        machine, states = record_states(program)
        steps = [ip for ip, _ in states[0]]
        replayer = WindowReplayer(
            program, steps, 1, 4, tid=0,
            entry_registers=None, exit_registers=states[0][4][1],
        )
        # rbx destroyed at 3, but rdx carries its value back through the
        # copy at 2.
        recovered = {a.ip: a for a in replayer.run()}
        assert recovered[1].address == program.symbols["arr"] + 16


class TestMemoryEmulation:
    def test_store_then_load_through_emulated_memory(self):
        source = """
.global cell 0
.array arr 5 6 7 8
main:
    mov $arr, %rax
    mov %rax, cell(%rip)     # 1: emulated store of the pointer
    mov cell(%rip), %rsi     # 2: load back through emulation
    mov 8(%rsi), %rdx        # 3: address recoverable via emulated value
    halt
"""
        program = assemble(source)
        machine, states = record_states(program)
        steps = [ip for ip, _ in states[0]]
        replayer = WindowReplayer(
            program, steps, 0, len(steps), tid=0,
            entry_registers=states[0][0][1], exit_registers=None,
        )
        recovered = {a.ip: a for a in replayer.run()}
        assert recovered[3].address == program.symbols["arr"] + 8
        assert recovered[3].taint  # depended on emulated memory

    def test_system_call_invalidates_emulation(self):
        source = """
.global cell 0
.global lockvar 0
.array arr 5 6 7 8
main:
    mov $arr, %rax
    mov %rax, cell(%rip)
    lock $lockvar
    unlock $lockvar
    mov cell(%rip), %rsi
    mov 8(%rsi), %rdx        # 5: emulation was invalidated by lock
    halt
"""
        program = assemble(source)
        machine, states = record_states(program)
        steps = [ip for ip, _ in states[0]]
        replayer = WindowReplayer(
            program, steps, 0, len(steps), tid=0,
            entry_registers=states[0][0][1], exit_registers=None,
        )
        recovered = {a.ip: a for a in replayer.run()}
        assert 5 not in recovered
        assert replayer.stats.memory_invalidations >= 1

    def test_poisoned_location_not_used(self):
        source = """
.global cell 0
.array arr 5 6 7 8
main:
    mov $arr, %rax
    mov %rax, cell(%rip)
    mov cell(%rip), %rsi
    mov 8(%rsi), %rdx
    halt
"""
        program = assemble(source)
        machine, states = record_states(program)
        steps = [ip for ip, _ in states[0]]
        cell = program.symbols["cell"]
        replayer = WindowReplayer(
            program, steps, 0, len(steps), tid=0,
            entry_registers=states[0][0][1], exit_registers=None,
            poisoned=frozenset({cell}),
        )
        recovered = {a.ip: a for a in replayer.run()}
        assert 3 not in recovered  # §5.1: racy emulated location unusable

    def test_unknown_address_store_invalidates_all(self):
        source = """
.global cell 0
.array arr 5 6 7 8
main:
    mov $arr, %rax
    mov %rax, cell(%rip)     # emulate cell
    mov (%r13), %r9          # r13 unknown in this window
    mov %r9, (%r13)          # store through unknown address
    mov cell(%rip), %rsi
    mov 8(%rsi), %rdx        # 5
    halt
"""
        program = assemble(source)
        machine, states = record_states(program)
        steps = [ip for ip, _ in states[0]]
        entry = dict(states[0][0][1])
        # Make r13 unavailable by replaying with a partial context: the
        # engine models this via a window whose entry lacks r13 — emulate
        # by entering at step 0 with the recorded registers minus r13.
        del entry["r13"]
        replayer = WindowReplayer(
            program, steps, 0, len(steps), tid=0,
            entry_registers=entry, exit_registers=None,
        )
        recovered = {a.ip: a for a in replayer.run()}
        assert 5 not in recovered
