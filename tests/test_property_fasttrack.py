"""Property-based differential test: FastTrack ≡ reference detector.

Random well-formed event schedules (lock discipline respected, fork
before child activity) must produce identical racy-variable verdicts
from the epoch-optimized FastTrack and the plain vector-clock reference
detector — FastTrack's correctness theorem.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detector import (
    Access,
    AccessKind,
    FastTrack,
    ReferenceDetector,
    SyncOp,
)

N_THREADS = 3
VARS = [(0x100, 0), (0x200, 0)]
LOCKS = [0x900, 0x901]
SEMS = [0xA00]

#: One abstract step: (kind, thread, object index).
steps = st.lists(
    st.tuples(
        st.sampled_from(
            ["read", "write", "lock", "unlock", "sem_post", "sem_wait"]
        ),
        st.integers(min_value=0, max_value=N_THREADS - 1),
        st.integers(min_value=0, max_value=1),
    ),
    max_size=60,
)


def materialize(schedule):
    """Turn an arbitrary step list into a *valid* event stream: lock ops
    respect ownership, sem_wait only fires when a post is pending."""
    events = []
    lock_owner = {lock: None for lock in LOCKS}
    held = {t: set() for t in range(N_THREADS)}
    sem_count = {sem: 0 for sem in SEMS}
    for kind, tid, index in schedule:
        if kind in ("read", "write"):
            events.append(
                Access(
                    tid=tid,
                    var=VARS[index],
                    kind=AccessKind.READ if kind == "read"
                    else AccessKind.WRITE,
                    ip=100 + index,
                    tsc=float(len(events)),
                    provenance="prop",
                )
            )
        elif kind == "lock":
            lock = LOCKS[index]
            if lock_owner[lock] is None:
                lock_owner[lock] = tid
                held[tid].add(lock)
                events.append(SyncOp(tid, "lock", lock, float(len(events))))
        elif kind == "unlock":
            lock = LOCKS[index]
            if lock_owner[lock] == tid:
                lock_owner[lock] = None
                held[tid].discard(lock)
                events.append(SyncOp(tid, "unlock", lock, float(len(events))))
        elif kind == "sem_post":
            sem_count[SEMS[0]] += 1
            events.append(SyncOp(tid, "sem_post", SEMS[0],
                                 float(len(events))))
        elif kind == "sem_wait":
            if sem_count[SEMS[0]] > 0:
                sem_count[SEMS[0]] -= 1
                events.append(SyncOp(tid, "sem_wait", SEMS[0],
                                     float(len(events))))
    return events


def run(detector, events):
    for event in events:
        if isinstance(event, SyncOp):
            detector.sync(event)
        else:
            detector.access(event)
    return frozenset(detector.racy_addresses())


@given(steps)
@settings(max_examples=300, deadline=None)
def test_fasttrack_matches_reference(schedule):
    events = materialize(schedule)
    assert run(FastTrack(), events) == run(ReferenceDetector(), events)


@given(steps)
@settings(max_examples=100, deadline=None)
def test_fully_locked_accesses_never_race(schedule):
    """Wrap every access in the same lock: no races possible."""
    events = []
    tick = 0
    for kind, tid, index in schedule:
        if kind not in ("read", "write"):
            continue
        events.append(SyncOp(tid, "lock", LOCKS[0], float(tick)))
        events.append(
            Access(
                tid=tid, var=VARS[index],
                kind=AccessKind.READ if kind == "read" else AccessKind.WRITE,
                ip=1, tsc=float(tick), provenance="prop",
            )
        )
        events.append(SyncOp(tid, "unlock", LOCKS[0], float(tick)))
        tick += 1
    assert not run(FastTrack(), events)


@given(steps)
@settings(max_examples=100, deadline=None)
def test_single_thread_never_races(schedule):
    events = [
        Access(
            tid=0, var=VARS[index],
            kind=AccessKind.READ if kind == "read" else AccessKind.WRITE,
            ip=1, tsc=float(i), provenance="prop",
        )
        for i, (kind, _, index) in enumerate(schedule)
        if kind in ("read", "write")
    ]
    assert not run(FastTrack(), events)
