"""Property-based tests: vector-clock lattice laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detector.vectorclock import Epoch, VectorClock

clock_dicts = st.dictionaries(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=50),
    max_size=6,
)


def vc(d):
    return VectorClock(dict(d))


@given(clock_dicts, clock_dicts)
@settings(max_examples=200)
def test_join_commutative(a, b):
    left = vc(a)
    left.join(vc(b))
    right = vc(b)
    right.join(vc(a))
    assert left == right


@given(clock_dicts, clock_dicts, clock_dicts)
@settings(max_examples=200)
def test_join_associative(a, b, c):
    left = vc(a)
    left.join(vc(b))
    left.join(vc(c))
    bc = vc(b)
    bc.join(vc(c))
    right = vc(a)
    right.join(bc)
    assert left == right


@given(clock_dicts)
def test_join_idempotent(a):
    result = vc(a)
    result.join(vc(a))
    assert result == vc(a)


@given(clock_dicts, clock_dicts)
def test_join_is_upper_bound(a, b):
    joined = vc(a)
    joined.join(vc(b))
    assert joined.covers(vc(a))
    assert joined.covers(vc(b))


@given(clock_dicts, clock_dicts)
def test_covers_antisymmetric(a, b):
    va, vb = vc(a), vc(b)
    if va.covers(vb) and vb.covers(va):
        assert va == vb


@given(clock_dicts, st.integers(min_value=0, max_value=5))
def test_epoch_covered_iff_component_large_enough(a, tid):
    va = vc(a)
    epoch = Epoch(va.get(tid), tid)
    assert va.covers_epoch(epoch)
    assert not va.covers_epoch(Epoch(va.get(tid) + 1, tid))


@given(clock_dicts, st.integers(min_value=0, max_value=5))
def test_increment_strictly_grows(a, tid):
    va = vc(a)
    before = va.get(tid)
    va.increment(tid)
    assert va.get(tid) == before + 1
