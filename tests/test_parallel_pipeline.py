"""Parallel offline analysis: jobs>1 must be verdict-identical (§7.6)."""

import pytest

from repro.analysis import (
    OfflinePipeline,
    detection_sweep,
    measure_detection_probability,
)
from repro.replay import ReplayEngine
from repro.tracing import trace_run
from repro.workloads import PARSEC_WORKLOADS, RACE_BUGS, WorkloadScale


class TestParallelEquivalence:
    @pytest.mark.parametrize("name", ["cherokee-0.9.2", "mysql-644",
                                      "aget-bug2"])
    def test_same_verdicts(self, name):
        bug = RACE_BUGS[name]
        program = bug.build(WorkloadScale(iterations=10))
        bundle = trace_run(program, period=40, seed=5)
        serial = OfflinePipeline(program, jobs=1).analyze(bundle)
        parallel = OfflinePipeline(program, jobs=4).analyze(bundle)
        assert serial.racy_addresses == parallel.racy_addresses
        assert {r.pair for r in serial.races} == \
            {r.pair for r in parallel.races}
        assert serial.replay.stats.recovered == \
            parallel.replay.stats.recovered

    def test_same_accesses_per_thread(self, racy_program):
        bundle = trace_run(racy_program, period=4, seed=2)
        serial = ReplayEngine(racy_program, jobs=1).replay_bundle(bundle)
        parallel = ReplayEngine(racy_program, jobs=4).replay_bundle(bundle)
        assert serial.per_thread.keys() == parallel.per_thread.keys()
        for tid in serial.per_thread:
            assert serial.per_thread[tid] == parallel.per_thread[tid]

    def test_many_thread_workload(self):
        program = PARSEC_WORKLOADS["fluidanimate"].instantiate(
            WorkloadScale(iterations=8, threads=4)
        )
        bundle = trace_run(program, period=6, seed=1)
        serial = OfflinePipeline(program, jobs=1).analyze(bundle)
        parallel = OfflinePipeline(program, jobs=8).analyze(bundle)
        assert serial.racy_addresses == parallel.racy_addresses
        assert serial.events_processed == parallel.events_processed

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pipeline_executor_identical(self, executor):
        """The replay fan-out must be invisible regardless of executor —
        process workers exercise the pickling path end to end."""
        bug = RACE_BUGS["aget-bug2"]
        program = bug.build(WorkloadScale(iterations=10))
        bundle = trace_run(program, period=40, seed=5)
        serial = OfflinePipeline(program, jobs=1).analyze(bundle)
        fanned = OfflinePipeline(program, jobs=4,
                                 executor=executor).analyze(bundle)
        assert serial.racy_addresses == fanned.racy_addresses
        assert {r.pair for r in serial.races} == \
            {r.pair for r in fanned.races}
        assert serial.replay.stats == fanned.replay.stats
        assert serial.replay.per_thread == fanned.replay.per_thread
        assert serial.regeneration_rounds == fanned.regeneration_rounds
        assert serial.events_processed == fanned.events_processed


class TestParallelSweeps:
    """Trial-level fan-out: bit-identical grids in every configuration."""

    BUGS = {"aget-bug2": RACE_BUGS["aget-bug2"]}
    SCALE = WorkloadScale(iterations=8)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_detection_sweep_jobs_identical(self, executor):
        serial = detection_sweep(self.BUGS, self.SCALE,
                                 periods=[200, 1000], runs=3, jobs=1)
        fanned = detection_sweep(self.BUGS, self.SCALE,
                                 periods=[200, 1000], runs=3, jobs=4,
                                 executor=executor)
        assert serial.cells == fanned.cells
        assert serial.totals() == fanned.totals()

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_detection_probability_jobs_identical(self, racy_program,
                                                  executor):
        racy = [racy_program.symbols["racy"]]
        serial = measure_detection_probability(
            racy_program, racy, period=3, runs=4, jobs=1)
        fanned = measure_detection_probability(
            racy_program, racy, period=3, runs=4, jobs=4, executor=executor)
        assert serial.trials == fanned.trials
        assert serial.probability == fanned.probability
