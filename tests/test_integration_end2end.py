"""End-to-end integration: the full ProRace flow on realistic scenarios."""

import pytest

from repro import (
    OfflinePipeline,
    PRORACE_DRIVER,
    VANILLA_DRIVER,
    assemble,
    estimate_overhead,
    trace_run,
)
from repro.analysis import measure_detection_probability
from repro.workloads import PARSEC_WORKLOADS, RACE_BUGS, WorkloadScale


class TestPublicApiFlow:
    """The README quickstart flow, verified."""

    def test_quickstart(self):
        source = """
.global hits 0
.reserve workbuf 16
main:
    spawn worker, %rbx
    mov $6, %rcx
loop:
    mov hits(%rip), %rax
    add $1, %rax
    mov %rax, hits(%rip)
    dec %rcx
    cmp $0, %rcx
    jne loop
    join %rbx
    halt
worker:
    mov $6, %rcx
wloop:
    mov hits(%rip), %rax
    add $1, %rax
    mov %rax, hits(%rip)
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
"""
        program = assemble(source)
        bundle = trace_run(program, period=3, seed=1)
        result = OfflinePipeline(program).analyze(bundle)
        assert result.races
        descriptions = [r.describe() for r in result.races]
        assert any("race on" in d for d in descriptions)

    def test_version_exposed(self):
        import repro

        assert repro.__version__


class TestDetectionProbabilityHarness:
    def test_measures_over_seeds(self):
        bug = RACE_BUGS["aget-bug2"]
        program = bug.build(WorkloadScale(iterations=6))
        probability = measure_detection_probability(
            program,
            racy_addresses=[program.symbols["bwritten"]],
            period=100,
            runs=4,
        )
        assert probability.runs == 4
        assert 0.0 <= probability.probability <= 1.0
        assert probability.probability > 0.5  # pc-relative: near-certain


class TestDriverComparisonFlow:
    def test_prorace_beats_vanilla_on_a_kernel(self):
        program = PARSEC_WORKLOADS["swaptions"].instantiate(
            WorkloadScale(iterations=60)
        )
        results = {}
        for driver in (PRORACE_DRIVER, VANILLA_DRIVER):
            bundle = trace_run(program, period=100, driver=driver, seed=2)
            results[driver.name] = estimate_overhead(bundle).overhead
        assert results["prorace"] < results["vanilla"]


class TestOfflineCostFlow:
    def test_reconstruction_dominates_offline_cost(self):
        """Figure 12: trace reconstruction is the dominant offline phase,
        race detection a tiny sliver."""
        bug = RACE_BUGS["mysql-644"]
        program = bug.build(WorkloadScale(iterations=10))
        bundle = trace_run(program, period=50, seed=3)
        result = OfflinePipeline(program).analyze(bundle)
        breakdown = result.timings.breakdown()
        assert breakdown["trace_reconstruction"] > \
            breakdown["race_detection"]
