"""Structured error taxonomy for the offline analysis runtime.

The offline service runs unattended on dedicated machines (§7.6), so
"something went wrong" must be machine-readable: an operator's retry
wrapper needs to distinguish *bad input* (a rotted trace file — retrying
is pointless) from *runtime misfortune* (a worker OOM-killed mid-sweep —
retrying is exactly right) from *caller bugs* (an API used out of
order).  Every failure the runtime can surface derives from
:class:`ReproError` and maps to a documented CLI exit code:

====  =======================================================
code  meaning
====  =======================================================
0     success, no races found
1     success, data races reported
2     unusable input: :class:`TraceError` / :class:`DecodeError`
      (missing, corrupted, or undecodable trace data), or an
      :class:`UnknownDetectorError` — a ``--detector`` name not in
      the backend registry (argparse's bad-argument convention)
3     :class:`DeadlineExceeded` — the supervised run's whole-call
      wall-clock budget ran out
4     :class:`QuarantinedWork` / :class:`WorkerCrash` — work items
      exhausted their retry budget or a worker death escaped the
      supervisor
5     :class:`UsageError` — an API/CLI invocation bug, not a fault
6     watchdog-degraded run: ``repro trace`` completed, but the
      tracing governor's watchdog tripped (stalled PEBS engine or
      sync tracer), so part of the trace is sync-only or truncated
7     lossy fleet triage: ``repro fleet`` completed and the race
      database is consistent, but bundles were quarantined as
      poison or shed under backpressure, so the database is a
      lower bound on the fleet's races
8     races reported but none confirmed: ``repro confirm`` (or
      ``repro detect --confirm``) replayed every reported race
      under schedule control and not one fired — the reports
      stand as evidence but carry no re-execution proof
====  =======================================================

Exit codes 2–4 are deliberately distinct: a fleet scheduler requeues a
code-3 job with a longer deadline, quarantines the *inputs* of a code-4
job for inspection, and discards a code-2 job's trace file outright.
Codes 6 and 7 are *successes with an asterisk*: code 6 means the trace
file exists and is loadable but a fleet scheduler should score its
detection power lower and consider re-tracing the workload; code 7
means the triage run itself is trustworthy (nothing double-counted,
every bundle accounted for) but some evidence never made it into the
race database — the operator should inspect the quarantine directory
and consider raising the backlog budget.  Code 8 is the inverse
asterisk on code 1: races *were* reported, but deterministic
confirmation could not make any of them fire, so a pager policy
should treat them as unverified leads rather than proven bugs.

Every concrete error class below declares its exit code explicitly
(none inherit silently), and ``tests/test_errors.py`` asserts the full
class → code mapping exhaustively.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

EXIT_OK = 0
EXIT_RACES = 1
EXIT_TRACE_ERROR = 2
EXIT_DEADLINE = 3
EXIT_QUARANTINE = 4
EXIT_USAGE = 5
#: ``repro trace`` finished, but the governor watchdog degraded tracing
#: mid-run (PEBS stall → sync-only epochs, or sync-tracer stall → log
#: truncation).  The trace is usable yet weaker than requested.
EXIT_DEGRADED = 6
#: ``repro fleet`` finished and the race database is consistent, but
#: some bundles were quarantined as poison or shed under backpressure —
#: the database is a lower bound on what the fleet saw.
EXIT_FLEET_LOSSY = 7
#: Races were reported but schedule-controlled replay confirmed none of
#: them: every verdict came back unconfirmed/inapplicable, so the
#: reports carry no re-execution proof.
EXIT_UNCONFIRMED = 8


class ReproError(Exception):
    """Base of every structured runtime error; carries its CLI exit
    code so ``repro`` commands never have to pattern-match messages."""

    exit_code = EXIT_TRACE_ERROR


class TraceError(ReproError):
    """The trace input is unusable: missing, malformed, or corrupted.

    :class:`repro.tracing.TraceFormatError` derives from this, so
    callers that only care about the coarse taxonomy can catch
    ``TraceError`` without importing the serializer.
    """

    exit_code = EXIT_TRACE_ERROR


class CheckpointError(TraceError):
    """A checkpoint journal or snapshot does not match the work it is
    being resumed against (different parameters, damaged header)."""

    exit_code = EXIT_TRACE_ERROR


class DecodeError(TraceError):
    """A PT packet stream is inconsistent with the traced binary and
    cannot be decoded even with gap resynchronization."""

    exit_code = EXIT_TRACE_ERROR


class ReplayError(ReproError):
    """Memory reconstruction failed for reasons the trace declared no
    excuse for (as opposed to a tolerated per-thread skip)."""

    exit_code = EXIT_TRACE_ERROR


class UsageError(ReproError):
    """The caller broke an API contract (e.g. consuming merged events
    before any replay round ran).  A bug in the calling code, never a
    property of the input."""

    exit_code = EXIT_USAGE


class UnknownDetectorError(UsageError):
    """A detector backend name that is not in the registry.

    Unlike other :class:`UsageError`\\ s (bugs in calling *code*), a bad
    ``--detector`` name is bad *input* typed at the command line, so it
    maps to exit code 2 — the same code argparse uses for unparseable
    arguments — and carries a did-you-mean suggestion for the operator.
    """

    exit_code = EXIT_TRACE_ERROR

    def __init__(self, name: str, available: Sequence[str],
                 suggestion: Optional[str] = None) -> None:
        message = f"unknown detector {name!r}"
        if suggestion:
            message += f"; did you mean {suggestion!r}?"
        message += f" (available: {', '.join(available)})"
        super().__init__(message)
        self.name = name
        self.available = tuple(available)
        self.suggestion = suggestion


class WorkerCrash(ReproError):
    """A worker process died without reporting a result (SIGKILL, OOM,
    segfault).  Under supervision this fails only the in-flight item;
    escaping to the CLI means the crash was unrecoverable."""

    exit_code = EXIT_QUARANTINE

    def __init__(self, message: str, index: Optional[int] = None,
                 exitcode: Optional[int] = None) -> None:
        super().__init__(message)
        self.index = index
        self.exitcode = exitcode


class WorkerError(ReproError):
    """An item of a parallel fan-out raised.

    Unlike a bare ``pool.map`` exception, this names *which* input index
    failed and keeps every result completed before the failure, so a
    supervisor can retry exactly the failed item.  Escaping to the CLI
    it is runtime misfortune, not bad input: the item is retry-worthy,
    so it maps to the quarantine code (4), not the trace code (2) it
    used to inherit silently.
    """

    exit_code = EXIT_QUARANTINE

    def __init__(self, index: int, message: str,
                 completed: Optional[Dict[int, object]] = None) -> None:
        super().__init__(f"item {index} failed: {message}")
        self.index = index
        self.message = message
        self.completed: Dict[int, object] = dict(completed or {})


class DeadlineExceeded(ReproError):
    """The whole-call deadline of a supervised run expired before every
    item finished.  Carries the run ledger and the partial results (by
    input index, ``None`` where unfinished) so completed work survives."""

    exit_code = EXIT_DEADLINE

    def __init__(self, message: str, ledger=None,
                 partial: Optional[Sequence] = None) -> None:
        super().__init__(message)
        self.ledger = ledger
        self.partial = list(partial) if partial is not None else None


class QuarantinedWork(ReproError):
    """One or more items exhausted their retry budget and were
    quarantined.  Carries the offending input indices, the run ledger,
    and the partial results of everything that did succeed."""

    exit_code = EXIT_QUARANTINE

    def __init__(self, indices: Sequence[int], ledger=None,
                 partial: Optional[Sequence] = None) -> None:
        indices = tuple(sorted(indices))
        super().__init__(
            f"{len(indices)} work item(s) exhausted their retry budget: "
            f"indices {list(indices)}"
        )
        self.indices = indices
        self.ledger = ledger
        self.partial = list(partial) if partial is not None else None


def exit_code_for(error: BaseException) -> int:
    """The documented CLI exit code for *error* (2 for any unclassified
    trace-shaped failure)."""
    return getattr(error, "exit_code", EXIT_TRACE_ERROR)
