"""Simulated Intel Processor Trace (PT): compressed control-flow tracing.

PT records the executed control flow in a highly compressed packet stream
(§4.2): conditional-branch outcomes as TNT bits (six per byte), indirect
targets as TIP packets, call-return pairs compressed via an internal
return stack (a compressed RET costs a single TNT bit), plus periodic
timing (MTC) and synchronization (PSB) packets.

Two fidelities coexist here, as explained in DESIGN.md §2:

* **Byte accounting** follows the packed on-wire format, so trace-size
  experiments (Figures 8–9) measure what real PT would write.
* **Decode fidelity** carries an exact per-packet TSC side channel.  On
  real hardware the cycle-granular TSC makes PEBS↔PT alignment effectively
  exact; our simulated clock ticks once per *instruction*, so without the
  side channel the alignment would be artificially ambiguous.  The side
  channel restores the hardware's effective precision without charging
  bytes for it.

Code-region filtering (§4.2: the PT hardware offers four address range
filters; ProRace monitors only the main executable) is supported via
``PTConfig.filters``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..machine.observers import BranchEvent, MachineObserver

#: Bytes per packet kind in the packed format.
TIP_BYTES = 5
MTC_BYTES = 2
PSB_BYTES = 16
#: Conditional-branch outcomes per packed TNT byte.
TNT_BITS_PER_BYTE = 6
#: Depth of the hardware return-compression stack.
RET_STACK_DEPTH = 64


class PacketKind(enum.Enum):
    TIP = "tip"  # indirect branch / uncompressed ret / trace start target
    TNT = "tnt"  # one conditional-branch outcome or compressed-ret bit
    END = "end"  # tracing stops for this thread (TIP.PGD)
    OVF = "ovf"  # aux-buffer overflow: a span of packets was lost


@dataclass(frozen=True)
class PTPacket:
    """One decoded-form packet with its exact-TSC side channel.

    An OVF packet marks a lost span: real PT emits OVF when the aux
    buffer overflows and packets are discarded until tracing resumes.
    Its ``tsc`` is the timestamp of the first lost packet and ``target``
    holds the timestamp of the last one — the decoder cannot follow
    control flow across that span and must resynchronize.
    """

    kind: PacketKind
    tsc: int
    target: Optional[int] = None  # TIP payload / OVF gap-end timestamp
    bit: Optional[bool] = None  # TNT payload


@dataclass(frozen=True)
class PTConfig:
    """PT programming.

    Args:
        filters: up to four ``(lo, hi)`` half-open code-address ranges to
            trace; empty means trace everything (whole program).
        mtc_period: cycles between MTC timing packets (size accounting).
        psb_period: packets between PSB sync packets (size accounting).
        ret_compression: model the hardware return stack (compressed RETs
            cost one TNT bit instead of a TIP packet).
    """

    filters: Tuple[Tuple[int, int], ...] = ()
    mtc_period: int = 4096
    psb_period: int = 1024
    ret_compression: bool = True

    def __post_init__(self) -> None:
        if len(self.filters) > 4:
            raise ValueError("PT supports at most four address filters")

    def in_region(self, ip: int) -> bool:
        if not self.filters:
            return True
        return any(lo <= ip < hi for lo, hi in self.filters)


@dataclass
class PTThreadTrace:
    """The packet stream of one thread."""

    tid: int
    start_ip: int
    start_tsc: int
    packets: List[PTPacket] = field(default_factory=list)
    end_tsc: Optional[int] = None
    #: True if a region filter suppressed one or more branch packets; the
    #: decoder cannot follow control flow past the first gap.
    truncated: bool = False

    def size_bytes(self, config: PTConfig) -> int:
        """On-wire bytes of this stream in the packed format."""
        total = PSB_BYTES + TIP_BYTES  # initial PSB + start TIP
        packet_count = 2
        tnt_run = 0
        for packet in self.packets:
            if packet.kind == PacketKind.TNT:
                tnt_run += 1
                continue
            # A non-TNT packet flushes any pending TNT byte run.
            total += -(-tnt_run // TNT_BITS_PER_BYTE)
            packet_count += -(-tnt_run // TNT_BITS_PER_BYTE)
            tnt_run = 0
            total += TIP_BYTES
            packet_count += 1
        total += -(-tnt_run // TNT_BITS_PER_BYTE)
        packet_count += -(-tnt_run // TNT_BITS_PER_BYTE)
        # Timing and sync packets.
        if self.end_tsc is not None and config.mtc_period > 0:
            elapsed = max(0, self.end_tsc - self.start_tsc)
            total += MTC_BYTES * (elapsed // config.mtc_period)
        if config.psb_period > 0:
            total += PSB_BYTES * (packet_count // config.psb_period)
        return total


class PTPacketizer(MachineObserver):
    """Machine observer producing per-thread PT packet streams."""

    def __init__(self, config: PTConfig = PTConfig()) -> None:
        self.config = config
        self.traces: Dict[int, PTThreadTrace] = {}
        self._ret_stacks: Dict[int, List[int]] = {}
        self.branches_seen = 0
        self.packets_emitted = 0
        #: True while the tracing governor sheds PT output (backpressure
        #: tier 2).  Packets produced during a shed are counted, not
        #: stored; each thread's shed span collapses into one OVF marker
        #: — the exact artefact real PT emits on aux-buffer overflow, so
        #: the decoder's existing gap handling applies unchanged.
        self.shedding = False
        #: tid -> [first_tsc, last_tsc, tnt_bits, other_packets].
        self._shed_open: Dict[int, List[int]] = {}
        self._shed_gaps = 0
        self._shed_packets = 0
        self._shed_bytes = 0

    # ------------------------------------------------------------------
    # Governor shedding
    # ------------------------------------------------------------------

    def begin_shed(self, tsc: int) -> None:
        """Start discarding packets (one OVF marker per affected thread
        when the shed ends or the thread exits)."""
        if self.shedding:
            return
        self.shedding = True
        self._shed_open = {}

    def end_shed(self, tsc: int) -> Tuple[int, int, int]:
        """Stop shedding; flush every open span.  Returns the interval's
        accounting — ``(ovf_gaps, packets_shed, bytes_shed)`` — including
        spans already flushed by thread exits during the interval."""
        for tid in list(self._shed_open):
            self._flush_shed_span(tid)
        self.shedding = False
        totals = (self._shed_gaps, self._shed_packets, self._shed_bytes)
        self._shed_gaps = self._shed_packets = self._shed_bytes = 0
        return totals

    def _shed_packet(self, trace: PTThreadTrace, packet: PTPacket) -> None:
        span = self._shed_open.setdefault(
            trace.tid, [packet.tsc, packet.tsc, 0, 0]
        )
        span[1] = packet.tsc
        if packet.kind == PacketKind.TNT:
            span[2] += 1
        else:
            span[3] += 1
        self._shed_packets += 1

    def _flush_shed_span(self, tid: int) -> None:
        span = self._shed_open.pop(tid, None)
        if span is None:
            return
        first_tsc, last_tsc, tnt_bits, others = span
        trace = self.traces[tid]
        trace.packets.append(
            PTPacket(PacketKind.OVF, first_tsc, target=last_tsc)
        )
        self.packets_emitted += 1
        self._shed_gaps += 1
        self._shed_bytes += (
            -(-tnt_bits // TNT_BITS_PER_BYTE) + others * TIP_BYTES
        )

    # ------------------------------------------------------------------

    def on_thread_start(self, tsc: int, tid: int, core: int, ip: int) -> None:
        self.traces[tid] = PTThreadTrace(tid=tid, start_ip=ip, start_tsc=tsc)
        self._ret_stacks[tid] = []

    def on_thread_exit(self, tsc: int, tid: int) -> None:
        trace = self.traces[tid]
        if self.shedding:
            # The OVF marker must precede END in the stream.
            self._flush_shed_span(tid)
        trace.packets.append(PTPacket(PacketKind.END, tsc))
        trace.end_tsc = tsc
        self.packets_emitted += 1

    def on_branch(self, event: BranchEvent) -> None:
        self.branches_seen += 1
        trace = self.traces[event.tid]
        if not self.config.in_region(event.ip):
            trace.truncated = True
            return
        stack = self._ret_stacks[event.tid]
        if event.is_conditional:
            self._emit(trace, PTPacket(PacketKind.TNT, event.tsc,
                                       bit=event.taken))
            return
        if not event.is_indirect:
            # Direct jmp/call: statically recoverable, no packet — but the
            # return-compression stack must shadow calls.
            if event.is_call:
                stack.append(event.ip + 1)
                if len(stack) > RET_STACK_DEPTH:
                    del stack[0]
            return
        # Indirect transfer: RET (compressible) or indirect jmp.
        if self.config.ret_compression and stack and stack[-1] == event.target:
            stack.pop()
            self._emit(trace, PTPacket(PacketKind.TNT, event.tsc, bit=True))
            return
        self._emit(trace, PTPacket(PacketKind.TIP, event.tsc,
                                   target=event.target))

    def _emit(self, trace: PTThreadTrace, packet: PTPacket) -> None:
        if self.shedding:
            self._shed_packet(trace, packet)
            return
        trace.packets.append(packet)
        self.packets_emitted += 1

    # ------------------------------------------------------------------

    def total_size_bytes(self) -> int:
        return sum(t.size_bytes(self.config) for t in self.traces.values())
