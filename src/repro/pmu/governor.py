"""The tracing governor: closed-loop control of the online PMU stage.

ProRace's online side as the paper describes it is *open loop*: the user
picks a PEBS period ``k`` and hopes the kernel throttle (§4.1 footnote,
modelled in :meth:`~repro.pmu.drivers.DriverAccounting.on_buffer_full`)
never fires.  When a bursty phase does trip it, whole DS buffers vanish
silently — the §7.3 period-10 size inversion — and the offline stage
cannot even account for what it lost.  Production monitors (HardRace,
PAPERS.md) instead *adapt* the sampling configuration at runtime.

:class:`TracingGovernor` closes the loop.  Attached to the machine as an
observer alongside the tracers it governs, it:

* samples :class:`~repro.pmu.drivers.DriverAccounting` over decision
  windows (handler-cycle occupancy, hardware-assist cycles, throttle
  drop rate) and estimates the current tracing overhead with the same
  pollution/fixed-cost structure as the offline cost model;
* adapts the effective PEBS period within ``[k_min, k_max]`` to hold a
  configurable overhead budget (default ≤2%, Figure 6's envelope), with
  hysteresis so the controller settles instead of thrashing;
* applies **tiered backpressure** when widening alone cannot absorb the
  load: widen the period → shed PT bytes (an accounted OVF gap, the
  exact artefact real PT emits on aux-buffer overflow) → hard-drop PEBS
  buffers before the interrupt handler ever runs.  Every tier action is
  accounted, never silent;
* perturbs each new period by a small seeded random factor, preserving
  §4.1.2's sampling-phase diversity across epochs the way the driver's
  randomized first period does across threads;
* runs a **watchdog**: a PEBS engine that stops producing samples while
  monitored events keep retiring, or a sync tracer that drops a
  synchronization record it was handed, is declared stalled and the run
  degrades to sync-only tracing (plus a declared truncation point for a
  stalled sync log) rather than wedging.

Every control action is logged as a :class:`PeriodEpoch` marker.  The
markers travel with the :class:`~repro.tracing.bundle.TraceBundle`
(serialized in the version-3 trace container) so the offline stage can
anchor timelines per epoch, compute detection probability against the
piecewise-variable period, and reconcile governor actions against
observed losses in the
:class:`~repro.analysis.pipeline.DegradationReport`.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..machine.observers import MachineObserver, MemoryAccessEvent, SyncEvent

#: Backpressure tiers, in escalation order.  Each escalation step is
#: accounted in the :class:`GovernorReport` and marked with an epoch.
TIER_NOMINAL = 0      #: at or below budget; period at its configured base
TIER_WIDEN = 1        #: period widened above base to absorb load
TIER_SHED_PT = 2      #: PT packets shed (accounted as an OVF gap)
TIER_HARD_DROP = 3    #: PEBS buffers dropped before the handler runs
TIER_SYNC_ONLY = 4    #: watchdog tripped: PEBS off, sync log only

TIER_NAMES = ("nominal", "widen", "shed-pt", "hard-drop", "sync-only")

#: Epoch-marker reasons (serialized by id; order is part of the v3
#: container format — append only).
EPOCH_REASONS = (
    "init", "widen", "narrow", "shed-pt", "resume-pt", "hard-drop",
    "resume-drop", "watchdog", "sync-stall",
)


@dataclass(frozen=True)
class PeriodEpoch:
    """One span of the run during which the sampling configuration held.

    A new epoch starts at every governor action: a period change, a tier
    transition, or a watchdog trip.  ``period`` is the effective PEBS
    period in force from ``start_tsc`` until the next epoch's start (or
    run end); ``period == 0`` means PEBS is off (sync-only tracing).
    ``overhead`` is the windowed overhead estimate that triggered the
    action (0.0 for the initial epoch).
    """

    start_tsc: int
    period: int
    tier: int
    reason: str
    overhead: float = 0.0


def epoch_index_at(epochs: Sequence[PeriodEpoch], tsc: float) -> int:
    """Index of the epoch covering *tsc* (epochs sorted by start_tsc).

    Timestamps before the first epoch's start belong to the first epoch:
    epoch 0 always starts at the trace origin.
    """
    if not epochs:
        raise ValueError("no epochs")
    starts = [e.start_tsc for e in epochs]
    return max(0, bisect.bisect_right(starts, tsc) - 1)


def effective_period(epochs: Sequence[PeriodEpoch], total_tsc: int,
                     default_period: float) -> float:
    """The time-weighted effective sampling period of a (possibly
    governed) run: total traced time over the expected sample count
    ``sum(duration_i / k_i)`` across the period epochs.

    This is the piecewise-variable-period correction of "Dynamic Race
    Detection With O(1) Samples": detection math must track the *actual*
    per-epoch sampling rate, not the configured one.  Sync-only epochs
    (``period == 0``) contribute observation time but no samples, so they
    push the effective period up.  An ungoverned run has no epochs and
    keeps its configured *default_period*.  Returns ``inf`` when no
    epoch ever sampled.
    """
    if not epochs:
        return float(default_period)
    total = max(int(total_tsc), epochs[-1].start_tsc)
    expected = 0.0
    for index, epoch in enumerate(epochs):
        end = (epochs[index + 1].start_tsc if index + 1 < len(epochs)
               else total)
        duration = max(0, end - epoch.start_tsc)
        if epoch.period > 0:
            expected += duration / epoch.period
    if expected <= 0.0:
        return float("inf")
    return total / expected


@dataclass(frozen=True)
class GovernorConfig:
    """Control-loop parameters of the tracing governor.

    Args:
        overhead_budget: ceiling on the tracing-overhead fraction the
            controller holds (0.02 = the paper's ≤2% envelope, Fig. 6).
        k_min: lower bound on the adaptive period.  ``None`` means the
            run's base period — by default the governor only ever
            *relieves* pressure; set it below the base period to let the
            governor harvest idle headroom with denser sampling.
        k_max: upper bound on the adaptive period (``None``: 1024× the
            base period).
        decision_ticks: minimum TSC ticks between control decisions —
            the decision window the overhead estimate is computed over.
        hysteresis: de-escalation threshold as a fraction of the budget.
            The governor escalates above ``budget`` but de-escalates
            only below ``budget * hysteresis``, so a marginal load does
            not make the controller oscillate.
        smoothing: EWMA weight of each new decision window in the
            overhead estimate the budget is compared against.  Bursty
            load makes raw windows alternate between near-zero (quiet)
            and huge (burst); controlling on the smoothed value holds
            the *average* overhead — which is what an overhead budget
            means — instead of chasing each spike down and each lull up.
            (A window with throttle drops still escalates immediately.)
        grow / shrink: multiplicative period step per widen / narrow
            decision.  ``grow`` is the *minimum* widening factor: when
            the measured overhead exceeds the budget by more, the
            governor widens proportionally (capped) so one decision
            lands near the budget instead of climbing geometrically
            through many over-budget windows.
        perturb: fractional seeded jitter applied to every new period
            (±), preserving §4.1.2's sampling-phase diversity across
            epochs.
        watchdog_periods: a PEBS engine producing no sample for more
            than ``watchdog_periods * current_period`` ticks (floored by
            *watchdog_floor_ticks*) while monitored events retire is
            declared stalled.
        watchdog_floor_ticks: lower bound on the stall threshold.
        seed: drives the period perturbation; one seed fully determines
            a governed run (given the machine seed).
    """

    overhead_budget: float = 0.02
    k_min: Optional[int] = None
    k_max: Optional[int] = None
    decision_ticks: int = 400
    hysteresis: float = 0.5
    grow: float = 2.0
    shrink: float = 0.5
    perturb: float = 0.05
    smoothing: float = 0.4
    watchdog_periods: int = 64
    watchdog_floor_ticks: int = 2000
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.overhead_budget:
            raise ValueError(
                f"overhead_budget must be positive: {self.overhead_budget}"
            )
        if not 0.0 <= self.hysteresis <= 1.0:
            raise ValueError(f"hysteresis must be in [0, 1]: "
                             f"{self.hysteresis}")
        if self.grow <= 1.0 or not 0.0 < self.shrink < 1.0:
            raise ValueError("grow must be > 1 and shrink in (0, 1)")
        if not 0.0 <= self.perturb < 1.0:
            raise ValueError(f"perturb must be in [0, 1): {self.perturb}")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1]: "
                             f"{self.smoothing}")
        if self.decision_ticks < 1:
            raise ValueError("decision_ticks must be >= 1")


@dataclass
class GovernorReport:
    """Everything the governor did during one run.

    Travels with the trace bundle (serialized in the v3 epoch section)
    so the offline :class:`~repro.analysis.pipeline.DegradationReport`
    can reconcile each declared governor action against the losses the
    consumers actually observed.
    """

    overhead_budget: float = 0.02
    base_period: int = 0
    k_min: int = 0
    k_max: int = 0
    decisions: int = 0
    widenings: int = 0
    narrowings: int = 0
    tier_transitions: int = 0
    pt_sheds: int = 0
    pt_bytes_shed: int = 0
    pt_packets_shed: int = 0
    hard_drop_bursts: int = 0
    hard_dropped_samples: int = 0
    watchdog_trips: int = 0
    sync_stalls: int = 0
    final_period: int = 0
    final_tier: int = TIER_NOMINAL
    #: Overhead estimate of the last completed decision window — the
    #: steady-state figure the budget assertion checks (the convergence
    #: transient before the first decisions is visible in the epochs).
    final_overhead: float = 0.0
    epochs: List[PeriodEpoch] = field(default_factory=list)

    @property
    def shed_anything(self) -> bool:
        """True if any tier action actually lost data (period adaptation
        alone loses nothing)."""
        return bool(self.pt_sheds or self.hard_drop_bursts
                    or self.watchdog_trips or self.sync_stalls)


class TracingGovernor(MachineObserver):
    """Closed-loop controller over one run's online tracers.

    Attach *after* the tracers it governs: its callbacks must observe
    the state they just updated.  The governor never touches the traced
    machine — like every observer it is passive with respect to the
    simulated application, so a governed and an ungoverned run of the
    same seed execute the identical schedule and differ only in what
    the tracers record.

    Args:
        config: control-loop parameters.
        engine: the PEBS engine under control.
        pt: the PT packetizer (tier-2 shedding target).
        sync: the sync tracer (watchdog liveness subject).
        defects: the defect record governor-caused losses are declared
            on (owned by :func:`~repro.tracing.bundle.trace_run`).
    """

    #: Events between watchdog/decision polls on the access path (the
    #: governor sees every retired access; the mask keeps it cheap).
    POLL_MASK = 63

    #: Cap on the proportional widening factor per decision.  Sampling
    #: overhead is roughly inversely proportional to the period, so one
    #: proportional step (``overhead / budget``) lands the next window
    #: near the budget instead of climbing there geometrically through
    #: many over-budget windows; the cap bounds the overshoot a single
    #: wild window can cause.
    PROPORTIONAL_CAP = 128.0

    def __init__(self, config: GovernorConfig, engine, pt, sync,
                 defects) -> None:
        self.config = config
        self.engine = engine
        self.pt = pt
        self.sync = sync
        self.defects = defects
        base = engine.period
        k_min = config.k_min if config.k_min is not None else base
        k_max = (config.k_max if config.k_max is not None
                 else base * 1024)
        if not 1 <= k_min <= k_max:
            raise ValueError(f"need 1 <= k_min <= k_max, got "
                             f"[{k_min}, {k_max}]")
        self.k_min = k_min
        self.k_max = max(k_max, base)
        self.base_period = base
        self.tier = TIER_NOMINAL
        self.report = GovernorReport(
            overhead_budget=config.overhead_budget, base_period=base,
            k_min=self.k_min, k_max=self.k_max, final_period=base,
        )
        self._rng = random.Random(config.seed)
        self._events = 0
        # Decision-window baseline: the accounting summary at window start.
        self._window_start_tsc = 0
        self._window_base = engine.accounting.summary()
        #: EWMA of window overheads — what the budget is compared to.
        self._smoothed: Optional[float] = None
        # Watchdog state.
        self._last_samples_taken = 0
        self._last_progress_tsc = 0
        self._last_sync_len = 0
        self._sync_stalled = False
        self._mark(0, "init", 0.0)

    # ------------------------------------------------------------------
    # Epoch markers
    # ------------------------------------------------------------------

    @property
    def epochs(self) -> List[PeriodEpoch]:
        return self.report.epochs

    def _mark(self, tsc: int, reason: str, overhead: float) -> None:
        period = 0 if self.engine.disabled else self.engine.period
        self.report.epochs.append(
            PeriodEpoch(start_tsc=tsc, period=period, tier=self.tier,
                        reason=reason, overhead=overhead)
        )

    def _transition(self, new_tier: int) -> None:
        if new_tier != self.tier:
            self.report.tier_transitions += 1
            self.tier = new_tier

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------

    @property
    def hard_drop_active(self) -> bool:
        """Consulted by the engine before each buffer drain: in the
        hard-drop tier the buffer is discarded pre-interrupt."""
        return self.tier == TIER_HARD_DROP

    def account_hard_drop(self, n_records: int) -> None:
        """One buffer the engine shed on the governor's orders."""
        self.report.hard_drop_bursts += 1
        self.report.hard_dropped_samples += n_records
        self.defects.samples_dropped += n_records
        self.defects.drop_bursts += 1

    def on_drain(self, tsc: int) -> None:
        """Called by the engine after every (non-forced) buffer-full
        interrupt — the natural decision point under load."""
        self._maybe_decide(tsc)

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------

    def _window_overhead(self, tsc: int) -> Optional[float]:
        """Tracing-overhead estimate over the current decision window,
        mirroring the cost model's structure (handler + hardware assist
        + cache-pollution amplification + fixed fraction).  Computed by
        differencing :meth:`~repro.pmu.drivers.DriverAccounting.summary`
        snapshots — the same telemetry the text report renders."""
        dt = tsc - self._window_start_tsc
        if dt <= 0:
            return None
        accounting = self.engine.accounting
        now = accounting.summary()
        base = self._window_base
        d_handler = now["handler_cycles"] - base["handler_cycles"]
        d_hw = now["hw_assist_cycles"] - base["hw_assist_cycles"]
        occupancy = d_handler / dt
        pollution = min(accounting.POLLUTION_GAIN * occupancy,
                        accounting.driver.pollution_cap)
        return ((d_hw + d_handler * (1.0 + pollution)) / dt
                + accounting.driver.fixed_overhead_fraction)

    def _reset_window(self, tsc: int) -> None:
        self._window_start_tsc = tsc
        self._window_base = self.engine.accounting.summary()

    def _perturbed(self, target: float) -> int:
        """Clamp *target* into [k_min, k_max] with seeded ±perturb
        jitter — per-epoch sampling-phase diversity (§4.1.2)."""
        if self.config.perturb > 0.0:
            target *= 1.0 + self._rng.uniform(-self.config.perturb,
                                              self.config.perturb)
        return max(self.k_min, min(self.k_max, max(1, int(round(target)))))

    def _maybe_decide(self, tsc: int) -> None:
        if self.engine.disabled:
            return
        if tsc - self._window_start_tsc < self.config.decision_ticks:
            return
        window = self._window_overhead(tsc)
        if window is None:
            return
        drops = (self.engine.accounting.dropped_interrupts
                 - self._window_base["dropped_interrupts"])
        alpha = self.config.smoothing
        if self._smoothed is None:
            self._smoothed = window
        else:
            self._smoothed = alpha * window + (1.0 - alpha) * self._smoothed
        overhead = self._smoothed
        self.report.decisions += 1
        self.report.final_overhead = overhead
        budget = self.config.overhead_budget
        if drops > 0 or overhead > budget:
            # Data-shedding tiers engage only when the *current* window
            # is over budget (or the throttle dropped): the smoothed
            # estimate lags, and shedding data because the average has
            # not yet decayed after a period jump would lose trace for
            # load that is already gone.
            self._escalate(tsc, overhead,
                           hot=drops > 0 or window > budget)
        elif overhead < budget * self.config.hysteresis:
            self._relax(tsc, overhead)
        self._reset_window(tsc)

    def _escalate(self, tsc: int, overhead: float,
                  hot: bool = True) -> None:
        period = self.engine.period
        if period < self.k_max:
            factor = max(
                self.config.grow,
                min(overhead / self.config.overhead_budget,
                    self.PROPORTIONAL_CAP),
            )
            new_period = self._perturbed(period * factor)
            if new_period > period:
                self.engine.set_period(new_period)
                self.report.widenings += 1
                self._transition(max(self.tier, TIER_WIDEN))
                self._mark(tsc, "widen", overhead)
                return
        if not hot:
            return
        if self.tier < TIER_SHED_PT:
            self._transition(TIER_SHED_PT)
            self.pt.begin_shed(tsc)
            self._mark(tsc, "shed-pt", overhead)
        elif self.tier < TIER_HARD_DROP:
            self._transition(TIER_HARD_DROP)
            self._mark(tsc, "hard-drop", overhead)
        # Already at the last tier: nothing further to shed.

    def _relax(self, tsc: int, overhead: float) -> None:
        if self.tier == TIER_HARD_DROP:
            self._transition(TIER_SHED_PT)
            self._mark(tsc, "resume-drop", overhead)
            return
        if self.tier == TIER_SHED_PT:
            self._close_shed(tsc)
            self._transition(TIER_WIDEN)
            self._mark(tsc, "resume-pt", overhead)
            return
        period = self.engine.period
        if period > self.k_min:
            new_period = self._perturbed(
                max(self.k_min, period * self.config.shrink)
            )
            if new_period < period:
                self.engine.set_period(new_period)
                self.report.narrowings += 1
                if new_period <= self.base_period:
                    self._transition(TIER_NOMINAL)
                self._mark(tsc, "narrow", overhead)

    def _close_shed(self, tsc: int) -> None:
        """End a PT shed interval and account the loss."""
        gaps, packets, shed_bytes = self.pt.end_shed(tsc)
        self.report.pt_sheds += gaps
        self.report.pt_packets_shed += packets
        self.report.pt_bytes_shed += shed_bytes
        self.defects.pt_gaps += gaps
        self.defects.pt_packets_lost += packets

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------

    def _watchdog_threshold(self) -> int:
        return max(self.config.watchdog_floor_ticks,
                   self.config.watchdog_periods * self.engine.period)

    def _check_watchdog(self, tsc: int) -> None:
        taken = self.engine.accounting.samples_taken
        if taken != self._last_samples_taken:
            self._last_samples_taken = taken
            self._last_progress_tsc = tsc
            return
        if tsc - self._last_progress_tsc > self._watchdog_threshold():
            self._trip_watchdog(tsc)

    def _trip_watchdog(self, tsc: int) -> None:
        """The PEBS engine stalled: degrade to sync-only tracing.

        PEBS is disabled (no further assist cost, no samples) and the PT
        stream is shed from here on — without samples to resynchronize
        at, post-stall PT could not be replayed anyway.  The run itself
        continues untouched.
        """
        self.report.watchdog_trips += 1
        self.engine.disabled = True
        if self.tier != TIER_SHED_PT and self.tier != TIER_SYNC_ONLY:
            self.pt.begin_shed(tsc)
        elif self.tier == TIER_SYNC_ONLY:  # pragma: no cover - guarded
            return
        self._transition(TIER_SYNC_ONLY)
        self._mark(tsc, "watchdog", self.report.final_overhead)

    def _trip_sync_stall(self, tsc: int) -> None:
        """The sync tracer dropped a record it was handed: declare the
        log truncated at its last good timestamp so the offline stage
        suppresses conservatively instead of trusting a silent hole."""
        if self._sync_stalled:
            return
        self._sync_stalled = True
        self.report.sync_stalls += 1
        records = self.sync.sync_records
        cutoff = records[-1].tsc if records else -1
        previous = self.defects.log_truncated_at_tsc
        self.defects.log_truncated_at_tsc = (
            cutoff if previous is None else min(previous, cutoff)
        )
        self._mark(tsc, "sync-stall", self.report.final_overhead)

    # ------------------------------------------------------------------
    # MachineObserver interface
    # ------------------------------------------------------------------

    def on_memory_access(self, event: MemoryAccessEvent,
                         registers=None) -> None:
        self._events += 1
        if self._events & self.POLL_MASK:
            return
        if not self.engine.disabled:
            self._check_watchdog(event.tsc)
            # Decide on the poll path too: at very wide periods buffer
            # drains (the other decision trigger) become rare, and
            # de-escalation must not wait for one.
            self._maybe_decide(event.tsc)

    def on_sync(self, event: SyncEvent) -> None:
        n = len(self.sync.sync_records)
        if n == self._last_sync_len and not self._sync_stalled:
            self._trip_sync_stall(event.tsc)
        self._last_sync_len = n

    def on_run_end(self, tsc: int) -> None:
        if self.pt.shedding:
            self._close_shed(tsc)
        # Fold the final partial window into the smoothed estimate so a
        # run ending mid-window still reports its tail.
        window = self._window_overhead(tsc)
        if window is not None and tsc - self._window_start_tsc >= \
                self.config.decision_ticks:
            alpha = self.config.smoothing
            self._smoothed = (window if self._smoothed is None
                              else alpha * window
                              + (1.0 - alpha) * self._smoothed)
            self.report.final_overhead = self._smoothed
        self.report.final_period = (
            0 if self.engine.disabled else self.engine.period
        )
        self.report.final_tier = self.tier
