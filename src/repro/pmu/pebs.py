"""Simulated PEBS: precise event-based sampling of retired loads/stores.

The engine attaches to the machine as an observer and mirrors the hardware
flow of §4.1: a per-core event counter counts retired memory instructions;
every ``period`` events the hardware writes a record — sampled IP, data
address, TSC, and the full register file at retirement — into the current
DS-area segment; when the segment fills, the driver takes an interrupt and
either persists or (under throttle pressure) drops the records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..machine.observers import MachineObserver, MemoryAccessEvent
from .drivers import DriverAccounting, DriverModel, PRORACE_DRIVER
from .records import PEBSSample


@dataclass(frozen=True)
class PEBSConfig:
    """PEBS programming: what to sample and how often.

    Args:
        period: sampling period ``k`` — one sample every k monitored
            events (the paper sweeps 10, 100, 1K, 10K, 100K).
        monitor_loads / monitor_stores: which retired memory events count
            (ProRace monitors both user-level loads and stores).
    """

    period: int
    monitor_loads: bool = True
    monitor_stores: bool = True

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1: {self.period}")


class PEBSEngine(MachineObserver):
    """Per-core PEBS sampling with a driver-managed DS buffer.

    Args:
        config: sampling configuration.
        driver: driver model (cost constants + behaviour flags).
        seed: RNG seed for the randomized first period (ProRace driver).
    """

    def __init__(
        self,
        config: PEBSConfig,
        driver: DriverModel = PRORACE_DRIVER,
        seed: int = 0,
        segment_records: Optional[int] = None,
    ) -> None:
        self.config = config
        self.driver = driver
        #: Effective sampling period.  Starts at the configured period;
        #: a :class:`~repro.pmu.governor.TracingGovernor` may retune it
        #: live via :meth:`set_period` (the config itself stays frozen).
        self.period = config.period
        #: True once a governor watchdog disabled the engine (sync-only
        #: degradation): no further counting, samples, or assist cost.
        self.disabled = False
        #: Fault injection: the engine silently stops producing samples
        #: at this TSC while monitored events keep retiring — the wedged
        #: hardware/driver state the governor's watchdog exists to catch.
        self.stall_at: Optional[int] = None
        #: Seeded load-burst plan (``faults.LoadBurstPlan``): inside a
        #: burst every retired access counts as ``plan.weight(tsc)``
        #: monitored events, modelling a phase that retires monitored
        #: events that much faster without perturbing the schedule.
        self.load_bursts = None
        #: Attached by trace_run when a governor supervises this engine.
        self.governor = None
        #: Records per DS segment.  The default scales the hardware's
        #: 64 KB segment down for simulation: our runs are orders of
        #: magnitude shorter than real ones, and what must be preserved is
        #: the *interrupts-per-sample* dynamics (DESIGN.md §2).
        self.segment_records = (
            segment_records if segment_records is not None
            else max(4, driver.records_per_segment // 20)
        )
        self.accounting = DriverAccounting(
            driver, segment_records=self.segment_records
        )
        self.samples: List[PEBSSample] = []
        self._rng = random.Random(seed)
        self._counters: Dict[int, int] = {}
        self._buffers: Dict[int, List[PEBSSample]] = {}
        self._core_of: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def set_period(self, period: int) -> None:
        """Retune the sampling period (takes effect at each counter's
        next reload, like reprogramming the PMU reset value)."""
        if period < 1:
            raise ValueError(f"period must be >= 1: {period}")
        self.period = period

    def _initial_count(self) -> int:
        if self.driver.randomize_first_period:
            return self._rng.randint(1, self.period)
        return self.period

    @property
    def _max_weight(self) -> int:
        plan = self.load_bursts
        return plan.multiplier if plan is not None else 1

    def _counter(self, core: int) -> int:
        if core not in self._counters:
            self._counters[core] = self._initial_count()
        return self._counters[core]

    def _monitored(self, event: MemoryAccessEvent) -> bool:
        if event.is_store:
            return self.config.monitor_stores
        return self.config.monitor_loads

    # ------------------------------------------------------------------
    # MachineObserver interface
    # ------------------------------------------------------------------

    def on_thread_start(self, tsc: int, tid: int, core: int, ip: int) -> None:
        self._core_of[tid] = core
        self._counter(core)  # materialize the counter

    def wants_register_snapshot(self, tid: int) -> bool:
        if self.disabled:
            return False
        core = self._core_of.get(tid)
        if core is None:
            return False
        # Under a load-burst plan one access can decrement the counter by
        # up to ``multiplier``, so any count within that reach may fire;
        # with no plan this is exactly the classic ``count == 1`` (stored
        # counts are always >= 1).
        return self._counter(core) <= self._max_weight

    def on_memory_access(self, event: MemoryAccessEvent,
                         registers: Optional[Dict[str, int]]) -> None:
        if self.disabled or not self._monitored(event):
            return
        if self.stall_at is not None and event.tsc >= self.stall_at:
            return  # wedged: events retire, the engine records nothing
        core = event.core
        weight = (self.load_bursts.weight(event.tsc)
                  if self.load_bursts is not None else 1)
        count = self._counter(core) - weight
        if count > 0:
            self._counters[core] = count
            return
        # Counter overflow: the hardware writes a PEBS record.
        self._counters[core] = self.period
        if registers is None:
            # The machine only builds snapshots when asked; reaching here
            # without one means wants_register_snapshot was not consulted
            # for this event (a harness bug).
            raise RuntimeError("PEBS fired without a register snapshot")
        self.accounting.on_sample()
        sample = PEBSSample(
            tsc=event.tsc,
            tid=event.tid,
            core=core,
            ip=event.ip,
            address=event.address,
            is_store=event.is_store,
            registers=registers,
        )
        buffer = self._buffers.setdefault(core, [])
        buffer.append(sample)
        if len(buffer) >= self.segment_records:
            self._drain(core, event.tsc)

    def on_run_end(self, tsc: int) -> None:
        for core in list(self._buffers):
            self._drain(core, tsc, force=True)

    # ------------------------------------------------------------------

    def _drain(self, core: int, tsc: int, force: bool = False) -> None:
        buffer = self._buffers.get(core)
        if not buffer:
            return
        governor = self.governor
        if governor is not None and not force and governor.hard_drop_active:
            # Hard-drop backpressure: the governor rearms the DS pointer
            # and the buffer never reaches the interrupt handler.
            self.accounting.record_governor_shed(len(buffer))
            governor.account_hard_drop(len(buffer))
            self._buffers[core] = []
            governor.on_drain(tsc)
            return
        if self.accounting.on_buffer_full(core, len(buffer), tsc, force=force):
            self.samples.extend(buffer)
        self._buffers[core] = []
        if governor is not None and not force:
            governor.on_drain(tsc)
