"""Simulated PEBS: precise event-based sampling of retired loads/stores.

The engine attaches to the machine as an observer and mirrors the hardware
flow of §4.1: a per-core event counter counts retired memory instructions;
every ``period`` events the hardware writes a record — sampled IP, data
address, TSC, and the full register file at retirement — into the current
DS-area segment; when the segment fills, the driver takes an interrupt and
either persists or (under throttle pressure) drops the records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..machine.observers import MachineObserver, MemoryAccessEvent
from .drivers import DriverAccounting, DriverModel, PRORACE_DRIVER
from .records import PEBSSample


@dataclass(frozen=True)
class PEBSConfig:
    """PEBS programming: what to sample and how often.

    Args:
        period: sampling period ``k`` — one sample every k monitored
            events (the paper sweeps 10, 100, 1K, 10K, 100K).
        monitor_loads / monitor_stores: which retired memory events count
            (ProRace monitors both user-level loads and stores).
    """

    period: int
    monitor_loads: bool = True
    monitor_stores: bool = True

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1: {self.period}")


class PEBSEngine(MachineObserver):
    """Per-core PEBS sampling with a driver-managed DS buffer.

    Args:
        config: sampling configuration.
        driver: driver model (cost constants + behaviour flags).
        seed: RNG seed for the randomized first period (ProRace driver).
    """

    def __init__(
        self,
        config: PEBSConfig,
        driver: DriverModel = PRORACE_DRIVER,
        seed: int = 0,
        segment_records: Optional[int] = None,
    ) -> None:
        self.config = config
        self.driver = driver
        #: Records per DS segment.  The default scales the hardware's
        #: 64 KB segment down for simulation: our runs are orders of
        #: magnitude shorter than real ones, and what must be preserved is
        #: the *interrupts-per-sample* dynamics (DESIGN.md §2).
        self.segment_records = (
            segment_records if segment_records is not None
            else max(4, driver.records_per_segment // 20)
        )
        self.accounting = DriverAccounting(
            driver, segment_records=self.segment_records
        )
        self.samples: List[PEBSSample] = []
        self._rng = random.Random(seed)
        self._counters: Dict[int, int] = {}
        self._buffers: Dict[int, List[PEBSSample]] = {}
        self._core_of: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def _initial_count(self) -> int:
        if self.driver.randomize_first_period:
            return self._rng.randint(1, self.config.period)
        return self.config.period

    def _counter(self, core: int) -> int:
        if core not in self._counters:
            self._counters[core] = self._initial_count()
        return self._counters[core]

    def _monitored(self, event: MemoryAccessEvent) -> bool:
        if event.is_store:
            return self.config.monitor_stores
        return self.config.monitor_loads

    # ------------------------------------------------------------------
    # MachineObserver interface
    # ------------------------------------------------------------------

    def on_thread_start(self, tsc: int, tid: int, core: int, ip: int) -> None:
        self._core_of[tid] = core
        self._counter(core)  # materialize the counter

    def wants_register_snapshot(self, tid: int) -> bool:
        core = self._core_of.get(tid)
        if core is None:
            return False
        return self._counter(core) == 1

    def on_memory_access(self, event: MemoryAccessEvent,
                         registers: Optional[Dict[str, int]]) -> None:
        if not self._monitored(event):
            return
        core = event.core
        count = self._counter(core) - 1
        if count > 0:
            self._counters[core] = count
            return
        # Counter overflow: the hardware writes a PEBS record.
        self._counters[core] = self.config.period
        if registers is None:
            # The machine only builds snapshots when asked; reaching here
            # without one means wants_register_snapshot was not consulted
            # for this event (a harness bug).
            raise RuntimeError("PEBS fired without a register snapshot")
        self.accounting.on_sample()
        sample = PEBSSample(
            tsc=event.tsc,
            tid=event.tid,
            core=core,
            ip=event.ip,
            address=event.address,
            is_store=event.is_store,
            registers=registers,
        )
        buffer = self._buffers.setdefault(core, [])
        buffer.append(sample)
        if len(buffer) >= self.segment_records:
            self._drain(core, event.tsc)

    def on_run_end(self, tsc: int) -> None:
        for core in list(self._buffers):
            self._drain(core, tsc, force=True)

    # ------------------------------------------------------------------

    def _drain(self, core: int, tsc: int, force: bool = False) -> None:
        buffer = self._buffers.get(core)
        if not buffer:
            return
        if self.accounting.on_buffer_full(core, len(buffer), tsc, force=force):
            self.samples.extend(buffer)
        self._buffers[core] = []
