"""PEBS driver models: the vanilla Linux driver and ProRace's driver.

The paper's §4.1 contrasts two kernel paths for draining the DS save area:

* **Vanilla Linux driver** (Figure 2): on each buffer-full interrupt, the
  handler processes every raw record — synthesizing perf metadata (wall
  clock, sample size, period) — and *copies* the resulting perf events
  into the user-visible ring buffer; the perf tool later commits them to a
  file.
* **ProRace driver** (Figure 3): a single segmented aux ring buffer is
  handed to PEBS directly; the interrupt handler only swaps in the next
  64 KB segment (double buffering), no metadata, no kernel-to-user copy.
  Additionally the first sampling period is randomized per thread to
  diversify where sampling lands across runs (§4.1.2).

Here each driver is a declarative cost/behaviour model: cycle costs are
charged to an accounting object as the simulated PEBS engine fires, and
the kernel's interrupt-time throttle (which drops samples when too much
time goes to handling, §4.1 footnote and §7.3's period-10 size inversion)
is applied using those same costs.  The constants are calibrated so the
overhead curves reproduce the *shape* of Figures 6, 7 and 10 — see
EXPERIMENTS.md for the calibration notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .records import DS_SEGMENT_BYTES, PERF_METADATA_BYTES, RAW_PEBS_RECORD_BYTES


@dataclass(frozen=True)
class DriverModel:
    """Cost/behaviour constants for one PEBS driver implementation."""

    name: str
    #: Cycles the PEBS hardware assist steals from the application core
    #: per sample written to the DS area (identical for both drivers).
    hw_assist_cycles: int
    #: Kernel cycles per record processed in the interrupt handler
    #: (metadata synthesis + kernel-to-user copy for vanilla; ~0 for
    #: ProRace, which leaves raw records in place).
    per_record_cycles: int
    #: Fixed kernel cycles per buffer-full interrupt.
    per_interrupt_cycles: int
    #: Steady-state fractional overhead independent of the sampling rate
    #: (perf tool polling, mmap handling, timer ticks).
    fixed_overhead_fraction: float
    #: Bytes written to the trace file per sample.
    record_bytes: int
    #: Kernel throttle: ceiling on the fraction of (traced) wall-clock
    #: time spent in the interrupt handler; buffers arriving beyond it are
    #: dropped.  Handler time itself stretches the wall clock, so a buffer
    #: is kept while cost <= gap * f/(1-f).
    throttle_fraction: float
    #: Whether the first sampling period is randomized per thread.
    randomize_first_period: bool
    #: Cache/TLB-pollution cap (see DriverAccounting.POLLUTION_GAIN): the
    #: vanilla driver's kernel-to-user copies thrash more of the
    #: application's working set per handled record.
    pollution_cap: float = 1.0
    #: DS-area / aux-buffer segment size.
    segment_bytes: int = DS_SEGMENT_BYTES

    @property
    def records_per_segment(self) -> int:
        return self.segment_bytes // RAW_PEBS_RECORD_BYTES


#: The vanilla Linux perf PEBS driver (Figure 2).
VANILLA_DRIVER = DriverModel(
    name="vanilla",
    hw_assist_cycles=150,
    per_record_cycles=4000,
    per_interrupt_cycles=12_000,
    fixed_overhead_fraction=0.15,
    record_bytes=RAW_PEBS_RECORD_BYTES + PERF_METADATA_BYTES,
    throttle_fraction=0.9,
    randomize_first_period=False,
    pollution_cap=2.0,
)

#: ProRace's PEBS driver (Figure 3): no copy, no metadata, randomized
#: first period.
PRORACE_DRIVER = DriverModel(
    name="prorace",
    hw_assist_cycles=150,
    per_record_cycles=55,
    per_interrupt_cycles=2_500,
    fixed_overhead_fraction=0.005,
    record_bytes=RAW_PEBS_RECORD_BYTES,
    throttle_fraction=0.9,
    randomize_first_period=True,
)


@dataclass
class DriverAccounting:
    """Mutable tally of what the driver did during one run.

    The cost model (:mod:`repro.analysis.costs`) turns these tallies into
    runtime-overhead estimates; the throttle decision consumes them live.
    """

    driver: DriverModel
    #: Records per (scaled) DS segment; set by the PEBS engine.
    segment_records: int = 16
    samples_taken: int = 0
    samples_written: int = 0
    samples_dropped: int = 0
    interrupts: int = 0
    dropped_interrupts: int = 0
    handler_cycles: int = 0
    #: Record processing done at exit (final buffer drain): happens after
    #: the application finished, so it never perturbs the run.
    exit_drain_cycles: int = 0
    hw_assist_total_cycles: int = 0
    #: Whole buffers discarded pre-interrupt on the tracing governor's
    #: orders (the hard-drop backpressure tier).
    governor_sheds: int = 0
    #: Per-core TSC of the last buffer-full interrupt (throttle state).
    _last_interrupt_tsc: Dict[int, int] = field(default_factory=dict)

    def on_sample(self) -> None:
        self.samples_taken += 1
        self.hw_assist_total_cycles += self.driver.hw_assist_cycles

    def on_buffer_full(self, core: int, n_records: int, tsc_now: int,
                       force: bool = False) -> bool:
        """Account one buffer-full interrupt on *core*.

        Returns True if the records should be kept, False if the kernel
        throttle drops them.  The throttle models the kernel's "too much
        time spent on interrupt handling" policy (§4.1 footnote): when
        buffer-full interrupts arrive faster than ``throttle_fraction`` of
        the inter-arrival time can absorb the handler's work, the records
        are discarded — which is why the paper measures a *smaller* trace
        at period 10 than at period 100 (§7.3).  *force* (the final drain
        at exit) bypasses the throttle: there is no arrival pressure then.
        """
        self.interrupts += 1
        base = self.driver.per_interrupt_cycles
        full_cost = base + n_records * self.driver.per_record_cycles
        gap = tsc_now - self._last_interrupt_tsc.get(core, 0)
        fraction = self.driver.throttle_fraction
        budget = gap * fraction / (1.0 - fraction)
        allowed = force or full_cost <= budget
        self._last_interrupt_tsc[core] = tsc_now
        if force:
            self.exit_drain_cycles += full_cost
            self.samples_written += n_records
            return True
        if not allowed:
            # Dropped: the handler still pays the fixed interrupt cost but
            # skips record processing.
            self.handler_cycles += base
            self.dropped_interrupts += 1
            self.samples_dropped += n_records
            return False
        self.handler_cycles += full_cost
        self.samples_written += n_records
        return True

    def record_fault_drop(self, n_records: int) -> None:
        """Account one injected overflow-burst loss (fault injection).

        Mirrors the bookkeeping of a throttled :meth:`on_buffer_full`
        after the fact: a whole buffer of already-written records is
        retroactively discarded, so ``samples_written`` shrinks and the
        drop counters grow — keeping ``trace_bytes`` and every
        cost-model consumer consistent with the degraded sample list.
        """
        self.interrupts += 1
        self.dropped_interrupts += 1
        self.samples_dropped += n_records
        self.samples_written = max(0, self.samples_written - n_records)
        self.handler_cycles += self.driver.per_interrupt_cycles

    def record_governor_shed(self, n_records: int) -> None:
        """Account one buffer hard-dropped by the tracing governor.

        Unlike a throttle drop the buffer never reaches the interrupt
        handler — the governor rearms the DS pointer before the overflow
        interrupt fires — so no handler cycles are charged; the samples
        (whose hardware-assist cost is already paid) simply vanish.
        """
        self.governor_sheds += 1
        self.samples_dropped += n_records

    @property
    def trace_bytes(self) -> int:
        return self.samples_written * self.driver.record_bytes

    def summary(self) -> Dict[str, float]:
        """Cumulative live telemetry: what the governor's decision windows
        difference against, and what the text report renders.

        ``drop_rate`` is the fraction of taken samples lost to the kernel
        throttle or governor sheds; ``segment_occupancy`` the mean fill
        fraction of the DS segment at kept buffer-full interrupts.
        """
        kept = self.interrupts - self.dropped_interrupts
        return {
            "samples_taken": self.samples_taken,
            "samples_written": self.samples_written,
            "samples_dropped": self.samples_dropped,
            "interrupts": self.interrupts,
            "dropped_interrupts": self.dropped_interrupts,
            "governor_sheds": self.governor_sheds,
            "handler_cycles": self.handler_cycles,
            "hw_assist_cycles": self.hw_assist_total_cycles,
            "trace_bytes": self.trace_bytes,
            "drop_rate": (self.samples_dropped / self.samples_taken
                          if self.samples_taken else 0.0),
            "segment_occupancy": (
                self.samples_written
                / max(kept, 1) / max(self.segment_records, 1)
            ),
        }

    #: Cache/TLB-pollution amplification: frequent interrupts evict the
    #: application's working set, so handler time costs more than its own
    #: cycles.  The multiplier grows with handler occupancy, capped.
    POLLUTION_GAIN = 8.0

    def steady_handler_cycles(self) -> float:
        """Steady-state kernel handler cost for this run's samples.

        Our runs are short excerpts of what would be long-lived production
        processes, so per-record and per-interrupt work is charged for
        every sample at the amortized steady-state rate — whether the
        mechanistic buffer happened to drain mid-run or at exit.  Dropped
        buffers still cost their interrupt entry.
        """
        amortized_interrupts = self.samples_written / max(
            self.segment_records, 1
        )
        return (
            self.samples_written * self.driver.per_record_cycles
            + amortized_interrupts * self.driver.per_interrupt_cycles
            + self.dropped_interrupts * self.driver.per_interrupt_cycles
        )

    def tracing_cycles(self, cpu_cycles: int) -> float:
        """Total application-visible cycles spent on PEBS tracing."""
        handler = self.steady_handler_cycles()
        occupancy = handler / max(cpu_cycles, 1)
        pollution = min(self.POLLUTION_GAIN * occupancy,
                        self.driver.pollution_cap) * handler
        return (
            self.hw_assist_total_cycles
            + handler
            + pollution
            + self.driver.fixed_overhead_fraction * cpu_cycles
        )
