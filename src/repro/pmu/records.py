"""Trace record types and byte-size constants for the PMU simulation.

Byte sizes drive the trace-size experiments (Figures 8–9).  They follow
the real formats' magnitudes: a Skylake PEBS record with the full register
file is ~192 bytes; the vanilla Linux driver wraps each sample in a perf
event, adding header + metadata (~64 bytes, the "step 2" processing of
Figure 2 that ProRace's driver skips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Bytes of one raw PEBS record in the DS save area (ip, data address,
#: TSC, flags, 17 registers).
RAW_PEBS_RECORD_BYTES = 192

#: Extra bytes the vanilla perf driver adds per sample (perf_event_header,
#: wall-clock time, sample size, sample period, cpu/tid ids).
PERF_METADATA_BYTES = 64

#: Bytes of one synchronization log record (kind, variable, tsc, tid).
SYNC_RECORD_BYTES = 32

#: Bytes of one allocation log record.
ALLOC_RECORD_BYTES = 32

#: Default size of one DS-area buffer / aux-buffer segment (§4.1.1: 64 KB).
DS_SEGMENT_BYTES = 64 * 1024


@dataclass(frozen=True)
class PEBSSample:
    """One decoded PEBS sample.

    PEBS delivers the sampled instruction *and* its architectural execution
    context: the full register file at retirement and the time stamp
    counter (§4.1).  ``registers["rip"]`` is the next instruction pointer,
    which is where forward replay resumes.
    """

    tsc: int
    tid: int
    core: int
    ip: int
    address: int
    is_store: bool
    registers: Dict[str, int]

    def __lt__(self, other: "PEBSSample") -> bool:
        return self.tsc < other.tsc


@dataclass(frozen=True)
class SyncRecord:
    """One synchronization log entry (type, variable, TSC — §4.3)."""

    tsc: int
    seq: int
    tid: int
    ip: int
    kind: str
    target: int


@dataclass(frozen=True)
class AllocRecord:
    """One malloc/free log entry (§4.3 false-positive avoidance)."""

    tsc: int
    tid: int
    ip: int
    kind: str
    address: int
    size: int
