"""Simulated performance monitoring unit: PEBS sampling, PT control-flow
tracing, and driver cost models (see DESIGN.md §2)."""

from .drivers import (
    DriverAccounting,
    DriverModel,
    PRORACE_DRIVER,
    VANILLA_DRIVER,
)
from .pebs import PEBSConfig, PEBSEngine
from .pt import (
    MTC_BYTES,
    PSB_BYTES,
    PTConfig,
    PTPacket,
    PTPacketizer,
    PTThreadTrace,
    PacketKind,
    RET_STACK_DEPTH,
    TIP_BYTES,
    TNT_BITS_PER_BYTE,
)
from .records import (
    ALLOC_RECORD_BYTES,
    AllocRecord,
    DS_SEGMENT_BYTES,
    PEBSSample,
    PERF_METADATA_BYTES,
    RAW_PEBS_RECORD_BYTES,
    SYNC_RECORD_BYTES,
    SyncRecord,
)

__all__ = [
    "ALLOC_RECORD_BYTES",
    "AllocRecord",
    "DS_SEGMENT_BYTES",
    "DriverAccounting",
    "DriverModel",
    "MTC_BYTES",
    "PEBSConfig",
    "PEBSEngine",
    "PEBSSample",
    "PERF_METADATA_BYTES",
    "PRORACE_DRIVER",
    "PSB_BYTES",
    "PTConfig",
    "PTPacket",
    "PTPacketizer",
    "PTThreadTrace",
    "PacketKind",
    "RAW_PEBS_RECORD_BYTES",
    "RET_STACK_DEPTH",
    "SYNC_RECORD_BYTES",
    "SyncRecord",
    "TIP_BYTES",
    "TNT_BITS_PER_BYTE",
    "VANILLA_DRIVER",
]
