"""The fleet triage service: produce → deliver → ingest → analyze → DB.

One :func:`run_fleet` call simulates a complete triage cycle:

1. the scheduler assigns each (node, epoch) cell its tracing depth;
2. nodes run governed tracing and upload wire bundles;
3. the delivery plan mangles transport (crashes, duplicates,
   corruption, poison, reordering) into the spool;
4. ingestion reduces copies to bundles (dedupe / salvage / quarantine);
5. sharded supervised workers analyze the backlog under backpressure,
   checkpointing through a result journal;
6. findings fold into the race database in a deterministic order
   (epoch, node, bundle id) — the same total order whatever transport
   did — and the spool is acked only after the fold commits.

Determinism is the design invariant: every random draw is keyed by
(seed, coordinates), never drawn from a shared stream, so the same
config and seed produce byte-identical bundles, and a fault plan that
only mangles *transport* leaves the committed database bit-identical
to the fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..errors import UsageError
from ..faults import WorkerFaultPlan
from ..parallel import parallel_map
from ..supervise import SupervisorConfig, open_journal
from ..workloads import RACE_BUGS
from .chaos import DeliveryPlan
from .ingest import ingest
from .nodes import (
    NodeEpochSpec,
    ProducedBundle,
    node_clock_offset,
    produce_bundle,
)
from .queue import BundleSpool, encode_envelope
from .racedb import RaceDatabase
from .scheduler import FleetSchedule
from .triage import TriageReport
from .workers import analyze_bundles

DEFAULT_WORKLOADS = ("apache-25520",)


@dataclass(frozen=True)
class FleetConfig:
    """One fleet triage run, fully specified (hence fully replayable)."""

    nodes: int = 4
    epochs: int = 3
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS
    iterations: int = 12
    threads: int = 4
    seed: int = 0

    # Scheduling.
    policy: str = "rotate"
    fleet_budget: float = 0.005
    deep_budget: float = 0.02
    deep_period: int = 160
    idle_period: int = 50_000

    # Node chaos: per-node TSC epoch offsets of this intensity (whole
    # machines disagree on time zero; ingest reconciles before the
    # cross-node fold).
    node_clock_skew: float = 0.0

    # Transport chaos.
    node_crash_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    sticky_corrupt_rate: float = 0.0
    poison_rate: float = 0.0
    reorder: bool = True

    # Triage-side robustness.
    retries: int = 1
    backlog_budget: Optional[int] = None
    jobs: int = 1
    executor: str = "serial"
    #: Address shards for the FastTrack pass inside each worker (1 =
    #: serial detection; results are bit-identical either way).
    detect_shards: int = 1

    # Race confirmation (schedule-controlled replay verdicts).
    confirm: bool = False
    confirm_retries: int = 5

    def __post_init__(self) -> None:
        if not self.workloads:
            raise UsageError("fleet needs at least one workload")
        for name in self.workloads:
            if name not in RACE_BUGS:
                raise UsageError(
                    f"unknown fleet workload {name!r} "
                    f"(available: {', '.join(sorted(RACE_BUGS))})"
                )

    def schedule(self) -> FleetSchedule:
        return FleetSchedule(
            policy=self.policy, nodes=self.nodes, epochs=self.epochs,
            fleet_budget=self.fleet_budget, deep_budget=self.deep_budget,
            deep_period=self.deep_period, idle_period=self.idle_period,
        )

    def delivery_plan(self) -> DeliveryPlan:
        return DeliveryPlan(
            seed=self.seed,
            node_crash_rate=self.node_crash_rate,
            duplicate_rate=self.duplicate_rate,
            corrupt_rate=self.corrupt_rate,
            sticky_corrupt_rate=self.sticky_corrupt_rate,
            poison_rate=self.poison_rate,
            reorder=self.reorder,
        )

    def workload_of(self, node: int) -> str:
        """Each node runs one service, stable across epochs."""
        return self.workloads[node % len(self.workloads)]

    def key(self) -> str:
        """Checkpoint-journal identity: everything that changes what the
        analysis stage would compute."""
        return ("fleet|" + "|".join(
            f"{k}={v}" for k, v in sorted(self.to_dict().items())
        ))

    def to_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "epochs": self.epochs,
            "workloads": ",".join(self.workloads),
            "iterations": self.iterations,
            "threads": self.threads,
            "seed": self.seed,
            "policy": self.policy,
            "fleet_budget": self.fleet_budget,
            "deep_budget": self.deep_budget,
            "deep_period": self.deep_period,
            "idle_period": self.idle_period,
            # Only recorded when skewed: unskewed configs (and their
            # checkpoint-journal keys) stay byte-identical.
            **({"node_clock_skew": self.node_clock_skew}
               if self.node_clock_skew else {}),
            "node_crash_rate": self.node_crash_rate,
            "duplicate_rate": self.duplicate_rate,
            "corrupt_rate": self.corrupt_rate,
            "sticky_corrupt_rate": self.sticky_corrupt_rate,
            "poison_rate": self.poison_rate,
            "reorder": self.reorder,
            "retries": self.retries,
            "backlog_budget": self.backlog_budget,
            "jobs": self.jobs,
            "executor": self.executor,
            # Only recorded when sharding is on: detection results are
            # identical at any shard count, so the default key (and with
            # it existing checkpoint journals) stays stable.
            **({"detect_shards": self.detect_shards}
               if self.detect_shards != 1 else {}),
            # Likewise only recorded when confirmation is on: it changes
            # what the analysis stage computes, so it must enter the
            # journal key — but non-confirming keys stay historical.
            **({"confirm": True, "confirm_retries": self.confirm_retries}
               if self.confirm else {}),
        }


def fleet_specs(config: FleetConfig) -> List[NodeEpochSpec]:
    """Every (node, epoch) tracing cell, in (epoch, node) order."""
    schedule = config.schedule()
    specs = []
    for epoch in range(config.epochs):
        for node in range(config.nodes):
            assignment = schedule.assignment(node, epoch)
            specs.append(NodeEpochSpec(
                fleet_seed=config.seed,
                node=node,
                epoch=epoch,
                workload=config.workload_of(node),
                iterations=config.iterations,
                threads=config.threads,
                period=assignment.period,
                budget=assignment.budget,
                deep=assignment.deep,
                clock_offset=node_clock_offset(
                    config.seed, node, config.node_clock_skew),
            ))
    return specs


def produce_fleet(config: FleetConfig) -> List[ProducedBundle]:
    """Run every node-epoch's governed tracing (order-preserving even
    when fanned out across processes)."""
    return parallel_map(produce_bundle, fleet_specs(config),
                        jobs=config.jobs, executor=config.executor)


def deliver_fleet(config: FleetConfig, produced: Sequence[ProducedBundle],
                  spool: BundleSpool) -> int:
    """Push every bundle through the (possibly chaotic) transport into
    the spool; returns the number of spooled copies."""
    plan = config.delivery_plan()
    wire: List[Tuple[str, bytes]] = []
    for bundle in produced:
        envelope = encode_envelope(bundle.meta)
        for _kind, payload in plan.copies(bundle.bundle_id,
                                          envelope, bundle.blob):
            wire.append((bundle.bundle_id, payload))
    order = plan.arrival_order(len(wire))
    for seq, index in enumerate(order):
        bundle_id, payload = wire[index]
        spool.put(seq, bundle_id, payload)
    return len(wire)


def run_fleet(
    config: FleetConfig,
    db_path: Path | str,
    spool_dir: Path | str,
    checkpoint_dir: Optional[Path | str] = None,
    resume: bool = False,
    suppress: Sequence[str] = (),
    supervisor: Optional[SupervisorConfig] = None,
    worker_fault_plan: Optional[WorkerFaultPlan] = None,
) -> TriageReport:
    """One complete fleet triage cycle; returns the reconciled report."""
    schedule = config.schedule()
    plan = config.delivery_plan()

    produced = produce_fleet(config)
    spool = BundleSpool(spool_dir)
    deliver_fleet(config, produced, spool)

    ingested = ingest(spool, retries=config.retries, seed=config.seed)

    journal = open_journal(checkpoint_dir, "fleet", config.key(), resume)
    try:
        outcome = analyze_bundles(
            ingested.accepted,
            jobs=config.jobs,
            executor=config.executor,
            backlog_budget=config.backlog_budget,
            supervisor=supervisor or SupervisorConfig(
                retries=config.retries, backoff_base=0.0, seed=config.seed,
            ),
            fault_plan=worker_fault_plan,
            journal=journal,
            detect_shards=config.detect_shards,
            confirm=config.confirm,
            confirm_retries=config.confirm_retries,
            confirm_seed=config.seed,
        )
    finally:
        if journal is not None:
            journal.close()

    report = TriageReport(
        config=config.to_dict(),
        schedule=schedule.to_dict(),
        delivery=plan.to_dict(),
    )
    report.produced = len(produced)
    stats = ingested.stats
    report.deliveries = stats.deliveries
    report.accepted = stats.accepted
    report.deduped = stats.deduped
    report.unreadable_copies = stats.unreadable_copies
    report.accepted_bundles = len(ingested.accepted)
    report.salvaged = stats.salvaged
    report.quarantined = stats.quarantined
    report.parse_retries = stats.parse_retries
    report.clock_reconciled = stats.clock_reconciled
    report.analyzed = len(outcome.findings)
    report.shed = len(outcome.shed)
    report.analysis_quarantined = len(outcome.quarantined)
    report.quarantine_records = [q.to_dict() for q in ingested.quarantined]
    report.shed_records = [s.to_dict() for s in outcome.shed]
    report.ingest_ledger = ingested.ledger
    report.worker_ledger = outcome.ledger

    with RaceDatabase(db_path) as db:
        report.db_dropped_tail_bytes = db.dropped_tail_bytes
        for key in suppress:
            db.suppress(key)
        known = frozenset(db.entries)
        # Deterministic fold order — the same however transport shuffled
        # deliveries, so the database bytes depend only on the findings.
        for finding in sorted(outcome.findings,
                              key=lambda f: (f["epoch"], f["node"],
                                             f["bundle_id"])):
            applied = db.apply_bundle(
                finding["bundle_id"],
                races=finding["races"],
                node=finding["node"],
                epoch=finding["epoch"],
                probability=finding["probability"],
            )
            if applied:
                report.db_applied += 1
            else:
                report.db_redundant += 1
        new, recurring = db.split_new(known)
        report.db_signatures = len(db.entries)
        report.db_new = new
        report.db_recurring = recurring
        report.db_suppressed = len(db.suppressed)
        report.db_suppressed_hits = db.suppressed_hits
        report.db_double_counted = db.double_counted
        ranked = db.ranked()
        report.top_races = [e.to_dict() for e in ranked[:10]]
        if config.confirm:
            report.confirm_enabled = True
            tiers = [e.verdict for e in ranked]
            report.db_confirmed = tiers.count("confirmed")
            report.db_flaky = tiers.count("flaky")
            report.db_unconfirmed = tiers.count("unconfirmed")
            report.db_inapplicable = tiers.count("inapplicable")
            # The conservation law: a confirming run leaves no ranked
            # race without a verdict tier.
            report.verdicts_conserved = all(v is not None for v in tiers)

    # Findings are committed: ack everything except quarantined payloads
    # (already moved aside).  A crash before this point redelivers; the
    # idempotent database makes redelivery free.
    for entry in spool.scan():
        spool.ack(entry)

    report.detections = sum(1 for f in outcome.findings if f["detected"])
    report.node_epochs = config.nodes * config.epochs
    if produced:
        report.mean_overhead = (sum(p.overhead for p in produced)
                                / len(produced))
        # The budget governs the *sampling-driven* component; PT/sync
        # are fixed costs identical under every policy.
        mean_pebs = (sum(p.pebs_overhead for p in produced)
                     / len(produced))
        report.budget_utilization = mean_pebs / schedule.fleet_budget
    return report


def run_fleet_duel(
    config: FleetConfig,
    workdir: Path | str,
    suppress: Sequence[str] = (),
) -> dict:
    """Run the same fleet under ``rotate`` and ``uniform`` at the same
    fleet-wide budget and compare detection probability (the PACER
    claim the tests pin down)."""
    workdir = Path(workdir)
    reports = {}
    for policy in ("rotate", "uniform"):
        cfg = replace(config, policy=policy)
        reports[policy] = run_fleet(
            cfg,
            db_path=workdir / f"{policy}.racedb",
            spool_dir=workdir / f"spool-{policy}",
            suppress=suppress,
        )
    rotate, uniform = reports["rotate"], reports["uniform"]
    return {
        "rotate": rotate.to_dict(),
        "uniform": uniform.to_dict(),
        "rotate_detection": rotate.detection_probability,
        "uniform_detection": uniform.detection_probability,
        "rotate_wins": (rotate.detection_probability
                        > uniform.detection_probability),
    }
