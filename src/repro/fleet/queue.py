"""The durable bundle spool: a directory-backed at-least-once queue.

Producers (node upload agents) drop wire payloads into a spool
directory; the triage service drains it.  The contract is deliberately
weak — it is what cheap fleet transport actually provides:

* **at-least-once**: a payload stays spooled until the service acks it
  *after* committing its findings to the race database, so a crash
  between the two redelivers the bundle (the database's idempotent
  apply makes that harmless);
* **no atomicity**: writes are plain ``write_bytes`` — a producer dying
  mid-upload leaves a torn file that the ingester must reject and
  recover from a later redelivery;
* **no ordering**: consumers see spool sequence numbers, which chaos
  shuffles freely relative to production order.

Wire format: one JSON metadata line (prefixed ``PRFB1``), then the raw
PRTR trace blob::

    PRFB1 {"bundle_id": ..., "node": ..., ...}\\n<trace bytes>

The envelope repeats the bundle id so the ingester can dedupe and
account for a bundle even when the trace payload behind it is damaged.
Quarantined payloads move to ``<spool>/quarantine/`` for the operator.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from ..errors import TraceError

#: Envelope sentinel: PRoRace Fleet Bundle, wire version 1.
ENVELOPE_SENTINEL = b"PRFB1"
_NAME_RE = re.compile(r"^(\d{6})-([0-9a-f]+)\.bndl$")


def encode_envelope(meta: dict) -> bytes:
    """Serialize the metadata line (canonical key order, so identical
    metadata always produces identical wire bytes)."""
    line = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    return ENVELOPE_SENTINEL + b" " + line.encode() + b"\n"


def decode_envelope(payload: bytes) -> Tuple[dict, bytes]:
    """Split a wire payload into ``(meta, trace_blob)``.

    Raises :class:`TraceError` for anything that is not a complete,
    well-formed envelope — a torn upload, a poisoned payload, or a
    foreign file that strayed into the spool.
    """
    newline = payload.find(b"\n")
    if newline < 0:
        raise TraceError("fleet bundle: no envelope line (torn upload?)")
    line = payload[:newline]
    if not line.startswith(ENVELOPE_SENTINEL + b" "):
        raise TraceError("fleet bundle: bad envelope sentinel")
    try:
        meta = json.loads(line[len(ENVELOPE_SENTINEL) + 1:])
    except ValueError as error:
        raise TraceError(f"fleet bundle: unreadable envelope: {error}")
    if not isinstance(meta, dict) or "bundle_id" not in meta:
        raise TraceError("fleet bundle: envelope missing bundle_id")
    return meta, payload[newline + 1:]


@dataclass(frozen=True)
class SpoolEntry:
    """One delivered payload sitting in the spool."""

    seq: int
    bundle_id: str
    path: Path

    def read(self) -> bytes:
        return self.path.read_bytes()


class BundleSpool:
    """Directory-backed spool with explicit ack and quarantine."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir = self.directory / "quarantine"

    def put(self, seq: int, bundle_id: str, payload: bytes) -> Path:
        """Spool one wire payload (non-atomic, like the transport)."""
        path = self.directory / f"{seq:06d}-{bundle_id}.bndl"
        path.write_bytes(payload)
        return path

    def scan(self) -> List[SpoolEntry]:
        """Pending deliveries in spool-sequence order."""
        entries = []
        for path in self.directory.iterdir():
            match = _NAME_RE.match(path.name)
            if match is None:
                continue
            entries.append(SpoolEntry(seq=int(match.group(1)),
                                      bundle_id=match.group(2),
                                      path=path))
        return sorted(entries, key=lambda e: e.seq)

    def ack(self, entry: SpoolEntry) -> None:
        """Delete a payload whose findings are committed downstream."""
        entry.path.unlink(missing_ok=True)

    def quarantine(self, entry: SpoolEntry) -> Path:
        """Move a poison payload aside for operator inspection."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / entry.path.name
        if entry.path.exists():
            entry.path.replace(target)
        return target

    def quarantined(self) -> Dict[str, List[Path]]:
        """Quarantined payload paths grouped by bundle id."""
        grouped: Dict[str, List[Path]] = {}
        if not self.quarantine_dir.is_dir():
            return grouped
        for path in sorted(self.quarantine_dir.iterdir()):
            match = _NAME_RE.match(path.name)
            if match is not None:
                grouped.setdefault(match.group(2), []).append(path)
        return grouped
