"""PACER-style fleet budget scheduling.

A fleet owner grants tracing a *fleet-wide* overhead budget ("at most
0.5% of fleet cycles"), not a per-node one.  There are two honest ways
to spend it:

``uniform``
    Every node samples all the time, each at the fleet budget.  Simple,
    but the per-node sampling period is so sparse that the probability
    of catching both halves of a race in one epoch collapses — the
    detection-vs-period curve is sigmoid (ProRace §7.2), and uniform
    thin sampling sits on its floor.

``rotate``
    Concentrate the budget: each epoch a small rotating subset of nodes
    traces *deeply* (dense sampling, well past the sigmoid's knee) while
    the rest idle at a near-zero background period.  The fleet-wide
    average overhead is the same, but each deep node-epoch has a real
    chance of detection — PACER's insight that detection probability
    should scale with the budget *linearly* instead of vanishing.

The scheduler is deliberately deterministic (round-robin rotation, no
RNG): reproducibility is what makes the chaos duel in the tests able to
demand bit-identical race databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from ..errors import UsageError

POLICIES = ("rotate", "uniform")


@dataclass(frozen=True)
class Assignment:
    """What one node should do for one epoch."""

    #: Deep-tracing slot this epoch (rotate policy only).
    deep: bool
    #: Sampling period handed to the tracer / governor.
    period: int
    #: Per-node overhead budget for the governor (0 disables governing —
    #: the node idles at a fixed background period).
    budget: float

    @property
    def governed(self) -> bool:
        return self.budget > 0.0


@dataclass(frozen=True)
class FleetSchedule:
    """Deterministic epoch-by-epoch tracing assignments for a fleet."""

    policy: str = "rotate"
    nodes: int = 4
    epochs: int = 3
    #: Fleet-wide overhead budget (mean fraction of cycles across nodes).
    fleet_budget: float = 0.005
    #: Per-node budget while holding a deep slot.
    deep_budget: float = 0.02
    #: Sampling period for deep slots (dense — past the sigmoid knee).
    deep_period: int = 160
    #: Background period for idle nodes (near-zero overhead).
    idle_period: int = 50_000

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise UsageError(
                f"unknown fleet policy {self.policy!r} "
                f"(available: {', '.join(POLICIES)})"
            )
        if self.nodes < 1 or self.epochs < 1:
            raise UsageError("fleet needs at least one node and one epoch")
        if not 0.0 < self.fleet_budget <= self.deep_budget:
            raise UsageError(
                "fleet budget must be positive and no larger than the "
                "deep per-node budget"
            )
        if self.deep_period < 1 or self.idle_period < 1:
            raise UsageError("sampling periods must be >= 1")

    @property
    def deep_slots(self) -> int:
        """Deep-tracing slots per epoch: the largest count whose summed
        per-node budget stays within the fleet-wide budget (always at
        least one — otherwise the budget buys nothing)."""
        return max(1, int(self.nodes * self.fleet_budget / self.deep_budget))

    @property
    def uniform_period(self) -> int:
        """The period every node gets under ``uniform``: the deep period
        stretched by the budget ratio, so both policies spend the same
        fleet-wide cycle budget."""
        ratio = self.deep_budget / self.fleet_budget
        return max(1, round(self.deep_period * ratio))

    def deep_nodes(self, epoch: int) -> FrozenSet[int]:
        """The rotating deep set for *epoch* (round-robin so every node
        gets deep slots at the same long-run rate)."""
        if self.policy != "rotate":
            return frozenset()
        k = self.deep_slots
        return frozenset((epoch * k + j) % self.nodes for j in range(k))

    def assignment(self, node: int, epoch: int) -> Assignment:
        if not (0 <= node < self.nodes):
            raise UsageError(f"node {node} outside fleet of {self.nodes}")
        if self.policy == "uniform":
            return Assignment(deep=False, period=self.uniform_period,
                              budget=self.fleet_budget)
        if node in self.deep_nodes(epoch):
            return Assignment(deep=True, period=self.deep_period,
                              budget=self.deep_budget)
        return Assignment(deep=False, period=self.idle_period, budget=0.0)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "nodes": self.nodes,
            "epochs": self.epochs,
            "fleet_budget": self.fleet_budget,
            "deep_budget": self.deep_budget,
            "deep_period": self.deep_period,
            "idle_period": self.idle_period,
            "deep_slots": self.deep_slots,
            "uniform_period": self.uniform_period,
        }
