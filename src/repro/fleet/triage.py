"""The triage report: one reconciled account of a fleet run.

Robust pipelines fail quietly in the gap between stages — a bundle
quarantined here, one shed there, and the summary still says "done".
The triage report closes that gap with an explicit conservation law
checked at both granularities:

copies (ingestion)
    ``deliveries == accepted + deduped + unreadable_copies``
bundles (end to end)
    ``produced == analyzed + salvaged_lost_to(shed/analysis-quarantine)
    + quarantined + shed + analysis_quarantined`` — concretely,
    ``produced == accepted_bundles + quarantined`` and
    ``accepted_bundles == analyzed + shed + analysis_quarantined``.

``reconciles`` is the conjunction; a triage run that cannot balance its
own books refuses to call itself clean (the CLI still exits lossy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..supervise import RunLedger


@dataclass
class TriageReport:
    """Everything one ``repro fleet`` run learned, reconciled."""

    config: dict
    schedule: dict
    delivery: dict

    # Bundle/copy accounting.
    produced: int = 0
    deliveries: int = 0
    accepted: int = 0          # strict-parse acceptances (copies)
    deduped: int = 0
    unreadable_copies: int = 0
    accepted_bundles: int = 0  # distinct bundles entering analysis queue
    salvaged: int = 0
    quarantined: int = 0
    analyzed: int = 0
    shed: int = 0
    analysis_quarantined: int = 0
    parse_retries: int = 0
    #: Bundles whose per-node TSC epoch offset ingest removed before
    #: the cross-node fold (docs/robustness.md, "Adversarial time").
    clock_reconciled: int = 0

    # Race database deltas.
    db_signatures: int = 0
    db_new: List[str] = field(default_factory=list)
    db_recurring: List[str] = field(default_factory=list)
    db_suppressed: int = 0
    db_suppressed_hits: int = 0
    db_double_counted: int = 0
    db_applied: int = 0
    db_redundant: int = 0      # redelivered bundles the DB refused
    db_dropped_tail_bytes: int = 0
    top_races: List[dict] = field(default_factory=list)

    # Confirmation verdicts (populated only when the run confirms).
    confirm_enabled: bool = False
    db_confirmed: int = 0
    db_flaky: int = 0
    db_unconfirmed: int = 0
    db_inapplicable: int = 0
    #: Conservation law of a confirming run: every ranked race carries
    #: exactly one verdict tier (no race reaches triage unverdicted).
    verdicts_conserved: bool = True

    # Scheduler outcome.
    detections: int = 0
    node_epochs: int = 0
    mean_overhead: float = 0.0
    budget_utilization: float = 0.0

    # Detail lists for the operator.
    quarantine_records: List[dict] = field(default_factory=list)
    shed_records: List[dict] = field(default_factory=list)

    ingest_ledger: Optional[RunLedger] = None
    worker_ledger: Optional[RunLedger] = None

    @property
    def detection_probability(self) -> float:
        """Fraction of node-epochs whose bundle detected its race."""
        return self.detections / self.node_epochs if self.node_epochs else 0.0

    @property
    def copies_reconcile(self) -> bool:
        return (self.deliveries ==
                self.accepted + self.deduped + self.unreadable_copies)

    @property
    def bundles_reconcile(self) -> bool:
        return (self.produced == self.accepted_bundles + self.quarantined
                and self.accepted_bundles ==
                self.analyzed + self.shed + self.analysis_quarantined)

    @property
    def reconciles(self) -> bool:
        return self.copies_reconcile and self.bundles_reconcile

    @property
    def lossy(self) -> bool:
        """Evidence failed to reach the database (or the books do not
        balance — treated as loss, never as success)."""
        return bool(self.quarantined or self.shed
                    or self.analysis_quarantined or not self.reconciles)

    @property
    def races_found(self) -> bool:
        return bool(self.db_new or self.db_recurring)

    @property
    def any_confirmed(self) -> bool:
        return bool(self.db_confirmed or self.db_flaky)

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "schedule": self.schedule,
            "delivery": self.delivery,
            "bundles": {
                "produced": self.produced,
                "deliveries": self.deliveries,
                "accepted_copies": self.accepted,
                "deduped": self.deduped,
                "unreadable_copies": self.unreadable_copies,
                "accepted": self.accepted_bundles,
                "salvaged": self.salvaged,
                "quarantined": self.quarantined,
                "analyzed": self.analyzed,
                "shed": self.shed,
                "analysis_quarantined": self.analysis_quarantined,
                "parse_retries": self.parse_retries,
                # Only recorded when some node's epoch was off, so
                # skew-free triage JSON stays byte-identical.
                **({"clock_reconciled": self.clock_reconciled}
                   if self.clock_reconciled else {}),
                "reconciles": self.reconciles,
            },
            "db": {
                "signatures": self.db_signatures,
                "new": self.db_new,
                "recurring": self.db_recurring,
                "suppressed": self.db_suppressed,
                "suppressed_hits": self.db_suppressed_hits,
                "double_counted": self.db_double_counted,
                "applied": self.db_applied,
                "redundant": self.db_redundant,
                "dropped_tail_bytes": self.db_dropped_tail_bytes,
                "top": self.top_races,
            },
            "confirm": {
                "enabled": self.confirm_enabled,
                "confirmed": self.db_confirmed,
                "flaky": self.db_flaky,
                "unconfirmed": self.db_unconfirmed,
                "inapplicable": self.db_inapplicable,
                "conserved": self.verdicts_conserved,
            },
            "scheduler": {
                "policy": self.schedule.get("policy"),
                "detections": self.detections,
                "node_epochs": self.node_epochs,
                "detection_probability": self.detection_probability,
                "mean_overhead": self.mean_overhead,
                "budget_utilization": self.budget_utilization,
            },
            "quarantine": self.quarantine_records,
            "shed_bundles": self.shed_records,
            "ingest_ledger": (self.ingest_ledger.to_dict()
                              if self.ingest_ledger else None),
            "worker_ledger": (self.worker_ledger.to_dict()
                              if self.worker_ledger else None),
            "lossy": self.lossy,
            "races_found": self.races_found,
        }
