"""Sharded analysis workers over ingested bundles.

Accepted bundles are partitioned across the supervised parallel runtime
(:func:`repro.supervise.supervised_map`): per-item retries and
timeouts, crash isolation, and checkpoint/resume through a
:class:`~repro.tracing.serialize.ResultJournal` — a triage service that
dies mid-backlog resumes from the journal instead of re-analyzing the
fleet's morning.

Before any analysis runs, **backpressure** is applied: when the backlog
exceeds the configured budget, the lowest-priority bundles are shed
first — priority is sampling density (deep-tracing epochs have the best
detection odds per cycle spent analyzing), densest first.  Every shed
bundle is accounted in the triage report; nothing disappears silently.

Analysis itself recomputes findings from the trace alone (re-parse,
offline pipeline, signatures), so a worker is a pure function of its
input item — exactly what retry-after-crash and journal resume require.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.pipeline import OfflinePipeline
from ..confirm import ConfirmConfig, confirm_races
from ..errors import QuarantinedWork
from ..faults import WorkerFaultPlan
from ..supervise import RunLedger, SupervisorConfig, supervised_map
from ..tracing import read_trace_bytes
from ..workloads import RACE_BUGS
from .ingest import AcceptedBundle
from .nodes import build_program, run_seed_for
from .racedb import signature_for


def shard_of(bundle_id: str, shards: int) -> int:
    """Stable shard assignment from the bundle id."""
    return int(bundle_id[:8], 16) % max(1, shards)


def _analyze_one(item: dict) -> dict:
    """Analyze one bundle (module-level: ships to worker processes).

    Returns a plain-dict finding so journals, JSON reports, and the
    race database all speak the same shape.
    """
    program = build_program(item["workload"], item["iterations"],
                            item["threads"])
    bundle = read_trace_bytes(item["trace"], program=program,
                              allow_partial=item["salvaged"])
    # Workers already live in the fleet's process pool; shard detection
    # over threads to avoid nesting pools (bit-identical either way).
    pipeline = OfflinePipeline(
        program, detect_shards=item.get("detect_shards", 1),
        detect_executor="thread",
    )
    result = pipeline.analyze(bundle)
    bug = RACE_BUGS.get(item["workload"])
    detected = (bug.detected(program, result) if bug is not None
                else bool(result.races))
    confirmation = None
    if item.get("confirm") and result.races:
        # Replays run inline (the worker already lives in the fleet's
        # process pool); free-running stretches reuse the cell's traced
        # machine seed so they take the paths the trace took.
        events, _replay = pipeline.events_for(bundle)
        confirmation = confirm_races(
            program, result.races, events,
            config=ConfirmConfig(
                retries=int(item.get("confirm_retries", 5)),
                seed=int(item.get("confirm_seed", 0)),
                machine_seed=run_seed_for(
                    int(item.get("confirm_seed", 0)),
                    item["node"], item["epoch"],
                ),
            ),
        )
    races = []
    for race in result.races:
        signature = signature_for(program, item["workload"], race)
        row = {**signature.to_dict(),
               "key": signature.key,
               "desc": race.describe()}
        if confirmation is not None:
            verdict = confirmation.verdict_for(race.address, race.pair)
            if verdict is not None:
                row["verdict"] = verdict.verdict
                row["replays"] = (verdict.fired_on
                                  if verdict.fired_on is not None
                                  else verdict.attempts)
        races.append(row)
    samples = len(bundle.samples)
    memory_ops = bundle.run.memory_ops
    probability = min(1.0, samples / memory_ops) if memory_ops else 0.0
    finding = {
        "bundle_id": item["bundle_id"],
        "node": item["node"],
        "epoch": item["epoch"],
        "workload": item["workload"],
        "period": item["period"],
        "deep": item["deep"],
        "salvaged": item["salvaged"],
        "shard": item["shard"],
        "samples": samples,
        "memory_ops": memory_ops,
        "probability": probability,
        "detected": detected,
        "races": races,
    }
    # Additive key: non-confirming runs keep their historical shape, so
    # existing checkpoint journals stay bit-identical.
    if confirmation is not None:
        finding["confirmation"] = confirmation.to_dict()
    return finding


@dataclass
class ShedBundle:
    """One bundle dropped under backpressure (fully accounted)."""

    bundle_id: str
    node: int
    epoch: int
    period: int
    deep: bool

    def to_dict(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "node": self.node,
            "epoch": self.epoch,
            "period": self.period,
            "deep": self.deep,
            "reason": "backpressure",
        }


def apply_backpressure(
    accepted: List[AcceptedBundle],
    backlog_budget: Optional[int],
) -> Tuple[List[AcceptedBundle], List[ShedBundle]]:
    """Shed the lowest-priority bundles when the backlog exceeds the
    budget.  Priority = sampling density: deep epochs first, then
    smaller periods; ties broken by coordinates for determinism."""
    if backlog_budget is None or len(accepted) <= backlog_budget:
        return list(accepted), []
    by_priority = sorted(
        accepted,
        key=lambda a: (not a.deep, a.period, a.epoch, a.node, a.bundle_id),
    )
    keep_ids = {a.bundle_id for a in by_priority[:backlog_budget]}
    kept = [a for a in accepted if a.bundle_id in keep_ids]
    shed = [ShedBundle(bundle_id=a.bundle_id, node=a.node, epoch=a.epoch,
                       period=a.period, deep=a.deep)
            for a in accepted if a.bundle_id not in keep_ids]
    return kept, shed


@dataclass
class AnalysisOutcome:
    findings: List[dict]
    shed: List[ShedBundle]
    #: Bundles whose *analysis* (not parse) exhausted the retry budget.
    quarantined: List[str]
    ledger: Optional[RunLedger] = None


def analyze_bundles(
    accepted: List[AcceptedBundle],
    jobs: int = 1,
    executor: str = "process",
    shards: Optional[int] = None,
    backlog_budget: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
    fault_plan: Optional[WorkerFaultPlan] = None,
    journal=None,
    detect_shards: int = 1,
    confirm: bool = False,
    confirm_retries: int = 5,
    confirm_seed: int = 0,
) -> AnalysisOutcome:
    """Run the sharded analysis stage over the ingested backlog.

    *detect_shards* > 1 additionally shards the FastTrack pass inside
    each worker by variable address (see
    :mod:`repro.detector.sharded`) — orthogonal to the bundle-level
    fan-out across workers.

    *confirm* additionally replays every reported race under schedule
    control (:mod:`repro.confirm`) inside the worker, so each race row
    in a finding carries a ``verdict`` tier and its replays-to-confirm.
    *confirm_seed* must be the fleet seed: the replay machine seed of a
    cell is re-derived from it exactly as tracing derived it."""
    kept, shed = apply_backpressure(accepted, backlog_budget)
    kept = sorted(kept, key=lambda a: (a.epoch, a.node, a.bundle_id))
    shard_count = shards if shards is not None else max(1, jobs)
    items = []
    for a in kept:
        item = {
            "bundle_id": a.bundle_id,
            "node": a.node,
            "epoch": a.epoch,
            "workload": a.meta.get("workload", ""),
            "iterations": int(a.meta.get("iterations", 1)),
            "threads": int(a.meta.get("threads", 1)),
            "period": a.period,
            "deep": a.deep,
            "salvaged": a.salvaged,
            "shard": shard_of(a.bundle_id, shard_count),
            "trace": a.trace,
            "detect_shards": detect_shards,
        }
        if confirm:
            # Only confirming runs grow these keys, so non-confirming
            # items (and their journal identities) stay unchanged.
            item.update(confirm=True, confirm_retries=confirm_retries,
                        confirm_seed=confirm_seed)
        items.append(item)
    config = supervisor or SupervisorConfig(retries=1, backoff_base=0.0)
    try:
        results, ledger = supervised_map(
            _analyze_one, items, jobs=jobs, executor=executor,
            config=config, fault_plan=fault_plan, journal=journal,
        )
    except QuarantinedWork as poison:
        results = poison.partial
        ledger = poison.ledger
    findings = [r for r in results if r is not None]
    quarantined = [items[i]["bundle_id"]
                   for i, r in enumerate(results) if r is None]
    return AnalysisOutcome(findings=findings, shed=shed,
                           quarantined=quarantined, ledger=ledger)
