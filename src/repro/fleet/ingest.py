"""Crash-tolerant ingestion: dedupe, salvage, quarantine.

The spool delivers *copies* — duplicates, torn prefixes, corrupted
blobs, out of order — and ingestion's job is to reduce them to at most
one accepted payload per bundle id:

1. Drain the spool in sequence order.  The first copy that passes a
   **strict** parse (envelope + full-CRC trace load) is accepted;
   every later copy of the same id is a dedupe, whatever its state.
2. Ids with no strict copy go through **supervised salvage**: under
   :func:`repro.supervise.supervised_map` with a bounded retry budget,
   each copy is retried with ``allow_partial`` section salvage.  A
   damaged-on-the-node bundle recovers here (minus its bad section).
3. Ids that exhaust the retry budget are **poison**: their payloads
   move to the spool's quarantine directory and the bundle is reported,
   not silently dropped.

The accounting identity the triage report asserts::

    deliveries == accepted + deduped + unreadable_copies

(every spooled payload is exactly one of: the copy that won strict
acceptance, a redundant copy of an accepted id, or an unreadable copy
that salvage/quarantine dealt with at the *bundle* level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import QuarantinedWork, TraceError
from ..supervise import RunLedger, SupervisorConfig, supervised_map
from ..tracing import read_trace_bytes, trace_to_bytes
from .queue import BundleSpool, SpoolEntry, decode_envelope

#: Earliest-timestamp threshold above which a bundle is declared to
#: carry a per-node epoch offset.  A node's own run starts near TSC
#: zero, so a bundle whose earliest record sits past this floor is off
#: by (approximately) that much; ingest shifts it back so every node's
#: records land on one fleet-wide timeline before the cross-node fold.
CLOCK_OFFSET_FLOOR = 10_000


@dataclass
class AcceptedBundle:
    """One bundle that made it through ingestion."""

    meta: dict
    trace: bytes
    #: True when the payload needed ``allow_partial`` section salvage —
    #: the analysis worker must re-parse it the same way.
    salvaged: bool = False

    @property
    def bundle_id(self) -> str:
        return self.meta["bundle_id"]

    @property
    def node(self) -> int:
        return int(self.meta.get("node", -1))

    @property
    def epoch(self) -> int:
        return int(self.meta.get("epoch", -1))

    @property
    def period(self) -> int:
        return int(self.meta.get("period", 0))

    @property
    def deep(self) -> bool:
        return bool(self.meta.get("deep", False))


@dataclass
class QuarantineRecord:
    """One poison bundle, with where its payloads went."""

    bundle_id: str
    copies: int
    error: str
    paths: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "copies": self.copies,
            "error": self.error,
            "paths": self.paths,
        }


@dataclass
class IngestStats:
    """Copy- and bundle-level ingestion accounting."""

    deliveries: int = 0
    accepted: int = 0
    deduped: int = 0
    unreadable_copies: int = 0
    salvaged: int = 0
    quarantined: int = 0
    parse_retries: int = 0
    #: Bundles whose per-node epoch offset ingest estimated and removed.
    clock_reconciled: int = 0

    @property
    def reconciles(self) -> bool:
        return (self.deliveries ==
                self.accepted + self.deduped + self.unreadable_copies)

    def to_dict(self) -> dict:
        return {
            "deliveries": self.deliveries,
            "accepted": self.accepted,
            "deduped": self.deduped,
            "unreadable_copies": self.unreadable_copies,
            "salvaged": self.salvaged,
            "quarantined": self.quarantined,
            "parse_retries": self.parse_retries,
            "clock_reconciled": self.clock_reconciled,
            "reconciles": self.reconciles,
        }


def _earliest_tsc(bundle) -> int:
    """The earliest timestamp anywhere in *bundle* (0 when empty)."""
    values = [record.tsc for record in bundle.sync_records]
    values += [sample.tsc for sample in bundle.samples]
    values += [record.tsc for record in bundle.alloc_records]
    values += [trace.start_tsc for trace in bundle.pt_traces.values()]
    return min(values) if values else 0


def _normalize_clock(bundle, trace: bytes, stats: IngestStats) -> bytes:
    """Reconcile a per-node epoch offset: a bundle whose earliest
    record sits past :data:`CLOCK_OFFSET_FLOOR` is shifted back onto
    the fleet-wide timeline (earliest record to zero).  The shift is
    uniform, so within-bundle orderings — and the races they imply —
    are untouched; only the node's epoch lie is removed."""
    base = _earliest_tsc(bundle)
    if base <= CLOCK_OFFSET_FLOOR:
        return trace
    from ..clock.faults import shift_bundle_tscs

    stats.clock_reconciled += 1
    return trace_to_bytes(shift_bundle_tscs(bundle, -int(base)))


def _salvage_copies(copies: List[bytes]) -> Tuple[dict, bytes]:
    """Salvage one bundle from its unreadable copies: first copy whose
    envelope parses and whose trace loads under ``allow_partial`` wins.
    Module-level so the supervisor can ship it to worker processes."""
    last_error: Optional[Exception] = None
    for payload in copies:
        try:
            meta, trace = decode_envelope(payload)
            read_trace_bytes(trace, allow_partial=True)
            return meta, trace
        except TraceError as error:
            last_error = error
    raise TraceError(
        f"no copy salvageable ({len(copies)} tried): {last_error}"
    )


@dataclass
class IngestResult:
    accepted: List[AcceptedBundle]
    quarantined: List[QuarantineRecord]
    stats: IngestStats
    ledger: Optional[RunLedger] = None


def ingest(spool: BundleSpool, retries: int = 1,
           seed: int = 0) -> IngestResult:
    """Drain the spool into at most one accepted payload per bundle."""
    stats = IngestStats()
    entries = spool.scan()
    stats.deliveries = len(entries)

    accepted: Dict[str, AcceptedBundle] = {}
    failed: Dict[str, List[bytes]] = {}
    failed_entries: Dict[str, List[SpoolEntry]] = {}

    for entry in entries:
        payload = entry.read()
        if entry.bundle_id in accepted:
            stats.deduped += 1
            continue
        try:
            meta, trace = decode_envelope(payload)
            if meta["bundle_id"] != entry.bundle_id:
                raise TraceError(
                    f"fleet bundle: envelope id {meta['bundle_id']!r} "
                    f"does not match spool name {entry.bundle_id!r}"
                )
            # Strict: every section CRC checked.
            parsed = read_trace_bytes(trace)
        except TraceError:
            stats.unreadable_copies += 1
            failed.setdefault(entry.bundle_id, []).append(payload)
            failed_entries.setdefault(entry.bundle_id, []).append(entry)
            continue
        trace = _normalize_clock(parsed, trace, stats)
        accepted[entry.bundle_id] = AcceptedBundle(meta=meta, trace=trace)
        stats.accepted += 1

    # Unreadable copies of ids that a later intact copy rescued are
    # recovered-by-redelivery; only ids with *no* strict copy anywhere
    # go to salvage.
    pending = [(bid, copies) for bid, copies in failed.items()
               if bid not in accepted]

    quarantined: List[QuarantineRecord] = []
    ledger: Optional[RunLedger] = None
    if pending:
        config = SupervisorConfig(retries=retries, backoff_base=0.0,
                                  seed=seed)
        items = [copies for _, copies in pending]
        try:
            results, ledger = supervised_map(
                _salvage_copies, items, jobs=1, executor="serial",
                config=config,
            )
        except QuarantinedWork as poison:
            results = poison.partial
            ledger = poison.ledger
        stats.parse_retries = ledger.retries if ledger else 0
        for (bid, copies), result in zip(pending, results):
            if result is None:
                paths = [str(spool.quarantine(entry))
                         for entry in failed_entries[bid]]
                quarantined.append(QuarantineRecord(
                    bundle_id=bid,
                    copies=len(copies),
                    error="unsalvageable after retry budget",
                    paths=paths,
                ))
                stats.quarantined += 1
                continue
            meta, trace = result
            trace = _normalize_clock(
                read_trace_bytes(trace, allow_partial=True), trace, stats)
            accepted[bid] = AcceptedBundle(meta=meta, trace=trace,
                                           salvaged=True)
            stats.salvaged += 1

    ordered = sorted(accepted.values(),
                     key=lambda a: (a.epoch, a.node, a.bundle_id))
    return IngestResult(accepted=ordered, quarantined=quarantined,
                        stats=stats, ledger=ledger)
