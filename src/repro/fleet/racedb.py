"""The fleet race database: deduplicated, ranked, suppressible findings.

A production triage service (§3's analysis machines, PACER/RaceMob's
centralized aggregation) sees the *same* race thousands of times from
thousands of nodes.  What an operator needs is not a stream of race
reports but a **database**: one row per distinct race, how often the
fleet has seen it, how trustworthy each sighting was, and a way to mute
the rows already filed as bugs (or blessed as benign).

Identity is the **race signature**: the racing instruction pair, the
variable class (data symbol + heap/static class), and the stack context
(the enclosing label of each racing instruction).  Two sightings with
the same signature are the same race whatever node, epoch, or allocation
generation produced them — addresses and TSCs never enter the key, so
recurrence counting survives heap layout differences between runs.

Persistence is a JSON-lines append-only log with an in-memory index,
engineered for the ingestion layer's at-least-once delivery:

* every applied bundle's id is logged and indexed, so re-applying a
  redelivered bundle is a no-op — reprocessing **never double-counts**
  (:meth:`RaceDatabase.double_counted` is the verifiable invariant);
* appends are fsynced before the in-memory index is updated, and the
  log replays idempotently on open, so a crash between "committed to
  the DB" and "acked to the spool" costs a redelivery, never a lost or
  doubled finding;
* a torn final line (writer died mid-append) is dropped and accounted,
  exactly like the :class:`~repro.tracing.serialize.ResultJournal`.

Ranking is recurrence × detection probability: a race seen in many
independently-sampled bundles, each of which had a real chance of
seeing it, outranks both a one-off sighting and a race only ever seen
by saturation tracing.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..confirm import VERDICT_TIERS
from ..detector.events import RaceReport
from ..errors import TraceError
from ..isa.program import Program

#: Verdict tier -> rank (0 strongest).  Entries with no verdict rank
#: below every tier, so an unconfirmed-but-replayed race still outranks
#: a never-replayed one in the verdict-aware ordering.
_VERDICT_RANK: Dict[str, int] = {v: i for i, v in enumerate(VERDICT_TIERS)}


def variable_class(program: Program, race: RaceReport) -> str:
    """The racing variable's *class*: its data symbol (plus offset) and
    whether it lives on the heap — stable across runs, unlike raw
    addresses or allocation generations."""
    address = race.address
    best: Optional[str] = None
    best_base = -1
    for name, base in program.symbols.items():
        if base <= address and base > best_base:
            best, best_base = name, base
    if best is None:
        where = "anon"
    else:
        offset = address - best_base
        where = best if offset == 0 else f"{best}+{offset:#x}"
    return f"heap:{where}" if race.var[1] else where


def context_label(program: Program, ip: Optional[int]) -> str:
    """The nearest label at or before *ip* — the "stack context" of a
    racing instruction (this ISA has labels where a binary has function
    symbols)."""
    if ip is None or ip < 0 or ip >= len(program):
        return "?"
    best: Optional[str] = None
    best_addr = -1
    for label, addr in program.labels.items():
        if addr <= ip and addr > best_addr:
            best, best_addr = label, addr
    return best if best is not None else "?"


@dataclass(frozen=True)
class RaceSignature:
    """The fleet-wide identity of one data race."""

    workload: str
    variable: str
    context: Tuple[str, str]
    pair: Tuple[int, int]

    @property
    def key(self) -> str:
        return (f"{self.workload}!{self.variable}"
                f"!{self.context[0]}+{self.context[1]}"
                f"!{self.pair[0]}-{self.pair[1]}")

    @property
    def digest(self) -> str:
        """Short stable id for dashboards / suppression files."""
        return hashlib.blake2b(self.key.encode(),
                               digest_size=6).hexdigest()

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "variable": self.variable,
            "context": list(self.context),
            "pair": list(self.pair),
        }


def signature_for(program: Program, workload: str,
                  race: RaceReport) -> RaceSignature:
    """The :class:`RaceSignature` of one race report."""
    first_ctx = context_label(program, race.first_ip)
    second_ctx = context_label(program, race.second.ip)
    return RaceSignature(
        workload=workload,
        variable=variable_class(program, race),
        context=tuple(sorted((first_ctx, second_ctx))),
        pair=race.pair,
    )


@dataclass
class RaceEntry:
    """One distinct race as the database knows it."""

    key: str
    signature: dict
    description: str
    #: Sightings — exactly one per distinct applied bundle.
    count: int = 0
    #: Distinct bundle ids that observed this race, in apply order.
    bundle_ids: List[str] = field(default_factory=list)
    #: Distinct nodes that observed it.
    nodes: List[int] = field(default_factory=list)
    #: Sum of per-bundle detection probabilities (sampling densities).
    probability_sum: float = 0.0
    #: Strongest confirmation tier any sighting earned (None until a
    #: confirming run reports one).
    verdict: Optional[str] = None
    #: Fewest replays any sighting needed to reach that tier
    #: (replays-to-confirm for fired races, replays spent otherwise).
    replays: Optional[int] = None

    @property
    def mean_probability(self) -> float:
        return self.probability_sum / self.count if self.count else 0.0

    @property
    def score(self) -> float:
        """Recurrence × detection probability."""
        return self.count * self.mean_probability

    @property
    def verdict_rank(self) -> int:
        """Ordering rank of the verdict tier; uniform (weakest) when no
        sighting has been replayed, so verdict-free databases keep their
        historical pure-score order."""
        if self.verdict is None:
            return len(VERDICT_TIERS)
        return _VERDICT_RANK.get(self.verdict, len(VERDICT_TIERS))

    def note_verdict(self, verdict: Optional[str],
                     replays: Optional[int] = None) -> None:
        """Fold one sighting's confirmation outcome in: the entry keeps
        the strongest tier and the fewest replays seen fleet-wide."""
        if verdict is None or verdict not in _VERDICT_RANK:
            return
        if (self.verdict is None
                or _VERDICT_RANK[verdict] < _VERDICT_RANK[self.verdict]):
            self.verdict = verdict
        if replays is not None:
            self.replays = (int(replays) if self.replays is None
                            else min(self.replays, int(replays)))

    def to_dict(self) -> dict:
        row = {
            "key": self.key,
            "signature": self.signature,
            "description": self.description,
            "count": self.count,
            "nodes": sorted(self.nodes),
            "bundles": len(self.bundle_ids),
            "mean_probability": self.mean_probability,
            "score": self.score,
        }
        # Additive: rows only carry verdict keys once a confirming run
        # has replayed the race, so verdict-free output is unchanged.
        if self.verdict is not None:
            row["verdict"] = self.verdict
            row["replays"] = self.replays
        return row


class RaceDatabase:
    """Persistent JSON-lines race store with an in-memory index.

    Log records (one JSON object per line)::

        {"op": "bundle", "bundle": id, "node": n, "epoch": e,
         "p": detection_probability, "races": [{sig..., "desc": ...}]}
        {"op": "suppress", "key": sig_key, "reason": ...}

    Replaying the log rebuilds the index; replaying it *twice* (or
    applying a bundle the log already holds) changes nothing.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: sig key -> entry.
        self.entries: Dict[str, RaceEntry] = {}
        #: bundle ids already folded in.
        self.applied: set = set()
        #: suppressed sig keys -> reason.
        self.suppressed: Dict[str, str] = {}
        #: observations of suppressed signatures (they are counted into
        #: their entries but excluded from ranking).
        self.suppressed_hits = 0
        #: torn-tail bytes dropped while opening (writer crash).
        self.dropped_tail_bytes = 0
        if self.path.exists():
            self._replay()
        self._out = open(self.path, "ab")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        blob = self.path.read_bytes()
        good_end = 0
        offset = 0
        while offset < len(blob):
            newline = blob.find(b"\n", offset)
            if newline < 0:
                break  # torn tail: writer died mid-append
            line = blob[offset:newline]
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn tail with an embedded newline
            self._fold(record)
            offset = newline + 1
            good_end = offset
        if good_end < len(blob):
            self.dropped_tail_bytes = len(blob) - good_end
            with open(self.path, "r+b") as out:
                out.truncate(good_end)

    def _fold(self, record: dict) -> None:
        op = record.get("op")
        if op == "suppress":
            self.suppressed.setdefault(record["key"],
                                       record.get("reason", ""))
            return
        if op != "bundle":
            raise TraceError(
                f"race database {self.path}: unknown record op {op!r}"
            )
        bundle_id = record["bundle"]
        if bundle_id in self.applied:
            return  # idempotent replay / redelivery
        self.applied.add(bundle_id)
        node = record.get("node")
        probability = float(record.get("p", 0.0))
        seen_in_bundle = set()
        for race in record.get("races", ()):
            key = race["key"]
            if key in seen_in_bundle:
                continue  # one sighting per bundle, whatever the report
            seen_in_bundle.add(key)
            entry = self.entries.get(key)
            if entry is None:
                entry = RaceEntry(
                    key=key,
                    signature={k: race[k] for k in
                               ("workload", "variable", "context", "pair")},
                    description=race.get("desc", ""),
                )
                self.entries[key] = entry
            entry.count += 1
            entry.bundle_ids.append(bundle_id)
            if node is not None and node not in entry.nodes:
                entry.nodes.append(node)
            entry.probability_sum += probability
            entry.note_verdict(race.get("verdict"), race.get("replays"))
            if key in self.suppressed:
                self.suppressed_hits += 1

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")).encode() + b"\n"
        self._out.write(line)
        self._out.flush()
        os.fsync(self._out.fileno())

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def apply_bundle(self, bundle_id: str, races: List[dict],
                     node: Optional[int] = None,
                     epoch: Optional[int] = None,
                     probability: float = 0.0) -> bool:
        """Fold one analyzed bundle's race observations in.

        Idempotent by bundle id: a redelivered/reprocessed bundle
        returns False and changes nothing — the log is only appended
        for genuinely new bundles, so the on-disk database is
        bit-identical however many times a bundle arrives.
        """
        if bundle_id in self.applied:
            return False
        record = {
            "op": "bundle",
            "bundle": bundle_id,
            "node": node,
            "epoch": epoch,
            "p": probability,
            "races": races,
        }
        self._append(record)  # write-ahead: fsync before indexing
        self._fold(record)
        return True

    def suppress(self, key: str, reason: str = "") -> bool:
        """Mute one signature key (known/benign race).  Idempotent:
        suppressing an already-suppressed key appends nothing."""
        if key in self.suppressed:
            return False
        self._append({"op": "suppress", "key": key, "reason": reason})
        self.suppressed[key] = reason
        return True

    def close(self) -> None:
        try:
            self._out.close()
        except Exception:
            pass

    def __enter__(self) -> "RaceDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def double_counted(self) -> int:
        """Sightings in excess of one per distinct bundle — the
        invariant at-least-once ingestion must hold at zero."""
        return sum(
            entry.count - len(set(entry.bundle_ids))
            for entry in self.entries.values()
        )

    def ranked(self, include_suppressed: bool = False) -> List[RaceEntry]:
        """Entries by verdict tier first (confirmed > flaky >
        unconfirmed > inapplicable > never-replayed), then descending
        score, ties broken by key for a stable order.  Databases with no
        verdicts rank uniformly on the first component, so their order
        is the historical pure-score one.  Suppressed entries are
        excluded unless asked for."""
        entries = [
            e for e in self.entries.values()
            if include_suppressed or e.key not in self.suppressed
        ]
        return sorted(entries,
                      key=lambda e: (e.verdict_rank, -e.score, e.key))

    def split_new(self, known: Iterable[str]) -> Tuple[List[str], List[str]]:
        """Partition current keys into (new, recurring) relative to a
        prior snapshot of keys.  Suppressed signatures appear in neither
        list: a suppression is a promise not to page on that race."""
        known = set(known)
        live = [k for k in self.entries if k not in self.suppressed]
        new = sorted(k for k in live if k not in known)
        recurring = sorted(k for k in live if k in known)
        return new, recurring
