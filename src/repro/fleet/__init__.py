"""Fleet-scale race triage: crash-tolerant ingestion, sharded analysis
workers, and a deduplicating race database (ProRace §7.6 scaled out,
with PACER-style fleet budget scheduling)."""

from .chaos import DeliveryPlan
from .ingest import AcceptedBundle, IngestResult, IngestStats, ingest
from .nodes import NodeEpochSpec, ProducedBundle, build_program, produce_bundle
from .queue import BundleSpool, SpoolEntry, decode_envelope, encode_envelope
from .racedb import (
    RaceDatabase,
    RaceEntry,
    RaceSignature,
    signature_for,
    variable_class,
)
from .scheduler import Assignment, FleetSchedule, POLICIES
from .service import (
    FleetConfig,
    deliver_fleet,
    fleet_specs,
    produce_fleet,
    run_fleet,
    run_fleet_duel,
)
from .triage import TriageReport
from .workers import analyze_bundles, apply_backpressure, shard_of

__all__ = [
    "AcceptedBundle",
    "Assignment",
    "BundleSpool",
    "DeliveryPlan",
    "FleetConfig",
    "FleetSchedule",
    "IngestResult",
    "IngestStats",
    "NodeEpochSpec",
    "POLICIES",
    "ProducedBundle",
    "RaceDatabase",
    "RaceEntry",
    "RaceSignature",
    "SpoolEntry",
    "TriageReport",
    "analyze_bundles",
    "apply_backpressure",
    "build_program",
    "decode_envelope",
    "deliver_fleet",
    "encode_envelope",
    "fleet_specs",
    "ingest",
    "produce_bundle",
    "produce_fleet",
    "run_fleet",
    "run_fleet_duel",
    "shard_of",
    "signature_for",
    "variable_class",
]
