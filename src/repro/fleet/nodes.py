"""Simulated production nodes: governed tracing epochs → trace bundles.

Each (node, epoch) cell of the fleet runs its workload once under the
schedule's tracing assignment and serializes the result into a **wire
bundle**: the PRTR trace blob plus a JSON metadata envelope carrying
everything the triage service needs without parsing the trace (bundle
id, node, epoch, workload, scale, period, deep flag).

Bundle ids are derived from the *coordinates* of the work — fleet seed,
node, epoch, workload, period — never from the payload bytes.  That is
what makes at-least-once delivery dedupable: a redelivered copy, a
corrupted copy, and a torn copy of the same epoch all carry the same id,
so the ingester can recognize them as one bundle in every disguise.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..pmu.governor import GovernorConfig
from ..tracing import trace_run, trace_to_bytes
from ..workloads import RACE_BUGS, ALL_WORKLOADS, WorkloadScale
from ..errors import UsageError
from ..isa.program import Program


def build_program(workload: str, iterations: int, threads: int) -> Program:
    """Instantiate *workload* at the fleet's scale (race-bug corpus
    first, plain workload corpus second)."""
    scale = WorkloadScale(iterations=iterations, threads=threads)
    bug = RACE_BUGS.get(workload)
    if bug is not None:
        return bug.build(scale)
    spec = ALL_WORKLOADS.get(workload)
    if spec is not None:
        return spec.instantiate(scale)
    raise UsageError(
        f"unknown workload {workload!r} "
        f"(available: {', '.join(sorted(RACE_BUGS))})"
    )


def bundle_id_for(fleet_seed: int, node: int, epoch: int,
                  workload: str, period: int) -> str:
    """Stable, payload-independent bundle id."""
    key = f"bundle|{fleet_seed}|{node}|{epoch}|{workload}|{period}"
    return hashlib.blake2b(key.encode(), digest_size=8).hexdigest()


def run_seed_for(fleet_seed: int, node: int, epoch: int) -> int:
    """The machine seed one (node, epoch) cell traced under — also what
    confirmation replays must free-run with to retrace its paths."""
    key = f"node-seed|{fleet_seed}|{node}|{epoch}"
    digest = hashlib.blake2b(key.encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big")


#: Tick scale of per-node epoch offsets at intensity 1.0.  Well above
#: :data:`repro.fleet.ingest.CLOCK_OFFSET_FLOOR` so any nonzero
#: intensity produces offsets the ingester can tell apart from a
#: bundle's natural start time.
NODE_CLOCK_OFFSET_SCALE = 200_000


def node_clock_offset(fleet_seed: int, node: int,
                      intensity: float) -> int:
    """The seeded per-node TSC epoch offset: whole machines disagree
    on when time zero was, while each stays internally consistent."""
    if intensity <= 0.0:
        return 0
    key = f"node-clock|{fleet_seed}|{node}"
    digest = hashlib.blake2b(key.encode(), digest_size=4).digest()
    fraction = int.from_bytes(digest, "big") / 0xFFFFFFFF
    return int(intensity * NODE_CLOCK_OFFSET_SCALE
               * (0.6 + 0.8 * fraction))


@dataclass(frozen=True)
class NodeEpochSpec:
    """Everything needed to produce one (node, epoch) trace bundle.

    Frozen and picklable so bundle production can fan out through
    :func:`repro.parallel.parallel_map`.
    """

    fleet_seed: int
    node: int
    epoch: int
    workload: str
    iterations: int
    threads: int
    period: int
    budget: float
    deep: bool
    #: Per-node TSC epoch offset (node chaos): every timestamp in the
    #: produced bundle is shifted by this many ticks before upload.
    clock_offset: int = 0

    @property
    def bundle_id(self) -> str:
        return bundle_id_for(self.fleet_seed, self.node, self.epoch,
                             self.workload, self.period)

    @property
    def run_seed(self) -> int:
        """Per-cell machine seed: distinct nodes and epochs schedule
        differently, but the same cell always replays identically."""
        return run_seed_for(self.fleet_seed, self.node, self.epoch)

    def meta(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "node": self.node,
            "epoch": self.epoch,
            "workload": self.workload,
            "iterations": self.iterations,
            "threads": self.threads,
            "period": self.period,
            "budget": self.budget,
            "deep": self.deep,
            # Recorded only when skewed so fault-free envelopes (and
            # their bundle hashes) stay byte-identical.  Declarative
            # provenance only — the ingester reconciles from the trace
            # itself, never from this field.
            **({"clock_offset": self.clock_offset}
               if self.clock_offset else {}),
        }


@dataclass(frozen=True)
class ProducedBundle:
    """One node-epoch's output on the wire: metadata + trace blob."""

    meta: dict
    blob: bytes
    samples: int
    memory_ops: int
    #: Total estimated tracing overhead (PEBS + PT + sync).
    overhead: float
    #: PEBS-attributable overhead fraction — the component the sampling
    #: budget governs (PT/sync are fixed costs of having tracing on at
    #: all, identical under every scheduling policy).
    pebs_overhead: float

    @property
    def bundle_id(self) -> str:
        return self.meta["bundle_id"]


def produce_bundle(spec: NodeEpochSpec) -> ProducedBundle:
    """Run one governed tracing epoch and serialize the bundle."""
    program = build_program(spec.workload, spec.iterations, spec.threads)
    governor: Optional[GovernorConfig] = None
    if spec.budget > 0.0:
        governor = GovernorConfig(overhead_budget=spec.budget,
                                  seed=spec.run_seed)
    bundle = trace_run(program, period=spec.period, seed=spec.run_seed,
                       governor=governor)
    if spec.clock_offset:
        from ..clock.faults import shift_bundle_tscs

        bundle = shift_bundle_tscs(bundle, spec.clock_offset)
    from ..analysis.costs import estimate_overhead
    estimate = estimate_overhead(bundle)
    baseline = estimate.baseline_wall_cycles or 1
    return ProducedBundle(
        meta=spec.meta(),
        blob=trace_to_bytes(bundle),
        samples=len(bundle.samples),
        memory_ops=bundle.run.memory_ops,
        overhead=estimate.overhead,
        pebs_overhead=estimate.pebs_cycles / baseline,
    )
