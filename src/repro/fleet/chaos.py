"""Transport-level fault injection for the fleet spool.

The governor chaos suite (:mod:`repro.faults`) breaks *workers*; this
plan breaks *delivery*.  Every fault is drawn deterministically per
bundle id from a keyed hash — no shared RNG stream — so adding a fault
class, reordering production, or resuming a run never changes which
bundles another fault hits.  That decorrelation is what lets the chaos
duel demand a bit-identical race database from the faulty run.

Fault classes, chosen to exercise each ingestion guarantee:

``torn``       node crashed mid-upload: a prefix of the wire payload,
               followed by an intact redelivery (at-least-once transport
               retries after the crash).  Recovered by **redelivery**.
``corrupt``    transient link corruption of one trace section; an intact
               copy follows.  Recovered by **redelivery**.
``sticky``     the corruption happened *before* upload (bad DIMM on the
               node), so every copy carries the same damaged section.
               Recovered by **salvage** (``allow_partial``).
``poison``     the bundle is garbage in every copy (smashed envelope).
               Burns its bounded retries and lands in **quarantine**.
``dup``        a plain duplicate of an intact copy.  Removed by
               **dedupe**.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Tuple

from ..faults import corrupt_trace_bytes


def _unit(domain: str, seed: int, bundle_id: str) -> float:
    """Deterministic uniform [0, 1) draw keyed by (domain, seed, id)."""
    key = f"fleet-chaos|{domain}|{seed}|{bundle_id}"
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


def _derived_seed(domain: str, seed: int, bundle_id: str) -> int:
    key = f"fleet-chaos|{domain}|{seed}|{bundle_id}"
    digest = hashlib.blake2b(key.encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big")


def _damage(trace: bytes, seed: int) -> bytes:
    """Corrupt one non-empty section (retrying the seeded section pick —
    an idle node's PEBS section can be legitimately empty)."""
    for attempt in range(8):
        try:
            damaged, _ = corrupt_trace_bytes(trace, seed=seed + attempt)
            return damaged
        except ValueError:
            continue
    return trace  # every section empty: nothing to damage


@dataclass(frozen=True)
class DeliveryPlan:
    """Seeded at-least-once transport with injectable faults.

    All rates are independent per-bundle probabilities in [0, 1].
    """

    seed: int = 0
    #: Node crashes mid-upload: torn first copy + intact redelivery.
    node_crash_rate: float = 0.0
    #: Extra intact duplicate copy.
    duplicate_rate: float = 0.0
    #: Transient corruption: damaged copy + intact redelivery.
    corrupt_rate: float = 0.0
    #: Sticky corruption: the *same* damaged section in every copy.
    sticky_corrupt_rate: float = 0.0
    #: Unreadable in every copy — destined for quarantine.
    poison_rate: float = 0.0
    #: Shuffle arrival order across the whole spool.
    reorder: bool = True

    @property
    def faulty(self) -> bool:
        return any((self.node_crash_rate, self.duplicate_rate,
                    self.corrupt_rate, self.sticky_corrupt_rate,
                    self.poison_rate))

    def copies(self, bundle_id: str, envelope: bytes,
               trace: bytes) -> List[Tuple[str, bytes]]:
        """The wire copies transport delivers for one bundle, in
        transmission order, as ``(kind, payload)`` pairs."""
        intact = envelope + trace

        if _unit("poison", self.seed, bundle_id) < self.poison_rate:
            # Smash the envelope so no parse — strict or salvage — can
            # succeed; the retransmit re-reads the same rotten file, so
            # both copies are identical garbage.
            rot = random.Random(_derived_seed("rot", self.seed, bundle_id))
            poisoned = bytes(rot.randrange(256)
                             for _ in range(max(32, len(intact) // 4)))
            return [("poison", poisoned), ("poison", poisoned)]

        if _unit("sticky", self.seed, bundle_id) < self.sticky_corrupt_rate:
            damaged = _damage(trace, _derived_seed("sticky-seed",
                                                   self.seed, bundle_id))
            wire = envelope + damaged
            # The damage predates upload: every copy is equally damaged,
            # so only section salvage can recover the bundle.
            return [("sticky", wire), ("sticky", wire)]

        out: List[Tuple[str, bytes]] = []
        if _unit("crash", self.seed, bundle_id) < self.node_crash_rate:
            frac = 0.05 + 0.90 * _unit("cut", self.seed, bundle_id)
            cut = max(1, min(len(intact) - 1, int(len(intact) * frac)))
            out.append(("torn", intact[:cut]))
        if _unit("corrupt", self.seed, bundle_id) < self.corrupt_rate:
            damaged = _damage(trace, _derived_seed("corrupt-seed",
                                                   self.seed, bundle_id))
            out.append(("corrupt", envelope + damaged))
        out.append(("intact", intact))
        if _unit("dup", self.seed, bundle_id) < self.duplicate_rate:
            out.append(("dup", intact))
        return out

    def arrival_order(self, count: int) -> List[int]:
        """Spool-wide arrival permutation (identity when reordering is
        off)."""
        order = list(range(count))
        if self.reorder and count > 1:
            rng = random.Random(_derived_seed("order", self.seed,
                                              f"n={count}"))
            rng.shuffle(order)
        return order

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "node_crash_rate": self.node_crash_rate,
            "duplicate_rate": self.duplicate_rate,
            "corrupt_rate": self.corrupt_rate,
            "sticky_corrupt_rate": self.sticky_corrupt_rate,
            "poison_rate": self.poison_rate,
            "reorder": self.reorder,
        }
