"""Register file definitions for the repro ISA.

The ISA models the x86-64 integer register file: sixteen general-purpose
registers plus the instruction pointer ``rip``.  ProRace's offline replay
reasons about *which registers are available* at each point; keeping the
register set identical to x86-64 lets the replay engine mirror the paper's
examples (Figure 5) instruction for instruction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

#: The sixteen general-purpose registers, in conventional order.
GP_REGISTERS: Tuple[str, ...] = (
    "rax",
    "rbx",
    "rcx",
    "rdx",
    "rsi",
    "rdi",
    "rbp",
    "rsp",
    "r8",
    "r9",
    "r10",
    "r11",
    "r12",
    "r13",
    "r14",
    "r15",
)

#: Instruction pointer.  Always "available" during replay (PC-relative
#: addressing is recoverable from the PT path alone, per the paper §5.1).
RIP = "rip"

#: All architectural registers a PEBS record snapshots.
ALL_REGISTERS: Tuple[str, ...] = GP_REGISTERS + (RIP,)

_REGISTER_SET = frozenset(ALL_REGISTERS)

#: Dense slot index per architectural register (``rip`` included last).
#: The replay engine's program map stores register availability in a flat
#: list indexed by these slots; the micro-op IR resolves operand names to
#: slot indices once, at lowering time, so the replay hot loop never
#: hashes a register name.
REG_SLOT: Dict[str, int] = {name: i for i, name in enumerate(ALL_REGISTERS)}

#: Inverse of :data:`REG_SLOT`: slot index -> register name.
SLOT_NAMES: Tuple[str, ...] = ALL_REGISTERS

#: Number of register slots.
NUM_SLOTS = len(ALL_REGISTERS)

#: 64-bit wraparound mask.
MASK64 = (1 << 64) - 1


def is_register(name: str) -> bool:
    """Return True if *name* names an architectural register."""
    return name in _REGISTER_SET


def check_register(name: str) -> str:
    """Validate a register name, returning it unchanged.

    Raises:
        ValueError: if *name* is not an architectural register.
    """
    if name not in _REGISTER_SET:
        raise ValueError(f"unknown register: {name!r}")
    return name


class RegisterFile:
    """A concrete 64-bit register file.

    Values are stored as unsigned 64-bit integers (Python ints masked to
    64 bits).  Signed interpretation is applied only where an instruction's
    semantics require it (e.g. conditional branches).
    """

    __slots__ = ("_values",)

    def __init__(self, values: Dict[str, int] | None = None) -> None:
        self._values: Dict[str, int] = {name: 0 for name in ALL_REGISTERS}
        if values:
            for name, value in values.items():
                self[name] = value

    def __getitem__(self, name: str) -> int:
        try:
            return self._values[name]
        except KeyError:
            raise ValueError(f"unknown register: {name!r}") from None

    def __setitem__(self, name: str, value: int) -> None:
        if name not in _REGISTER_SET:
            raise ValueError(f"unknown register: {name!r}")
        self._values[name] = value & MASK64

    def snapshot(self) -> Dict[str, int]:
        """Return a copy of every register value (a PEBS-style snapshot)."""
        return dict(self._values)

    def restore(self, snapshot: Dict[str, int]) -> None:
        """Overwrite registers from *snapshot* (unknown keys rejected)."""
        for name, value in snapshot.items():
            self[name] = value

    def copy(self) -> "RegisterFile":
        clone = RegisterFile()
        clone._values = dict(self._values)
        return clone

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._values.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {k: hex(v) for k, v in self._values.items() if v}
        return f"RegisterFile({nonzero})"


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as signed two's complement."""
    value &= MASK64
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def to_unsigned(value: int) -> int:
    """Mask a (possibly negative) Python int to its 64-bit representation."""
    return value & MASK64
