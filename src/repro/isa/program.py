"""Program container, builder API, and basic-block CFG extraction.

A :class:`Program` is the "application binary" of this reproduction: a flat
list of instructions with labels, plus initialized global data.  Code
addresses are instruction indices; the data address space starts at
:data:`DATA_BASE` and the heap above :data:`HEAP_BASE`, so code and data
can never alias.

ProRace's offline stage re-executes this binary; the PT decoder maps its
packets back onto the program's basic blocks, which
:meth:`Program.basic_blocks` extracts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .instructions import Instruction, Op
from .operands import Imm, Mem, Operand, Reg

#: Base of the static data segment (globals).
DATA_BASE = 0x1_0000

#: Base of the heap (malloc'd objects).
HEAP_BASE = 0x100_0000

#: Base of the per-thread stacks (grow downward from here, one region per
#: thread).
STACK_BASE = 0x1000_0000

#: Size reserved for each thread's stack.
STACK_SIZE = 0x1_0000


class ProgramError(Exception):
    """Raised for malformed programs (unknown labels, bad operands...)."""


@dataclass(frozen=True)
class BasicBlock:
    """A maximal single-entry straight-line region of code.

    Attributes:
        start: address (instruction index) of the first instruction.
        end: address one past the last instruction.
    """

    start: int
    end: int

    def __len__(self) -> int:
        return self.end - self.start

    def addresses(self) -> range:
        return range(self.start, self.end)


class Program:
    """An assembled program: instructions, labels, and initial global data."""

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Dict[str, int],
        data: Optional[Dict[int, int]] = None,
        symbols: Optional[Dict[str, int]] = None,
        name: str = "a.out",
    ) -> None:
        self.instructions: Tuple[Instruction, ...] = tuple(instructions)
        self.labels: Dict[str, int] = dict(labels)
        #: Initial contents of the data segment: address -> 64-bit value.
        self.data: Dict[int, int] = dict(data or {})
        #: Named data symbols: name -> address (documentation/debugging).
        self.symbols: Dict[str, int] = dict(symbols or {})
        self.name = name
        self._validate()
        self._blocks: Optional[Tuple[BasicBlock, ...]] = None
        self._block_table: Optional[List[int]] = None

    # ------------------------------------------------------------------

    def _validate(self) -> None:
        for label, addr in self.labels.items():
            if not (0 <= addr <= len(self.instructions)):
                raise ProgramError(f"label {label!r} out of range: {addr}")
        for idx, ins in enumerate(self.instructions):
            if ins.target is not None and ins.target not in self.labels:
                raise ProgramError(
                    f"instruction {idx} ({ins}) targets unknown label "
                    f"{ins.target!r}"
                )
            n_mem = sum(1 for op in ins.operands if isinstance(op, Mem))
            if n_mem > 1:
                raise ProgramError(
                    f"instruction {idx} ({ins}) has {n_mem} memory operands;"
                    " at most one is encodable"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, address: int) -> Instruction:
        return self.instructions[address]

    def resolve(self, label: str) -> int:
        """Return the code address of *label*."""
        try:
            return self.labels[label]
        except KeyError:
            raise ProgramError(f"unknown label: {label!r}") from None

    def target_address(self, ins: Instruction) -> int:
        """Resolve the direct target of a branch/call/spawn instruction."""
        if ins.target is None:
            raise ProgramError(f"instruction {ins} has no direct target")
        return self.resolve(ins.target)

    # ------------------------------------------------------------------
    # Basic-block extraction (leaders: entry points, branch targets and
    # branch fall-throughs).
    # ------------------------------------------------------------------

    def basic_blocks(self) -> Tuple[BasicBlock, ...]:
        """Partition the program into basic blocks (cached).

        Leaders are control-flow boundaries only: branch/call/spawn
        targets and fall-throughs.  Labels that nothing jumps to (marker
        labels, data symbols) do not split blocks — they are not leaders
        in the compiled binary either.
        """
        if self._blocks is None:
            leaders = {0, len(self.instructions)}
            for idx, ins in enumerate(self.instructions):
                if ins.is_branch() or ins.op == Op.HALT:
                    leaders.add(idx + 1)
                    if ins.target is not None:
                        leaders.add(self.resolve(ins.target))
                if ins.op == Op.SPAWN and ins.target is not None:
                    leaders.add(self.resolve(ins.target))
            ordered = sorted(x for x in leaders if x <= len(self.instructions))
            blocks = []
            for start, end in zip(ordered, ordered[1:]):
                if end > start:
                    blocks.append(BasicBlock(start, end))
            self._blocks = tuple(blocks)
        return self._blocks

    def block_table(self) -> List[int]:
        """Per-address basic-block index (cached).

        ``block_table()[addr]`` is the index into :meth:`basic_blocks` of
        the block containing code address *addr*.  The replay compiler
        uses this flat array to bound straight-line spans at block
        boundaries without any per-step dictionary lookup.
        """
        if self._block_table is None:
            table = [0] * len(self.instructions)
            for index, block in enumerate(self.basic_blocks()):
                for addr in block.addresses():
                    table[addr] = index
            self._block_table = table
        return self._block_table

    def block_containing(self, address: int) -> BasicBlock:
        """Return the basic block containing code *address*."""
        table = self.block_table()
        if 0 <= address < len(table):
            return self.basic_blocks()[table[address]]
        raise ProgramError(f"address {address} not in any block")

    # ------------------------------------------------------------------

    def to_asm(self) -> str:
        """Emit assembly text that re-assembles to an equivalent program.

        Data symbols are emitted in address order with their extents, so
        the data-segment layout (and therefore every absolute address)
        is preserved; pointer-valued globals keep their raw values, which
        stay correct because the layout is identical.  Round-trip
        property: ``assemble(p.to_asm())`` runs identically to ``p``.
        """
        lines: List[str] = []
        ordered = sorted(self.symbols.items(), key=lambda item: item[1])
        for index, (name, base) in enumerate(ordered):
            if index + 1 < len(ordered):
                extent = ordered[index + 1][1] - base
            else:
                top = max(self.data, default=base - 8) + 8
                extent = max(top - base, 8)
            words = [
                str(self.data.get(base + i * 8, 0))
                for i in range(extent // 8)
            ]
            lines.append(f".array {name} {' '.join(words)}")
        lines.append("")
        by_addr: Dict[int, List[str]] = {}
        for label, addr in self.labels.items():
            by_addr.setdefault(addr, []).append(label)
        for idx, ins in enumerate(self.instructions):
            for label in sorted(by_addr.get(idx, ())):
                lines.append(f"{label}:")
            if ins.op == Op.SPAWN:
                # Assembler syntax: `spawn entry[, %tid_dst]`.
                lines.append(f"    spawn {ins.target}, {ins.operands[0]}")
            else:
                rendered = [str(o) for o in ins.operands]
                if ins.target is not None:
                    rendered.append(ins.target)
                text = ins.op.value
                if rendered:
                    text += " " + ", ".join(rendered)
                lines.append(f"    {text}")
        for label in sorted(by_addr.get(len(self.instructions), ())):
            lines.append(f"{label}:")
        return "\n".join(lines) + "\n"

    def listing(self) -> str:
        """A human-readable disassembly listing."""
        by_addr: Dict[int, List[str]] = {}
        for label, addr in self.labels.items():
            by_addr.setdefault(addr, []).append(label)
        lines = []
        for idx, ins in enumerate(self.instructions):
            for label in sorted(by_addr.get(idx, ())):
                lines.append(f"{label}:")
            comment = f"  # {ins.comment}" if ins.comment else ""
            lines.append(f"  {idx:4d}: {ins}{comment}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program({self.name!r}, {len(self.instructions)} instructions, "
            f"{len(self.labels)} labels)"
        )


class ProgramBuilder:
    """Fluent builder used by the workload library to assemble programs.

    Example::

        b = ProgramBuilder("counter")
        counter = b.global_word("counter", 0)
        b.label("main")
        b.mov(Imm(counter), Reg("rdi"))
        b.load(Mem(base="rdi"), Reg("rax"))
        b.add(Imm(1), Reg("rax"))
        b.store(Reg("rax"), Mem(base="rdi"))
        b.halt()
        program = b.build()
    """

    def __init__(self, name: str = "a.out") -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._data: Dict[int, int] = {}
        self._symbols: Dict[str, int] = {}
        self._next_data = DATA_BASE

    # -- data segment ---------------------------------------------------

    def global_word(self, name: str, initial: int = 0) -> int:
        """Allocate one 64-bit global, returning its address."""
        return self.global_array(name, [initial])

    def global_array(self, name: str, values: Sequence[int]) -> int:
        """Allocate a contiguous array of 64-bit globals; returns base."""
        if name in self._symbols:
            raise ProgramError(f"duplicate global: {name!r}")
        base = self._next_data
        for offset, value in enumerate(values):
            self._data[base + offset * 8] = value
        self._symbols[name] = base
        self._next_data = base + max(len(values), 1) * 8
        return base

    def reserve(self, name: str, words: int) -> int:
        """Allocate *words* zeroed globals; returns base address."""
        return self.global_array(name, [0] * words)

    def symbol(self, name: str) -> int:
        try:
            return self._symbols[name]
        except KeyError:
            raise ProgramError(f"unknown symbol: {name!r}") from None

    # -- code -----------------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        if name in self._labels:
            raise ProgramError(f"duplicate label: {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def emit(self, ins: Instruction) -> "ProgramBuilder":
        self._instructions.append(ins)
        return self

    def _ins(self, op: Op, *operands: Operand, target: str | None = None,
             comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(op, tuple(operands), target, comment))

    # Data movement -----------------------------------------------------

    def mov(self, src: Operand, dst: Operand, comment: str = "") -> "ProgramBuilder":
        if isinstance(src, Mem) and isinstance(dst, Mem):
            raise ProgramError("mem-to-mem mov is not encodable")
        return self._ins(Op.MOV, src, dst, comment=comment)

    def load(self, src: Mem, dst: Reg, comment: str = "") -> "ProgramBuilder":
        return self.mov(src, dst, comment=comment)

    def store(self, src: Reg | Imm, dst: Mem, comment: str = "") -> "ProgramBuilder":
        return self.mov(src, dst, comment=comment)

    def lea(self, src: Mem, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.LEA, src, dst)

    def push(self, src: Reg | Imm) -> "ProgramBuilder":
        return self._ins(Op.PUSH, src)

    def pop(self, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.POP, dst)

    # ALU ----------------------------------------------------------------

    def add(self, src: Operand, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.ADD, src, dst)

    def sub(self, src: Operand, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.SUB, src, dst)

    def and_(self, src: Operand, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.AND, src, dst)

    def or_(self, src: Operand, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.OR, src, dst)

    def xor(self, src: Operand, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.XOR, src, dst)

    def imul(self, src: Operand, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.IMUL, src, dst)

    def shl(self, src: Imm, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.SHL, src, dst)

    def shr(self, src: Imm, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.SHR, src, dst)

    def inc(self, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.INC, dst)

    def dec(self, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.DEC, dst)

    def neg(self, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.NEG, dst)

    def not_(self, dst: Reg) -> "ProgramBuilder":
        return self._ins(Op.NOT, dst)

    # Flags / control ----------------------------------------------------

    def cmp(self, a: Operand, b: Operand) -> "ProgramBuilder":
        return self._ins(Op.CMP, a, b)

    def test(self, a: Operand, b: Operand) -> "ProgramBuilder":
        return self._ins(Op.TEST, a, b)

    def jmp(self, target: str) -> "ProgramBuilder":
        return self._ins(Op.JMP, target=target)

    def jmp_reg(self, reg: Reg) -> "ProgramBuilder":
        return self._ins(Op.JMP, reg)

    def je(self, target: str) -> "ProgramBuilder":
        return self._ins(Op.JE, target=target)

    def jne(self, target: str) -> "ProgramBuilder":
        return self._ins(Op.JNE, target=target)

    def jl(self, target: str) -> "ProgramBuilder":
        return self._ins(Op.JL, target=target)

    def jle(self, target: str) -> "ProgramBuilder":
        return self._ins(Op.JLE, target=target)

    def jg(self, target: str) -> "ProgramBuilder":
        return self._ins(Op.JG, target=target)

    def jge(self, target: str) -> "ProgramBuilder":
        return self._ins(Op.JGE, target=target)

    def call(self, target: str) -> "ProgramBuilder":
        return self._ins(Op.CALL, target=target)

    def ret(self) -> "ProgramBuilder":
        return self._ins(Op.RET)

    # System -------------------------------------------------------------

    def spawn(self, entry: str, tid_dst: Reg = Reg("rax")) -> "ProgramBuilder":
        return self._ins(Op.SPAWN, tid_dst, target=entry)

    def join(self, tid: Reg | Imm) -> "ProgramBuilder":
        return self._ins(Op.JOIN, tid)

    def lock(self, addr: Reg | Imm) -> "ProgramBuilder":
        return self._ins(Op.LOCK, addr)

    def unlock(self, addr: Reg | Imm) -> "ProgramBuilder":
        return self._ins(Op.UNLOCK, addr)

    def sem_post(self, addr: Reg | Imm) -> "ProgramBuilder":
        return self._ins(Op.SEM_POST, addr)

    def sem_wait(self, addr: Reg | Imm) -> "ProgramBuilder":
        return self._ins(Op.SEM_WAIT, addr)

    def cond_wait(self, cv: Reg | Imm, mutex: Reg | Imm) -> "ProgramBuilder":
        """pthread_cond_wait: atomically release *mutex* and sleep on
        *cv*; reacquires the mutex before returning."""
        return self._ins(Op.COND_WAIT, cv, mutex)

    def cond_signal(self, cv: Reg | Imm) -> "ProgramBuilder":
        return self._ins(Op.COND_SIGNAL, cv)

    def cond_broadcast(self, cv: Reg | Imm) -> "ProgramBuilder":
        return self._ins(Op.COND_BROADCAST, cv)

    def rwlock_rd(self, addr: Reg | Imm) -> "ProgramBuilder":
        """Acquire *addr* in shared (reader) mode."""
        return self._ins(Op.RWLOCK_RD, addr)

    def rwlock_wr(self, addr: Reg | Imm) -> "ProgramBuilder":
        """Acquire *addr* in exclusive (writer) mode."""
        return self._ins(Op.RWLOCK_WR, addr)

    def rwlock_unlock(self, addr: Reg | Imm) -> "ProgramBuilder":
        """Release *addr* from whichever mode the thread holds it in."""
        return self._ins(Op.RWLOCK_UNLOCK, addr)

    def barrier_wait(self, addr: Reg | Imm,
                     parties: Imm) -> "ProgramBuilder":
        """Wait at the barrier at *addr* until *parties* threads arrive."""
        return self._ins(Op.BARRIER_WAIT, addr, parties)

    def malloc(self, size: Reg | Imm, dst: Reg = Reg("rax")) -> "ProgramBuilder":
        return self._ins(Op.MALLOC, size, dst)

    def free(self, addr: Reg | Imm) -> "ProgramBuilder":
        return self._ins(Op.FREE, addr)

    def io(self, cycles: Imm) -> "ProgramBuilder":
        """Simulated blocking I/O lasting *cycles* machine cycles."""
        return self._ins(Op.IO, cycles)

    def halt(self) -> "ProgramBuilder":
        return self._ins(Op.HALT)

    def nop(self) -> "ProgramBuilder":
        return self._ins(Op.NOP)

    # ---------------------------------------------------------------------

    def build(self) -> Program:
        return Program(
            self._instructions,
            self._labels,
            data=self._data,
            symbols=self._symbols,
            name=self.name,
        )
