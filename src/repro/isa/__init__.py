"""The repro ISA: an x86-64-flavoured instruction set for the simulated
machine substrate (see DESIGN.md §2 for why a simulated ISA stands in for
native binaries)."""

from .assembler import AssemblerError, assemble
from .instructions import (
    ALU_BINARY,
    ALU_UNARY,
    COND_BRANCHES,
    REVERSIBLE_ALU,
    SYNC_OPS,
    SYSTEM_OPS,
    Instruction,
    Op,
)
from .operands import Imm, Mem, Operand, Reg
from .program import (
    DATA_BASE,
    HEAP_BASE,
    STACK_BASE,
    STACK_SIZE,
    BasicBlock,
    Program,
    ProgramBuilder,
    ProgramError,
)
from .registers import (
    ALL_REGISTERS,
    GP_REGISTERS,
    MASK64,
    RegisterFile,
    to_signed,
    to_unsigned,
)
from .semantics import (
    Flags,
    alu,
    alu_unary,
    compare,
    effective_address,
    reverse_alu,
    reverse_alu_src,
    test_bits,
)

__all__ = [
    "ALL_REGISTERS",
    "ALU_BINARY",
    "ALU_UNARY",
    "AssemblerError",
    "BasicBlock",
    "COND_BRANCHES",
    "DATA_BASE",
    "Flags",
    "GP_REGISTERS",
    "HEAP_BASE",
    "Imm",
    "Instruction",
    "MASK64",
    "Mem",
    "Op",
    "Operand",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "REVERSIBLE_ALU",
    "Reg",
    "RegisterFile",
    "STACK_BASE",
    "STACK_SIZE",
    "SYNC_OPS",
    "SYSTEM_OPS",
    "alu",
    "alu_unary",
    "assemble",
    "compare",
    "effective_address",
    "reverse_alu",
    "reverse_alu_src",
    "test_bits",
    "to_signed",
    "to_unsigned",
]
