"""Replay compilation: lowering programs to a flat micro-op IR.

The window replayer's hot loop originally re-interpreted every
:class:`~repro.isa.instructions.Instruction` dataclass on every forward
pass of every fixed-point round — ``isinstance`` chains over operands,
register-name hashing, enum dispatch.  This module performs that work
exactly once per program: each instruction is *lowered* to a flat tuple
micro-op whose

* operands are resolved to dense register **slot indices**
  (:data:`~repro.isa.registers.REG_SLOT`),
* ALU operations are bound to their concrete arithmetic callables
  (:mod:`~repro.isa.semantics`), and
* effective-address formulas are pre-extracted — RIP-relative and
  displacement-only operands collapse to a precomputed constant
  :class:`~repro.replay.program_map.Known` since the instruction pointer
  is known at lowering time.

The compiled form also carries the per-address basic-block index and a
per-address *summarizable* flag, which the block effect-summary cache
(:mod:`repro.replay.summary`) uses to bound memoizable straight-line
spans.

Compiled programs are cached in a module-level
:class:`weakref.WeakKeyDictionary` keyed by the program object: the ALU
callables are lambdas and therefore unpicklable, so the replay engine
never stores a compiled program on itself (engines are pickled into
process-executor workers) — workers re-derive it via :func:`lowered`,
which is a cache hit for every window after the first.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Tuple

from .instructions import (
    ALU_BINARY,
    ALU_UNARY,
    Instruction,
    Op,
    REVERSIBLE_ALU,
    SYSTEM_OPS,
)
from .operands import Imm, Mem, Reg
from .program import Program
from .registers import MASK64, REG_SLOT
from .semantics import _ALU_FUNCS, _UNARY_FUNCS

# Import here (not from program_map) to avoid a package cycle: the replay
# package imports this module.
from ..replay.program_map import Known

#: Micro-op kind constants.  Each lowered instruction is a plain tuple
#: whose first element is one of these; the remaining elements are
#: pre-resolved operands (slot indices, bound callables, constant Knowns,
#: address formulas).
U_NOP = 0        # (0,)                          jmp/jcc/halt/nop
U_MOV_RR = 1     # (1, src_slot, dst_slot)
U_MOV_IR = 2     # (2, known, dst_slot)
U_LOAD = 3       # (3, formula, dst_slot)        mov mem -> reg
U_STORE_R = 4    # (4, formula, src_slot)        mov reg -> mem
U_STORE_I = 5    # (5, formula, known)           mov imm -> mem
U_LEA = 6        # (6, formula, dst_slot)
U_ALU_RR = 7     # (7, func, src_slot, dst_slot)
U_ALU_IR = 8     # (8, func, imm_value, dst_slot)
U_ALU_UN = 9     # (9, func, dst_slot)
U_ALU_MR = 10    # (10, func, formula, dst_slot) alu mem -> reg
U_CMP = 11       # (11, descs)                   cmp/test side effects
U_PUSH_R = 12    # (12, src_slot)
U_PUSH_K = 13    # (13, known)                   push imm / bare push
U_PUSH_M = 14    # (14, formula)                 push mem (builder-rare)
U_POP = 15       # (15, dst_slot)
U_CALL = 16      # (16, ret_known)               return address baked in
U_RET = 17       # (17,)
U_CLOBBER = 18   # (18, dst_slot)                spawn/malloc
U_SYS = 19       # (19,)                         other system ops

#: Address-formula kinds (first element of a formula tuple).
A_CONST = 0      # (0, known)                    rip-relative / disp-only
A_BASE = 1       # (1, base_slot, disp)
A_BI = 2         # (2, base_slot, index_slot, scale, disp)
A_INDEX = 3      # (3, index_slot, scale, disp)

#: Reverse micro-op kinds (the §5.2.1 back-propagation, pre-decoded).
#: Each transforms the after-state of one step into its before-state.
R_NOP = 0        # (0,)                          writes no registers
R_POP_DST = 1    # (1, dst_slot)                 dst unknowable before
R_MOV_RR = 2     # (2, src_slot, dst_slot)       copy: src held the value
R_LEA_BASE = 3   # (3, base_slot, disp, dst_slot)
R_LEA_BI = 4     # (4, base_slot, index_slot, scale, disp, dst_slot)
R_ALU_IR = 5     # (5, op, imm, dst_slot)        reversible, imm source
R_ALU_RR = 6     # (6, op, src_slot, dst_slot)   reversible, reg source
R_ALU_UN = 7     # (7, inverse_op, dst_slot)
R_RSP_ADD = 8    # (8,)                          push/call: rsp was +8
R_RSP_SUB = 9    # (9,)                          ret: rsp was -8
R_POP = 10       # (10, dst_slot)                pop: dst gone, rsp was -8

#: Retry-descriptor kinds: how a blocked step's memory operand can be
#: recomputed from backward register state (None when it cannot).
T_MEM = 0        # (0, formula, is_store)
T_PUSH = 1       # (1,)                          store at rsp - 8
T_POP = 2        # (2,)                          load at rsp

_UNARY_INVERSE = {Op.INC: Op.DEC, Op.DEC: Op.INC, Op.NEG: Op.NEG,
                  Op.NOT: Op.NOT}

#: Slot of the stack pointer (PUSH/POP/CALL/RET hot path).
RSP_SLOT = REG_SLOT["rsp"]

#: Micro-op kinds excluded from effect summaries: they conservatively
#: invalidate all emulated memory and clobber kernel-produced registers,
#: so a span containing one has no replayable effect template.
_UNSUMMARIZABLE = frozenset({U_CLOBBER, U_SYS})


def lower_mem(mem: Mem, ip: int) -> tuple:
    """Lower one memory operand to an address formula.

    RIP-relative and displacement-only operands become constants: the
    instruction's own address is known at lowering time, so their
    effective address (always taint-free) is precomputed.
    """
    if mem.rip_relative:
        return (A_CONST, Known((ip + mem.disp) & MASK64))
    if mem.base and mem.index:
        return (A_BI, REG_SLOT[mem.base], REG_SLOT[mem.index],
                mem.scale, mem.disp)
    if mem.base:
        return (A_BASE, REG_SLOT[mem.base], mem.disp)
    if mem.index:
        return (A_INDEX, REG_SLOT[mem.index], mem.scale, mem.disp)
    return (A_CONST, Known(mem.disp & MASK64))


def eval_addr(slots: list, formula: tuple):
    """Evaluate an address formula against the slot file.

    Returns the effective address as a ``Known`` (value + merged taint of
    the address registers), or None when a required register slot is
    unavailable — mirroring ``WindowReplayer._address_of`` exactly.
    """
    kind = formula[0]
    if kind == A_CONST:
        return formula[1]
    if kind == A_BASE:
        base = slots[formula[1]]
        if base is None:
            return None
        return Known((base.value + formula[2]) & MASK64, base.taint)
    if kind == A_BI:
        base = slots[formula[1]]
        index = slots[formula[2]]
        if base is None or index is None:
            return None
        taint = base.taint
        if taint is None:
            taint = index.taint
        elif index.taint is not None:
            taint = taint | index.taint
        return Known(
            (base.value + index.value * formula[3] + formula[4]) & MASK64,
            taint,
        )
    index = slots[formula[1]]
    if index is None:
        return None
    return Known((index.value * formula[2] + formula[3]) & MASK64,
                 index.taint)


def lower_instruction(ins: Instruction, ip: int) -> tuple:
    """Lower one instruction at address *ip* to its micro-op tuple."""
    op = ins.op
    if op == Op.MOV:
        src, dst = ins.operands
        if isinstance(dst, Mem):
            formula = lower_mem(dst, ip)
            if isinstance(src, Reg):
                return (U_STORE_R, formula, REG_SLOT[src.name])
            return (U_STORE_I, formula, Known(src.value & MASK64))
        if isinstance(src, Mem):
            return (U_LOAD, lower_mem(src, ip), REG_SLOT[dst.name])
        if isinstance(src, Reg):
            return (U_MOV_RR, REG_SLOT[src.name], REG_SLOT[dst.name])
        return (U_MOV_IR, Known(src.value & MASK64), REG_SLOT[dst.name])
    if op == Op.LEA:
        mem, dst = ins.operands
        return (U_LEA, lower_mem(mem, ip), REG_SLOT[dst.name])
    if op in ALU_BINARY:
        src, dst = ins.operands
        func = _ALU_FUNCS[op]
        if isinstance(src, Reg):
            return (U_ALU_RR, func, REG_SLOT[src.name], REG_SLOT[dst.name])
        if isinstance(src, Mem):
            return (U_ALU_MR, func, lower_mem(src, ip), REG_SLOT[dst.name])
        return (U_ALU_IR, func, src.value & MASK64, REG_SLOT[dst.name])
    if op in ALU_UNARY:
        (dst,) = ins.operands
        return (U_ALU_UN, _UNARY_FUNCS[op], REG_SLOT[dst.name])
    if op in (Op.CMP, Op.TEST):
        descs = []
        for operand in ins.operands:
            if isinstance(operand, Reg):
                descs.append((0, REG_SLOT[operand.name]))
            elif isinstance(operand, Mem):
                descs.append((1, lower_mem(operand, ip)))
            # Immediates have no availability side effects: dropped.
        return (U_CMP, tuple(descs))
    if op == Op.PUSH:
        if ins.operands:
            src = ins.operands[0]
            if isinstance(src, Reg):
                return (U_PUSH_R, REG_SLOT[src.name])
            if isinstance(src, Mem):
                return (U_PUSH_M, lower_mem(src, ip))
            return (U_PUSH_K, Known(src.value & MASK64))
        return (U_PUSH_K, Known(0))
    if op == Op.POP:
        return (U_POP, REG_SLOT[ins.operands[0].name])
    if op == Op.CALL:
        return (U_CALL, Known(ip + 1))
    if op == Op.RET:
        return (U_RET,)
    if op == Op.SPAWN:
        return (U_CLOBBER, REG_SLOT[ins.operands[0].name])
    if op == Op.MALLOC:
        return (U_CLOBBER, REG_SLOT[ins.operands[1].name])
    if op in SYSTEM_OPS:
        return (U_SYS,)
    return (U_NOP,)  # JMP / Jcc / HALT / NOP


def lower_reverse(ins: Instruction, ip: int) -> tuple:
    """Lower one instruction to its reverse micro-op.

    Mirrors ``WindowReplayer._reverse_step`` exactly: what the forward
    semantics can invert is encoded as a recovery op, everything else
    degrades to forgetting the written register(s).
    """
    op = ins.op
    if op == Op.MOV:
        src, dst = ins.operands
        if not isinstance(dst, Reg):
            return (R_NOP,)
        if isinstance(src, Reg) and src.name != dst.name:
            return (R_MOV_RR, REG_SLOT[src.name], REG_SLOT[dst.name])
        return (R_POP_DST, REG_SLOT[dst.name])
    if op == Op.LEA:
        mem, dst = ins.operands
        dst_slot = REG_SLOT[dst.name]
        if mem.rip_relative:
            return (R_POP_DST, dst_slot)
        if mem.base and mem.index:
            return (R_LEA_BI, REG_SLOT[mem.base], REG_SLOT[mem.index],
                    mem.scale, mem.disp, dst_slot)
        if mem.base:
            if REG_SLOT[mem.base] != dst_slot:
                return (R_LEA_BASE, REG_SLOT[mem.base], mem.disp, dst_slot)
        return (R_POP_DST, dst_slot)
    if op in ALU_BINARY:
        src, dst = ins.operands
        dst_slot = REG_SLOT[dst.name]
        if op not in REVERSIBLE_ALU:
            return (R_POP_DST, dst_slot)
        if isinstance(src, Imm):
            return (R_ALU_IR, op, src.value & MASK64, dst_slot)
        if isinstance(src, Reg) and src.name != dst.name:
            return (R_ALU_RR, op, REG_SLOT[src.name], dst_slot)
        return (R_POP_DST, dst_slot)
    if op in ALU_UNARY:
        (dst,) = ins.operands
        return (R_ALU_UN, _UNARY_INVERSE[op], REG_SLOT[dst.name])
    if op in (Op.PUSH, Op.CALL):
        return (R_RSP_ADD,)
    if op == Op.RET:
        return (R_RSP_SUB,)
    if op == Op.POP:
        return (R_POP, REG_SLOT[ins.operands[0].name])
    if op == Op.SPAWN:
        return (R_POP_DST, REG_SLOT[ins.operands[0].name])
    if op == Op.MALLOC:
        return (R_POP_DST, REG_SLOT[ins.operands[1].name])
    return (R_NOP,)  # cmp/test/branches/sync/halt/nop


def lower_retry(ins: Instruction, ip: int):
    """Lower one instruction to its blocked-step retry descriptor.

    Mirrors ``WindowReplayer._retry_access``: the explicit memory operand
    of a load/store (as an address formula), the implicit stack slot of
    push/pop, or None when the step's access cannot be recomputed.
    """
    mem = None
    for operand in ins.operands:
        if isinstance(operand, Mem):
            mem = operand
    if mem is not None:
        if ins.is_load() or ins.is_store():
            return (T_MEM, lower_mem(mem, ip), ins.is_store())
        return None
    if ins.op == Op.PUSH:
        return (T_PUSH,)
    if ins.op == Op.POP:
        return (T_POP,)
    return None


class CompiledProgram:
    """A program lowered to micro-ops, plus span metadata.

    Attributes:
        program: the source program.
        uops: one micro-op tuple per code address.
        rev: one reverse micro-op tuple per code address (backward pass).
        retry: one blocked-step retry descriptor (or None) per address.
        block_id: per-address basic-block index (summary spans carry
            their recorded path, so they may cross block boundaries; the
            table remains for diagnostics and analyses).
        summarizable: per-address flag — False for micro-ops whose
            effects cannot be captured in a replayable summary.
    """

    __slots__ = ("program", "uops", "rev", "retry", "block_id",
                 "summarizable", "_interfaces", "__weakref__")

    def __init__(self, program: Program) -> None:
        self.program = program
        self.uops: List[tuple] = [
            lower_instruction(ins, ip)
            for ip, ins in enumerate(program.instructions)
        ]
        self.rev: List[tuple] = [
            lower_reverse(ins, ip)
            for ip, ins in enumerate(program.instructions)
        ]
        self.retry: List = [
            lower_retry(ins, ip)
            for ip, ins in enumerate(program.instructions)
        ]
        self.block_id: List[int] = list(program.block_table())
        self.summarizable: List[bool] = [
            u[0] not in _UNSUMMARIZABLE for u in self.uops
        ]
        #: path (instruction-address tuple) -> (live_in_slots,
        #: def_slots); lazy.  Paths repeat heavily (loop bodies), so the
        #: table stays small relative to the summary cache itself.
        self._interfaces: Dict[Tuple[int, ...],
                               Tuple[tuple, tuple]] = {}

    def path_interface(self,
                       path: Tuple[int, ...]) -> Tuple[tuple, tuple]:
        """Live-in and defined register slots along a recorded path.

        *Live-in* slots are registers some instruction on *path* reads
        before any earlier instruction on it writes them: together with
        the validated memory reads, they fully determine the path's
        effects, so their exact contents form the summary-cache
        signature.  *Def* slots are every register the path may write; a
        summary snapshots their final values.  The path need not be
        straight-line — span keys carry the path itself, so a summary
        can follow control flow across block boundaries.
        """
        cached = self._interfaces.get(path)
        if cached is not None:
            return cached
        instructions = self.program.instructions
        reads: set = set()
        written: set = set()
        for ip in path:
            ins = instructions[ip]
            for name in ins.reads_registers():
                if name not in written:
                    reads.add(name)
            written |= ins.writes_registers()
        interface = (
            tuple(sorted(REG_SLOT[name] for name in reads)),
            tuple(sorted(REG_SLOT[name] for name in written)),
        )
        self._interfaces[path] = interface
        return interface


#: Program -> CompiledProgram.  Module-level (never stored on a pickled
#: engine: the bound ALU lambdas don't pickle) and weak-keyed so compiled
#: forms die with their programs.
_COMPILED: "weakref.WeakKeyDictionary[Program, CompiledProgram]" = \
    weakref.WeakKeyDictionary()


def lowered(program: Program) -> CompiledProgram:
    """The compiled form of *program* (lowered at most once per process)."""
    compiled = _COMPILED.get(program)
    if compiled is None:
        compiled = CompiledProgram(program)
        _COMPILED[program] = compiled
    return compiled
