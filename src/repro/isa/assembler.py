"""A small AT&T-flavoured text assembler for the repro ISA.

The workload library builds programs with :class:`~repro.isa.program.
ProgramBuilder`; the text assembler exists so that examples, tests and the
paper's Figure 5 listing can be written the way the paper prints them::

    asm = '''
    .global total 0
    main:
        mov   total(%rip), %rax
        add   $1, %rax
        mov   %rax, total(%rip)
        halt
    '''
    program = assemble(asm)

Syntax summary:

* AT&T operand order (``op src, dst``), ``%reg`` registers, ``$imm``
  immediates (``$name`` yields a data symbol's address).
* Memory operands ``disp(base, index, scale)`` with any component omitted,
  plus ``name(%rip)`` / ``disp(%rip)`` RIP-relative forms.
* Directives: ``.global name value``, ``.array name v0 v1 ...``,
  ``.reserve name nwords``.
* ``label:`` lines define code labels; branch/call/spawn targets are bare
  label names.  ``#`` starts a comment.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instructions import Instruction, Op
from .operands import Imm, Mem, Operand, Reg
from .program import Program, ProgramBuilder, ProgramError


class AssemblerError(ProgramError):
    """Raised on unparseable assembly text (with line number context)."""


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_MEM_RE = re.compile(
    r"^(?P<disp>[-+]?(?:0x[0-9a-fA-F]+|\d+)|[A-Za-z_][\w.]*)?"
    r"\((?P<inner>[^)]*)\)$"
)

class _SymbolicRip:
    """Transient operand: ``name(%rip)`` awaiting emit-site resolution."""

    __slots__ = ("symbol",)

    def __init__(self, symbol: str) -> None:
        self.symbol = symbol


_OPS_BY_NAME: Dict[str, Op] = {op.value: op for op in Op}
# "and"/"or"/"not" are Python keywords in the builder but plain mnemonics
# here; Op values already match the mnemonic text.

_TARGET_ONLY_OPS = frozenset(
    {Op.JMP, Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE, Op.CALL}
)


def _parse_int(text: str) -> int:
    return int(text, 0)


class _Assembler:
    def __init__(self, source: str, name: str) -> None:
        self.builder = ProgramBuilder(name)
        self.source = source
        self.symbols: Dict[str, int] = {}

    def error(self, lineno: int, message: str) -> AssemblerError:
        return AssemblerError(f"line {lineno}: {message}")

    # ------------------------------------------------------------------

    def assemble(self) -> Program:
        lines = self._clean_lines()
        # Pass 1: directives first so data symbols exist for operand
        # resolution; remember code lines in order.
        code_lines: List[Tuple[int, str]] = []
        for lineno, line in lines:
            if line.startswith("."):
                self._directive(lineno, line)
            else:
                code_lines.append((lineno, line))
        # Pass 2: emit code.
        for lineno, line in code_lines:
            match = _LABEL_RE.match(line)
            if match:
                try:
                    self.builder.label(match.group(1))
                except ProgramError as exc:
                    raise self.error(lineno, str(exc)) from None
                continue
            self._instruction(lineno, line)
        return self.builder.build()

    def _clean_lines(self) -> List[Tuple[int, str]]:
        result = []
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if line:
                result.append((lineno, line))
        return result

    # ------------------------------------------------------------------

    def _directive(self, lineno: int, line: str) -> None:
        parts = line.split()
        directive, args = parts[0], parts[1:]
        try:
            if directive == ".global":
                name = args[0]
                value = _parse_int(args[1]) if len(args) > 1 else 0
                self.symbols[name] = self.builder.global_word(name, value)
            elif directive == ".array":
                name = args[0]
                values = [_parse_int(a) for a in args[1:]]
                self.symbols[name] = self.builder.global_array(name, values)
            elif directive == ".reserve":
                name = args[0]
                words = _parse_int(args[1])
                self.symbols[name] = self.builder.reserve(name, words)
            elif directive == ".ptr":
                # A global initialized (in the data segment) with the
                # address of another symbol: `.ptr cache_ptr cache`.
                name, target = args[0], args[1]
                if target not in self.symbols:
                    raise self.error(
                        lineno, f"unknown symbol {target!r} for .ptr"
                    )
                self.symbols[name] = self.builder.global_word(
                    name, self.symbols[target]
                )
            else:
                raise self.error(lineno, f"unknown directive {directive!r}")
        except (IndexError, ValueError) as exc:
            raise self.error(lineno, f"bad directive {line!r}: {exc}") from None

    # ------------------------------------------------------------------

    def _instruction(self, lineno: int, line: str) -> None:
        mnemonic, _, rest = line.partition(" ")
        op = _OPS_BY_NAME.get(mnemonic.strip())
        if op is None:
            raise self.error(lineno, f"unknown mnemonic {mnemonic!r}")
        fields = [f.strip() for f in self._split_operands(rest)] if rest.strip() else []

        target: Optional[str] = None
        operands: List[Operand] = []
        if op in _TARGET_ONLY_OPS:
            if len(fields) != 1:
                raise self.error(lineno, f"{op.value} expects one target")
            if fields[0].startswith("%"):
                operands.append(self._operand(lineno, fields[0]))
            else:
                target = fields[0]
        elif op == Op.SPAWN:
            # spawn entry_label [, %tid_dst]
            if not fields:
                raise self.error(lineno, "spawn expects an entry label")
            target = fields[0]
            dst = self._operand(lineno, fields[1]) if len(fields) > 1 else Reg("rax")
            operands.append(dst)
        else:
            operands = [self._operand(lineno, f) for f in fields]

        ins = Instruction(op, tuple(operands), target)
        self._fixup_rip_relative(lineno, ins)

    def _fixup_rip_relative(self, lineno: int, ins: Instruction) -> None:
        """Resolve symbolic RIP-relative displacements at the emit site.

        ``name(%rip)`` must encode ``disp = symbol_address - insn_address``;
        the instruction address is only known now, at emit time.
        """
        address = len(self.builder._instructions)
        fixed = []
        for operand in ins.operands:
            if isinstance(operand, _SymbolicRip):
                sym = operand.symbol
                if sym not in self.symbols:
                    raise self.error(lineno, f"unknown symbol {sym!r}")
                fixed.append(
                    Mem(disp=self.symbols[sym] - address, rip_relative=True)
                )
            else:
                fixed.append(operand)
        self.builder.emit(Instruction(ins.op, tuple(fixed), ins.target))

    @staticmethod
    def _split_operands(text: str) -> List[str]:
        """Split on commas not inside parentheses."""
        fields, depth, current = [], 0, []
        for ch in text:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            if ch == "," and depth == 0:
                fields.append("".join(current))
                current = []
            else:
                current.append(ch)
        if current:
            fields.append("".join(current))
        return fields

    # ------------------------------------------------------------------

    def _operand(self, lineno: int, text: str) -> Operand:
        text = text.strip()
        if text.startswith("%"):
            try:
                return Reg(text[1:])
            except ValueError as exc:
                raise self.error(lineno, str(exc)) from None
        if text.startswith("$"):
            body = text[1:]
            if body in self.symbols:
                return Imm(self.symbols[body])
            try:
                return Imm(_parse_int(body))
            except ValueError:
                raise self.error(lineno, f"bad immediate {text!r}") from None
        match = _MEM_RE.match(text)
        if match:
            return self._memory_operand(lineno, match)
        raise self.error(lineno, f"unparseable operand {text!r}")

    def _memory_operand(self, lineno: int, match: "re.Match[str]") -> Mem:
        disp_text = match.group("disp")
        inner = [p.strip() for p in match.group("inner").split(",")]
        if inner == ["%rip"]:
            if disp_text is None:
                raise self.error(lineno, "rip-relative operand needs a disp")
            if re.fullmatch(r"[-+]?(?:0x[0-9a-fA-F]+|\d+)", disp_text):
                return Mem(disp=_parse_int(disp_text), rip_relative=True)
            # Symbolic: defer resolution to the emit-site fixup.
            return _SymbolicRip(disp_text)
        disp = 0
        if disp_text is not None:
            if disp_text in self.symbols:
                disp = self.symbols[disp_text]
            else:
                try:
                    disp = _parse_int(disp_text)
                except ValueError:
                    raise self.error(
                        lineno, f"unknown symbol {disp_text!r}"
                    ) from None
        base = index = None
        scale = 1
        if inner and inner[0]:
            base = inner[0].lstrip("%") or None
        if len(inner) > 1 and inner[1]:
            index = inner[1].lstrip("%")
        if len(inner) > 2 and inner[2]:
            scale = _parse_int(inner[2])
        try:
            return Mem(base=base, index=index, scale=scale, disp=disp)
        except ValueError as exc:
            raise self.error(lineno, str(exc)) from None


def assemble(source: str, name: str = "a.out") -> Program:
    """Assemble *source* text into a :class:`Program`."""
    return _Assembler(source, name).assemble()
