"""Operand types for the repro ISA.

Three operand kinds mirror x86-64: registers, immediates, and memory
references with the full ``base + index*scale + disp`` addressing mode,
including RIP-relative addressing.  The addressing mode matters because
ProRace's detection coverage per bug depends on it (Table 2 classifies the
racy access of each bug as *memory indirect*, *register indirect*, or
*pc relative*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from .registers import check_register, to_signed

_VALID_SCALES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Reg:
    """A register operand, e.g. ``Reg("rax")``."""

    name: str

    def __post_init__(self) -> None:
        check_register(self.name)

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate (constant) operand."""

    value: int

    def __str__(self) -> str:
        return f"${self.value:#x}" if abs(self.value) > 9 else f"${self.value}"


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``disp(base, index, scale)`` or RIP-relative.

    The effective address is::

        base? + index?*scale + disp          (rip_relative=False)
        address_of_instruction + disp        (rip_relative=True)

    RIP-relative operands are the easy case for ProRace: the instruction
    pointer is always known from the PT control-flow trace, so the address
    is reconstructible without any PEBS register context (§5.1, Table 2).
    """

    base: Optional[str] = None
    index: Optional[str] = None
    scale: int = 1
    disp: int = 0
    rip_relative: bool = False

    def __post_init__(self) -> None:
        if self.base is not None:
            check_register(self.base)
        if self.index is not None:
            check_register(self.index)
        if self.scale not in _VALID_SCALES:
            raise ValueError(f"scale must be one of {_VALID_SCALES}: {self.scale}")
        if self.rip_relative and (self.base or self.index):
            raise ValueError("rip-relative addressing cannot use base/index")

    def address_registers(self) -> FrozenSet[str]:
        """Registers needed to compute the effective address.

        RIP-relative operands need none — ``rip`` is always available
        during replay.
        """
        regs = set()
        if self.base:
            regs.add(self.base)
        if self.index:
            regs.add(self.index)
        return frozenset(regs)

    def __str__(self) -> str:
        if self.rip_relative:
            return f"{self.disp:#x}(%rip)"
        parts = ""
        if self.base:
            parts += f"%{self.base}"
        if self.index:
            parts += f",%{self.index},{self.scale}"
        disp = f"{to_signed(self.disp):#x}" if self.disp else ""
        return f"{disp}({parts})"


Operand = Reg | Imm | Mem
