"""Instruction definitions for the repro ISA.

The instruction set is a compact x86-64 subset chosen so that every
mechanism ProRace's offline replay must handle exists here:

* loads/stores with ``base + index*scale + disp`` and RIP-relative
  addressing (availability of address registers decides reconstructibility);
* two-operand ALU arithmetic (drives *reverse execution*, §5.2.2);
* register-to-register moves (drive *backward propagation*, §5.2.1);
* calls/returns and conditional branches (resolved offline purely from the
  PT control-flow trace);
* "system" operations — thread spawn/join, mutexes, semaphores, allocation,
  blocking I/O — which the machine executes natively and which force the
  replay engine to conservatively invalidate its emulated memory (§5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from .operands import Mem, Operand, Reg


class Op(enum.Enum):
    """Opcodes, grouped by category."""

    # Data movement
    MOV = "mov"
    LEA = "lea"
    PUSH = "push"
    POP = "pop"

    # ALU (two-operand: dst = dst <op> src), plus one-operand forms
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    IMUL = "imul"
    SHL = "shl"
    SHR = "shr"
    NEG = "neg"
    NOT = "not"
    INC = "inc"
    DEC = "dec"

    # Flags
    CMP = "cmp"
    TEST = "test"

    # Control flow
    JMP = "jmp"
    JE = "je"
    JNE = "jne"
    JL = "jl"
    JLE = "jle"
    JG = "jg"
    JGE = "jge"
    CALL = "call"
    RET = "ret"

    # System / synchronization (opaque to the replay engine)
    SPAWN = "spawn"
    JOIN = "join"
    LOCK = "lock"
    UNLOCK = "unlock"
    SEM_POST = "sem_post"
    SEM_WAIT = "sem_wait"
    COND_WAIT = "cond_wait"
    COND_SIGNAL = "cond_signal"
    COND_BROADCAST = "cond_broadcast"
    RWLOCK_RD = "rwlock_rd"
    RWLOCK_WR = "rwlock_wr"
    RWLOCK_UNLOCK = "rwlock_unlock"
    BARRIER_WAIT = "barrier_wait"
    MALLOC = "malloc"
    FREE = "free"
    IO = "io"
    HALT = "halt"
    NOP = "nop"


#: ALU opcodes with two register/immediate/memory operands.
ALU_BINARY = frozenset(
    {Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL, Op.SHL, Op.SHR}
)

#: ALU opcodes with a single register operand.
ALU_UNARY = frozenset({Op.NEG, Op.NOT, Op.INC, Op.DEC})

#: Opcodes whose dst = dst op src form is invertible given dst' and one
#: operand — the reverse-execution set (§5.2.2).  The paper's engine
#: "currently supports reverse execution of integer arithmetic instructions
#: such as additions and subtractions"; we support the same set.
REVERSIBLE_ALU = frozenset({Op.ADD, Op.SUB, Op.XOR})

#: Conditional branches and their flag predicates.
COND_BRANCHES = frozenset({Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE})

#: Opcodes the replay engine treats as system calls: it cannot model their
#: effects, so emulated memory is invalidated and outputs become unavailable.
SYSTEM_OPS = frozenset(
    {
        Op.SPAWN,
        Op.JOIN,
        Op.LOCK,
        Op.UNLOCK,
        Op.SEM_POST,
        Op.SEM_WAIT,
        Op.COND_WAIT,
        Op.COND_SIGNAL,
        Op.COND_BROADCAST,
        Op.RWLOCK_RD,
        Op.RWLOCK_WR,
        Op.RWLOCK_UNLOCK,
        Op.BARRIER_WAIT,
        Op.MALLOC,
        Op.FREE,
        Op.IO,
    }
)

#: Synchronization opcodes the runtime sync tracer logs (§4.3).
SYNC_OPS = frozenset(
    {
        Op.LOCK,
        Op.UNLOCK,
        Op.SEM_POST,
        Op.SEM_WAIT,
        Op.COND_WAIT,
        Op.COND_SIGNAL,
        Op.COND_BROADCAST,
        Op.RWLOCK_RD,
        Op.RWLOCK_WR,
        Op.RWLOCK_UNLOCK,
        Op.BARRIER_WAIT,
        Op.SPAWN,
        Op.JOIN,
    }
)


@dataclass(frozen=True)
class Instruction:
    """A single decoded instruction.

    Attributes:
        op: the opcode.
        operands: operand tuple; AT&T-style order ``(src, dst)`` for
            two-operand forms (matching the paper's Figure 5 listings).
        target: label name for direct branches / calls / spawns.
        comment: free-form annotation carried through the assembler.
    """

    op: Op
    operands: Tuple[Operand, ...] = ()
    target: Optional[str] = None
    comment: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    # Classification helpers (used by the machine, PT encoder and replay)
    # ------------------------------------------------------------------

    def is_branch(self) -> bool:
        """Any instruction that may divert control flow."""
        return self.op in COND_BRANCHES or self.op in (Op.JMP, Op.CALL, Op.RET)

    def is_cond_branch(self) -> bool:
        return self.op in COND_BRANCHES

    def is_system(self) -> bool:
        return self.op in SYSTEM_OPS

    def is_sync(self) -> bool:
        return self.op in SYNC_OPS

    # ------------------------------------------------------------------
    # Memory access classification
    # ------------------------------------------------------------------

    def memory_operand(self) -> Optional[Mem]:
        """The single memory operand, if any (mem-to-mem is not encodable)."""
        for operand in self.operands:
            if isinstance(operand, Mem):
                return operand
        if self.op in (Op.PUSH, Op.POP, Op.CALL, Op.RET):
            # Implicit stack access through rsp.
            return Mem(base="rsp")
        return None

    def is_load(self) -> bool:
        """True if this instruction reads memory when retired."""
        mem = self.memory_operand()
        if mem is None:
            return False
        if self.op in (Op.POP, Op.RET):
            return True
        if self.op in (Op.PUSH, Op.CALL, Op.LEA):
            return False
        if self.op == Op.MOV:
            return isinstance(self.operands[0], Mem)
        # ALU / CMP / TEST with a memory operand read it.
        return True

    def is_store(self) -> bool:
        """True if this instruction writes memory when retired."""
        mem = self.memory_operand()
        if mem is None:
            return False
        if self.op in (Op.PUSH, Op.CALL):
            return True
        if self.op in (Op.POP, Op.RET, Op.LEA):
            return False
        if self.op == Op.MOV:
            return isinstance(self.operands[1], Mem)
        return False

    def is_memory_access(self) -> bool:
        return self.is_load() or self.is_store()

    # ------------------------------------------------------------------
    # Dataflow metadata for the replay engine
    # ------------------------------------------------------------------

    def reads_registers(self) -> FrozenSet[str]:
        """Registers whose values this instruction consumes.

        Includes address registers of any memory operand.  ``rip`` is
        never listed — it is always available during replay.
        """
        regs: set[str] = set()
        for operand in self.operands:
            if isinstance(operand, Mem):
                regs |= operand.address_registers()
        if self.op == Op.MOV:
            src = self.operands[0]
            if isinstance(src, Reg):
                regs.add(src.name)
        elif self.op == Op.LEA:
            pass  # only address registers, already collected
        elif self.op in ALU_BINARY:
            src, dst = self.operands
            if isinstance(src, Reg):
                regs.add(src.name)
            assert isinstance(dst, Reg)
            regs.add(dst.name)
        elif self.op in ALU_UNARY:
            (dst,) = self.operands
            assert isinstance(dst, Reg)
            regs.add(dst.name)
        elif self.op in (Op.CMP, Op.TEST):
            for operand in self.operands:
                if isinstance(operand, Reg):
                    regs.add(operand.name)
        elif self.op == Op.PUSH:
            src = self.operands[0]
            if isinstance(src, Reg):
                regs.add(src.name)
            regs.add("rsp")
        elif self.op in (Op.POP, Op.RET):
            regs.add("rsp")
        elif self.op == Op.CALL:
            regs.add("rsp")
            if self.operands and isinstance(self.operands[0], Reg):
                regs.add(self.operands[0].name)
        elif self.op == Op.JMP and self.operands:
            if isinstance(self.operands[0], Reg):
                regs.add(self.operands[0].name)
        elif self.op in SYSTEM_OPS:
            inputs = self.operands
            if self.op == Op.SPAWN:
                inputs = ()  # sole operand is the tid destination
            elif self.op == Op.MALLOC:
                inputs = self.operands[:1]  # (size, dst): only size is read
            for operand in inputs:
                if isinstance(operand, Reg):
                    regs.add(operand.name)
        return frozenset(regs)

    def writes_registers(self) -> FrozenSet[str]:
        """Registers this instruction overwrites."""
        regs: set[str] = set()
        if self.op in (Op.MOV, Op.LEA):
            dst = self.operands[1]
            if isinstance(dst, Reg):
                regs.add(dst.name)
        elif self.op in ALU_BINARY:
            dst = self.operands[1]
            assert isinstance(dst, Reg)
            regs.add(dst.name)
        elif self.op in ALU_UNARY:
            (dst,) = self.operands
            assert isinstance(dst, Reg)
            regs.add(dst.name)
        elif self.op == Op.PUSH:
            regs.add("rsp")
        elif self.op == Op.POP:
            dst = self.operands[0]
            assert isinstance(dst, Reg)
            regs.add(dst.name)
            regs.add("rsp")
        elif self.op in (Op.CALL, Op.RET):
            regs.add("rsp")
        elif self.op == Op.SPAWN:
            # Thread id is written to the destination operand.
            if self.operands and isinstance(self.operands[0], Reg):
                regs.add(self.operands[0].name)
        elif self.op == Op.MALLOC:
            # Allocation address is written to the destination operand.
            if len(self.operands) > 1 and isinstance(self.operands[1], Reg):
                regs.add(self.operands[1].name)
        return frozenset(regs)

    def __str__(self) -> str:
        parts = [self.op.value]
        rendered = [str(o) for o in self.operands]
        if self.target is not None:
            rendered.append(self.target)
        if rendered:
            parts.append(" " + ",".join(rendered))
        return "".join(parts)
