"""Shared instruction semantics: ALU arithmetic, flags, effective addresses.

Both the online machine (:mod:`repro.machine`) and the offline replay
engine (:mod:`repro.replay`) execute instructions; this module holds the
arithmetic they must agree on, so reconstruction soundness (replayed
addresses == machine-issued addresses) reduces to the replay engine's
availability logic rather than divergent arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from .instructions import Op
from .operands import Mem
from .registers import MASK64, to_signed


@dataclass(frozen=True)
class Flags:
    """Condition flags produced by CMP/TEST (and consumed by Jcc).

    Only the zero and sign flags are modelled; the conditional branches in
    the ISA (JE/JNE/JL/JLE/JG/JGE) are all expressible via signed compare
    outcome, which we keep directly as ``lt``/``eq``.
    """

    eq: bool = False
    lt: bool = False

    def taken(self, op: Op) -> bool:
        """Whether conditional branch *op* is taken under these flags."""
        if op == Op.JE:
            return self.eq
        if op == Op.JNE:
            return not self.eq
        if op == Op.JL:
            return self.lt
        if op == Op.JLE:
            return self.lt or self.eq
        if op == Op.JG:
            return not (self.lt or self.eq)
        if op == Op.JGE:
            return not self.lt
        raise ValueError(f"not a conditional branch: {op}")


def compare(a: int, b: int) -> Flags:
    """Signed comparison of two 64-bit values (CMP a, b → flags for b?a).

    Matching AT&T ``cmp src, dst`` convention: the flags describe
    ``dst - src``, i.e. ``cmp $3, %rax`` then ``jl`` branches if rax < 3.
    """
    sa, sb = to_signed(a), to_signed(b)
    return Flags(eq=(sb == sa), lt=(sb < sa))


def test_bits(a: int, b: int) -> Flags:
    """TEST a, b → flags of (a & b)."""
    value = a & b & MASK64
    return Flags(eq=(value == 0), lt=(to_signed(value) < 0))


_ALU_FUNCS: Dict[Op, Callable[[int, int], int]] = {
    # dst = dst <op> src, AT&T order f(src, dst)
    Op.ADD: lambda src, dst: dst + src,
    Op.SUB: lambda src, dst: dst - src,
    Op.AND: lambda src, dst: dst & src,
    Op.OR: lambda src, dst: dst | src,
    Op.XOR: lambda src, dst: dst ^ src,
    Op.IMUL: lambda src, dst: to_signed(dst) * to_signed(src),
    Op.SHL: lambda src, dst: dst << (src & 63),
    Op.SHR: lambda src, dst: dst >> (src & 63),
}

_UNARY_FUNCS: Dict[Op, Callable[[int], int]] = {
    Op.NEG: lambda dst: -dst,
    Op.NOT: lambda dst: ~dst,
    Op.INC: lambda dst: dst + 1,
    Op.DEC: lambda dst: dst - 1,
}


def alu(op: Op, src: int, dst: int) -> int:
    """Compute a two-operand ALU result, 64-bit wrapped."""
    try:
        return _ALU_FUNCS[op](src, dst) & MASK64
    except KeyError:
        raise ValueError(f"not a binary ALU op: {op}") from None


def alu_unary(op: Op, dst: int) -> int:
    """Compute a one-operand ALU result, 64-bit wrapped."""
    try:
        return _UNARY_FUNCS[op](dst) & MASK64
    except KeyError:
        raise ValueError(f"not a unary ALU op: {op}") from None


def reverse_alu(op: Op, src: int, result: int) -> int:
    """Recover the *old* dst of ``dst = dst op src`` from src and result.

    This is the reverse-execution primitive (§5.2.2): ADD/SUB/XOR are
    invertible in the source operand.

    Raises:
        ValueError: if *op* is not reversible.
    """
    if op == Op.ADD:
        return (result - src) & MASK64
    if op == Op.SUB:
        return (result + src) & MASK64
    if op == Op.XOR:
        return (result ^ src) & MASK64
    raise ValueError(f"not reversible: {op}")


def reverse_alu_src(op: Op, dst_before: int, result: int) -> int:
    """Recover the *src* operand of ``dst = dst op src`` from old dst and
    result — the other direction of reverse execution."""
    if op == Op.ADD:
        return (result - dst_before) & MASK64
    if op == Op.SUB:
        return (dst_before - result) & MASK64
    if op == Op.XOR:
        return (result ^ dst_before) & MASK64
    raise ValueError(f"not reversible: {op}")


def effective_address(mem: Mem, registers: Mapping[str, int], ip: int) -> int:
    """Compute a memory operand's effective address.

    Args:
        mem: the memory operand.
        registers: any mapping from register name to value (a concrete
            register file or the replay engine's program map view).
        ip: the address of the instruction itself (for RIP-relative).
    """
    if mem.rip_relative:
        return (ip + mem.disp) & MASK64
    address = mem.disp
    if mem.base:
        address += registers[mem.base]
    if mem.index:
        address += registers[mem.index] * mem.scale
    return address & MASK64
