"""Baseline detectors the paper compares against or discusses (§2):
RaceZ, LiteRace, Pacer, DataCollider."""

from .datacollider import (
    Collision,
    DataCollider,
    MAX_WATCHPOINTS,
    run_datacollider,
)
from .literace import LiteRace, run_literace
from .pacer import Pacer, run_pacer
from .racez import RaceZ

__all__ = [
    "Collision",
    "DataCollider",
    "LiteRace",
    "MAX_WATCHPOINTS",
    "Pacer",
    "RaceZ",
    "run_datacollider",
    "run_literace",
    "run_pacer",
]
