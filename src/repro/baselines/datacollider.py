"""The DataCollider baseline (Erickson et al., OSDI 2010).

DataCollider avoids instrumentation: it samples a code/memory location,
arms a hardware *data breakpoint* on the sampled address, and delays the
sampling thread; a trap during the delay means another thread touched the
same address concurrently — a race caught in the act (§2).  Two hardware
limits shape its coverage: x86 exposes only **four** debug registers, and
longer delays increase both the overlap chance and the overhead.

The model: an observer samples every k-th access; if a debug register is
free, it arms a watchpoint (address, expiry = tsc + delay); any other
thread's access to a watched address before expiry is a detected race.
The *sampling thread's delay* is charged as overhead (the paper's
delay-proportional cost) but does not perturb the simulated schedule —
consistent with how all cost models in this reproduction work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.program import Program
from ..machine.machine import Machine
from ..machine.observers import MachineObserver, MemoryAccessEvent

#: x86 debug-register count (§2: "hardware restrictions limit the number
#: of concurrently monitored memory locations to four").
MAX_WATCHPOINTS = 4


@dataclass(frozen=True)
class Collision:
    """A conflicting pair caught by a watchpoint."""

    address: int
    first_tid: int
    first_ip: int
    first_is_store: bool
    second_tid: int
    second_ip: int
    second_is_store: bool
    tsc: int


@dataclass
class _Watchpoint:
    address: int
    owner_tid: int
    owner_ip: int
    owner_is_store: bool
    expires: int


class DataCollider(MachineObserver):
    """Breakpoint-and-delay race detector."""

    def __init__(
        self,
        program: Program,
        period: int = 1_000,
        delay_cycles: int = 200,
        seed: int = 0,
    ) -> None:
        import random

        self.program = program
        self.period = period
        self.delay_cycles = delay_cycles
        self._rng = random.Random(seed)
        self._countdown = self._rng.randint(1, period)
        self._watchpoints: List[_Watchpoint] = []
        self.collisions: List[Collision] = []
        self.samples = 0
        self.delays = 0

    def on_memory_access(self, event: MemoryAccessEvent, registers) -> None:
        # Check standing watchpoints first: a hit is a race in the act.
        remaining = []
        for wp in self._watchpoints:
            if wp.expires < event.tsc:
                continue  # expired
            if wp.address == event.address and wp.owner_tid != event.tid:
                # Read-read overlaps are not races.
                if wp.owner_is_store or event.is_store:
                    self.collisions.append(
                        Collision(
                            address=wp.address,
                            first_tid=wp.owner_tid,
                            first_ip=wp.owner_ip,
                            first_is_store=wp.owner_is_store,
                            second_tid=event.tid,
                            second_ip=event.ip,
                            second_is_store=event.is_store,
                            tsc=event.tsc,
                        )
                    )
                continue  # breakpoint consumed
            remaining.append(wp)
        self._watchpoints = remaining

        # Sampling decision.
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.period
        self.samples += 1
        if len(self._watchpoints) >= MAX_WATCHPOINTS:
            return  # all four debug registers busy
        self.delays += 1
        self._watchpoints.append(
            _Watchpoint(
                address=event.address,
                owner_tid=event.tid,
                owner_ip=event.ip,
                owner_is_store=event.is_store,
                expires=event.tsc + self.delay_cycles,
            )
        )

    # -- results -----------------------------------------------------------

    def racy_addresses(self) -> frozenset:
        return frozenset(c.address for c in self.collisions)

    def racy_ip_pairs(self) -> frozenset:
        return frozenset(
            tuple(sorted((c.first_ip, c.second_ip))) for c in self.collisions
        )

    def overhead_cycles(self) -> int:
        """Each armed watchpoint delays its thread for the full window."""
        return self.delays * self.delay_cycles


def run_datacollider(
    program: Program,
    period: int = 1_000,
    delay_cycles: int = 200,
    seed: int = 0,
    num_cores: int = 4,
) -> DataCollider:
    """Run *program* under DataCollider; returns the finished detector."""
    machine = Machine(program, num_cores=num_cores, seed=seed)
    collider = DataCollider(
        program, period=period, delay_cycles=delay_cycles, seed=seed + 1
    )
    machine.attach(collider)
    machine.run()
    return collider
