"""The Pacer baseline (Bond et al., PLDI 2010).

Pacer samples *time windows*: with sampling rate ``r``, a fraction ``r``
of execution runs with full FastTrack tracking; outside windows it keeps
only enough state to detect races whose first access fell inside a
window.  Its detection probability is therefore "approximately
proportional to the sampling rate" (§2), and its instrumentation still
costs ~1.86x at r = 3%.

The model: the machine's retirement stream is chopped into fixed-length
windows; within sampled windows every access feeds FastTrack; outside
them, accesses to variables whose shadow state was created inside a
window are still checked (Pacer's "second access detection") but create
no new shadow state.
"""

from __future__ import annotations

import random
from typing import Set, Tuple

from ..detector.events import Access, AccessKind, SyncOp
from ..detector.fasttrack import FastTrack
from ..isa.program import Program
from ..machine.machine import Machine
from ..machine.observers import MachineObserver, MemoryAccessEvent, SyncEvent

#: Instrumentation cost constants (cycles).
BARRIER_CHECK_CYCLES = 3
TRACKED_ACCESS_CYCLES = 60


class Pacer(MachineObserver):
    """Window-sampling FastTrack."""

    def __init__(
        self,
        program: Program,
        sampling_rate: float = 0.03,
        window_cycles: int = 2_000,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= sampling_rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0,1]: {sampling_rate}")
        self.program = program
        self.sampling_rate = sampling_rate
        self.window_cycles = window_cycles
        self.detector = FastTrack()
        self._rng = random.Random(seed)
        self._window_end = 0
        self._window_sampled = False
        self._tracked_vars: Set[Tuple[int, int]] = set()
        self.tracked_accesses = 0
        self.barrier_checks = 0

    def _in_sampled_window(self, tsc: int) -> bool:
        if tsc >= self._window_end:
            self._window_end = tsc + self.window_cycles
            self._window_sampled = self._rng.random() < self.sampling_rate
        return self._window_sampled

    def on_memory_access(self, event: MemoryAccessEvent, registers) -> None:
        self.barrier_checks += 1
        var = (event.address, 0)
        sampled = self._in_sampled_window(event.tsc)
        if not sampled and var not in self._tracked_vars:
            return
        if sampled:
            self._tracked_vars.add(var)
        self.tracked_accesses += 1
        self.detector.access(
            Access(
                tid=event.tid,
                var=var,
                kind=AccessKind.WRITE if event.is_store else AccessKind.READ,
                ip=event.ip,
                tsc=float(event.tsc),
                provenance="pacer",
            )
        )

    def on_sync(self, event: SyncEvent) -> None:
        # Pacer always tracks synchronization (vector clocks must stay
        # sound even between sampled windows).
        self.detector.sync(
            SyncOp(tid=event.tid, kind=event.kind, target=event.target,
                   tsc=float(event.tsc))
        )

    def racy_addresses(self) -> frozenset:
        return self.detector.racy_addresses()

    def overhead_cycles(self) -> int:
        return (
            self.barrier_checks * BARRIER_CHECK_CYCLES
            + self.tracked_accesses * TRACKED_ACCESS_CYCLES
        )


def run_pacer(program: Program, sampling_rate: float = 0.03, seed: int = 0,
              num_cores: int = 4) -> Pacer:
    """Run *program* under Pacer; returns the finished detector."""
    machine = Machine(program, num_cores=num_cores, seed=seed)
    pacer = Pacer(program, sampling_rate=sampling_rate, seed=seed + 1)
    machine.attach(pacer)
    machine.run()
    return pacer
