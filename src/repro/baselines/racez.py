"""The RaceZ baseline (Sheng et al., ICSE 2011).

RaceZ is the closest prior work (§2, §7): it also samples memory accesses
with PEBS, but (a) it relies on the stock Linux PEBS driver, so it must
use large sampling periods to stay affordable, and (b) its memory-trace
reconstruction is confined to the single basic block containing each
sample, with only trivial backward propagation inside that block.

In this reproduction RaceZ is exactly that configuration of the shared
machinery: the ``vanilla`` driver model plus the ``basicblock`` replay
mode.  This module packages the combination behind one name so
experiments read like the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.pipeline import DetectionResult, OfflinePipeline
from ..isa.program import Program
from ..pmu.drivers import DriverModel, VANILLA_DRIVER
from ..tracing.bundle import TraceBundle, trace_run


@dataclass(frozen=True)
class RaceZ:
    """RaceZ: vanilla-driver PEBS sampling + basic-block reconstruction."""

    driver: DriverModel = VANILLA_DRIVER
    mode: str = "basicblock"

    def trace(self, program: Program, period: int, seed: int = 0,
              num_cores: int = 4) -> TraceBundle:
        """Collect one RaceZ trace (stock driver; PT is not used, but the
        bundle still carries PT data — the basic-block replay mode ignores
        everything outside each sample's block, matching RaceZ's
        capability)."""
        return trace_run(
            program, period=period, driver=self.driver, seed=seed,
            num_cores=num_cores,
        )

    def analyze(self, program: Program, bundle: TraceBundle
                ) -> DetectionResult:
        return OfflinePipeline(program, mode=self.mode).analyze(bundle)

    def detect(self, program: Program, period: int, seed: int = 0
               ) -> DetectionResult:
        return self.analyze(program, self.trace(program, period, seed))
