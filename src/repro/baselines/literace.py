"""The LiteRace baseline (Marino et al., PLDI 2009).

LiteRace instruments the program and samples at *function* granularity
with a cold-region heuristic: each function starts at a 100% sampling
rate that decays as the function gets hot, "based on the heuristic that
for a well-tested application, data races are likely to occur in such a
cold region" (§2).  Instrumentation means the application pays a check on
every function entry (dispatch between instrumented and bare copies) and
a logging cost for every access executed while its function is sampled —
which is why the paper reports 1.47x average slowdown and up to ~3x for
CPU-intensive applications.

Here LiteRace attaches to the machine as an observer: function entries
are CALL targets; the sampler implements the adaptive burst ("cold region
hypothesis") rate; sampled accesses and all sync operations feed the
shared FastTrack detector online.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..detector.events import Access, AccessKind, SyncOp
from ..detector.fasttrack import FastTrack
from ..isa.program import Program
from ..machine.machine import Machine
from ..machine.observers import (
    BranchEvent,
    MachineObserver,
    MemoryAccessEvent,
    SyncEvent,
)

#: Instrumentation cost constants (cycles), following the same 1-cycle =
#: 1 ns convention as :mod:`repro.analysis.costs`.
DISPATCH_CHECK_CYCLES = 4
LOGGED_ACCESS_CYCLES = 45


@dataclass
class _FunctionSampler:
    """LiteRace's adaptive per-function sampling rate.

    Starts at 100%; after each sampled burst the rate decays by half down
    to a floor (the paper's bursty, cold-biased curve)."""

    rate: float = 1.0
    floor: float = 0.001
    decay: float = 0.5
    executions: int = 0

    def should_sample(self, draw: float) -> bool:
        self.executions += 1
        sampled = draw < self.rate
        if sampled:
            self.rate = max(self.floor, self.rate * self.decay)
        return sampled


class LiteRace(MachineObserver):
    """Instrumentation-based cold-region sampling race detector."""

    def __init__(self, program: Program, seed: int = 0) -> None:
        import random

        self.program = program
        self.detector = FastTrack()
        self._samplers: Dict[int, _FunctionSampler] = {}
        self._rng = random.Random(seed)
        #: Threads currently inside a sampled burst.
        self._sampling: Set[int] = set()
        self.dispatch_checks = 0
        self.logged_accesses = 0

    # -- sampling control --------------------------------------------------

    def on_thread_start(self, tsc: int, tid: int, core: int, ip: int) -> None:
        # A thread entry behaves like a function entry.
        self._enter_function(tid, ip)

    def on_branch(self, event: BranchEvent) -> None:
        if event.is_call:
            self._enter_function(event.tid, event.target)

    def _enter_function(self, tid: int, entry_ip: int) -> None:
        self.dispatch_checks += 1
        sampler = self._samplers.setdefault(entry_ip, _FunctionSampler())
        if sampler.should_sample(self._rng.random()):
            self._sampling.add(tid)
        else:
            self._sampling.discard(tid)

    # -- event consumption ---------------------------------------------------

    def on_memory_access(self, event: MemoryAccessEvent,
                         registers) -> None:
        if event.tid not in self._sampling:
            return
        self.logged_accesses += 1
        self.detector.access(
            Access(
                tid=event.tid,
                var=(event.address, 0),
                kind=AccessKind.WRITE if event.is_store else AccessKind.READ,
                ip=event.ip,
                tsc=float(event.tsc),
                provenance="literace",
            )
        )

    def on_sync(self, event: SyncEvent) -> None:
        # Sync is always tracked (required for happens-before soundness).
        self.detector.sync(
            SyncOp(tid=event.tid, kind=event.kind, target=event.target,
                   tsc=float(event.tsc))
        )

    # -- results ---------------------------------------------------------

    def racy_addresses(self) -> frozenset:
        return self.detector.racy_addresses()

    def overhead_cycles(self) -> int:
        """Instrumentation cycles added to the application."""
        return (
            self.dispatch_checks * DISPATCH_CHECK_CYCLES
            + self.logged_accesses * LOGGED_ACCESS_CYCLES
        )


def run_literace(program: Program, seed: int = 0,
                 num_cores: int = 4) -> LiteRace:
    """Run *program* under LiteRace; returns the finished detector."""
    machine = Machine(program, num_cores=num_cores, seed=seed)
    literace = LiteRace(program, seed=seed + 1)
    machine.attach(literace)
    machine.run()
    return literace
