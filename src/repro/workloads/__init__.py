"""Workload library: PARSEC-like kernels, real-app models, Table 2 race
bugs, and a random program generator for property tests."""

from typing import Dict

from .apps import APP_WORKLOADS
from .common import BENCH, SMALL, Workload, WorkloadScale, pool_program
from .generator import (
    GeneratorConfig,
    ServerConfig,
    generate_program,
    generate_racy_program,
    generate_server_program,
)
from .parsec import PARSEC_WORKLOADS
from .racebugs import (
    MEMORY_INDIRECT,
    PC_RELATIVE,
    RACE_BUGS,
    REGISTER_INDIRECT,
    RaceBug,
)

#: Every catalogued workload by name.
ALL_WORKLOADS: Dict[str, Workload] = {**PARSEC_WORKLOADS, **APP_WORKLOADS}

__all__ = [
    "ALL_WORKLOADS",
    "APP_WORKLOADS",
    "BENCH",
    "GeneratorConfig",
    "ServerConfig",
    "MEMORY_INDIRECT",
    "PARSEC_WORKLOADS",
    "PC_RELATIVE",
    "RACE_BUGS",
    "REGISTER_INDIRECT",
    "RaceBug",
    "SMALL",
    "Workload",
    "WorkloadScale",
    "generate_program",
    "generate_racy_program",
    "generate_server_program",
    "pool_program",
]
