"""Random program generator for property-based testing.

Generates seeded multithreaded programs whose ground truth the machine
can record, so hypothesis-style tests can assert reproduction soundness
(every reconstructed address equals the address the machine issued) over
a wide space of register/memory dataflow shapes — including the patterns
that stress forward replay (loads killing availability), backward
propagation (long live ranges), and reverse execution (ADD/SUB/XOR
chains).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..isa.instructions import Op
from ..isa.operands import Imm, Mem, Reg
from ..isa.program import Program, ProgramBuilder

#: Registers the generator plays with (a subset keeps collisions and
#: live ranges interesting; rsp is reserved for the implicit stack).
_GEN_REGS = ("rax", "rbx", "rdx", "rsi", "rdi",
             "r10", "r11", "r12", "r13", "r14", "r15")

_ALU_OPS = (Op.ADD, Op.SUB, Op.XOR, Op.AND, Op.OR, Op.IMUL)
_UNARY_OPS = (Op.INC, Op.DEC, Op.NEG, Op.NOT)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for random program generation."""

    threads: int = 2
    body_length: int = 60
    data_words: int = 16
    loop_iterations: int = 3
    locked_fraction: float = 0.3
    pointer_fraction: float = 0.15


def generate_program(seed: int,
                     config: Optional[GeneratorConfig] = None) -> Program:
    """Generate a deterministic random multithreaded program.

    The program always terminates: loops use fixed trip counts and all
    synchronization is a single global mutex (no deadlocks possible).
    """
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    builder = ProgramBuilder(f"generated-{seed}")
    data = builder.global_array(
        "gdata", [rng.randrange(1 << 16) for _ in range(config.data_words)]
    )
    lock_addr = builder.global_word("glock", 0)
    builder.global_word("gptr", data)  # a pointer cell for indirect chains

    def reg() -> Reg:
        return Reg(rng.choice(_GEN_REGS))

    def mem_operand() -> Mem:
        """A bounded memory operand: disp(base) stays inside gdata via
        pre-masked index registers handled by the emit helpers below."""
        slot = rng.randrange(config.data_words)
        return Mem(disp=data + slot * 8)

    def emit_body(rng: random.Random) -> None:
        for _ in range(config.body_length):
            roll = rng.random()
            if roll < 0.18:
                builder.mov(Imm(rng.randrange(1 << 12)), reg())
            elif roll < 0.36:
                builder.mov(reg(), reg())
            elif roll < 0.52:
                op = rng.choice(_ALU_OPS)
                src = (
                    Imm(rng.randrange(1, 1 << 8))
                    if rng.random() < 0.5
                    else reg()
                )
                builder._ins(op, src, reg())
            elif roll < 0.58:
                builder._ins(rng.choice(_UNARY_OPS), reg())
            elif roll < 0.74:
                builder.load(mem_operand(), reg())
            elif roll < 0.88:
                builder.store(reg(), mem_operand())
            elif roll < 0.94 and rng.random() < config.pointer_fraction * 4:
                # Pointer chase: load the pointer cell, then deref it.
                pointer = reg()
                builder.load(Mem(disp=builder.symbol("gptr")), pointer)
                builder.load(Mem(base=pointer.name), reg())
            else:
                # rip-relative access.
                slot = rng.randrange(config.data_words)
                target = data + slot * 8
                here = len(builder._instructions)
                builder.load(
                    Mem(disp=target - here, rip_relative=True), reg()
                )

    # main: spawn workers, do a locked + unlocked body, join.
    builder.label("main")
    tids = builder.reserve("tids", config.threads)
    for i in range(config.threads):
        builder.spawn("worker", Reg("rax"))
        builder.store(Reg("rax"), Mem(disp=tids + i * 8))
    emit_body(random.Random(seed * 7 + 1))
    for i in range(config.threads):
        builder.load(Mem(disp=tids + i * 8), Reg("r9"))
        builder.join(Reg("r9"))
    builder.halt()

    # worker: loop { body; locked body }.
    builder.label("worker")
    builder.mov(Imm(config.loop_iterations), Reg("rcx"))
    builder.label("worker_loop")
    emit_body(random.Random(seed * 13 + 2))
    if rng.random() < config.locked_fraction * 3:
        builder.lock(Imm(lock_addr))
        emit_body(random.Random(seed * 17 + 3))
        builder.unlock(Imm(lock_addr))
    builder.dec(Reg("rcx"))
    builder.cmp(Imm(0), Reg("rcx"))
    builder.jne("worker_loop")
    builder.halt()

    return builder.build()


def generate_racy_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> Tuple[Program, Tuple[int, int]]:
    """Generate a random program with one *known injected race*.

    Returns ``(program, (read_ip, write_ip))``: a dedicated global is
    read (PC-relative) inside main's post-spawn body and written inside
    every worker's loop body, with no ordering between them — an
    unordered pair exists in every schedule, so a full-information
    detector must always report it.  Used by the end-to-end property
    tests: at period 1 the pipeline sees every access and must find the
    injected race regardless of the rest of the random program.
    """
    config = config or GeneratorConfig()
    rng = random.Random(seed ^ 0x5EED)
    builder = ProgramBuilder(f"racy-generated-{seed}")
    data = builder.global_array(
        "gdata", [rng.randrange(1 << 16) for _ in range(config.data_words)]
    )
    lock_addr = builder.global_word("glock", 0)
    builder.global_word("gptr", data)
    racy_addr = builder.global_word("injected_racy", 0)
    tids = builder.reserve("tids", config.threads)

    def reg() -> Reg:
        return Reg(rng.choice(_GEN_REGS))

    def emit_body(body_rng: random.Random, length: int) -> None:
        for _ in range(length):
            roll = body_rng.random()
            if roll < 0.3:
                builder.mov(Imm(body_rng.randrange(1 << 10)), reg())
            elif roll < 0.55:
                slot = body_rng.randrange(config.data_words)
                builder.load(Mem(disp=data + slot * 8), reg())
            elif roll < 0.8:
                slot = body_rng.randrange(config.data_words)
                builder.store(reg(), Mem(disp=data + slot * 8))
            else:
                builder._ins(
                    body_rng.choice(_ALU_OPS),
                    Imm(body_rng.randrange(1, 256)), reg(),
                )

    builder.label("main")
    for i in range(config.threads):
        builder.spawn("worker", Reg("rax"))
        builder.store(Reg("rax"), Mem(disp=tids + i * 8))
    emit_body(random.Random(seed * 31 + 4), config.body_length // 2)
    # The injected racy READ (pc-relative: always reconstructible).
    read_ip = len(builder._instructions)
    builder.load(
        Mem(disp=racy_addr - read_ip, rip_relative=True), Reg("rdx"),
        comment="injected racy read",
    )
    emit_body(random.Random(seed * 37 + 5), config.body_length // 2)
    for i in range(config.threads):
        builder.load(Mem(disp=tids + i * 8), Reg("r9"))
        builder.join(Reg("r9"))
    builder.halt()

    builder.label("worker")
    builder.mov(Imm(config.loop_iterations), Reg("rcx"))
    builder.label("worker_loop")
    emit_body(random.Random(seed * 41 + 6), config.body_length // 2)
    # The injected racy WRITE.
    write_ip = len(builder._instructions)
    builder.store(
        Reg("rcx"), Mem(disp=racy_addr - write_ip, rip_relative=True),
        comment="injected racy write",
    )
    builder.dec(Reg("rcx"))
    builder.cmp(Imm(0), Reg("rcx"))
    builder.jne("worker_loop")
    builder.halt()

    return builder.build(), (read_ip, write_ip)
