"""Random program generator for property-based testing.

Generates seeded multithreaded programs whose ground truth the machine
can record, so hypothesis-style tests can assert reproduction soundness
(every reconstructed address equals the address the machine issued) over
a wide space of register/memory dataflow shapes — including the patterns
that stress forward replay (loads killing availability), backward
propagation (long live ranges), and reverse execution (ADD/SUB/XOR
chains).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..isa.instructions import Op
from ..isa.operands import Imm, Mem, Reg
from ..isa.program import Program, ProgramBuilder

#: Registers the generator plays with (a subset keeps collisions and
#: live ranges interesting; rsp is reserved for the implicit stack).
_GEN_REGS = ("rax", "rbx", "rdx", "rsi", "rdi",
             "r10", "r11", "r12", "r13", "r14", "r15")

_ALU_OPS = (Op.ADD, Op.SUB, Op.XOR, Op.AND, Op.OR, Op.IMUL)
_UNARY_OPS = (Op.INC, Op.DEC, Op.NEG, Op.NOT)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for random program generation."""

    threads: int = 2
    body_length: int = 60
    data_words: int = 16
    loop_iterations: int = 3
    locked_fraction: float = 0.3
    pointer_fraction: float = 0.15


def generate_program(seed: int,
                     config: Optional[GeneratorConfig] = None) -> Program:
    """Generate a deterministic random multithreaded program.

    The program always terminates: loops use fixed trip counts and all
    synchronization is a single global mutex (no deadlocks possible).
    """
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    builder = ProgramBuilder(f"generated-{seed}")
    data = builder.global_array(
        "gdata", [rng.randrange(1 << 16) for _ in range(config.data_words)]
    )
    lock_addr = builder.global_word("glock", 0)
    builder.global_word("gptr", data)  # a pointer cell for indirect chains

    def reg() -> Reg:
        return Reg(rng.choice(_GEN_REGS))

    def mem_operand() -> Mem:
        """A bounded memory operand: disp(base) stays inside gdata via
        pre-masked index registers handled by the emit helpers below."""
        slot = rng.randrange(config.data_words)
        return Mem(disp=data + slot * 8)

    def emit_body(rng: random.Random) -> None:
        for _ in range(config.body_length):
            roll = rng.random()
            if roll < 0.18:
                builder.mov(Imm(rng.randrange(1 << 12)), reg())
            elif roll < 0.36:
                builder.mov(reg(), reg())
            elif roll < 0.52:
                op = rng.choice(_ALU_OPS)
                src = (
                    Imm(rng.randrange(1, 1 << 8))
                    if rng.random() < 0.5
                    else reg()
                )
                builder._ins(op, src, reg())
            elif roll < 0.58:
                builder._ins(rng.choice(_UNARY_OPS), reg())
            elif roll < 0.74:
                builder.load(mem_operand(), reg())
            elif roll < 0.88:
                builder.store(reg(), mem_operand())
            elif roll < 0.94 and rng.random() < config.pointer_fraction * 4:
                # Pointer chase: load the pointer cell, then deref it.
                pointer = reg()
                builder.load(Mem(disp=builder.symbol("gptr")), pointer)
                builder.load(Mem(base=pointer.name), reg())
            else:
                # rip-relative access.
                slot = rng.randrange(config.data_words)
                target = data + slot * 8
                here = len(builder._instructions)
                builder.load(
                    Mem(disp=target - here, rip_relative=True), reg()
                )

    # main: spawn workers, do a locked + unlocked body, join.
    builder.label("main")
    tids = builder.reserve("tids", config.threads)
    for i in range(config.threads):
        builder.spawn("worker", Reg("rax"))
        builder.store(Reg("rax"), Mem(disp=tids + i * 8))
    emit_body(random.Random(seed * 7 + 1))
    for i in range(config.threads):
        builder.load(Mem(disp=tids + i * 8), Reg("r9"))
        builder.join(Reg("r9"))
    builder.halt()

    # worker: loop { body; locked body }.
    builder.label("worker")
    builder.mov(Imm(config.loop_iterations), Reg("rcx"))
    builder.label("worker_loop")
    emit_body(random.Random(seed * 13 + 2))
    if rng.random() < config.locked_fraction * 3:
        builder.lock(Imm(lock_addr))
        emit_body(random.Random(seed * 17 + 3))
        builder.unlock(Imm(lock_addr))
    builder.dec(Reg("rcx"))
    builder.cmp(Imm(0), Reg("rcx"))
    builder.jne("worker_loop")
    builder.halt()

    return builder.build()


def generate_racy_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> Tuple[Program, Tuple[int, int]]:
    """Generate a random program with one *known injected race*.

    Returns ``(program, (read_ip, write_ip))``: a dedicated global is
    read (PC-relative) inside main's post-spawn body and written inside
    every worker's loop body, with no ordering between them — an
    unordered pair exists in every schedule, so a full-information
    detector must always report it.  Used by the end-to-end property
    tests: at period 1 the pipeline sees every access and must find the
    injected race regardless of the rest of the random program.
    """
    config = config or GeneratorConfig()
    rng = random.Random(seed ^ 0x5EED)
    builder = ProgramBuilder(f"racy-generated-{seed}")
    data = builder.global_array(
        "gdata", [rng.randrange(1 << 16) for _ in range(config.data_words)]
    )
    lock_addr = builder.global_word("glock", 0)
    builder.global_word("gptr", data)
    racy_addr = builder.global_word("injected_racy", 0)
    tids = builder.reserve("tids", config.threads)

    def reg() -> Reg:
        return Reg(rng.choice(_GEN_REGS))

    def emit_body(body_rng: random.Random, length: int) -> None:
        for _ in range(length):
            roll = body_rng.random()
            if roll < 0.3:
                builder.mov(Imm(body_rng.randrange(1 << 10)), reg())
            elif roll < 0.55:
                slot = body_rng.randrange(config.data_words)
                builder.load(Mem(disp=data + slot * 8), reg())
            elif roll < 0.8:
                slot = body_rng.randrange(config.data_words)
                builder.store(reg(), Mem(disp=data + slot * 8))
            else:
                builder._ins(
                    body_rng.choice(_ALU_OPS),
                    Imm(body_rng.randrange(1, 256)), reg(),
                )

    builder.label("main")
    for i in range(config.threads):
        builder.spawn("worker", Reg("rax"))
        builder.store(Reg("rax"), Mem(disp=tids + i * 8))
    emit_body(random.Random(seed * 31 + 4), config.body_length // 2)
    # The injected racy READ (pc-relative: always reconstructible).
    read_ip = len(builder._instructions)
    builder.load(
        Mem(disp=racy_addr - read_ip, rip_relative=True), Reg("rdx"),
        comment="injected racy read",
    )
    emit_body(random.Random(seed * 37 + 5), config.body_length // 2)
    for i in range(config.threads):
        builder.load(Mem(disp=tids + i * 8), Reg("r9"))
        builder.join(Reg("r9"))
    builder.halt()

    builder.label("worker")
    builder.mov(Imm(config.loop_iterations), Reg("rcx"))
    builder.label("worker_loop")
    emit_body(random.Random(seed * 41 + 6), config.body_length // 2)
    # The injected racy WRITE.
    write_ip = len(builder._instructions)
    builder.store(
        Reg("rcx"), Mem(disp=racy_addr - write_ip, rip_relative=True),
        comment="injected racy write",
    )
    builder.dec(Reg("rcx"))
    builder.cmp(Imm(0), Reg("rcx"))
    builder.jne("worker_loop")
    builder.halt()

    return builder.build(), (read_ip, write_ip)


@dataclass(frozen=True)
class ServerConfig:
    """Shape of a generated server workload (seeded request traffic
    over a connection-pool / reader-writer-lock skeleton)."""

    #: Request-serving threads (read the shared config per request).
    workers: int = 3
    #: Config-reloading threads (rewrite the config under the write
    #: lock).
    reloaders: int = 1
    #: Requests each worker serves.
    requests: int = 6
    #: Config rewrites each reloader performs.
    reloads: int = 4
    #: Connection-pool capacity (semaphore slots; fewer than workers
    #: forces contention).
    pool_slots: int = 2
    #: Words of rwlock-protected shared configuration.
    config_words: int = 4
    #: Words of mutex-protected request statistics.
    stats_words: int = 4
    #: Filler compute instructions per request.
    body_length: int = 8


def generate_server_program(
    seed: int, config: Optional[ServerConfig] = None
) -> Tuple[Program, Tuple[int, int]]:
    """Generate a deterministic server workload with one known
    injected race.

    The skeleton is the shape §2 targets in production services:
    worker threads rendezvous at a startup **barrier**, then serve
    seeded request traffic — each request takes a connection slot from
    a **semaphore+mutex pool**, reads the shared configuration under a
    **reader-writer lock**, and bumps mutex-protected statistics —
    while reloader threads periodically rewrite the configuration
    under the write lock.  All of that is properly synchronized; the
    one bug is injected: a "fast path" store of the request cursor to
    ``injected_racy`` with no lock, racing main's post-spawn progress
    read of the same global.

    Returns ``(program, (read_ip, write_ip))`` — the known racy pair,
    which a detector must report and the confirmation service must be
    able to make fire.
    """
    cfg = config or ServerConfig()
    rng = random.Random(seed ^ 0xC0FFEE)
    parties = cfg.workers + cfg.reloaders
    builder = ProgramBuilder(f"server-{seed}")
    config_base = builder.global_array(
        "server_config",
        [rng.randrange(1 << 16) for _ in range(cfg.config_words)],
    )
    stats_base = builder.global_array("server_stats",
                                      [0] * cfg.stats_words)
    pool_base = builder.global_array("conn_pool", [0] * cfg.pool_slots)
    cfg_lock = builder.global_word("cfg_rwlock", 0)
    stats_lock = builder.global_word("stats_lock", 0)
    pool_lock = builder.global_word("pool_lock", 0)
    pool_sem = builder.global_word("pool_sem", 0)
    start_barrier = builder.global_word("start_barrier", 0)
    pool_cursor = builder.global_word("pool_cursor", 0)
    racy_addr = builder.global_word("injected_racy", 0)
    tids = builder.reserve("tids", parties)

    def filler(body_rng: random.Random, length: int) -> None:
        for _ in range(length):
            roll = body_rng.random()
            target = Reg(body_rng.choice(_GEN_REGS))
            if roll < 0.4:
                builder.mov(Imm(body_rng.randrange(1 << 10)), target)
            else:
                builder._ins(
                    body_rng.choice(_ALU_OPS),
                    Imm(body_rng.randrange(1, 256)), target,
                )

    # main: provision the pool, spawn the staff, poll progress, join.
    builder.label("main")
    for _ in range(cfg.pool_slots):
        builder.sem_post(Imm(pool_sem))
    for i in range(cfg.workers):
        builder.spawn("server_worker", Reg("rax"))
        builder.store(Reg("rax"), Mem(disp=tids + i * 8))
    for i in range(cfg.reloaders):
        builder.spawn("server_reloader", Reg("rax"))
        builder.store(Reg("rax"),
                      Mem(disp=tids + (cfg.workers + i) * 8))
    filler(random.Random(seed * 31 + 4), cfg.body_length)
    # The injected racy READ: main polls the request cursor without
    # any lock (pc-relative: always reconstructible).
    read_ip = len(builder._instructions)
    builder.load(
        Mem(disp=racy_addr - read_ip, rip_relative=True), Reg("rdx"),
        comment="injected racy read",
    )
    filler(random.Random(seed * 37 + 5), cfg.body_length)
    for i in range(parties):
        builder.load(Mem(disp=tids + i * 8), Reg("r9"))
        builder.join(Reg("r9"))
    builder.halt()

    # server_worker: barrier, then the request loop.
    builder.label("server_worker")
    builder.barrier_wait(Imm(start_barrier), Imm(parties))
    builder.mov(Imm(cfg.requests), Reg("rcx"))
    builder.label("server_request")
    # Take a connection slot (semaphore bounds concurrency, the mutex
    # guards the cursor and slot words).
    builder.sem_wait(Imm(pool_sem))
    builder.lock(Imm(pool_lock))
    builder.load(Mem(disp=pool_cursor), Reg("rsi"))
    builder.inc(Reg("rsi"))
    builder.store(Reg("rsi"), Mem(disp=pool_cursor))
    builder.store(
        Reg("rcx"), Mem(disp=pool_base + rng.randrange(cfg.pool_slots) * 8)
    )
    builder.unlock(Imm(pool_lock))
    # Read the shared configuration under the read lock.
    builder.rwlock_rd(Imm(cfg_lock))
    for slot in sorted(rng.sample(range(cfg.config_words),
                                  max(1, cfg.config_words // 2))):
        builder.load(Mem(disp=config_base + slot * 8),
                     Reg(rng.choice(_GEN_REGS)))
    builder.rwlock_unlock(Imm(cfg_lock))
    # Bump the request statistics under their mutex.
    builder.lock(Imm(stats_lock))
    stats_slot = stats_base + rng.randrange(cfg.stats_words) * 8
    builder.load(Mem(disp=stats_slot), Reg("rdi"))
    builder.inc(Reg("rdi"))
    builder.store(Reg("rdi"), Mem(disp=stats_slot))
    builder.unlock(Imm(stats_lock))
    # The injected bug: publish the request cursor on a lock-free
    # "fast path" — races main's progress read.
    write_ip = len(builder._instructions)
    builder.store(
        Reg("rcx"), Mem(disp=racy_addr - write_ip, rip_relative=True),
        comment="injected racy write",
    )
    filler(random.Random(seed * 41 + 6), cfg.body_length)
    builder.sem_post(Imm(pool_sem))
    builder.dec(Reg("rcx"))
    builder.cmp(Imm(0), Reg("rcx"))
    builder.jne("server_request")
    builder.halt()

    # server_reloader: barrier, then rewrite the config under the
    # write lock.
    builder.label("server_reloader")
    builder.barrier_wait(Imm(start_barrier), Imm(parties))
    builder.mov(Imm(cfg.reloads), Reg("rcx"))
    builder.label("server_reload")
    builder.rwlock_wr(Imm(cfg_lock))
    for slot in range(cfg.config_words):
        builder.store(Reg("rcx"), Mem(disp=config_base + slot * 8))
    builder.rwlock_unlock(Imm(cfg_lock))
    filler(random.Random(seed * 43 + 7), cfg.body_length)
    builder.dec(Reg("rcx"))
    builder.cmp(Imm(0), Reg("rcx"))
    builder.jne("server_reload")
    builder.halt()

    return builder.build(), (read_ip, write_ip)
