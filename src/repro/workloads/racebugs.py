"""The twelve real-world data race bugs of Table 2.

Each bug is a self-contained multithreaded program modelled on the
documented real-world race (application flavour, manifestation, and —
crucially — the *addressing mode* of the racy access, which Table 2
classifies as ``memory indirect``, ``register indirect`` or ``pc
relative`` and which determines how reconstructible the access is):

* **pc relative** — the racy variable is addressed ``sym(%rip)``; the PT
  path alone recovers such accesses, so ProRace detects these bugs in
  every trace regardless of sampling (the paper's 100% rows).
* **register indirect** — the address lives in a register with a long
  live range; forward replay from a sample (or backward propagation from
  the next one) recovers it.
* **memory indirect** — the address is loaded from memory (pointer
  chase); recovery needs memory emulation, a nearby sample, or backward
  propagation of the still-live pointer register — the hardest case.

Mirroring the paper's workloads (100K-request server runs), each racy
section executes inside a per-thread *request loop* interleaved with
filler traffic, so racy code runs many times per trace and PEBS samples
land before, inside, and after it.

The racy instructions carry ``race_*`` labels; a bug is *detected* in a
run when the analysis reports a race whose instruction pair lies within
the bug's labelled set.

Register conventions inside bug programs: ``r8`` outer loop counter,
``r9–r11`` filler scratch, ``rsi/r13/r14/r15`` long-lived pointers,
``rax/rdx/rcx/r12`` racy-section scratch, ``rbx`` spawn tid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet

from ..analysis.pipeline import DetectionResult
from ..isa.assembler import assemble
from ..isa.program import Program
from .common import WorkloadScale

MEMORY_INDIRECT = "memory indirect"
REGISTER_INDIRECT = "register indirect"
PC_RELATIVE = "pc relative"

#: Filler loop trips per request iteration.
_FILL_TRIPS = 8


@dataclass(frozen=True)
class RaceBug:
    """One documented race bug and how to recognize its detection."""

    name: str
    manifestation: str
    access_type: str
    build: Callable[[WorkloadScale], Program]

    def racy_ips(self, program: Program) -> FrozenSet[int]:
        """Code addresses of the labelled racy instructions."""
        return frozenset(
            addr for label, addr in program.labels.items()
            if label.startswith("race_")
        )

    def detected(self, program: Program, result: DetectionResult) -> bool:
        """True if the analysis reported the bug's race."""
        targets = self.racy_ips(program)
        for report in result.races:
            first, second = report.pair
            if first in targets and second in targets:
                return True
        return False


def _filler(label: str, trips: int = _FILL_TRIPS, stride: int = 3,
            offset: int = 0) -> str:
    """Background memory traffic (request parsing, buffer copies...) so
    sampling has realistic work to land on.  Mixes the paper's three
    addressing classes: rip-relative-indexed accesses (always
    recoverable), and accesses through ``%rbp`` — a buffer pointer the
    request loop loaded from memory, so forward replay cannot derive it
    but backward propagation from a later sample can (it stays live all
    iteration).  Clobbers only r9–r11."""
    return f"""
    mov ${trips}, %r9
{label}:
    mov %r9, %r10
    imul ${stride}, %r10
    and $31, %r10
    add ${offset}, %r10
    mov workbuf(,%r10,8), %r11
    add %r9, %r11
    mov %r11, workbuf(,%r10,8)
    mov (%rbp,%r10,8), %r11
    dec %r9
    cmp $0, %r9
    jne {label}
"""


def _thread(label: str, iterations: int, racy_asm: str,
            epilogue: str = "", offset: int = 0) -> str:
    """One thread's request loop: the request-buffer pointer is loaded
    from memory once at thread start and stays live for the whole thread
    — the long-live-range situation §5.2.1's backward propagation
    exploits ("registers used for memory address calculation often have a
    long live-range").  Then filler + racy section per "request"."""
    return f"""
    mov bufptr(%rip), %rbp
    mov ${iterations}, %r8
{label}_outer:
{_filler(label + '_fill', offset=offset)}
{racy_asm}
    dec %r8
    cmp $0, %r8
    jne {label}_outer
{_filler(label + '_fill2', offset=offset)}
{epilogue}
"""


# ---------------------------------------------------------------------------
# apache
# ---------------------------------------------------------------------------


def apache_21287(scale: WorkloadScale) -> Program:
    """apache-21287: unsynchronized refcount decrement on a shared cache
    object reached through a pointer loaded from memory → double free.
    The racy field is ``obj->refcnt``: memory-indirect addressing."""
    n = scale.iterations
    racy = """
    mov obj_ptr(%rip), %rsi         # pointer loaded from memory
race_{L}_read:
    mov (%rsi), %rdx                # racy read of obj->refcnt
    sub $1, %rdx
race_{L}_write:
    mov %rdx, (%rsi)                # racy write of obj->refcnt
"""
    free_path = """
    mov obj_ptr(%rip), %rsi
    mov (%rsi), %rdx
    cmp $0, %rdx
    jg still_alive
    lock $guard_lock
    mov free_guard(%rip), %r12
    cmp $0, %r12
    jne skip_free
    mov $1, %r12
    mov %r12, free_guard(%rip)
    free %rsi                       # "double free" manifests here
skip_free:
    unlock $guard_lock
still_alive:
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.global obj_ptr 0
.global free_guard 0
.global guard_lock 0

main:
    malloc $64, %rax
    mov ${4 * n + 8}, %rdx
    mov %rdx, (%rax)                # obj->refcnt
    mov %rax, obj_ptr(%rip)
    spawn handler, %rbx
{_thread('m', n, racy.format(L='m'), free_path)}
    join %rbx
    halt

handler:
{_thread('h', n, racy.format(L='h'), offset=32)}
    halt
""",
        "apache-21287",
    )


def apache_25520(scale: WorkloadScale) -> Program:
    """apache-25520: concurrent appends to the shared access log corrupt
    records; the log cursor is reached through a long-lived register
    (register-indirect)."""
    racy = """
race_{L}_read:
    mov (%r14), %rax                # racy read of the log cursor
    add $1, %rax
race_{L}_write:
    mov %rax, (%r14)                # racy write of the log cursor
    and $63, %rax
    mov %r8, logbuf(,%rax,8)
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.reserve logbuf 64
.global log_cursor 0
.ptr cursor_ptr log_cursor

main:
    mov cursor_ptr(%rip), %r14      # cursor address kept in a register
    spawn handler, %rbx
{_thread('m', scale.iterations, racy.format(L='m'))}
    join %rbx
    halt

handler:
    mov cursor_ptr(%rip), %r14
{_thread('h', scale.iterations, racy.format(L='h'), offset=32)}
    halt
""",
        "apache-25520",
    )


def apache_45605(scale: WorkloadScale) -> Program:
    """apache-45605: a worker toggles a connection status flag while
    another thread checks it, tripping an assertion; the flag is reached
    via a register-held structure pointer (register-indirect)."""
    writer = """
    mov %r8, %r12
    and $1, %r12
race_m_write:
    mov %r12, 16(%r13)              # racy toggle of conn->status
"""
    checker = """
race_c_read:
    mov 16(%r13), %rax              # racy read of conn->status
    cmp $1, %rax
    je ok_{I}
    mov assert_failures(%rip), %rdx
    add $1, %rdx
    mov %rdx, assert_failures(%rip)
ok_{I}:
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.reserve conn_struct 4
.global assert_failures 0
.ptr conn_ptr conn_struct

main:
    mov conn_ptr(%rip), %r13        # conn* in a register
    mov $1, %rax
    mov %rax, 16(%r13)              # conn->status = READY
    spawn checker, %rbx
{_thread('m', scale.iterations, writer)}
    join %rbx
    halt

checker:
    mov conn_ptr(%rip), %r13
{_thread('c', scale.iterations, checker.format(I='0'), offset=32)}
    halt
""",
        "apache-45605",
    )


# ---------------------------------------------------------------------------
# mysql
# ---------------------------------------------------------------------------


def mysql_3596(scale: WorkloadScale) -> Program:
    """mysql-3596: two sessions race on a table handler's open flag; the
    handler is found by chasing the table-cache entry (memory-indirect) —
    a stale read crashes the server."""
    writer = """
    mov table_cache(%rip), %rsi     # chase the cache entry
    mov %r8, %r12
    and $1, %r12
race_m_write:
    mov %r12, 8(%rsi)               # racy open/close of the handler
"""
    reader = """
    mov table_cache(%rip), %rsi
race_s_read:
    mov 8(%rsi), %rax               # racy read: may see closed handler
    cmp $0, %rax
    jne fine_0
    mov %rax, workbuf(%rip)         # models the crash path
fine_0:
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.reserve table_cache 8

main:
    malloc $64, %rax
    mov $1, %rdx
    mov %rdx, 8(%rax)               # handler->open = 1
    mov %rax, table_cache(%rip)
    spawn session, %rbx
{_thread('m', scale.iterations, writer)}
    join %rbx
    halt

session:
{_thread('s', scale.iterations, reader, offset=32)}
    halt
""",
        "mysql-3596",
    )


def mysql_644(scale: WorkloadScale) -> Program:
    """mysql-644: the query cache's free-list head is updated by two
    threads; the head cell is reached via a pointer loaded from the cache
    descriptor (memory-indirect)."""
    racy = """
    mov qc_desc(%rip), %rsi
race_{L}_read:
    mov (%rsi), %rax                # racy read of free-list head
    add $8, %rax
race_{L}_write:
    mov %rax, (%rsi)                # racy write of free-list head
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.reserve freelist_cell 1
.ptr qc_desc freelist_cell

main:
    spawn purger, %rbx
{_thread('m', scale.iterations, racy.format(L='m'))}
    join %rbx
    halt

purger:
{_thread('p', scale.iterations, racy.format(L='p'), offset=32)}
    halt
""",
        "mysql-644",
    )


def mysql_791(scale: WorkloadScale) -> Program:
    """mysql-791: a binlog record counter read while another thread
    increments it — the reader misses output; the counter lives in a
    heap-allocated log object (memory-indirect)."""
    reader = """
    mov binlog_ptr(%rip), %rsi
race_m_read:
    mov 24(%rsi), %rax              # racy read of record count
    mov %rax, drained(%rip)         # missing output when stale
"""
    writer = """
    mov binlog_ptr(%rip), %rsi
    mov 24(%rsi), %rax
    add $1, %rax
race_w_write:
    mov %rax, 24(%rsi)              # racy count increment
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.global binlog_ptr 0
.global drained 0

main:
    malloc $32, %rax
    mov %rax, binlog_ptr(%rip)
    spawn writer_t, %rbx
{_thread('m', scale.iterations, reader)}
    join %rbx
    halt

writer_t:
{_thread('w', scale.iterations, writer, offset=32)}
    halt
""",
        "mysql-791",
    )


# ---------------------------------------------------------------------------
# cherokee
# ---------------------------------------------------------------------------


def _cherokee_variant(name: str, scale: WorkloadScale,
                      log_words: int) -> Program:
    """Both cherokee bugs are unsynchronized updates of the shared logger
    state through a register-held logger pointer (register-indirect)."""
    racy = """
race_{L}_read:
    mov 8(%r15), %rax               # racy read of logger->used
    add $1, %rax
race_{L}_write:
    mov %rax, 8(%r15)               # racy write of logger->used
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.reserve logger {log_words}
.ptr logger_ptr logger

main:
    mov logger_ptr(%rip), %r15      # logger* in a register
    spawn conn_thread, %rbx
{_thread('m', scale.iterations, racy.format(L='m'))}
    join %rbx
    halt

conn_thread:
    mov logger_ptr(%rip), %r15
{_thread('c', scale.iterations, racy.format(L='c'), offset=32)}
    halt
""",
        name,
    )


def cherokee_092(scale: WorkloadScale) -> Program:
    return _cherokee_variant("cherokee-0.9.2", scale, 8)


def cherokee_bug1(scale: WorkloadScale) -> Program:
    return _cherokee_variant("cherokee-bug1", scale, 16)


# ---------------------------------------------------------------------------
# pbzip2 / pfscan / aget
# ---------------------------------------------------------------------------


def pbzip2_094(scale: WorkloadScale) -> Program:
    """pbzip2-0.9.4: the main thread pokes the output queue's state while
    a consumer still dereferences it (use-after-free crash); the queue is
    reached through a pointer loaded from memory (memory-indirect)."""
    writer = """
    mov queue_ptr(%rip), %rsi
    mov %r8, %r12
    and $7, %r12
race_m_write:
    mov %r12, 16(%rsi)              # racy write of queue->state
"""
    reader = """
    mov queue_ptr(%rip), %rsi
race_c_read:
    mov 16(%rsi), %rax              # racy read (use after teardown)
    cmp $0, %rax
    jne alive_0
    mov %rax, workbuf(%rip)         # models the crash
alive_0:
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.global queue_ptr 0

main:
    malloc $48, %rax
    mov $7, %rdx
    mov %rdx, 16(%rax)              # queue->state
    mov %rax, queue_ptr(%rip)
    spawn consumer, %rbx
{_thread('m', scale.iterations, writer)}
    join %rbx
    halt

consumer:
{_thread('c', scale.iterations, reader, offset=32)}
    halt
""",
        "pbzip2-0.9.4",
    )


def pbzip2_091(scale: WorkloadScale) -> Program:
    """pbzip2-0.9.1: benign race on the global ``allDone`` progress flag,
    addressed PC-relative — detectable from the PT path alone."""
    writer = """
    mov %r8, %r12
    and $1, %r12
race_m_write:
    mov %r12, all_done(%rip)        # racy (benign) flag write
"""
    reader = """
race_w_read:
    mov all_done(%rip), %rax        # racy (benign) flag read
    add %rax, %r12
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.global all_done 0

main:
    spawn worker_t, %rbx
{_thread('m', scale.iterations, writer)}
    join %rbx
    halt

worker_t:
{_thread('w', scale.iterations, reader, offset=32)}
    halt
""",
        "pbzip2-0.9.1",
    )


def pfscan_bug(scale: WorkloadScale) -> Program:
    """pfscan: the worker polls the global ``aworker`` counter that the
    main thread updates without the matching lock — stale reads spin
    forever; PC-relative addressing."""
    writer = """
    mov %r8, %r12
    and $3, %r12
race_m_write:
    mov %r12, aworker(%rip)         # racy update (no lock)
"""
    reader = """
    mov $4, %rcx
spin_{I}:
race_s_read:
    mov aworker(%rip), %rax         # racy poll read
    cmp $0, %rax
    je spun_{I}
    dec %rcx
    cmp $0, %rcx
    jne spin_{I}                    # bounded stand-in for the hang
spun_{I}:
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.global aworker 1

main:
    spawn scanner, %rbx
{_thread('m', scale.iterations, writer)}
    join %rbx
    halt

scanner:
{_thread('s', scale.iterations, reader.format(I='0'), offset=32)}
    halt
""",
        "pfscan",
    )


def aget_bug2(scale: WorkloadScale) -> Program:
    """aget-bug2: the signal-time progress snapshot reads ``bwritten``
    while downloaders update it under a different lock — wrong record in
    the log; PC-relative addressing."""
    reader = """
race_m_read:
    mov bwritten(%rip), %rax        # racy snapshot read
    mov %rax, log_record(%rip)
"""
    writer = """
    mov bwritten(%rip), %rax
    add $4096, %rax
race_d_write:
    mov %rax, bwritten(%rip)        # racy progress write
"""
    return assemble(
        f"""
.reserve workbuf 64
.ptr bufptr workbuf
.global bwritten 0
.global log_record 0

main:
    spawn downloader, %rbx
{_thread('m', scale.iterations, reader)}
    join %rbx
    halt

downloader:
{_thread('d', scale.iterations, writer, offset=32)}
    halt
""",
        "aget-bug2",
    )


#: Table 2's twelve bugs, in the paper's order.
RACE_BUGS: Dict[str, RaceBug] = {
    bug.name: bug
    for bug in (
        RaceBug("apache-21287", "double free", MEMORY_INDIRECT,
                apache_21287),
        RaceBug("apache-25520", "corrupted log", REGISTER_INDIRECT,
                apache_25520),
        RaceBug("apache-45605", "assertion", REGISTER_INDIRECT,
                apache_45605),
        RaceBug("mysql-3596", "crash", MEMORY_INDIRECT, mysql_3596),
        RaceBug("mysql-644", "crash", MEMORY_INDIRECT, mysql_644),
        RaceBug("mysql-791", "missing output", MEMORY_INDIRECT, mysql_791),
        RaceBug("cherokee-0.9.2", "corrupted log", REGISTER_INDIRECT,
                cherokee_092),
        RaceBug("cherokee-bug1", "corrupted log", REGISTER_INDIRECT,
                cherokee_bug1),
        RaceBug("pbzip2-0.9.4", "crash", MEMORY_INDIRECT, pbzip2_094),
        RaceBug("pbzip2-0.9.1", "benign", PC_RELATIVE, pbzip2_091),
        RaceBug("pfscan", "infinite loop", PC_RELATIVE, pfscan_bug),
        RaceBug("aget-bug2", "wrong record in log", PC_RELATIVE, aget_bug2),
    )
}
