"""Real-world application models (the paper's Table 1 workloads).

Each program models its namesake's execution *character* — what fraction
of time goes to blocking network/disk I/O versus CPU work, how much
synchronization it does, how many threads it runs — because those are the
properties the paper's overhead and trace-size results hinge on (§7.2:
network-I/O-dominant applications hide tracing overhead almost entirely;
CPU-bound utilities do not).

Thread counts follow Table 1 (apache 4, cherokee 38, mysql 20, memcached
5, transmission 4, pfscan 4, pbzip2 4, aget 4), capped by
``WorkloadScale.thread_cap`` to keep simulation tractable.
"""

from __future__ import annotations

from typing import Dict

from ..isa.program import Program
from .common import Workload, WorkloadScale, pool_program


def _server(
    name: str,
    natural_threads: int,
    scale: WorkloadScale,
    parse_cycles_asm: str,
    stats_words: int = 16,
    io_fraction: int = 2,
) -> Program:
    """Common request-serving shape: wait for a request (blocking I/O),
    parse it (CPU), update shared statistics under a lock, respond
    (blocking I/O)."""
    threads = scale.capped_threads(natural_threads)
    io = scale.io_cycles * io_fraction
    return pool_program(
        name,
        threads,
        f"""
.reserve stats {stats_words}
.global stats_lock 0
.global served 0
""",
        f"""
    mov ${scale.iterations}, %rcx
serve_loop:
    io ${io}
    mov %rcx, %rax
{parse_cycles_asm}
    mov %rax, %r11
    and ${stats_words - 1}, %r11
    lock $stats_lock
    mov stats(,%r11,8), %rdx
    add $1, %rdx
    mov %rdx, stats(,%r11,8)
    mov served(%rip), %rdx
    add $1, %rdx
    mov %rdx, served(%rip)
    unlock $stats_lock
    io ${io}
    dec %rcx
    cmp $0, %rcx
    jne serve_loop
    halt
""",
    )


def apache(scale: WorkloadScale) -> Program:
    """Apache httpd under ApacheBench: network-dominated request serving
    with modest per-request parsing."""
    return _server(
        "apache", 4, scale,
        """
    imul $31, %rax
    add $7, %rax
    xor $99, %rax
""",
    )


def cherokee(scale: WorkloadScale) -> Program:
    """Cherokee web server: like apache but with its Table 1 thread pool
    of 38 (capped) and lighter parsing."""
    return _server(
        "cherokee", 38, scale,
        """
    add $3, %rax
    shl $1, %rax
""",
    )


def mysql(scale: WorkloadScale) -> Program:
    """MySQL under SysBench: per-query B-tree-ish index walk (dependent
    loads) plus a locked row update, between network waits."""
    threads = scale.capped_threads(20)
    words = 64
    return pool_program(
        "mysql",
        threads,
        f"""
.reserve index_nodes {words}
.reserve rows {words}
.global row_lock 0
.global queries 0
.global init_lock 0
.global init_done 0
""",
        f"""
    lock $init_lock
    mov init_done(%rip), %rax
    cmp $0, %rax
    jne inited
    mov $0, %r11
fill:
    mov %r11, %rdx
    imul $13, %rdx
    add $29, %rdx
    and ${words - 1}, %rdx
    lea index_nodes(,%rdx,8), %r12
    mov %r12, index_nodes(,%r11,8)
    inc %r11
    cmp ${words}, %r11
    jl fill
    mov $1, %rax
    mov %rax, init_done(%rip)
inited:
    unlock $init_lock
    mov ${scale.iterations}, %rcx
query_loop:
    io ${scale.io_cycles}
    mov %rcx, %r10
    and ${words - 1}, %r10
    lea index_nodes(,%r10,8), %rsi
    mov (%rsi), %rsi
    mov (%rsi), %rsi
    mov (%rsi), %rsi
    mov %rsi, %r11
    sub $index_nodes, %r11
    shr $3, %r11
    and ${words - 1}, %r11
    lock $row_lock
    mov rows(,%r11,8), %rax
    add $1, %rax
    mov %rax, rows(,%r11,8)
    mov queries(%rip), %rdx
    add $1, %rdx
    mov %rdx, queries(%rip)
    unlock $row_lock
    io ${scale.io_cycles}
    dec %rcx
    cmp $0, %rcx
    jne query_loop
    halt
""",
    )


def memcached(scale: WorkloadScale) -> Program:
    """Memcached under YCSB: hash-bucket get/set with striped locks,
    network-wait dominated."""
    threads = scale.capped_threads(5)
    buckets = 32
    return pool_program(
        "memcached",
        threads,
        f"""
.reserve buckets {buckets}
.array bucket_locks 0 0 0 0
.global ops 0
""",
        f"""
    mov ${scale.iterations}, %rcx
op_loop:
    io ${scale.io_cycles * 2}
    mov %rcx, %r10
    imul $2654435761, %r10
    mov %r10, %r11
    and ${buckets - 1}, %r11
    mov %r11, %r12
    and $3, %r12
    lea bucket_locks(,%r12,8), %r13
    lock %r13
    mov buckets(,%r11,8), %rax
    add %r10, %rax
    mov %rax, buckets(,%r11,8)
    unlock %r13
    io ${scale.io_cycles}
    dec %rcx
    cmp $0, %rcx
    jne op_loop
    halt
""",
    )


def transmission(scale: WorkloadScale) -> Program:
    """Transmission BitTorrent client: long network waits, piece-hash
    arithmetic bursts, shared progress under a lock."""
    threads = scale.capped_threads(4)
    return pool_program(
        "transmission",
        threads,
        """
.global progress 0
.global progress_lock 0
.reserve piecebuf 64
""",
        f"""
    mov ${scale.iterations}, %rcx
piece_loop:
    io ${scale.io_cycles}
    mov %rcx, %rax
    mov $24, %rdx
hash_loop:
    mov %rdx, %r10
    and $63, %r10
    mov piecebuf(,%r10,8), %r11
    add %r11, %rax
    imul $31, %rax
    add $11, %rax
    dec %rdx
    cmp $0, %rdx
    jne hash_loop
    lock $progress_lock
    mov progress(%rip), %rdx
    add $1, %rdx
    mov %rdx, progress(%rip)
    unlock $progress_lock
    dec %rcx
    cmp $0, %rcx
    jne piece_loop
    halt
""",
    )


def pfscan(scale: WorkloadScale) -> Program:
    """pfscan parallel file scanner: CPU/memory-bound sweep over buffered
    file contents, shared match counter under a lock (little I/O — the
    file is page-cached)."""
    threads = scale.capped_threads(4)
    words = 128
    return pool_program(
        "pfscan",
        threads,
        f"""
.reserve filebuf {words}
.global matches 0
.global match_lock 0
""",
        f"""
    mov ${scale.iterations * 4}, %rcx
    mov %rdi, %r10
scan_loop:
    mov %r10, %r11
    and ${words - 1}, %r11
    mov filebuf(,%r11,8), %rax
    xor $42, %rax
    and $255, %rax
    cmp $0, %rax
    jne no_match
    lock $match_lock
    mov matches(%rip), %rdx
    add $1, %rdx
    mov %rdx, matches(%rip)
    unlock $match_lock
no_match:
    add ${max(1, scale.threads)}, %r10
    dec %rcx
    cmp $0, %rcx
    jne scan_loop
    halt
""",
    )


def pbzip2(scale: WorkloadScale) -> Program:
    """pbzip2 parallel compressor: block queue handed to workers via
    semaphores, heavy per-block arithmetic (CPU-bound)."""
    threads = scale.capped_threads(4)
    return pool_program(
        "pbzip2",
        threads,
        """
.global queue_sem 0
.global slot_free 0
.global block_slot 0
.global done_count 0
.global done_lock 0
""",
        f"""
    cmp $0, %rdi
    jne compressor
    sem_post $slot_free
    mov ${scale.iterations * (threads - 1) if threads > 1 else scale.iterations}, %rcx
produce_loop:
    sem_wait $slot_free
    mov block_slot(%rip), %rax
    add $4096, %rax
    mov %rax, block_slot(%rip)
    sem_post $queue_sem
    dec %rcx
    cmp $0, %rcx
    jne produce_loop
    halt
compressor:
    mov ${scale.iterations}, %rcx
compress_loop:
    sem_wait $queue_sem
    mov block_slot(%rip), %rax
    sem_post $slot_free
    mov $24, %rdx
crunch:
    imul $16777619, %rax
    xor %rcx, %rax
    shr $1, %rax
    add $977, %rax
    dec %rdx
    cmp $0, %rdx
    jne crunch
    lock $done_lock
    mov done_count(%rip), %rdx
    add $1, %rdx
    mov %rdx, done_count(%rip)
    unlock $done_lock
    dec %rcx
    cmp $0, %rcx
    jne compress_loop
    halt
""",
    )


def aget(scale: WorkloadScale) -> Program:
    """aget parallel downloader: each worker fetches byte ranges (network
    waits) and updates the shared progress log."""
    threads = scale.capped_threads(4)
    return pool_program(
        "aget",
        threads,
        """
.global bytes_done 0
.global log_lock 0
.reserve segments 8
""",
        f"""
    mov ${scale.iterations}, %rcx
fetch_loop:
    io ${scale.io_cycles * 3}
    mov %rdi, %r11
    and $7, %r11
    mov segments(,%r11,8), %rax
    add $65536, %rax
    mov %rax, segments(,%r11,8)
    lock $log_lock
    mov bytes_done(%rip), %rdx
    add $65536, %rdx
    mov %rdx, bytes_done(%rip)
    unlock $log_lock
    dec %rcx
    cmp $0, %rcx
    jne fetch_loop
    halt
""",
    )


#: The eight real-world application models of Table 1.
APP_WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        Workload("apache", "server", apache, io_bound=True,
                 description="web server under ApacheBench"),
        Workload("cherokee", "server", cherokee, io_bound=True,
                 description="web server, large thread pool"),
        Workload("mysql", "server", mysql, io_bound=True,
                 description="database under SysBench"),
        Workload("memcached", "server", memcached, io_bound=True,
                 description="key-value store under YCSB"),
        Workload("transmission", "server", transmission, io_bound=False,
                 description="BitTorrent client (piece hashing dominates)"),
        Workload("pfscan", "utility", pfscan, io_bound=False,
                 description="parallel file scanner"),
        Workload("pbzip2", "utility", pbzip2, io_bound=False,
                 description="parallel compressor"),
        Workload("aget", "utility", aget, io_bound=True,
                 description="parallel web downloader"),
    )
}
