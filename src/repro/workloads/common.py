"""Shared scaffolding for workload programs.

All workloads are written in the text assembly dialect
(:mod:`repro.isa.assembler`) and parametrized by a :class:`WorkloadScale`
so tests run tiny instances while benchmarks run paper-scale ones.

The helpers here generate the fork/join boilerplate every kernel shares:
``main`` spawns ``threads`` workers (each receives its worker index in
``%rdi`` — spawn copies the parent's registers), optionally runs its own
body, then joins everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..isa.assembler import assemble
from ..isa.program import Program


@dataclass(frozen=True)
class WorkloadScale:
    """Size knobs shared by all workloads.

    Attributes:
        iterations: per-thread work items (loop trip count).
        threads: worker thread count (the paper pins PARSEC at 4; the
            server applications use their Table 1 thread counts scaled
            down by :attr:`thread_cap`).
        data_words: size of the main shared arrays, in 64-bit words.
        io_cycles: cycles per simulated blocking I/O operation.
        thread_cap: upper bound applied to an app's natural thread count
            (keeps simulation tractable; Table 1 lists e.g. 38 threads
            for cherokee).
    """

    iterations: int = 50
    threads: int = 4
    data_words: int = 64
    io_cycles: int = 400
    thread_cap: int = 8

    def capped_threads(self, natural: int) -> int:
        return max(1, min(natural, self.thread_cap))


#: Default scale used by the test suite.
SMALL = WorkloadScale(iterations=20, threads=4, data_words=32)

#: Default scale used by the benchmark harness.
BENCH = WorkloadScale(iterations=150, threads=4, data_words=128)


def pool_program(
    name: str,
    threads: int,
    globals_asm: str,
    worker_asm: str,
    main_body_asm: str = "",
    prologue_asm: str = "",
) -> Program:
    """Assemble a fork/join worker-pool program.

    Args:
        name: program name.
        threads: number of workers to spawn.
        globals_asm: ``.global``/``.array``/``.reserve`` directives.
        worker_asm: code starting at label ``worker`` (each worker finds
            its index in ``%rdi``; it must end with ``halt`` or ``ret``
            from its entry frame).
        main_body_asm: code main runs between spawning and joining.
        prologue_asm: code main runs before spawning.
    """
    source = f"""
.reserve __tids {threads}
{globals_asm}

main:
{prologue_asm}
    mov $0, %r8
__spawn_loop:
    mov %r8, %rdi
    spawn worker, %rax
    mov %rax, __tids(,%r8,8)
    inc %r8
    cmp ${threads}, %r8
    jl __spawn_loop
{main_body_asm}
    mov $0, %r8
__join_loop:
    mov __tids(,%r8,8), %r9
    join %r9
    inc %r8
    cmp ${threads}, %r8
    jl __join_loop
    halt

worker:
{worker_asm}
"""
    return assemble(source, name)


@dataclass(frozen=True)
class Workload:
    """A catalogued benchmark program."""

    name: str
    category: str  # "parsec" | "server" | "utility"
    build: Callable[[WorkloadScale], Program]
    io_bound: bool = False
    description: str = ""

    def instantiate(self, scale: Optional[WorkloadScale] = None) -> Program:
        return self.build(scale or SMALL)
