"""PARSEC-like CPU-bound kernels.

Thirteen multithreaded kernels named after the PARSEC suite the paper
evaluates (§7.1, simlarge inputs, 4 threads).  Each kernel is a faithful
*shape* model of its namesake's parallelization pattern — data-parallel
partitioning, fine-grained locking, pipelines over semaphores, reductions
under a lock — so their memory-op/branch/sync mixes differ the way the
real programs' do.  Workers receive their index in ``%rdi``.
"""

from __future__ import annotations

from typing import Dict

from ..isa.program import Program
from .common import Workload, WorkloadScale, pool_program


def _pow2(n: int, minimum: int = 8) -> int:
    """Largest power of two ≤ n (≥ minimum)."""
    n = max(n, minimum)
    return 1 << (n.bit_length() - 1)


def blackscholes(scale: WorkloadScale) -> Program:
    """Embarrassingly parallel option pricing: partitioned array sweep of
    pure arithmetic, no synchronization inside the loop."""
    words = _pow2(scale.data_words)
    return pool_program(
        "blackscholes",
        scale.threads,
        f"""
.reserve prices {words}
.reserve results {words}
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
wloop:
    mov %r10, %r11
    and ${words - 1}, %r11
    mov prices(,%r11,8), %rax
    imul $3, %rax
    add $7, %rax
    shr $1, %rax
    mov %rax, %rdx
    imul %rdx, %rax
    xor %rdx, %rax
    mov %rax, results(,%r11,8)
    add ${scale.threads}, %r10
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
""",
    )


def bodytrack(scale: WorkloadScale) -> Program:
    """Particle filter: independent particle scoring plus a lock-protected
    global best-score reduction each iteration."""
    words = _pow2(scale.data_words)
    return pool_program(
        "bodytrack",
        scale.threads,
        f"""
.reserve particles {words}
.global best_score 0
.global best_lock 0
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
wloop:
    mov %r10, %r11
    and ${words - 1}, %r11
    mov particles(,%r11,8), %rax
    imul $5, %rax
    add %r10, %rax
    and $1023, %rax
    mov %rax, particles(,%r11,8)
    lock $best_lock
    mov best_score(%rip), %rdx
    cmp %rdx, %rax
    jle skip_best
    mov %rax, best_score(%rip)
skip_best:
    unlock $best_lock
    add ${scale.threads}, %r10
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
""",
    )


def canneal(scale: WorkloadScale) -> Program:
    """Simulated annealing: pseudo-random element swaps, each element pair
    protected by one of several striped locks."""
    words = _pow2(scale.data_words)
    return pool_program(
        "canneal",
        scale.threads,
        f"""
.reserve netlist {words}
.array stripe_locks 0 0 0 0
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
    imul $2654435761, %r10
wloop:
    mov %r10, %r11
    and ${words - 1}, %r11
    mov %r11, %r12
    and $3, %r12
    lea stripe_locks(,%r12,8), %r13
    lock %r13
    mov netlist(,%r11,8), %rax
    add $1, %rax
    mov %rax, netlist(,%r11,8)
    unlock %r13
    imul $1103515245, %r10
    add $12345, %r10
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
""",
    )


def dedup(scale: WorkloadScale) -> Program:
    """Three-stage pipeline (chunk → hash → write) over semaphores: one
    worker per stage; stages hand items through shared slots."""
    return pool_program(
        "dedup",
        3,
        """
.global chunks_ready 0
.global chunk_free 0
.global hashes_ready 0
.global hash_free 0
.global chunk_slot 0
.global hash_slot 0
.global out_count 0
""",
        f"""
    cmp $0, %rdi
    je chunker
    cmp $1, %rdi
    je hasher
    jmp writer
chunker:
    sem_post $chunk_free
    mov ${scale.iterations}, %rcx
chunk_loop:
    sem_wait $chunk_free
    mov chunk_slot(%rip), %rax
    add $17, %rax
    mov %rax, chunk_slot(%rip)
    sem_post $chunks_ready
    dec %rcx
    cmp $0, %rcx
    jne chunk_loop
    halt
hasher:
    sem_post $hash_free
    mov ${scale.iterations}, %rcx
hash_loop:
    sem_wait $chunks_ready
    mov chunk_slot(%rip), %rax
    sem_post $chunk_free
    imul $31, %rax
    xor $255, %rax
    sem_wait $hash_free
    mov %rax, hash_slot(%rip)
    sem_post $hashes_ready
    dec %rcx
    cmp $0, %rcx
    jne hash_loop
    halt
writer:
    mov ${scale.iterations}, %rcx
write_loop:
    sem_wait $hashes_ready
    mov hash_slot(%rip), %rax
    sem_post $hash_free
    mov out_count(%rip), %rdx
    add $1, %rdx
    mov %rdx, out_count(%rip)
    dec %rcx
    cmp $0, %rcx
    jne write_loop
    halt
""",
    )


def facesim(scale: WorkloadScale) -> Program:
    """Physics stencil: each worker sweeps its grid partition reading
    neighbours and writing the cell (read-heavy)."""
    words = _pow2(scale.data_words)
    return pool_program(
        "facesim",
        scale.threads,
        f"""
.reserve grid {words + 2}
.reserve grid_out {words + 2}
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
wloop:
    mov %r10, %r11
    and ${words - 1}, %r11
    mov grid(,%r11,8), %rax
    lea 1(%r11), %r12
    mov grid(,%r12,8), %rdx
    add %rdx, %rax
    lea 2(%r11), %r12
    mov grid(,%r12,8), %rdx
    add %rdx, %rax
    shr $1, %rax
    lea 1(%r11), %r12
    mov %rax, grid_out(,%r12,8)
    add ${scale.threads}, %r10
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
""",
    )


def ferret(scale: WorkloadScale) -> Program:
    """Similarity search: pointer-chasing through an index table (loads
    feeding loads — the memory-indirect pattern replay struggles with)."""
    words = _pow2(scale.data_words)
    # Build a self-referential index: table[i] holds the *address* of
    # another table slot.
    return pool_program(
        "ferret",
        scale.threads,
        f"""
.reserve table {words}
.global table_base 0
.global init_lock 0
""",
        f"""
    lock $init_lock
    mov table_base(%rip), %rax
    cmp $0, %rax
    jne inited
    mov $table, %rax
    mov %rax, table_base(%rip)
    mov $0, %r11
fill:
    mov %r11, %rdx
    imul $7, %rdx
    add $13, %rdx
    and ${words - 1}, %rdx
    lea table(,%rdx,8), %r12
    mov %r12, table(,%r11,8)
    inc %r11
    cmp ${words}, %r11
    jl fill
inited:
    unlock $init_lock
    mov ${scale.iterations}, %rcx
    mov table_base(%rip), %rsi
    mov %rdi, %r10
    and ${words - 1}, %r10
    lea 0(%rsi,%r10,8), %rsi
wloop:
    mov (%rsi), %rsi
    mov (%rsi), %rsi
    mov (%rsi), %rsi
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
""",
    )


def fluidanimate(scale: WorkloadScale) -> Program:
    """Fluid simulation: fine-grained per-cell locking (the suite's most
    lock-intensive member)."""
    words = _pow2(min(scale.data_words, 64))
    return pool_program(
        "fluidanimate",
        scale.threads,
        f"""
.reserve cells {words}
.reserve cell_locks {words}
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
wloop:
    mov %r10, %r11
    and ${words - 1}, %r11
    lea cell_locks(,%r11,8), %r13
    lock %r13
    mov cells(,%r11,8), %rax
    add $2, %rax
    mov %rax, cells(,%r11,8)
    unlock %r13
    lea 1(%r11), %r12
    and ${words - 1}, %r12
    lea cell_locks(,%r12,8), %r13
    lock %r13
    mov cells(,%r12,8), %rax
    sub $1, %rax
    mov %rax, cells(,%r12,8)
    unlock %r13
    add $7, %r10
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
""",
    )


def freqmine(scale: WorkloadScale) -> Program:
    """Frequent itemset mining: per-worker local counting, then a
    lock-protected merge into a shared histogram."""
    words = _pow2(scale.data_words)
    return pool_program(
        "freqmine",
        scale.threads,
        f"""
.reserve histogram {words}
.reserve transactions {words}
.global hist_lock 0
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
    mov $0, %r14
wloop:
    mov %r10, %r11
    imul $2246822519, %r11
    and ${words - 1}, %r11
    mov transactions(,%r11,8), %r12
    add %r12, %r14
    add %r11, %r14
    inc %r10
    dec %rcx
    cmp $0, %rcx
    jne wloop
    and ${words - 1}, %r14
    lock $hist_lock
    mov histogram(,%r14,8), %rax
    add $1, %rax
    mov %rax, histogram(,%r14,8)
    unlock $hist_lock
    halt
""",
    )


def raytrace(scale: WorkloadScale) -> Program:
    """Ray tracing: read-only shared scene, independent per-ray compute,
    private result accumulation (near-zero sync)."""
    words = _pow2(scale.data_words)
    return pool_program(
        "raytrace",
        scale.threads,
        f"""
.reserve scene {words}
.reserve framebuffer {words}
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
wloop:
    mov %r10, %r11
    and ${words - 1}, %r11
    mov scene(,%r11,8), %rax
    imul %rax, %rax
    shr $3, %rax
    add %r10, %rax
    mov %rax, framebuffer(,%r11,8)
    add ${scale.threads}, %r10
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
""",
    )


def streamcluster(scale: WorkloadScale) -> Program:
    """Online clustering: distance computations with a lock-protected
    running cost reduction (known for barrier/lock pressure)."""
    words = _pow2(scale.data_words)
    return pool_program(
        "streamcluster",
        scale.threads,
        f"""
.reserve points {words}
.global total_cost 0
.global cost_lock 0
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
wloop:
    mov %r10, %r11
    and ${words - 1}, %r11
    mov points(,%r11,8), %rax
    sub %r10, %rax
    imul %rax, %rax
    lock $cost_lock
    mov total_cost(%rip), %rdx
    add %rax, %rdx
    mov %rdx, total_cost(%rip)
    unlock $cost_lock
    add $2, %r10
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
""",
    )


def swaptions(scale: WorkloadScale) -> Program:
    """Monte-Carlo pricing: long private arithmetic chains, rare memory
    traffic (the most CPU-pure kernel)."""
    return pool_program(
        "swaptions",
        scale.threads,
        """
.reserve seeds 8
.reserve scratch 8
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
    and $7, %r10
    mov seeds(,%r10,8), %rax
    add %rdi, %rax
wloop:
    imul $6364136223846793005, %rax
    add $1442695040888963407, %rax
    mov %rax, %rdx
    shr $33, %rdx
    xor %rdx, %rax
    mov %rax, scratch(,%r10,8)
    mov scratch(,%r10,8), %r12
    and $4095, %r12
    add %r12, %r13
    dec %rcx
    cmp $0, %rcx
    jne wloop
    mov %r10, %r11
    mov %r13, seeds(,%r11,8)
    halt
""",
    )


def vips(scale: WorkloadScale) -> Program:
    """Image transform: strided partitioned load-transform-store sweeps
    (store-heavy)."""
    words = _pow2(scale.data_words)
    return pool_program(
        "vips",
        scale.threads,
        f"""
.reserve image_in {words}
.reserve image_out {words}
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
wloop:
    mov %r10, %r11
    and ${words - 1}, %r11
    mov image_in(,%r11,8), %rax
    shl $1, %rax
    add $128, %rax
    and $255, %rax
    mov %rax, image_out(,%r11,8)
    mov %rax, %r12
    xor $255, %r12
    mov %r11, %r13
    add ${max(1, scale.threads)}, %r13
    and ${words - 1}, %r13
    mov %r12, image_out(,%r13,8)
    add ${max(1, scale.threads)}, %r10
    dec %rcx
    cmp $0, %rcx
    jne wloop
    halt
""",
    )


def x264(scale: WorkloadScale) -> Program:
    """Video encoding: frame pipeline where each worker waits for the
    previous frame's completion (semaphore chain), then encodes."""
    words = _pow2(scale.data_words)
    return pool_program(
        "x264",
        scale.threads,
        f"""
.reserve frames {words}
.global frame_done 0
.global encoded 0
.global enc_lock 0
""",
        f"""
    mov ${scale.iterations}, %rcx
    mov %rdi, %r10
    cmp $0, %rdi
    je first_worker
    sem_wait $frame_done
first_worker:
wloop:
    mov %r10, %r11
    and ${words - 1}, %r11
    mov frames(,%r11,8), %rax
    imul $3, %rax
    shr $2, %rax
    mov %rax, frames(,%r11,8)
    add $13, %r10
    dec %rcx
    cmp $0, %rcx
    jne wloop
    lock $enc_lock
    mov encoded(%rip), %rdx
    add $1, %rdx
    mov %rdx, encoded(%rip)
    unlock $enc_lock
    sem_post $frame_done
    halt
""",
    )


#: The full PARSEC-like suite (the paper evaluates all 13 members).
PARSEC_WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        Workload("blackscholes", "parsec", blackscholes,
                 description="data-parallel option pricing"),
        Workload("bodytrack", "parsec", bodytrack,
                 description="particle filter with locked reduction"),
        Workload("canneal", "parsec", canneal,
                 description="annealing with striped element locks"),
        Workload("dedup", "parsec", dedup,
                 description="3-stage semaphore pipeline"),
        Workload("facesim", "parsec", facesim,
                 description="stencil sweep"),
        Workload("ferret", "parsec", ferret,
                 description="pointer-chasing similarity search"),
        Workload("fluidanimate", "parsec", fluidanimate,
                 description="fine-grained per-cell locking"),
        Workload("freqmine", "parsec", freqmine,
                 description="histogram mining with merge lock"),
        Workload("raytrace", "parsec", raytrace,
                 description="independent rays over read-only scene"),
        Workload("streamcluster", "parsec", streamcluster,
                 description="clustering with locked cost reduction"),
        Workload("swaptions", "parsec", swaptions,
                 description="private Monte-Carlo arithmetic"),
        Workload("vips", "parsec", vips,
                 description="store-heavy image transform"),
        Workload("x264", "parsec", x264,
                 description="frame pipeline over semaphores"),
    )
}
