"""Adversarial time: first-class clock faults for the fault plan.

Extends `repro.faults` beyond bounded jitter with the clock pathologies
production fleets actually exhibit, all expressed as a disturbance of
the *per-core* TSC the simulated machine reads:

* **skew** — a constant per-core offset (unsynchronized TSC bases);
* **drift** — a linear per-core frequency error;
* **step** — a migration-style discontinuity: the core's clock jumps
  by a constant at one point in the run;
* **regress** — occasional non-monotonic regressions of individual
  reads (SMIs, broken TSC sync after deep sleep).

Injection is *pure*, exactly like every other `FaultPlan` family: the
machine and its schedule are untouched — the same execution merely gets
re-timestamped through each core's faulty clock, and the disturbance is
recorded in ``TraceDefects`` provenance.  Every record a core stamped
goes through the same map (PEBS samples, sync/alloc log entries, PT
packets and their stream headers), so per-thread streams stay mutually
consistent under skew and drift; only *cross-core* comparisons lie —
which is precisely the failure mode the reconciliation side
(`repro.clock.model`) has to survive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..pmu.pt import PacketKind, PTPacket
from .model import core_of_map

#: Ticks of constant offset at full skew intensity (uniform in
#: ``[-scale, scale]`` per core).
SKEW_OFFSET_SCALE = 200
#: Fractional frequency error at full drift intensity.
DRIFT_RATE_SCALE = 0.05
#: Ticks of step discontinuity at full step intensity.
STEP_JUMP_SCALE = 120
#: Worst regression depth (ticks) at full regress intensity.
REGRESS_DEPTH_SCALE = 40


@dataclass(frozen=True)
class CoreClockFault:
    """One core's disturbed clock: ``observed = offset + (1 + rate) *
    true + jumps active at true``."""

    core: int
    offset: int = 0
    rate: float = 0.0
    #: ``(position, jump)`` pairs; a jump applies to reads at or past
    #: its position in true time.
    steps: Tuple[Tuple[int, int], ...] = ()

    @property
    def disturbed(self) -> bool:
        return bool(self.offset or self.rate or self.steps)

    def observe(self, tsc: int) -> int:
        value = self.offset + (1.0 + self.rate) * tsc
        for position, jump in self.steps:
            if tsc >= position:
                value += jump
        return int(round(value))


@dataclass(frozen=True)
class ClockFaultStats:
    """What the injected clock faults amounted to — the declared side
    of the clock ledger (``TraceDefects``)."""

    skewed_cores: int = 0
    drifted_cores: int = 0
    steps: int = 0
    regressions: int = 0

    @property
    def any(self) -> bool:
        return bool(self.skewed_cores or self.drifted_cores
                    or self.steps or self.regressions)


def plan_core_faults(num_cores: int, skew: float, drift: float,
                     step: float, horizon: int,
                     seed: int) -> Tuple[CoreClockFault, ...]:
    """The seeded per-core disturbance plan.  Each core draws from its
    own stream, so adding cores never reshuffles existing ones."""
    faults = []
    for core in range(num_cores):
        rng = random.Random(seed * 9_176_521 + core * 7919)
        offset = 0
        if skew:
            offset = int(round(rng.uniform(-1.0, 1.0)
                               * skew * SKEW_OFFSET_SCALE))
        rate = rng.uniform(-1.0, 1.0) * drift * DRIFT_RATE_SCALE \
            if drift else 0.0
        steps: Tuple[Tuple[int, int], ...] = ()
        if step:
            jump = max(1, int(round(step * STEP_JUMP_SCALE)))
            if rng.random() < 0.5:
                jump = -jump
            steps = ((rng.randrange(max(1, horizon)), jump),)
        faults.append(CoreClockFault(core=core, offset=offset, rate=rate,
                                     steps=steps))
    return tuple(faults)


class _Regressor:
    """Per-stream regression injector: each record stream draws from
    its own seeded generator, so streams degrade independently and
    reproducibly."""

    def __init__(self, seed: int, intensity: float):
        self.intensity = intensity
        self.depth = max(1, int(round(intensity * REGRESS_DEPTH_SCALE)))
        self.seed = seed
        self.count = 0

    def stream(self, key: int):
        rng = random.Random(self.seed * 6_700_417 + key * 2_147_483_647)

        def disturb(tsc: int) -> int:
            if self.intensity and rng.random() < self.intensity:
                self.count += 1
                return tsc - rng.randrange(1, self.depth + 1)
            return tsc

        return disturb


def inject_clock_faults(bundle, skew: float, drift: float, step: float,
                        regress: float, seed: int):
    """Re-timestamp every record of *bundle* through per-core faulty
    clocks.  Pure: returns ``(disturbed_bundle, ClockFaultStats)``,
    the input untouched."""
    cores = core_of_map(bundle)
    num_cores = max(list(cores.values()) + [3]) + 1
    horizon = max(1, bundle.run.tsc)
    plan = plan_core_faults(num_cores, skew, drift, step, horizon, seed)
    regressor = _Regressor(seed, regress)

    def clock_for(core: int) -> CoreClockFault:
        return plan[core % len(plan)]

    # Stream keys: one generator per (record family, thread) so
    # regressions never correlate across streams.
    samples = []
    sample_streams: Dict[int, object] = {}
    for sample in bundle.samples:
        disturb = sample_streams.get(sample.tid)
        if disturb is None:
            disturb = sample_streams[sample.tid] = regressor.stream(
                sample.tid * 4 + 0)
        samples.append(replace(
            sample, tsc=disturb(clock_for(sample.core).observe(sample.tsc))
        ))

    sync_records = []
    sync_streams: Dict[int, object] = {}
    for record in bundle.sync_records:
        disturb = sync_streams.get(record.tid)
        if disturb is None:
            disturb = sync_streams[record.tid] = regressor.stream(
                record.tid * 4 + 1)
        core = cores.get(record.tid, record.tid % num_cores)
        sync_records.append(replace(
            record, tsc=disturb(clock_for(core).observe(record.tsc))
        ))

    alloc_records = []
    alloc_streams: Dict[int, object] = {}
    for record in bundle.alloc_records:
        disturb = alloc_streams.get(record.tid)
        if disturb is None:
            disturb = alloc_streams[record.tid] = regressor.stream(
                record.tid * 4 + 2)
        core = cores.get(record.tid, record.tid % num_cores)
        alloc_records.append(replace(
            record, tsc=disturb(clock_for(core).observe(record.tsc))
        ))

    pt_traces = {}
    for tid, trace in bundle.pt_traces.items():
        core = cores.get(tid, tid % num_cores)
        clock = clock_for(core)
        disturb = regressor.stream(tid * 4 + 3)
        packets: List[PTPacket] = []
        for packet in trace.packets:
            if packet.kind is PacketKind.OVF and packet.target is not None:
                # The OVF target is the gap-end timestamp; TIP targets
                # are code addresses and never touch the clock.
                packets.append(replace(
                    packet, tsc=disturb(clock.observe(packet.tsc)),
                    target=clock.observe(packet.target),
                ))
            else:
                packets.append(replace(
                    packet, tsc=disturb(clock.observe(packet.tsc))
                ))
        pt_traces[tid] = replace(
            trace,
            start_tsc=clock.observe(trace.start_tsc),
            end_tsc=(clock.observe(trace.end_tsc)
                     if trace.end_tsc is not None else None),
            packets=packets,
        )

    stats = ClockFaultStats(
        skewed_cores=sum(1 for fault in plan if fault.offset),
        drifted_cores=sum(1 for fault in plan if fault.rate),
        steps=sum(len(fault.steps) for fault in plan),
        regressions=regressor.count,
    )
    disturbed = replace(
        bundle, samples=samples, sync_records=sync_records,
        alloc_records=alloc_records, pt_traces=pt_traces,
        _sample_index=None, _sample_index_key=None,
    )
    return disturbed, stats


def shift_bundle_tscs(bundle, offset: int):
    """Shift every timestamp in *bundle* by a constant *offset* — the
    per-node clock fault of `repro.fleet` (whole machines disagree on
    the epoch, while each machine stays internally consistent)."""
    if not offset:
        return bundle

    def shift(tsc):
        return tsc + offset

    pt_traces = {}
    for tid, trace in bundle.pt_traces.items():
        packets = [
            replace(packet, tsc=shift(packet.tsc),
                    target=shift(packet.target))
            if packet.kind is PacketKind.OVF and packet.target is not None
            else replace(packet, tsc=shift(packet.tsc))
            for packet in trace.packets
        ]
        pt_traces[tid] = replace(
            trace, start_tsc=shift(trace.start_tsc),
            end_tsc=(shift(trace.end_tsc)
                     if trace.end_tsc is not None else None),
            packets=packets,
        )
    return replace(
        bundle,
        samples=[replace(s, tsc=shift(s.tsc)) for s in bundle.samples],
        sync_records=[replace(r, tsc=shift(r.tsc))
                      for r in bundle.sync_records],
        alloc_records=[replace(r, tsc=shift(r.tsc))
                       for r in bundle.alloc_records],
        pt_traces=pt_traces,
        _sample_index=None, _sample_index_key=None,
    )
