"""Clock correction and monotonicity repair, applied to whole bundles.

Correction is the inverse of each core's fitted affine map; repair is
a running-max clamp restoring the monotonicity each consumer relies
on.  The two invariants repaired here are exactly the ones that keep
skew from fabricating orderings:

* the **sync stream** must be nondecreasing in global ``seq`` order —
  the merge then replays synchronization in true emission order, so no
  release/acquire pair can invert and silently drop a happens-before
  edge;
* every **per-thread stream** (samples, allocs, PT packets) must be
  nondecreasing in its own emission order, so path location and
  timeline anchoring see the per-stream monotonicity they assume.

Repair passes touch *disjoint* streams, which is what makes them
order-insensitive and idempotent (pinned by the Hypothesis property in
``tests/test_clock_property.py``).  When the model is the identity and
every stream is already monotone, :func:`apply_clock_correction`
returns the original bundle object unchanged — the byte-identity
guarantee for fault-free traces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..pmu.pt import PacketKind, PTPacket
from .model import ClockModel, core_of_map, estimate_clock_model

#: The canonical repair-pass order.  Any permutation yields the same
#: bundle — the streams are disjoint — but one order is named so the
#: provenance in :class:`RepairStats` reads deterministically.
REPAIR_STREAMS = ("sync", "samples", "allocs", "packets")


@dataclass
class RepairStats:
    """Provenance of one repair pass: how many records each stream had
    to move to restore monotonicity, and by how much at worst."""

    sync_moved: int = 0
    sample_moved: int = 0
    alloc_moved: int = 0
    packet_moved: int = 0
    max_displacement: int = 0

    @property
    def total_moved(self) -> int:
        return (self.sync_moved + self.sample_moved
                + self.alloc_moved + self.packet_moved)

    def to_dict(self) -> dict:
        return {
            "sync_moved": self.sync_moved,
            "sample_moved": self.sample_moved,
            "alloc_moved": self.alloc_moved,
            "packet_moved": self.packet_moved,
            "max_displacement": self.max_displacement,
        }


def repair_monotonic(values: Sequence[int]) -> Tuple[List[int], int, int]:
    """Running-max clamp: the least nondecreasing sequence that never
    runs *ahead* of the input.  Returns ``(repaired, moved,
    max_displacement)``.  Idempotent by construction."""
    repaired: List[int] = []
    moved = 0
    worst = 0
    high: Optional[int] = None
    for value in values:
        if high is None or value >= high:
            high = value
        else:
            moved += 1
            worst = max(worst, high - value)
        repaired.append(high)
    return repaired, moved, worst


def _correct_packet(packet: PTPacket, fix) -> PTPacket:
    # An OVF packet's target is the gap-end *timestamp*; every other
    # target is a code address and must never pass through the clock.
    if packet.kind is PacketKind.OVF and packet.target is not None:
        return replace(packet, tsc=fix(packet.tsc),
                       target=fix(packet.target))
    return replace(packet, tsc=fix(packet.tsc))


def _repair_sync(records, stats: RepairStats):
    """Repair the seq-ordered sync stream: globally nondecreasing (the
    merge replays synchronization in emission order) and *strictly*
    increasing per thread (so every access has a non-empty merge-key
    window between its own surrounding sync records — see
    :func:`~repro.detector.events.uncertain_merge_tsc`)."""
    repaired = []
    moved = 0
    worst = 0
    high: Optional[int] = None
    last_of: Dict[int, int] = {}
    for record in records:
        floor = high
        last = last_of.get(record.tid)
        if last is not None:
            floor = last + 1 if floor is None else max(floor, last + 1)
        value = record.tsc
        if floor is not None and value < floor:
            value = floor
            moved += 1
            worst = max(worst, floor - record.tsc)
        high = value if high is None or value > high else high
        last_of[record.tid] = value
        repaired.append(value)
    if not moved:
        return records, False
    stats.sync_moved += moved
    stats.max_displacement = max(stats.max_displacement, worst)
    return [replace(record, tsc=value)
            for record, value in zip(records, repaired)], True


def _repair_stream(records, stats: RepairStats, counter: str):
    values, moved, worst = repair_monotonic([r.tsc for r in records])
    if not moved:
        return records, False
    setattr(stats, counter, getattr(stats, counter) + moved)
    stats.max_displacement = max(stats.max_displacement, worst)
    return [replace(record, tsc=value)
            for record, value in zip(records, values)], True


def repair_streams(bundle, order: Sequence[str] = REPAIR_STREAMS,
                   stats: Optional[RepairStats] = None):
    """Monotonicity-repair every stream of *bundle*, in *order*.

    The streams are disjoint, so any permutation of *order* produces a
    bit-identical bundle; a bundle already repaired comes back as the
    same object.  Returns ``(bundle, stats)``.
    """
    stats = stats if stats is not None else RepairStats()
    unknown = set(order) - set(REPAIR_STREAMS)
    if unknown or len(set(order)) != len(REPAIR_STREAMS):
        raise ValueError(f"repair order must permute {REPAIR_STREAMS}, "
                         f"got {tuple(order)}")
    fields: Dict[str, object] = {}
    for stream in order:
        if stream == "sync":
            # Seq order is the machine's global emission order — the
            # one cross-thread ordering no clock fault can forge.
            records = sorted(bundle.sync_records, key=lambda r: r.seq)
            repaired, changed = _repair_sync(records, stats)
            if changed:
                fields["sync_records"] = repaired
        elif stream == "samples":
            by_tid: Dict[int, List] = {}
            for sample in bundle.samples:
                by_tid.setdefault(sample.tid, []).append(sample)
            changed_any = False
            for tid in by_tid:
                by_tid[tid], changed = _repair_stream(
                    by_tid[tid], stats, "sample_moved")
                changed_any = changed_any or changed
            if changed_any:
                fields["samples"] = [
                    sample for tid in sorted(by_tid)
                    for sample in by_tid[tid]
                ]
        elif stream == "allocs":
            by_tid = {}
            for record in bundle.alloc_records:
                by_tid.setdefault(record.tid, []).append(record)
            changed_any = False
            for tid in by_tid:
                by_tid[tid], changed = _repair_stream(
                    by_tid[tid], stats, "alloc_moved")
                changed_any = changed_any or changed
            if changed_any:
                fields["alloc_records"] = [
                    record for tid in sorted(by_tid)
                    for record in by_tid[tid]
                ]
        elif stream == "packets":
            traces = {}
            changed_any = False
            for tid, trace in bundle.pt_traces.items():
                values, moved, worst = repair_monotonic(
                    [p.tsc for p in trace.packets])
                if moved:
                    stats.packet_moved += moved
                    stats.max_displacement = max(stats.max_displacement,
                                                 worst)
                    packets = [
                        packet if packet.tsc == value
                        else replace(packet, tsc=value)
                        for packet, value in zip(trace.packets, values)
                    ]
                    traces[tid] = replace(trace, packets=packets)
                    changed_any = True
                else:
                    traces[tid] = trace
            if changed_any:
                fields["pt_traces"] = traces
    if not fields:
        return bundle, stats
    return replace(bundle, _sample_index=None, _sample_index_key=None,
                   **fields), stats


def apply_clock_correction(bundle, model: Optional[ClockModel] = None):
    """Correct every timestamp in *bundle* through *model* (estimated
    from the sync log when not given, reused from the v4 calibration
    section when the container carried one), then monotonicity-repair
    the corrected streams.

    Returns ``(corrected_bundle, model, stats)``.  With the identity
    model the original bundle object comes back untouched — a pristine
    trace is bit-identical through reconciliation.
    """
    if model is None:
        model = bundle.clock or estimate_clock_model(bundle)
    if model.is_identity:
        return bundle, model, RepairStats()
    cores = core_of_map(bundle)

    def fix_for(tid: int):
        fit = model.fit_for(cores.get(tid, tid % 4))
        return fit.correct

    samples = [
        replace(sample, tsc=model.correct(sample.tsc, sample.core))
        for sample in bundle.samples
    ]
    sync_records = [
        replace(record, tsc=fix_for(record.tid)(record.tsc))
        for record in bundle.sync_records
    ]
    alloc_records = [
        replace(record, tsc=fix_for(record.tid)(record.tsc))
        for record in bundle.alloc_records
    ]
    pt_traces = {}
    for tid, trace in bundle.pt_traces.items():
        fix = fix_for(tid)
        pt_traces[tid] = replace(
            trace,
            start_tsc=fix(trace.start_tsc),
            end_tsc=fix(trace.end_tsc) if trace.end_tsc is not None
            else None,
            packets=[_correct_packet(packet, fix)
                     for packet in trace.packets],
        )
    corrected = replace(
        bundle, samples=samples, sync_records=sync_records,
        alloc_records=alloc_records, pt_traces=pt_traces, clock=model,
        _sample_index=None, _sample_index_key=None,
    )
    repaired, stats = repair_streams(corrected)
    return repaired, model, stats
