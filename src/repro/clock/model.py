"""Offline clock reconciliation: per-core clock models from sync logs.

The whole offline stage orders events on one trusted global TSC — the
invariant-TSC assumption ProRace inherits from modern x86.  Production
clocks violate it: per-core offset skew, frequency drift, migration
step discontinuities, outright non-monotonic regressions.  This module
estimates what each core's clock *did* from the evidence the trace
already carries, so corrected timestamps (plus an honest uncertainty
half-width) can be threaded back through the merge.

The estimator leans on one structural fact: synchronization records
carry a global emission sequence number (``seq``) assigned in true
program order, so the sync log is a ladder of cross-thread anchors with
known sign — record *k+1* truly happened no earlier than record *k*,
whatever its core's clock claimed.  Estimation is therefore:

1. **Evidence check.**  If the observed sync timestamps are already
   nondecreasing in ``seq`` order, no clock fault can have reordered
   anything the detector consumes (accesses are pinned between their
   own thread's sync anchors by the timeline tiers) — return the exact
   identity model and leave the bundle untouched, byte for byte.
2. **Reference timeline.**  Otherwise, a running-max repair of the
   observed timestamps in ``seq`` order yields a monotone reference
   that every core's observations can be regressed against.
3. **Per-core affine fit.**  For each core with at least two anchors,
   a least-squares fit ``observed ~ offset + scale * reference``
   recovers that core's constant skew and linear drift; one trimmed
   refit drops step-discontinuity and regression outliers.  The
   *untrimmed* maximum residual becomes the core's uncertainty
   half-width — steps and regressions the affine model cannot express
   are covered by honesty, not hidden by optimism.

The fitted :class:`ClockModel` inverts each core's affine map
(``correct``), reports per-core half-widths, and serializes as the
calibration section of a v4 trace container (`repro.tracing.serialize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Round-robin pinning fallback when a thread never produced a PEBS
#: sample (threads are pinned ``core = tid % num_cores`` by the
#: simulated machine).
DEFAULT_NUM_CORES = 4

#: Padding added to a core's uncertainty half-width whenever its clock
#: needed any correction: residual error is never reported as exactly
#: zero once the core's clock was observed misbehaving.
HALF_WIDTH_PAD = 1.0

#: A fitted scale below this is treated as degenerate (a clock cannot
#: run backwards on average); the fit falls back to offset-only.
MIN_SCALE = 0.1


def core_of_map(bundle) -> Dict[int, int]:
    """``tid -> core`` for every traced thread.

    PEBS samples carry the core id directly; threads that never
    produced a sample fall back to the machine's round-robin pinning
    rule.  Fault injection (`repro.clock.faults`) and reconciliation
    use this same map, so the two sides always agree on which clock a
    record was stamped by.
    """
    mapping: Dict[int, int] = {}
    observed_cores = 0
    for sample in bundle.samples:
        mapping.setdefault(sample.tid, sample.core)
        observed_cores = max(observed_cores, sample.core + 1)
    num_cores = max(observed_cores, DEFAULT_NUM_CORES)
    for record in bundle.sync_records:
        mapping.setdefault(record.tid, record.tid % num_cores)
    for record in bundle.alloc_records:
        mapping.setdefault(record.tid, record.tid % num_cores)
    for tid in bundle.pt_traces:
        mapping.setdefault(tid, tid % num_cores)
    return mapping


@dataclass(frozen=True)
class CoreClockFit:
    """One core's estimated clock behaviour: an affine map from true
    time to observed time, plus the residual uncertainty the map could
    not explain."""

    core: int
    #: Constant offset (skew) in ticks: ``observed = offset + scale*t``.
    offset: float
    #: Frequency scale (1.0 = nominal; drift shows as ``scale != 1``).
    scale: float
    #: Half-width of the corrected timestamp's uncertainty interval, in
    #: true-time ticks.  Covers step discontinuities and regressions
    #: the affine model cannot express.
    half_width: float
    #: Sync-log anchors the fit was estimated from.
    anchors: int

    @property
    def is_identity(self) -> bool:
        return (self.offset == 0.0 and self.scale == 1.0
                and self.half_width == 0.0)

    def correct(self, tsc: int) -> int:
        """Observed tick -> estimated true tick (rounded to keep record
        layouts integral)."""
        return int(round((tsc - self.offset) / self.scale))

    def to_dict(self) -> dict:
        return {
            "core": self.core,
            "offset": self.offset,
            "scale": self.scale,
            "half_width": self.half_width,
            "anchors": self.anchors,
        }


@dataclass(frozen=True)
class ClockModel:
    """A reconciled view of every core's clock.

    ``fits == ()`` is the exact identity model: every timestamp is
    trusted as-is with zero uncertainty, and correction is a no-op that
    returns the original bundle object (the zero-fault byte-identity
    guarantee rests on this).
    """

    fits: Tuple[CoreClockFit, ...] = ()
    #: Monotonicity violations observed before repair — adjacent-pair
    #: sync-log inversions plus per-stream regressions — the evidence
    #: that triggered estimation in the first place.
    inversions: int = 0
    #: Half-width for records on cores with no usable fit.
    default_half_width: float = 0.0

    @classmethod
    def identity(cls) -> "ClockModel":
        return cls()

    @property
    def is_identity(self) -> bool:
        return not self.fits and self.default_half_width == 0.0

    def fit_for(self, core: int) -> CoreClockFit:
        for fit in self.fits:
            if fit.core == core:
                return fit
        return CoreClockFit(core=core, offset=0.0, scale=1.0,
                            half_width=self.default_half_width, anchors=0)

    def correct(self, tsc: int, core: int) -> int:
        if not self.fits:
            return tsc
        return self.fit_for(core).correct(tsc)

    def half_width_of(self, core: int) -> float:
        return self.fit_for(core).half_width

    @property
    def max_half_width(self) -> float:
        widths = [fit.half_width for fit in self.fits]
        widths.append(self.default_half_width)
        return max(widths)

    def to_dict(self) -> dict:
        return {
            "identity": self.is_identity,
            "inversions": self.inversions,
            "default_half_width": self.default_half_width,
            "fits": [fit.to_dict() for fit in self.fits],
        }


def _least_squares(points: List[Tuple[int, int]]) -> Tuple[float, float]:
    """``(offset, scale)`` of ``observed ~ offset + scale * reference``
    by ordinary least squares; degenerate inputs fall back to an
    offset-only fit at nominal frequency."""
    n = len(points)
    mean_ref = sum(ref for ref, _ in points) / n
    mean_obs = sum(obs for _, obs in points) / n
    var = sum((ref - mean_ref) ** 2 for ref, _ in points)
    if var == 0.0:
        return mean_obs - mean_ref, 1.0
    cov = sum((ref - mean_ref) * (obs - mean_obs) for ref, obs in points)
    scale = cov / var
    if scale < MIN_SCALE:
        return mean_obs - mean_ref, 1.0
    offset = mean_obs - scale * mean_ref
    return offset, scale


def _fit_core(core: int, points: List[Tuple[int, int]]) -> CoreClockFit:
    offset, scale = _least_squares(points)
    residuals = [obs - (offset + scale * ref) for ref, obs in points]
    spread = (sum(r * r for r in residuals) / len(residuals)) ** 0.5
    cut = max(3.0 * spread, 1.0)
    kept = [point for point, r in zip(points, residuals) if abs(r) <= cut]
    if len(kept) >= 2 and len(kept) < len(points):
        # Trimmed refit: steps and regressions are outliers to the
        # affine story; drop them so they do not bias offset/drift.
        offset, scale = _least_squares(kept)
        residuals = [obs - (offset + scale * ref) for ref, obs in points]
    # Honesty over optimism: the half-width covers the *untrimmed*
    # worst residual, so disturbances the model cannot express widen
    # the uncertainty interval instead of vanishing.
    half_width = max(abs(r) for r in residuals) / scale + HALF_WIDTH_PAD
    return CoreClockFit(core=core, offset=offset, scale=scale,
                        half_width=half_width, anchors=len(points))


def _stream_inversions(bundle) -> Tuple[int, int]:
    """``(count, worst_depth)`` of monotonicity violations across every
    per-stream ordering the offline stage relies on: samples and alloc
    records per thread, PT packets per trace — each in its own emission
    order.  A healthy trace has none; regressions and migration steps
    show up here even when the (possibly sparse) sync log happens to
    stay sorted."""
    count = 0
    worst = 0

    def scan(tscs):
        nonlocal count, worst
        high = None
        for tsc in tscs:
            if high is not None and tsc < high:
                count += 1
                worst = max(worst, high - tsc)
            else:
                high = tsc

    streams: Dict[int, List[int]] = {}
    for sample in bundle.samples:
        streams.setdefault(sample.tid, []).append(sample.tsc)
    for tscs in streams.values():
        scan(tscs)
    streams = {}
    for record in bundle.alloc_records:
        streams.setdefault(record.tid, []).append(record.tsc)
    for tscs in streams.values():
        scan(tscs)
    for trace in bundle.pt_traces.values():
        scan([packet.tsc for packet in trace.packets])
    return count, worst


def estimate_clock_model(bundle) -> ClockModel:
    """Estimate a :class:`ClockModel` from the evidence the bundle
    already carries.

    Two independent evidence channels trigger estimation: sync-log
    timestamps decreasing in global ``seq`` order (cross-core skew,
    drift, steps) and per-stream monotonicity violations (regressions,
    which a sparse sync log can miss entirely).  With neither, the
    exact identity model comes back: a healthy trace must come out of
    reconciliation byte-identical, not merely approximately corrected.
    """
    records = sorted(bundle.sync_records, key=lambda r: r.seq)
    inversions = sum(
        1 for before, after in zip(records, records[1:])
        if after.tsc < before.tsc
    )
    stream_count, stream_depth = _stream_inversions(bundle)
    if inversions == 0 and stream_count == 0:
        return ClockModel.identity()
    # Regressions the affine fits cannot see (they live off the sync
    # log) still widen every uncertainty interval: the worst observed
    # backward jump bounds how far any single read may have lied.
    regression_width = stream_depth + HALF_WIDTH_PAD if stream_count \
        else 0.0
    if inversions == 0:
        return ClockModel(
            fits=(),
            inversions=stream_count,
            default_half_width=regression_width,
        )

    # Monotone reference timeline: the running max of observed
    # timestamps in seq order.  Biased toward the fastest core's clock,
    # but any common bias cancels — only per-core *relative* behaviour
    # survives into the fits.
    reference: List[int] = []
    high = records[0].tsc
    for record in records:
        high = max(high, record.tsc)
        reference.append(high)

    cores = core_of_map(bundle)
    by_core: Dict[int, List[Tuple[int, int]]] = {}
    for record, ref in zip(records, reference):
        core = cores.get(record.tid, record.tid % DEFAULT_NUM_CORES)
        by_core.setdefault(core, []).append((ref, record.tsc))

    fits = []
    widths = [HALF_WIDTH_PAD, regression_width]
    for core in sorted(by_core):
        points = by_core[core]
        if len(points) < 2:
            continue
        fit = _fit_core(core, points)
        if fit.half_width < regression_width:
            fit = CoreClockFit(
                core=fit.core, offset=fit.offset, scale=fit.scale,
                half_width=regression_width, anchors=fit.anchors,
            )
        fits.append(fit)
        widths.append(fit.half_width)
    return ClockModel(
        fits=tuple(fits),
        inversions=inversions + stream_count,
        # Records on unfitted cores inherit the worst fitted width.
        default_half_width=max(widths),
    )
