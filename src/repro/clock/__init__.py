"""Clock reconciliation: adversarial time for the ProRace pipeline.

Everything downstream of tracing orders events on one trusted global
TSC.  This package is what happens when that trust is withdrawn:

* `repro.clock.faults` — first-class clock faults (per-core skew,
  drift, step discontinuities, non-monotonic regressions, per-node
  offsets) injected purely at the bundle level;
* `repro.clock.model` — the offline :class:`ClockModel`: per-core
  affine fits estimated from sync-log anchors, with honest residual
  half-widths;
* `repro.clock.repair` — clock correction plus monotonicity repair
  with provenance;
* `repro.clock.health` — the :class:`ClockHealthReport` joined to
  text/JSON race reports.

The ordering contract the rest of the pipeline builds on: corrected
timestamps carry an uncertainty half-width, and any access whose
uncertainty interval reaches the thread's next sync anchor is merged
*at* that anchor — cross-thread pairs inside each other's uncertainty
are thereby ordered only by sync-derived happens-before.  Skew can
cost detection probability; it can never manufacture a false ordering.
"""

from .faults import (
    ClockFaultStats,
    CoreClockFault,
    inject_clock_faults,
    plan_core_faults,
    shift_bundle_tscs,
)
from .health import ClockHealthReport, build_clock_health
from .model import (
    ClockModel,
    CoreClockFit,
    core_of_map,
    estimate_clock_model,
)
from .repair import (
    REPAIR_STREAMS,
    RepairStats,
    apply_clock_correction,
    repair_monotonic,
    repair_streams,
)

__all__ = [
    "ClockFaultStats",
    "ClockHealthReport",
    "ClockModel",
    "CoreClockFault",
    "CoreClockFit",
    "REPAIR_STREAMS",
    "RepairStats",
    "apply_clock_correction",
    "build_clock_health",
    "core_of_map",
    "estimate_clock_model",
    "inject_clock_faults",
    "plan_core_faults",
    "repair_monotonic",
    "repair_streams",
    "shift_bundle_tscs",
]
