"""The clock health report: what reconciliation saw, fixed, and fears.

One record per analyzed bundle, alongside the degradation report:
per-core fit parameters and residual half-widths, how many records the
monotonicity repair had to move, what fraction of accesses sit in an
uncertainty overlap (their merge key had to be conservatively delayed),
and a declared-vs-observed ledger against the injected
``TraceDefects`` — the same reconciliation discipline the governor and
the fleet books already follow: a trace whose clocks misbehaved beyond
what was declared refuses to call itself clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .model import ClockModel
from .repair import RepairStats


@dataclass(frozen=True)
class ClockHealthReport:
    """Clock reconciliation summary for one analyzed bundle."""

    model: ClockModel
    repair: RepairStats
    #: Accesses whose merge key was delayed by the uncertainty clamp
    #: (interval overlapped the thread's next sync anchor), vs all
    #: accesses considered.
    overlap_events: int = 0
    total_events: int = 0

    # Declared clock defects (``TraceDefects``): the injection ledger.
    declared_skewed_cores: int = 0
    declared_drifted_cores: int = 0
    declared_steps: int = 0
    declared_regressions: int = 0

    @property
    def active(self) -> bool:
        """Whether reconciliation changed anything at all."""
        return not self.model.is_identity

    @property
    def overlap_fraction(self) -> float:
        if not self.total_events:
            return 0.0
        return self.overlap_events / self.total_events

    @property
    def declared(self) -> bool:
        return bool(self.declared_skewed_cores or self.declared_drifted_cores
                    or self.declared_steps or self.declared_regressions)

    @property
    def observed(self) -> bool:
        return bool(self.model.inversions or self.repair.total_moved
                    or not self.model.is_identity)

    @property
    def reconciles(self) -> Optional[bool]:
        """Declared-vs-observed clock ledger.

        ``None`` when nothing was declared and nothing observed (the
        clock path never engaged); ``False`` when the clocks observably
        misbehaved with no declared fault to explain it — silent clock
        damage; ``True`` otherwise (declared faults account for what
        reconciliation saw, including faults too mild to manifest).
        """
        if not self.declared and not self.observed:
            return None
        return self.declared or not self.observed

    def to_dict(self) -> dict:
        return {
            "active": self.active,
            "model": self.model.to_dict(),
            "repair": self.repair.to_dict(),
            "overlap_events": self.overlap_events,
            "total_events": self.total_events,
            "overlap_fraction": self.overlap_fraction,
            "declared": {
                "skewed_cores": self.declared_skewed_cores,
                "drifted_cores": self.declared_drifted_cores,
                "steps": self.declared_steps,
                "regressions": self.declared_regressions,
            },
            "reconciles": self.reconciles,
        }


def build_clock_health(model: ClockModel, repair: RepairStats, defects,
                       overlap_events: int,
                       total_events: int) -> ClockHealthReport:
    """Assemble the report from the reconciliation pass plus the
    bundle's declared defects."""
    return ClockHealthReport(
        model=model,
        repair=repair,
        overlap_events=overlap_events,
        total_events=total_events,
        declared_skewed_cores=defects.clock_skewed_cores,
        declared_drifted_cores=defects.clock_drifted_cores,
        declared_steps=defects.clock_steps,
        declared_regressions=defects.clock_regressions,
    )
