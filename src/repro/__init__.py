"""ProRace reproduction: PMU-sampling-based data race detection with
offline memory-access reconstruction (ASPLOS 2017).

The package mirrors the paper's two-phase architecture (Figure 1):

* **Online** — :func:`repro.tracing.trace_run` executes a program on the
  simulated machine (:mod:`repro.machine`) under simulated PMU hardware
  (:mod:`repro.pmu`): PEBS memory-access sampling with either the vanilla
  Linux driver model or ProRace's driver, Intel-PT-style control-flow
  tracing, and LD_PRELOAD-style synchronization logging.
* **Offline** — :class:`repro.analysis.OfflinePipeline` decodes the PT
  trace (:mod:`repro.ptdecode`), reconstructs unsampled memory accesses
  by forward/backward replay (:mod:`repro.replay`), and runs FastTrack
  happens-before detection (:mod:`repro.detector`).

Quickstart::

    from repro import assemble, trace_run, OfflinePipeline

    program = assemble(RACY_ASM_SOURCE)
    bundle = trace_run(program, period=1_000, seed=1)
    result = OfflinePipeline(program).analyze(bundle)
    for race in result.races:
        print(race.describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .analysis import (
    DetectionResult,
    OfflinePipeline,
    estimate_overhead,
    measure_detection_probability,
    trace_rate_mb_per_s,
)
from .detector import FastTrack, RaceReport
from .errors import (
    CheckpointError,
    DeadlineExceeded,
    DecodeError,
    QuarantinedWork,
    ReplayError,
    ReproError,
    TraceError,
    UsageError,
    WorkerCrash,
    WorkerError,
    exit_code_for,
)
from .isa import Imm, Mem, Op, Program, ProgramBuilder, Reg, assemble
from .machine import Machine, MachineError, RunResult
from .pmu import (
    GovernorConfig,
    GovernorReport,
    PEBSConfig,
    PRORACE_DRIVER,
    PTConfig,
    PeriodEpoch,
    VANILLA_DRIVER,
)
from .replay import ReplayEngine
from .supervise import RunLedger, SupervisorConfig, supervised_map
from .tracing import TraceBundle, trace_run
from .workloads import (
    ALL_WORKLOADS,
    APP_WORKLOADS,
    PARSEC_WORKLOADS,
    RACE_BUGS,
    WorkloadScale,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS",
    "APP_WORKLOADS",
    "CheckpointError",
    "DeadlineExceeded",
    "DecodeError",
    "DetectionResult",
    "FastTrack",
    "GovernorConfig",
    "GovernorReport",
    "Imm",
    "Machine",
    "MachineError",
    "Mem",
    "OfflinePipeline",
    "Op",
    "PARSEC_WORKLOADS",
    "PEBSConfig",
    "PRORACE_DRIVER",
    "PTConfig",
    "PeriodEpoch",
    "Program",
    "ProgramBuilder",
    "QuarantinedWork",
    "RACE_BUGS",
    "RaceReport",
    "Reg",
    "ReplayEngine",
    "ReplayError",
    "ReproError",
    "RunLedger",
    "RunResult",
    "SupervisorConfig",
    "TraceBundle",
    "TraceError",
    "UsageError",
    "VANILLA_DRIVER",
    "WorkerCrash",
    "WorkerError",
    "WorkloadScale",
    "assemble",
    "estimate_overhead",
    "exit_code_for",
    "measure_detection_probability",
    "supervised_map",
    "trace_rate_mb_per_s",
    "trace_run",
    "__version__",
]
