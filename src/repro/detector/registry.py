"""The detector-backend registry.

One name → factory table for every conforming
:class:`~repro.detector.base.DetectorBackend`, so the analysis
pipeline, sweeps, the CLI and the shoot-out harness select detectors by
name instead of hard-wiring FastTrack.  Unknown names raise
:class:`~repro.errors.UnknownDetectorError` (CLI exit code 2) with a
did-you-mean suggestion.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Sequence, Tuple

from ..errors import UnknownDetectorError
from .base import DetectorBackend
from .fasttrack import FastTrack
from .lockset import LocksetDetector
from .o1samples import O1SamplesDetector
from .predictive import PredictiveDetector
from .reference import ReferenceDetector

#: The default backend — the paper's choice (§4.3).
DEFAULT_DETECTOR = "fasttrack"

_REGISTRY: Dict[str, Callable[[], DetectorBackend]] = {}


def register_backend(name: str,
                     factory: Callable[[], DetectorBackend]) -> None:
    """Register *factory* under *name* (last registration wins)."""
    _REGISTRY[name] = factory


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_detector(name: str) -> str:
    """Normalize and validate one backend name."""
    cleaned = name.strip().lower()
    if cleaned in _REGISTRY:
        return cleaned
    close = difflib.get_close_matches(cleaned, backend_names(), n=1)
    raise UnknownDetectorError(
        name, backend_names(), suggestion=close[0] if close else None
    )


def resolve_detectors(names: Sequence[str] | None) -> Tuple[str, ...]:
    """Validate a detector selection: splits comma-joined entries,
    deduplicates preserving order, and defaults to the paper's
    FastTrack when empty."""
    flat = []
    for entry in names or ():
        flat.extend(part for part in entry.split(",") if part.strip())
    resolved = []
    for entry in flat:
        name = resolve_detector(entry)
        if name not in resolved:
            resolved.append(name)
    return tuple(resolved) or (DEFAULT_DETECTOR,)


def create_backend(name: str) -> DetectorBackend:
    """A fresh backend instance for *name* (validated)."""
    return _REGISTRY[resolve_detector(name)]()


register_backend("fasttrack", FastTrack)
register_backend("reference", ReferenceDetector)
register_backend("lockset", LocksetDetector)
register_backend("o1", O1SamplesDetector)
register_backend("predict", PredictiveDetector)
