"""Vector clocks and epochs for happens-before race detection.

Implements the FastTrack (Flanagan & Freund, PLDI 2009) representations
the paper's offline detector uses (§4.3, §6): full vector clocks for
thread/lock state and lightweight *epochs* for most variable accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple


@dataclass(frozen=True, order=True)
class Epoch:
    """A scalar clock value paired with its thread: ``c@t``."""

    clock: int
    tid: int

    def __str__(self) -> str:
        return f"{self.clock}@{self.tid}"


#: The minimal epoch, ⊥e — precedes everything.
BOTTOM = Epoch(0, -1)


class VectorClock:
    """A sparse vector clock (absent entries are zero).

    Copies are copy-on-write: :meth:`copy` shares the underlying dict
    (lock release and fork/join in FastTrack copy clocks far more often
    than the copies are subsequently mutated), and the first mutation
    through either owner splits it.
    """

    __slots__ = ("_clocks", "_shared")

    def __init__(self, clocks: Dict[int, int] | None = None) -> None:
        self._clocks: Dict[int, int] = {
            t: c for t, c in (clocks or {}).items() if c > 0
        }
        self._shared = False

    def _own(self) -> None:
        if self._shared:
            self._clocks = dict(self._clocks)
            self._shared = False

    def get(self, tid: int) -> int:
        return self._clocks.get(tid, 0)

    def set(self, tid: int, clock: int) -> None:
        self._own()
        if clock > 0:
            self._clocks[tid] = clock
        else:
            self._clocks.pop(tid, None)

    def increment(self, tid: int) -> None:
        self._own()
        self._clocks[tid] = self.get(tid) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place least upper bound (⊔)."""
        clocks = self._clocks
        get = clocks.get
        for tid, clock in other._clocks.items():
            if clock > get(tid, 0):
                self._own()
                clocks = self._clocks
                get = clocks.get
                clocks[tid] = clock

    def copy(self) -> "VectorClock":
        clone = VectorClock()
        clone._clocks = self._clocks
        clone._shared = True
        self._shared = True
        return clone

    def epoch(self, tid: int) -> Epoch:
        """This thread's current epoch E(t) = C_t[t]@t."""
        return Epoch(self.get(tid), tid)

    def covers_epoch(self, epoch: Epoch) -> bool:
        """e ⪯ V  ⇔  e.clock ≤ V[e.tid] (the FastTrack O(1) check)."""
        if epoch is BOTTOM or epoch.tid < 0:
            return True
        return epoch.clock <= self.get(epoch.tid)

    def covers_raw(self, clock: int, tid: int) -> bool:
        """:meth:`covers_epoch` over a raw ``(clock, tid)`` integer pair
        — the epoch-compact per-variable representation FastTrack's
        shadow state stores (``tid == -1`` encodes ⊥e).  The hot paths
        inline this check; it lives here as the one documented
        definition the inlined copies (and the batch-parity tests) are
        held to."""
        return tid < 0 or clock <= self.get(tid)

    def covers(self, other: "VectorClock") -> bool:
        """V' ⊑ V (pointwise)."""
        return all(c <= self.get(t) for t, c in other._clocks.items())

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._clocks.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._clocks == other._clocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{t}:{c}" for t, c in sorted(self._clocks.items()))
        return f"VC({inner})"
