"""Reference happens-before detector (DJIT+-style, full vector clocks).

Keeps one read VC and one write VC per variable with no epoch shortcuts.
It is asymptotically slower than FastTrack but trivially auditable; the
test suite checks that FastTrack reports a race on a variable iff this
detector does (FastTrack's correctness theorem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .events import Access, AccessKind, RaceReport, SyncOp
from .vectorclock import VectorClock


@dataclass
class _VarState:
    reads: VectorClock = field(default_factory=VectorClock)
    writes: VectorClock = field(default_factory=VectorClock)
    read_ips: Dict[int, int] = field(default_factory=dict)
    write_ips: Dict[int, int] = field(default_factory=dict)


class ReferenceDetector:
    """Full-vector-clock happens-before detector."""

    def __init__(self) -> None:
        self._threads: Dict[int, VectorClock] = {}
        self._locks: Dict[int, VectorClock] = {}
        self._vars: Dict[Tuple[int, int], _VarState] = {}
        self.races: List[RaceReport] = []

    def _clock(self, tid: int) -> VectorClock:
        clock = self._threads.get(tid)
        if clock is None:
            clock = VectorClock({tid: 1})
            self._threads[tid] = clock
        return clock

    def _lock_vc(self, address: int) -> VectorClock:
        vc = self._locks.get(address)
        if vc is None:
            vc = VectorClock()
            self._locks[address] = vc
        return vc

    def sync(self, op: SyncOp) -> None:
        if op.kind in ("lock", "sem_wait", "cond_wake"):
            self._clock(op.tid).join(self._lock_vc(op.target))
        elif op.kind == "unlock":
            clock = self._clock(op.tid)
            self._locks[op.target] = clock.copy()
            clock.increment(op.tid)
        elif op.kind in ("sem_post", "cond_signal"):
            clock = self._clock(op.tid)
            self._lock_vc(op.target).join(clock)
            clock.increment(op.tid)
        elif op.kind == "fork":
            parent = self._clock(op.tid)
            self._clock(op.target).join(parent)
            parent.increment(op.tid)
        elif op.kind == "join":
            child = self._clock(op.target)
            self._clock(op.tid).join(child)
            child.increment(op.target)
        else:
            raise ValueError(f"unknown sync kind: {op.kind!r}")

    def access(self, access: Access) -> None:
        clock = self._clock(access.tid)
        state = self._vars.setdefault(access.var, _VarState())
        # Conflicts with prior writes (any access races an unordered write).
        for tid, wclock in state.writes.items():
            if tid != access.tid and wclock > clock.get(tid):
                self.races.append(
                    RaceReport(
                        var=access.var, first_tid=tid,
                        first_kind=AccessKind.WRITE,
                        first_ip=state.write_ips.get(tid),
                        second=access,
                    )
                )
        if access.is_write:
            for tid, rclock in state.reads.items():
                if tid != access.tid and rclock > clock.get(tid):
                    self.races.append(
                        RaceReport(
                            var=access.var, first_tid=tid,
                            first_kind=AccessKind.READ,
                            first_ip=state.read_ips.get(tid),
                            second=access,
                        )
                    )
            state.writes.set(access.tid, clock.get(access.tid))
            state.write_ips[access.tid] = access.ip
        else:
            state.reads.set(access.tid, clock.get(access.tid))
            state.read_ips[access.tid] = access.ip

    def racy_addresses(self) -> frozenset:
        return frozenset(r.address for r in self.races)
