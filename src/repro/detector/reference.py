"""Reference happens-before detector (DJIT+-style, full vector clocks).

Keeps one read VC and one write VC per variable with no epoch shortcuts.
It is asymptotically slower than FastTrack but trivially auditable; the
test suite checks that FastTrack reports a race on a variable iff this
detector does (FastTrack's correctness theorem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .base import HBDetectorBackend
from .events import Access, AccessKind, RaceReport
from .vectorclock import VectorClock


@dataclass
class _VarState:
    reads: VectorClock = field(default_factory=VectorClock)
    writes: VectorClock = field(default_factory=VectorClock)
    read_ips: Dict[int, int] = field(default_factory=dict)
    write_ips: Dict[int, int] = field(default_factory=dict)


class ReferenceDetector(HBDetectorBackend):
    """Full-vector-clock happens-before detector."""

    name = "reference"

    def __init__(self) -> None:
        super().__init__()
        self._vars: Dict[Tuple[int, int], _VarState] = {}

    def access(self, access: Access) -> None:
        self.accesses_processed += 1
        clock = self._clock(access.tid)
        state = self._vars.setdefault(access.var, _VarState())
        # Conflicts with prior writes (any access races an unordered write).
        for tid, wclock in state.writes.items():
            if tid != access.tid and wclock > clock.get(tid):
                self.races.append(
                    RaceReport(
                        var=access.var, first_tid=tid,
                        first_kind=AccessKind.WRITE,
                        first_ip=state.write_ips.get(tid),
                        second=access,
                    )
                )
        if access.is_write:
            for tid, rclock in state.reads.items():
                if tid != access.tid and rclock > clock.get(tid):
                    self.races.append(
                        RaceReport(
                            var=access.var, first_tid=tid,
                            first_kind=AccessKind.READ,
                            first_ip=state.read_ips.get(tid),
                            second=access,
                        )
                    )
            state.writes.set(access.tid, clock.get(access.tid))
            state.write_ips[access.tid] = access.ip
        else:
            state.reads.set(access.tid, clock.get(access.tid))
            state.read_ips[access.tid] = access.ip
