"""Predictive race detection: HB candidates + reordering witnesses.

Raw happens-before detection reports every pair of unordered
conflicting accesses.  The predictive backend goes one step further,
after the ``verifySC``/``generateWitness`` structure of predictive
SC/race checkers: a cheap FastTrack pre-pass proposes *candidate*
conflicting pairs, and each candidate is then confirmed by searching
for a **reordering witness** — a feasible interleaving of the observed
events ending with the two racy accesses scheduled back-to-back.  The
search itself lives in :mod:`repro.detector.witness` (shared with the
confirmation service, which plans schedules for *any* backend's
reports); this backend buffers the stream, runs the pre-pass, and
attaches the planned tail to each confirmed report.

A candidate with a witness is reported with the schedule attached
(:class:`~repro.detector.events.WitnessSchedule` on the RaceReport), so
the report shows not just "these may race" but the exact interleaving
that makes them collide.  A candidate whose search exhausts its node
budget is dropped and counted as unverified — the backend trades recall
for witness-backed evidence.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from .base import DetectorBackend
from .events import Access, SyncOp
from .fasttrack import FastTrack
from .witness import WITNESS_TAIL, WitnessPlanner


class PredictiveDetector(DetectorBackend):
    """Buffering predictive detector (pre-pass + witness search)."""

    name = "predict"

    def __init__(self, max_nodes: int = 20_000,
                 max_events: int = 500_000) -> None:
        super().__init__()
        #: DFS node budget per candidate pair.
        self.max_nodes = max_nodes
        #: Event-buffer cap: streams beyond it are analyzed prefix-only.
        self.max_events = max_events
        self._events: List[object] = []
        self._dropped = 0
        self._candidates = 0
        self._witnessed = 0
        self._unverified = 0
        self._nodes_total = 0

    # -- streaming protocol: buffer everything -------------------------

    def sync(self, op: SyncOp) -> None:
        self.sync_processed += 1
        if len(self._events) < self.max_events:
            self._events.append(op)
        else:
            self._dropped += 1

    def access(self, access: Access) -> None:
        self.accesses_processed += 1
        if len(self._events) < self.max_events:
            self._events.append(access)
        else:
            self._dropped += 1

    # -- finish: pre-pass, then per-candidate witness search -----------

    def finish(self):
        self.races = []
        pre = FastTrack()
        for event in self._events:
            if isinstance(event, SyncOp):
                pre.sync(event)
            else:
                pre.access(event)

        planner = WitnessPlanner(self._events, max_nodes=self.max_nodes,
                                 tail=WITNESS_TAIL)
        for candidate in pre.distinct_races():
            self._candidates += 1
            witness = planner.schedule_for(candidate)
            if witness is None:
                self._unverified += 1
            else:
                self._witnessed += 1
                self.races.append(replace(candidate, witness=witness))
        self._nodes_total = planner.nodes_total
        return super().finish()

    def _details(self) -> Dict[str, object]:
        return {
            "candidates": self._candidates,
            "witnessed": self._witnessed,
            "unverified": self._unverified,
            "search_nodes": self._nodes_total,
            "node_budget": self.max_nodes,
            "events_dropped": self._dropped,
        }
