"""Predictive race detection: HB candidates + reordering witnesses.

Raw happens-before detection reports every pair of unordered
conflicting accesses.  The predictive backend goes one step further,
after the ``verifySC``/``generateWitness`` structure of predictive
SC/race checkers: a cheap FastTrack pre-pass proposes *candidate*
conflicting pairs, and each candidate is then confirmed by searching
for a **reordering witness** — a feasible interleaving of the observed
events that respects

* per-thread program order,
* lock mutual exclusion (an acquire needs the lock free),
* fork/join (a thread runs only after its fork; a join needs the whole
  child schedule complete),
* semaphore/condvar counting (each wait consumes an earlier post),

and ends with the two racy accesses scheduled **back-to-back**.  A
candidate with a witness is reported with the schedule attached
(:class:`~repro.detector.events.WitnessSchedule` on the RaceReport), so
the report shows not just "these may race" but the exact interleaving
that makes them collide.  A candidate whose search exhausts its node
budget is dropped and counted as unverified — the backend trades recall
for witness-backed evidence.

The search is goal-directed: it only schedules events that are needed
to bring the pair together (threads unrelated to the pair are left
unscheduled unless a sync constraint pulls them in), explores moves
favouring the pair's own threads, memoizes visited scheduler states,
and is bounded per candidate.  Everything is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from .base import DetectorBackend
from .events import (
    Access,
    RaceReport,
    SyncOp,
    WitnessSchedule,
    WitnessStep,
)
from .fasttrack import FastTrack

#: Witness steps kept on the report (the schedule tail — the part that
#: shows the reordering around the pair).
WITNESS_TAIL = 32


def _step_of(event) -> WitnessStep:
    if isinstance(event, SyncOp):
        return WitnessStep(tid=event.tid, op=event.kind, detail=event.target)
    return WitnessStep(tid=event.tid, op=event.kind.value, detail=event.ip)


@dataclass
class _SearchOutcome:
    witness: Optional[WitnessSchedule]
    nodes: int


class PredictiveDetector(DetectorBackend):
    """Buffering predictive detector (pre-pass + witness search)."""

    name = "predict"

    def __init__(self, max_nodes: int = 20_000,
                 max_events: int = 500_000) -> None:
        super().__init__()
        #: DFS node budget per candidate pair.
        self.max_nodes = max_nodes
        #: Event-buffer cap: streams beyond it are analyzed prefix-only.
        self.max_events = max_events
        self._events: List[object] = []
        self._dropped = 0
        self._candidates = 0
        self._witnessed = 0
        self._unverified = 0
        self._nodes_total = 0

    # -- streaming protocol: buffer everything -------------------------

    def sync(self, op: SyncOp) -> None:
        self.sync_processed += 1
        if len(self._events) < self.max_events:
            self._events.append(op)
        else:
            self._dropped += 1

    def access(self, access: Access) -> None:
        self.accesses_processed += 1
        if len(self._events) < self.max_events:
            self._events.append(access)
        else:
            self._dropped += 1

    # -- finish: pre-pass, then per-candidate witness search -----------

    def finish(self):
        self.races = []
        pre = FastTrack()
        index_of: Dict[int, int] = {}
        for index, event in enumerate(self._events):
            index_of[id(event)] = index
            if isinstance(event, SyncOp):
                pre.sync(event)
            else:
                pre.access(event)

        for candidate in pre.distinct_races():
            self._candidates += 1
            second_at = index_of.get(id(candidate.second))
            first_at = self._locate_first(candidate, second_at)
            if second_at is None or first_at is None:
                self._unverified += 1
                continue
            outcome = self._search_witness(first_at, second_at)
            self._nodes_total += outcome.nodes
            if outcome.witness is None:
                self._unverified += 1
            else:
                self._witnessed += 1
                self.races.append(replace(candidate,
                                          witness=outcome.witness))
        return super().finish()

    def _details(self) -> Dict[str, object]:
        return {
            "candidates": self._candidates,
            "witnessed": self._witnessed,
            "unverified": self._unverified,
            "search_nodes": self._nodes_total,
            "node_budget": self.max_nodes,
            "events_dropped": self._dropped,
        }

    def _locate_first(self, candidate: RaceReport,
                      second_at: Optional[int]) -> Optional[int]:
        """Buffer index of the candidate's first access: the latest
        matching access before the second (exactly the access whose
        shadow slot triggered the pre-pass report)."""
        if second_at is None or candidate.first_ip is None:
            return None
        for index in range(second_at - 1, -1, -1):
            event = self._events[index]
            if (
                isinstance(event, Access)
                and event.tid == candidate.first_tid
                and event.var == candidate.var
                and event.kind == candidate.first_kind
                and event.ip == candidate.first_ip
            ):
                return index
        return None

    # -- the witness search --------------------------------------------

    def _search_witness(self, first_at: int,
                        second_at: int) -> _SearchOutcome:
        """Goal-directed DFS for a feasible schedule ending
        ``…, events[first_at], events[second_at]``."""
        events = self._events
        first = events[first_at]
        second = events[second_at]
        tid_a, tid_b = first.tid, second.tid

        # Per-thread event sequences over the horizon (arrival ≤ second),
        # with the pair's threads capped *at* their racy access: events a
        # thread would execute after its side of the pair can never be
        # needed, and must never be scheduled before it.
        sequences: Dict[int, List[int]] = {}
        for index in range(second_at + 1):
            event = events[index]
            tid = event.tid
            if tid == tid_a and index > first_at:
                continue
            sequences.setdefault(tid, []).append(index)
        #: tid → index of the fork that starts it (threads with no
        #: schedulable fork are runnable from the start — or, if their
        #: fork fell outside the horizon, never runnable, which is the
        #: conservative choice).
        fork_of: Dict[int, int] = {}
        for sequence in sequences.values():
            for index in sequence:
                event = events[index]
                if (isinstance(event, SyncOp) and event.kind == "fork"
                        and event.target in sequences):
                    fork_of.setdefault(event.target, index)

        tids = sorted(sequences)
        ptr = {tid: 0 for tid in tids}
        lock_owner: Dict[int, int] = {}
        sem_count: Dict[int, int] = {}
        forked: set = set()
        schedule: List[int] = []
        visited: set = set()

        def state_key():
            return (
                tuple(ptr[tid] for tid in tids),
                tuple(sorted(lock_owner.items())),
                tuple(sorted(
                    (t, c) for t, c in sem_count.items() if c
                )),
            )

        def enabled(tid: int) -> Optional[int]:
            """The thread's next schedulable event index, or None."""
            at = ptr[tid]
            if at >= len(sequences[tid]):
                return None
            if tid in fork_of and fork_of[tid] not in forked:
                return None
            index = sequences[tid][at]
            event = events[index]
            if isinstance(event, Access):
                return index
            kind = event.kind
            if kind == "lock":
                owner = lock_owner.get(event.target)
                return index if owner is None or owner == tid else None
            if kind in ("sem_wait", "cond_wake"):
                return index if sem_count.get(event.target, 0) > 0 \
                    else None
            if kind == "join":
                child = event.target
                done = (child not in sequences
                        or ptr[child] >= len(sequences[child]))
                return index if done else None
            return index  # unlock / sem_post / cond_signal / fork

        def apply(index: int) -> None:
            event = events[index]
            ptr[event.tid] += 1
            schedule.append(index)
            if isinstance(event, SyncOp):
                kind = event.kind
                if kind == "lock":
                    lock_owner[event.target] = event.tid
                elif kind == "unlock":
                    lock_owner.pop(event.target, None)
                elif kind in ("sem_post", "cond_signal"):
                    sem_count[event.target] = \
                        sem_count.get(event.target, 0) + 1
                elif kind in ("sem_wait", "cond_wake"):
                    sem_count[event.target] -= 1
                elif kind == "fork":
                    forked.add(index)

        def undo(index: int) -> None:
            event = events[index]
            ptr[event.tid] -= 1
            schedule.pop()
            if isinstance(event, SyncOp):
                kind = event.kind
                if kind == "lock":
                    lock_owner.pop(event.target, None)
                elif kind == "unlock":
                    lock_owner[event.target] = event.tid
                elif kind in ("sem_post", "cond_signal"):
                    sem_count[event.target] -= 1
                elif kind in ("sem_wait", "cond_wake"):
                    sem_count[event.target] = \
                        sem_count.get(event.target, 0) + 1
                elif kind == "fork":
                    forked.discard(index)

        def at_goal() -> bool:
            # Both threads parked right before their racy access (and
            # actually runnable: their forks, if any, are scheduled).
            return (
                ptr[tid_a] == len(sequences[tid_a]) - 1
                and ptr[tid_b] == len(sequences[tid_b]) - 1
                and all(
                    tid not in fork_of or fork_of[tid] in forked
                    for tid in (tid_a, tid_b)
                )
            )

        move_order = (tid_b, tid_a,
                      *(t for t in tids if t not in (tid_a, tid_b)))

        def next_moves() -> List[int]:
            # Move order: pull the pair's own threads toward the goal
            # first, then third parties (needed only when a sync
            # constraint blocks the pair).  The racy accesses themselves
            # are only ever scheduled by the goal step in the search
            # loop, so a thread parked at its side of the pair offers
            # no moves.
            moves = []
            for tid in move_order:
                if (tid in (tid_a, tid_b)
                        and ptr[tid] == len(sequences[tid]) - 1):
                    continue
                index = enabled(tid)
                if index is not None:
                    moves.append(index)
            return moves

        # Iterative DFS (schedules can be far deeper than the Python
        # recursion limit).  Each stack frame is (move that entered the
        # state, iterator over the state's moves); popping a frame
        # undoes its move.
        found = False
        nodes = 1
        if at_goal():
            apply(first_at)
            apply(second_at)
            found = True
        stack: List[Tuple[Optional[int], object]] = []
        if not found:
            visited.add(state_key())
            stack.append((None, iter(next_moves())))
        while stack and not found:
            move = next(stack[-1][1], None)
            if move is None:
                entered_by, _ = stack.pop()
                if entered_by is not None:
                    undo(entered_by)
                continue
            apply(move)
            nodes += 1
            if nodes > self.max_nodes:
                undo(move)
                break
            if at_goal():
                apply(first_at)
                apply(second_at)
                found = True
                break
            key = state_key()
            if key in visited:
                undo(move)
                continue
            visited.add(key)
            stack.append((move, iter(next_moves())))

        if found:
            steps = tuple(
                _step_of(events[index])
                for index in schedule[-WITNESS_TAIL:]
            )
            return _SearchOutcome(
                witness=WitnessSchedule(
                    steps=steps, total_steps=len(schedule),
                    nodes_explored=nodes,
                ),
                nodes=nodes,
            )
        return _SearchOutcome(witness=None, nodes=nodes)
