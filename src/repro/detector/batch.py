"""Columnar (struct-of-arrays) access-event batches.

The scalar detection path materializes one frozen :class:`Access`
dataclass per recovered access and heap-pops them one at a time through
``heapq.merge`` into per-event detector method calls — at ~1.4M
events/sec the object churn *is* the bottleneck, not the FastTrack
algorithm.  An :class:`EventBatch` is the columnar twin of one thread's
lowered access stream: parallel arrays of tsc/step/ip/kind packed as
:mod:`array` buffers, variable identities as pre-built ``(address,
generation)`` tuples, provenance strings interned to one byte per
access, and taints kept sparse (almost every access has none).

Batches are built directly from the replayed
:class:`~repro.replay.window.RecoveredAccess` stream — no intermediate
``Access`` objects — and consumed by the batch detector protocol
(:meth:`~repro.detector.base.DetectorBackend.feed_batch`).  Individual
``Access`` objects are materialized lazily (:meth:`EventBatch.access_at`)
only where a scalar object is genuinely needed: the slow paths that
report races, and backends without a batch fast path.

Ordering: one batch holds one thread's accesses in step order, so its
keys ``(tsc, EVENT_KIND_ACCESS, tid, step)`` are strictly increasing by
construction (timelines are strictly monotone in the step index) — the
same invariant the scalar per-thread streams rely on.  Under clock
reconciliation the key timestamps come from a separate ``key_tscs``
column (uncertainty-shifted, clamped at the thread's next own sync
record, monotone-nondecreasing); the step tie-break keeps the full keys
strictly increasing, so the merge invariant is unchanged.  That makes the
splice merge in :meth:`AnalysisContext.merged_batches` valid:
:meth:`EventBatch.run_end` finds, by bisection on the tsc column, how
far this batch's head run extends before the next-smallest head of any
other stream, and the whole run is handed to the detector as one
``(batch, start, stop)`` span instead of per-event heap traffic.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

from .events import (
    ACCESS_KINDS,
    ACCESS_READ,
    ACCESS_WRITE,
    EVENT_KIND_SYNC,
    Access,
    EventKey,
    access_sort_key,
)

#: Merge-item tags yielded by ``AnalysisContext.merged_batches()``:
#: ``(BATCH_SYNC, sync_op, global_index)`` or
#: ``(BATCH_RUN, batch, start, stop, global_index_base)``.
BATCH_SYNC = 0
BATCH_RUN = 1


class EventBatch:
    """One thread's access events in columnar (parallel-array) form.

    Columns (all indexed by the batch-local event position):

    * ``tscs`` — ``array('d')`` reconstructed timestamps;
    * ``vars`` — pre-built ``(address, generation)`` variable identities
      (the exact dict keys the detectors use — built once here instead
      of once per event per pass);
    * ``kinds`` — ``array('b')`` of :data:`ACCESS_READ`/:data:`ACCESS_WRITE`;
    * ``ips`` / ``steps`` — ``array('q')`` instruction pointers and path
      step indices;
    * ``prov_codes`` — ``array('b')`` indices into the per-batch interned
      :attr:`prov_table`;
    * ``taints`` — sparse ``{position: taint}`` (only accesses whose
      address computation depended on emulated memory carry one).
    """

    __slots__ = ("tid", "tscs", "key_tscs", "vars", "kinds", "ips",
                 "steps", "prov_codes", "prov_table", "taints",
                 "suppressed", "_nxt")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.tscs = array("d")
        #: Merge-key timestamps.  Aliases :attr:`tscs` (the *same* array
        #: object) unless the batch was built with an uncertainty merge
        #: key (``merge_key``, see :meth:`build`), in which case the
        #: total order runs on these while :meth:`access_at` keeps
        #: reporting the corrected :attr:`tscs`.
        self.key_tscs = self.tscs
        self.vars: List[Tuple[int, int]] = []
        self.kinds = array("b")
        self.ips = array("q")
        self.steps = array("q")
        self.prov_codes = array("b")
        self.prov_table: List[str] = []
        self.taints: Dict[int, object] = {}
        #: Accesses dropped at build time by the truncation cutoff (the
        #: scalar path's ``_suppress_after``, baked into the columns).
        self.suppressed = 0
        self._nxt: Optional[array] = None

    @classmethod
    def build(
        cls,
        tid: int,
        accesses: Iterable,
        timeline,
        generation_of,
        cutoff: Optional[int] = None,
        merge_key=None,
    ) -> "EventBatch":
        """Lower one thread's :class:`RecoveredAccess` stream straight
        into columns (no intermediate ``Access`` objects).

        With a truncation *cutoff*, accesses not provably before it are
        suppressed exactly as the scalar ``_suppress_after`` does — the
        next exact timeline anchor bounds the true time from above — and
        counted in :attr:`suppressed`.

        With *merge_key* (an uncertainty merge-key closure
        ``(step, tsc) -> key_tsc`` from clock reconciliation), the batch
        carries a separate :attr:`key_tscs` column the total order runs
        on; without one, :attr:`key_tscs` aliases :attr:`tscs` and the
        layout is bit-identical to pre-clock builds.
        """
        batch = cls(tid)
        tscs = batch.tscs
        key_tscs = None
        if merge_key is not None:
            key_tscs = batch.key_tscs = array("d")
        vars_col = batch.vars
        kinds = batch.kinds
        ips = batch.ips
        steps = batch.steps
        prov_codes = batch.prov_codes
        prov_table = batch.prov_table
        taints = batch.taints
        interned: Dict[str, int] = {}
        tsc_of = timeline.tsc_of
        upper_bound = timeline.upper_bound if cutoff is not None else None
        position = 0
        for access in accesses:
            step = access.step_index
            if upper_bound is not None and upper_bound(step) > cutoff:
                batch.suppressed += 1
                continue
            tsc = tsc_of(step)
            address = access.address
            tscs.append(tsc)
            if key_tscs is not None:
                key_tscs.append(merge_key(step, tsc))
            steps.append(step)
            ips.append(access.ip)
            kinds.append(ACCESS_WRITE if access.is_store else ACCESS_READ)
            vars_col.append((address, generation_of(address, tsc)))
            provenance = access.provenance
            code = interned.get(provenance)
            if code is None:
                code = len(prov_table)
                prov_table.append(provenance)
                interned[provenance] = code
            prov_codes.append(code)
            if access.taint is not None:
                taints[position] = access.taint
            position += 1
        return batch

    def __len__(self) -> int:
        return len(self.tscs)

    def key_at(self, i: int) -> EventKey:
        """The total-order key of event *i* (same key the scalar stream
        sorts by)."""
        return access_sort_key(self.key_tscs[i], self.tid, self.steps[i])

    def access_at(self, i: int) -> Access:
        """Materialize event *i* as a scalar :class:`Access` —
        field-identical to what the scalar lowering produces."""
        return Access(
            tid=self.tid,
            var=self.vars[i],
            kind=ACCESS_KINDS[self.kinds[i]],
            ip=self.ips[i],
            tsc=self.tscs[i],
            provenance=self.prov_table[self.prov_codes[i]],
            taint=self.taints.get(i),
        )

    def keys(self) -> List[EventKey]:
        """All keys, for merge-parity tests."""
        return [self.key_at(i) for i in range(len(self))]

    @property
    def next_change(self) -> array:
        """Run-length index over the (var, kind) columns:
        ``next_change[i]`` is the first position ``> i`` whose (variable,
        kind) differs (or ``len(self)``).  Replayed instruction windows
        are full of loop-local repeats — consecutive accesses to the same
        variable with the same kind — and a repeat provably satisfies the
        detector fast path given its predecessor's postcondition, so the
        batch loops skip whole repeat groups with one index jump instead
        of comparing per event.  Computed lazily once per batch and
        cached (regeneration rounds and every shard of a sharded pass
        reuse it)."""
        nxt = self._nxt
        if nxt is None:
            vars_col = self.vars
            kinds = self.kinds
            n = len(vars_col)
            nxt = array("q", bytes(8 * n))
            run_next = n
            for i in range(n - 1, 0, -1):
                nxt[i] = run_next
                if (vars_col[i] != vars_col[i - 1]
                        or kinds[i] != kinds[i - 1]):
                    run_next = i
            if n:
                nxt[0] = run_next
            self._nxt = nxt
        return nxt

    def run_end(self, start: int, bound: EventKey) -> int:
        """First index ``>= start`` whose key exceeds *bound* — the end
        of the contiguous run this batch can emit before another stream's
        head.  O(log n) by bisection on the tsc column; the equal-tsc
        region is decided in one comparison because every key in it
        shares the prefix ``(tsc, ACCESS, self.tid)`` and keys never
        collide across streams (the bound is another thread's access or
        a sync record).
        """
        bound_tsc = bound[0]
        hi = bisect_right(self.key_tscs, bound_tsc, start)
        if hi == start or self.key_tscs[hi - 1] < bound_tsc:
            return hi
        # Equal-tsc tail: accesses rank before syncs, and access ties
        # break on tid (bound tid differs from ours by construction).
        if bound[1] == EVENT_KIND_SYNC or self.tid < bound[2]:
            return hi
        return bisect_left(self.key_tscs, bound_tsc, start)
