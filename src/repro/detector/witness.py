"""Shared witness-schedule planner.

The goal-directed reordering search originally private to the
predictive backend, factored out so *any* race report — FastTrack,
lockset, predictive — can be given a :class:`~repro.detector.events.
WitnessSchedule`: a feasible interleaving of the observed events that
ends with the racy pair scheduled back-to-back.  The confirmation
service (:mod:`repro.confirm`) then drives the machine scheduler along
that schedule to make the race actually fire.

A feasible schedule respects

* per-thread program order,
* lock mutual exclusion (an acquire needs the lock free),
* reader-writer exclusion (a read acquire needs no writer; a write
  acquire needs no writer *and* no readers),
* fork/join (a thread runs only after its fork; a join needs the whole
  child schedule complete),
* semaphore/condvar counting (each wait consumes an earlier post),
* barrier generations (a ``barrier_wait`` needs at least as many
  ``barrier_arrive`` events on its barrier as preceded it in the
  original stream — the arrivals of its generation).

The search is goal-directed: it only schedules events needed to bring
the pair together, explores moves favouring the pair's own threads,
memoizes visited scheduler states, and is bounded per candidate.
Everything is deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import (
    Access,
    RaceReport,
    SyncOp,
    WitnessSchedule,
    WitnessStep,
)

#: Witness steps kept on a *report* schedule (the tail that shows the
#: reordering around the pair).  Confirmation plans with ``tail=None``
#: (the full schedule) — a truncated schedule cannot be driven.
WITNESS_TAIL = 32


def step_of(event) -> WitnessStep:
    """The schedule step describing one buffered event."""
    if isinstance(event, SyncOp):
        return WitnessStep(tid=event.tid, op=event.kind, detail=event.target)
    return WitnessStep(tid=event.tid, op=event.kind.value, detail=event.ip)


class WitnessPlanner:
    """Plans witness schedules over one buffered event stream.

    Args:
        events: the merged event stream (:class:`Access`/:class:`SyncOp`
            instances) in happens-before consistent order.
        max_nodes: DFS node budget per candidate pair.
        tail: keep only the last *tail* steps of each schedule
            (reporting mode), or ``None`` for the full schedule
            (confirmation mode).
    """

    def __init__(self, events, max_nodes: int = 20_000,
                 tail: Optional[int] = WITNESS_TAIL) -> None:
        self.events: List[object] = list(events)
        self.max_nodes = max_nodes
        self.tail = tail
        #: DFS nodes explored across all searches so far.
        self.nodes_total = 0
        self._index_of: Dict[int, int] = {
            id(event): index for index, event in enumerate(self.events)
        }
        # Static per-event metadata the reordering rules need:
        # the mode each rwlock_unlock releases (from its matching
        # acquire in program order) and the arrive quota of each
        # barrier_wait (the arrivals of its generation — everything
        # that preceded it in the original stream).
        self._unlock_mode: Dict[int, str] = {}
        self._required_arrives: Dict[int, int] = {}
        held_mode: Dict[Tuple[int, int], str] = {}
        arrives: Dict[int, int] = {}
        for index, event in enumerate(self.events):
            if not isinstance(event, SyncOp):
                continue
            kind = event.kind
            if kind == "rwlock_rd":
                held_mode[(event.tid, event.target)] = "rd"
            elif kind == "rwlock_wr":
                held_mode[(event.tid, event.target)] = "wr"
            elif kind == "rwlock_unlock":
                self._unlock_mode[index] = held_mode.pop(
                    (event.tid, event.target), "wr"
                )
            elif kind == "barrier_arrive":
                arrives[event.target] = arrives.get(event.target, 0) + 1
            elif kind == "barrier_wait":
                self._required_arrives[index] = arrives.get(event.target, 0)

    # -- pair location ---------------------------------------------------

    def locate_pair(self, report: RaceReport) -> Optional[Tuple[int, int]]:
        """Buffer indices of the report's racy pair, or None.

        Matches the ``second`` access by identity when the report came
        from this very stream, falling back to a by-value scan (latest
        occurrence) so reports that crossed a process boundary still
        resolve.
        """
        second_at = self._index_of.get(id(report.second))
        if second_at is None:
            for index in range(len(self.events) - 1, -1, -1):
                event = self.events[index]
                if (
                    isinstance(event, Access)
                    and event.tid == report.second.tid
                    and event.var == report.var
                    and event.kind == report.second.kind
                    and event.ip == report.second.ip
                ):
                    second_at = index
                    break
        if second_at is None or report.first_ip is None:
            return None
        # The first access: the latest matching access before the
        # second (exactly the access whose shadow slot triggered the
        # detector's report).
        for index in range(second_at - 1, -1, -1):
            event = self.events[index]
            if (
                isinstance(event, Access)
                and event.tid == report.first_tid
                and event.var == report.var
                and event.kind == report.first_kind
                and event.ip == report.first_ip
            ):
                return (index, second_at)
        return None

    def schedule_for(self, report: RaceReport) -> Optional[WitnessSchedule]:
        """Plan a witness schedule for one report, or None if the pair
        cannot be located or no feasible reordering exists in budget."""
        pair = self.locate_pair(report)
        if pair is None:
            return None
        return self.search(*pair)

    # -- the witness search ----------------------------------------------

    def search(self, first_at: int,
               second_at: int) -> Optional[WitnessSchedule]:
        """Goal-directed DFS for a feasible schedule ending
        ``…, events[first_at], events[second_at]``."""
        events = self.events
        first = events[first_at]
        second = events[second_at]
        tid_a, tid_b = first.tid, second.tid

        # Per-thread event sequences over the horizon (arrival ≤ second),
        # with the pair's threads capped *at* their racy access: events a
        # thread would execute after its side of the pair can never be
        # needed, and must never be scheduled before it.
        sequences: Dict[int, List[int]] = {}
        for index in range(second_at + 1):
            event = events[index]
            tid = event.tid
            if tid == tid_a and index > first_at:
                continue
            sequences.setdefault(tid, []).append(index)
        #: tid → index of the fork that starts it (threads with no
        #: schedulable fork are runnable from the start — or, if their
        #: fork fell outside the horizon, never runnable, which is the
        #: conservative choice).
        fork_of: Dict[int, int] = {}
        for sequence in sequences.values():
            for index in sequence:
                event = events[index]
                if (isinstance(event, SyncOp) and event.kind == "fork"
                        and event.target in sequences):
                    fork_of.setdefault(event.target, index)

        tids = sorted(sequences)
        ptr = {tid: 0 for tid in tids}
        lock_owner: Dict[int, int] = {}
        sem_count: Dict[int, int] = {}
        rw_writer: Dict[int, int] = {}
        rw_readers: Dict[int, int] = {}
        arrive_count: Dict[int, int] = {}
        forked: set = set()
        schedule: List[int] = []
        visited: set = set()
        unlock_mode = self._unlock_mode
        required_arrives = self._required_arrives

        def state_key():
            return (
                tuple(ptr[tid] for tid in tids),
                tuple(sorted(lock_owner.items())),
                tuple(sorted(
                    (t, c) for t, c in sem_count.items() if c
                )),
                tuple(sorted(rw_writer.items())),
                tuple(sorted(
                    (t, c) for t, c in rw_readers.items() if c
                )),
                tuple(sorted(
                    (t, c) for t, c in arrive_count.items() if c
                )),
            )

        def enabled(tid: int) -> Optional[int]:
            """The thread's next schedulable event index, or None."""
            at = ptr[tid]
            if at >= len(sequences[tid]):
                return None
            if tid in fork_of and fork_of[tid] not in forked:
                return None
            index = sequences[tid][at]
            event = events[index]
            if isinstance(event, Access):
                return index
            kind = event.kind
            if kind == "lock":
                owner = lock_owner.get(event.target)
                return index if owner is None or owner == tid else None
            if kind in ("sem_wait", "cond_wake"):
                return index if sem_count.get(event.target, 0) > 0 \
                    else None
            if kind == "join":
                child = event.target
                done = (child not in sequences
                        or ptr[child] >= len(sequences[child]))
                return index if done else None
            if kind == "rwlock_rd":
                return index if rw_writer.get(event.target) is None \
                    else None
            if kind == "rwlock_wr":
                free = (rw_writer.get(event.target) is None
                        and rw_readers.get(event.target, 0) == 0)
                return index if free else None
            if kind == "barrier_wait":
                quota = required_arrives.get(index, 0)
                return index if arrive_count.get(event.target, 0) >= quota \
                    else None
            # unlock / sem_post / cond_signal / fork / rwlock_unlock /
            # barrier_arrive: always schedulable once reached.
            return index

        def apply(index: int) -> None:
            event = events[index]
            ptr[event.tid] += 1
            schedule.append(index)
            if isinstance(event, SyncOp):
                kind = event.kind
                target = event.target
                if kind == "lock":
                    lock_owner[target] = event.tid
                elif kind == "unlock":
                    lock_owner.pop(target, None)
                elif kind in ("sem_post", "cond_signal"):
                    sem_count[target] = sem_count.get(target, 0) + 1
                elif kind in ("sem_wait", "cond_wake"):
                    sem_count[target] -= 1
                elif kind == "fork":
                    forked.add(index)
                elif kind == "rwlock_rd":
                    rw_readers[target] = rw_readers.get(target, 0) + 1
                elif kind == "rwlock_wr":
                    rw_writer[target] = event.tid
                elif kind == "rwlock_unlock":
                    if unlock_mode.get(index, "wr") == "wr":
                        rw_writer.pop(target, None)
                    else:
                        rw_readers[target] -= 1
                elif kind == "barrier_arrive":
                    arrive_count[target] = arrive_count.get(target, 0) + 1

        def undo(index: int) -> None:
            event = events[index]
            ptr[event.tid] -= 1
            schedule.pop()
            if isinstance(event, SyncOp):
                kind = event.kind
                target = event.target
                if kind == "lock":
                    lock_owner.pop(target, None)
                elif kind == "unlock":
                    lock_owner[target] = event.tid
                elif kind in ("sem_post", "cond_signal"):
                    sem_count[target] -= 1
                elif kind in ("sem_wait", "cond_wake"):
                    sem_count[target] = sem_count.get(target, 0) + 1
                elif kind == "fork":
                    forked.discard(index)
                elif kind == "rwlock_rd":
                    rw_readers[target] -= 1
                elif kind == "rwlock_wr":
                    rw_writer.pop(target, None)
                elif kind == "rwlock_unlock":
                    if unlock_mode.get(index, "wr") == "wr":
                        rw_writer[target] = event.tid
                    else:
                        rw_readers[target] = rw_readers.get(target, 0) + 1
                elif kind == "barrier_arrive":
                    arrive_count[target] -= 1

        def at_goal() -> bool:
            # Both threads parked right before their racy access (and
            # actually runnable: their forks, if any, are scheduled).
            return (
                ptr[tid_a] == len(sequences[tid_a]) - 1
                and ptr[tid_b] == len(sequences[tid_b]) - 1
                and all(
                    tid not in fork_of or fork_of[tid] in forked
                    for tid in (tid_a, tid_b)
                )
            )

        move_order = (tid_b, tid_a,
                      *(t for t in tids if t not in (tid_a, tid_b)))

        def next_moves() -> List[int]:
            # Move order: pull the pair's own threads toward the goal
            # first, then third parties (needed only when a sync
            # constraint blocks the pair).  The racy accesses themselves
            # are only ever scheduled by the goal step in the search
            # loop, so a thread parked at its side of the pair offers
            # no moves.
            moves = []
            for tid in move_order:
                if (tid in (tid_a, tid_b)
                        and ptr[tid] == len(sequences[tid]) - 1):
                    continue
                index = enabled(tid)
                if index is not None:
                    moves.append(index)
            return moves

        # Iterative DFS (schedules can be far deeper than the Python
        # recursion limit).  Each stack frame is (move that entered the
        # state, iterator over the state's moves); popping a frame
        # undoes its move.
        found = False
        nodes = 1
        if at_goal():
            apply(first_at)
            apply(second_at)
            found = True
        stack: List[Tuple[Optional[int], object]] = []
        if not found:
            visited.add(state_key())
            stack.append((None, iter(next_moves())))
        while stack and not found:
            move = next(stack[-1][1], None)
            if move is None:
                entered_by, _ = stack.pop()
                if entered_by is not None:
                    undo(entered_by)
                continue
            apply(move)
            nodes += 1
            if nodes > self.max_nodes:
                undo(move)
                break
            if at_goal():
                apply(first_at)
                apply(second_at)
                found = True
                break
            key = state_key()
            if key in visited:
                undo(move)
                continue
            visited.add(key)
            stack.append((move, iter(next_moves())))

        self.nodes_total += nodes
        if not found:
            return None
        kept = schedule if self.tail is None else schedule[-self.tail:]
        return WitnessSchedule(
            steps=tuple(step_of(events[index]) for index in kept),
            total_steps=len(schedule),
            nodes_explored=nodes,
        )


def plan_witnesses(
    events,
    reports,
    max_nodes: int = 20_000,
    tail: Optional[int] = None,
) -> Dict[Tuple[int, Tuple[int, int]], WitnessSchedule]:
    """Plan one witness schedule per distinct race.

    Returns a dict keyed by ``(address, pair)`` — the race-dedup key —
    mapping to the planned schedule; races with no feasible schedule in
    budget are simply absent (the confirmation service classifies them
    ``inapplicable``).
    """
    planner = WitnessPlanner(events, max_nodes=max_nodes, tail=tail)
    plans: Dict[Tuple[int, Tuple[int, int]], WitnessSchedule] = {}
    for report in reports:
        key = (report.address, report.pair)
        if key in plans:
            continue
        schedule = planner.schedule_for(report)
        if schedule is not None:
            plans[key] = schedule
    return plans
