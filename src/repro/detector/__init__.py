"""Happens-before data race detection (FastTrack + reference detector)."""

from .events import Access, AccessKind, RaceReport, SyncOp
from .fasttrack import FastTrack
from .lockset import LocksetDetector, LocksetWarning
from .reference import ReferenceDetector
from .vectorclock import BOTTOM, Epoch, VectorClock

__all__ = [
    "Access",
    "AccessKind",
    "BOTTOM",
    "Epoch",
    "FastTrack",
    "LocksetDetector",
    "LocksetWarning",
    "RaceReport",
    "ReferenceDetector",
    "SyncOp",
    "VectorClock",
]
