"""Pluggable data race detection backends.

Every detector conforms to the :class:`DetectorBackend` streaming
protocol (``sync`` / ``access`` / ``finish``) and is selected by name
through the registry: ``fasttrack`` (the paper's choice), ``reference``
(full vector clocks), ``lockset`` (Eraser comparator), ``o1``
(O(1)-samples sampling detector) and ``predict`` (predictive witness
search).
"""

from .base import DetectionFindings, DetectorBackend, HBDetectorBackend
from .events import (
    EVENT_KIND_ACCESS,
    EVENT_KIND_SYNC,
    Access,
    AccessKind,
    EventKey,
    RaceReport,
    SyncOp,
    WitnessSchedule,
    WitnessStep,
    access_sort_key,
    sync_sort_key,
)
from .fasttrack import FastTrack
from .lockset import LocksetDetector, LocksetWarning
from .o1samples import O1SamplesDetector
from .predictive import PredictiveDetector
from .reference import ReferenceDetector
from .registry import (
    DEFAULT_DETECTOR,
    backend_names,
    create_backend,
    register_backend,
    resolve_detector,
    resolve_detectors,
)
from .vectorclock import BOTTOM, Epoch, VectorClock
from .witness import WITNESS_TAIL, WitnessPlanner, plan_witnesses

__all__ = [
    "Access",
    "AccessKind",
    "BOTTOM",
    "DEFAULT_DETECTOR",
    "DetectionFindings",
    "DetectorBackend",
    "EVENT_KIND_ACCESS",
    "EVENT_KIND_SYNC",
    "Epoch",
    "EventKey",
    "FastTrack",
    "HBDetectorBackend",
    "LocksetDetector",
    "LocksetWarning",
    "O1SamplesDetector",
    "PredictiveDetector",
    "RaceReport",
    "ReferenceDetector",
    "SyncOp",
    "VectorClock",
    "WITNESS_TAIL",
    "WitnessPlanner",
    "WitnessSchedule",
    "WitnessStep",
    "access_sort_key",
    "backend_names",
    "create_backend",
    "plan_witnesses",
    "register_backend",
    "resolve_detector",
    "resolve_detectors",
    "sync_sort_key",
]
