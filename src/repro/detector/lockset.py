"""Eraser-style lockset race detection (Savage et al., SOSP 1997).

Included as a comparator, not as part of ProRace: the paper chooses
happens-before detection explicitly "for precision (no false positives)"
(§4.3).  Lockset checking flags any shared variable not consistently
protected by a common lock — which is *unsound in neither direction*:
it reports false positives on fork/join- or semaphore-ordered accesses
(no lock, no race) and can miss nothing HB misses.  The test suite and
the lockset-vs-fasttrack ablation quantify exactly that trade-off on
this reproduction's workloads.

The state machine follows the original paper: per variable, Virgin →
Exclusive (first thread) → Shared (reads from others) → Shared-Modified;
candidate locksets are intersected on each access and a race is reported
when the lockset of a Shared-Modified variable becomes empty.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .base import DetectorBackend
from .events import Access, AccessKind, RaceReport, SyncOp


class _State(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class _VarState:
    state: _State = _State.VIRGIN
    owner: Optional[int] = None
    lockset: Optional[FrozenSet[int]] = None  # None = all locks (⊤)
    first_ip: Optional[int] = None
    # Prior accessor, so a warning can name both sides of the pair.
    prior_tid: Optional[int] = None
    prior_kind: Optional[AccessKind] = None
    reported: bool = False


@dataclass(frozen=True)
class LocksetWarning:
    """A lockset violation (a *potential* race)."""

    var: Tuple[int, int]
    tid: int
    kind: AccessKind
    ip: int
    prior_ip: Optional[int]

    @property
    def address(self) -> int:
        return self.var[0]


class LocksetDetector(DetectorBackend):
    """The Eraser algorithm over the same event stream FastTrack takes.

    As a conforming backend it reports each lockset violation both as a
    :class:`LocksetWarning` (the historical surface) and as a
    :class:`~repro.detector.events.RaceReport` pairing the triggering
    access with the prior accessor, so reports/sweeps/the shoot-out can
    treat it uniformly with the HB backends.
    """

    name = "lockset"

    def __init__(self) -> None:
        super().__init__()
        self._held: Dict[int, Set[int]] = {}
        #: Write-mode subset of ``_held``: mutexes and rwlocks held
        #: exclusively.  A reader-held rwlock protects reads (no writer
        #: can run concurrently) but not writes (other readers can) —
        #: Eraser's read-shared/write-exclusive refinement.
        self._held_write: Dict[int, Set[int]] = {}
        self._vars: Dict[Tuple[int, int], _VarState] = {}
        self.warnings: List[LocksetWarning] = []

    def _locks_of(self, tid: int) -> Set[int]:
        return self._held.setdefault(tid, set())

    def _write_locks_of(self, tid: int) -> Set[int]:
        return self._held_write.setdefault(tid, set())

    def sync(self, op: SyncOp) -> None:
        self.sync_processed += 1
        kind = op.kind
        if kind == "lock":
            self._locks_of(op.tid).add(op.target)
            self._write_locks_of(op.tid).add(op.target)
        elif kind == "unlock":
            self._locks_of(op.tid).discard(op.target)
            self._write_locks_of(op.tid).discard(op.target)
        elif kind == "rwlock_rd":
            self._locks_of(op.tid).add(op.target)
        elif kind == "rwlock_wr":
            self._locks_of(op.tid).add(op.target)
            self._write_locks_of(op.tid).add(op.target)
        elif kind == "rwlock_unlock":
            self._locks_of(op.tid).discard(op.target)
            self._write_locks_of(op.tid).discard(op.target)
        # fork/join/semaphores/barriers carry no lockset information:
        # this is the imprecision the paper's HB choice avoids.

    def access(self, access: Access) -> None:
        self.accesses_processed += 1
        state = self._vars.setdefault(access.var, _VarState())
        # Writes are protected only by write-mode locks; reads by any
        # held lock (a read-held rwlock excludes all writers).
        held = frozenset(
            self._write_locks_of(access.tid)
            if access.is_write
            else self._locks_of(access.tid)
        )

        if state.state == _State.VIRGIN:
            state.state = _State.EXCLUSIVE
            state.owner = access.tid
            self._remember(state, access)
            return
        if state.state == _State.EXCLUSIVE:
            if access.tid == state.owner:
                self._remember(state, access)
                return
            # Second thread: initialize the candidate lockset.
            state.lockset = held
            state.state = (
                _State.SHARED_MODIFIED if access.is_write else _State.SHARED
            )
        else:
            assert state.lockset is not None
            state.lockset = state.lockset & held
            if access.is_write:
                state.state = _State.SHARED_MODIFIED

        if (
            state.state == _State.SHARED_MODIFIED
            and not state.lockset
            and not state.reported
        ):
            state.reported = True
            self.warnings.append(
                LocksetWarning(
                    var=access.var, tid=access.tid, kind=access.kind,
                    ip=access.ip, prior_ip=state.first_ip,
                )
            )
            self.races.append(
                RaceReport(
                    var=access.var,
                    first_tid=(
                        state.prior_tid
                        if state.prior_tid is not None else access.tid
                    ),
                    first_kind=state.prior_kind or access.kind,
                    first_ip=state.first_ip,
                    second=access,
                )
            )
        self._remember(state, access)

    @staticmethod
    def _remember(state: _VarState, access: Access) -> None:
        state.first_ip = access.ip
        state.prior_tid = access.tid
        state.prior_kind = access.kind
