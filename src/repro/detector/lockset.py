"""Eraser-style lockset race detection (Savage et al., SOSP 1997).

Included as a comparator, not as part of ProRace: the paper chooses
happens-before detection explicitly "for precision (no false positives)"
(§4.3).  Lockset checking flags any shared variable not consistently
protected by a common lock — which is *unsound in neither direction*:
it reports false positives on fork/join- or semaphore-ordered accesses
(no lock, no race) and can miss nothing HB misses.  The test suite and
the lockset-vs-fasttrack ablation quantify exactly that trade-off on
this reproduction's workloads.

The state machine follows the original paper: per variable, Virgin →
Exclusive (first thread) → Shared (reads from others) → Shared-Modified;
candidate locksets are intersected on each access and a race is reported
when the lockset of a Shared-Modified variable becomes empty.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .events import Access, AccessKind, SyncOp


class _State(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class _VarState:
    state: _State = _State.VIRGIN
    owner: Optional[int] = None
    lockset: Optional[FrozenSet[int]] = None  # None = all locks (⊤)
    first_ip: Optional[int] = None
    reported: bool = False


@dataclass(frozen=True)
class LocksetWarning:
    """A lockset violation (a *potential* race)."""

    var: Tuple[int, int]
    tid: int
    kind: AccessKind
    ip: int
    prior_ip: Optional[int]

    @property
    def address(self) -> int:
        return self.var[0]


class LocksetDetector:
    """The Eraser algorithm over the same event stream FastTrack takes."""

    def __init__(self) -> None:
        self._held: Dict[int, Set[int]] = {}
        self._vars: Dict[Tuple[int, int], _VarState] = {}
        self.warnings: List[LocksetWarning] = []

    def _locks_of(self, tid: int) -> Set[int]:
        return self._held.setdefault(tid, set())

    def sync(self, op: SyncOp) -> None:
        if op.kind == "lock":
            self._locks_of(op.tid).add(op.target)
        elif op.kind == "unlock":
            self._locks_of(op.tid).discard(op.target)
        # fork/join/semaphores carry no lockset information: this is the
        # imprecision the paper's HB choice avoids.

    def access(self, access: Access) -> None:
        state = self._vars.setdefault(access.var, _VarState())
        held = frozenset(self._locks_of(access.tid))

        if state.state == _State.VIRGIN:
            state.state = _State.EXCLUSIVE
            state.owner = access.tid
            state.first_ip = access.ip
            return
        if state.state == _State.EXCLUSIVE:
            if access.tid == state.owner:
                state.first_ip = access.ip
                return
            # Second thread: initialize the candidate lockset.
            state.lockset = held
            state.state = (
                _State.SHARED_MODIFIED if access.is_write else _State.SHARED
            )
        else:
            assert state.lockset is not None
            state.lockset = state.lockset & held
            if access.is_write:
                state.state = _State.SHARED_MODIFIED

        if (
            state.state == _State.SHARED_MODIFIED
            and not state.lockset
            and not state.reported
        ):
            state.reported = True
            self.warnings.append(
                LocksetWarning(
                    var=access.var, tid=access.tid, kind=access.kind,
                    ip=access.ip, prior_ip=state.first_ip,
                )
            )
        state.first_ip = access.ip

    def racy_addresses(self) -> frozenset:
        return frozenset(w.address for w in self.warnings)
