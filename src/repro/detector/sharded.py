"""Address-sharded parallel FastTrack.

Partitions the variable space across workers by address hash and runs
one full FastTrack instance per shard over the same merged event
stream: every **sync** operation is broadcast to all shards, every
**access** is processed by exactly the shard its variable hashes to
(the others skip it in O(1) without touching shadow state).

Why this is exact
-----------------

FastTrack's shadow state splits cleanly: thread and lock vector clocks
depend *only* on the sync stream, while per-variable state depends only
on the sync stream plus that variable's own accesses.  Broadcasting
syncs therefore gives every shard bit-identical thread clocks to the
serial run at every stream position, and each variable's full access
subsequence meets exactly one shard — so the union of per-shard
verdicts equals the serial verdicts, report for report.  Stream *order*
is restored by tagging each report with the global index of its second
access (:attr:`FastTrack.race_indices`) and k-way merging the per-shard
report lists on it; reports for one event all come from one shard, so
the merge is total and deterministic.  The argument is independent of
how the merged stream was keyed — in particular, uncertainty-clamped
merge keys under clock reconciliation (:mod:`repro.clock`) reach every
shard identically, so sharded verdicts stay bit-identical to serial
with or without a clock model.

Workers and memory
------------------

Workers fan out through :func:`repro.parallel.parallel_map`.  On
platforms whose multiprocessing start method is ``fork`` (Linux), the
materialized merge plan — sync ops plus columnar batch runs — is
published in a module global before the pool is created and inherited
by the forked workers for free; each worker ships back only its report
list and counters.  Elsewhere the runner falls back to the thread
executor (shared memory, still deterministic; no GIL-free scaling).
"""

from __future__ import annotations

import heapq
import multiprocessing
from operator import itemgetter
from typing import Dict, List, Optional, Tuple

from ..parallel import parallel_map
from .base import DetectorBackend
from .batch import BATCH_SYNC
from .fasttrack import FastTrack

#: (merge items, shard count) published for forked workers.
_PLAN: Optional[Tuple[list, int]] = None


def shard_of_address(address: int, nshards: int) -> int:
    """Stable shard of one variable address.  Word-granular: the low
    three bits are within-word offsets, never variable identity."""
    return (address >> 3) % nshards


def _shard_worker(shard: int):
    """Run one shard's FastTrack over the published plan (module-level:
    importable by pool workers)."""
    assert _PLAN is not None, "shard plan not published (non-fork start?)"
    items, nshards = _PLAN
    detector = FastTrack()
    d_sync = detector.sync
    d_feed = detector.feed_batch_shard
    for item in items:
        if item[0] == BATCH_SYNC:
            d_sync(item[1])
        else:
            _, batch, start, stop, base = item
            d_feed(batch, start, stop, base, shard, nshards)
    return (
        list(zip(detector.race_indices, detector.races)),
        detector.accesses_processed,
        detector.sync_processed,
    )


class ShardedFastTrack(DetectorBackend):
    """Deterministically merged findings of the per-shard workers.

    Presents the standard :class:`DetectorBackend` surface (races in
    serial stream order, the shared accessors, :meth:`finish`) so the
    pipeline's regeneration loop and reports treat it exactly like the
    serial backend; ``finish().details`` records the shard fan-out.
    """

    name = "fasttrack"

    def __init__(self, shards: int, executor: str) -> None:
        super().__init__()
        self.shards = shards
        self.executor = executor
        #: Total merged-stream events (accesses + syncs) of the pass.
        self.events_processed = 0

    def _details(self) -> Dict[str, object]:
        return {"shards": self.shards, "shard_executor": self.executor}


def run_sharded_fasttrack(
    context,
    shards: int,
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
) -> ShardedFastTrack:
    """One sharded FastTrack detection pass over *context*'s merged
    batch stream; returns the merged facade backend."""
    global _PLAN
    shards = max(1, shards)
    items = list(context.merged_batches())
    if executor is None:
        executor = ("process"
                    if multiprocessing.get_start_method() == "fork"
                    else "thread")
    _PLAN = (items, shards)
    try:
        results = parallel_map(
            _shard_worker, list(range(shards)),
            jobs=jobs if jobs is not None else shards,
            executor=executor if shards > 1 else "serial",
        )
    finally:
        _PLAN = None
    backend = ShardedFastTrack(shards=shards, executor=executor)
    merged = heapq.merge(*(tagged for tagged, _, _ in results),
                         key=itemgetter(0))
    races: List = []
    indices: List[int] = []
    for gidx, report in merged:
        indices.append(gidx)
        races.append(report)
    backend.races = races
    backend.race_indices = indices
    backend.accesses_processed = sum(r[1] for r in results)
    # Every shard consumed the whole broadcast sync stream once.
    backend.sync_processed = results[0][2] if results else 0
    backend.events_processed = sum(
        1 if item[0] == BATCH_SYNC else item[3] - item[2] for item in items
    )
    return backend
