"""Sampling race detection with O(1) metadata per variable.

After *Dynamic Race Detection With O(1) Samples* (see PAPERS.md): the
full happens-before relation is still built from the (cheap, complete)
sync stream, but per-variable access metadata is capped at a constant —
one write slot plus **one** reservoir-sampled read slot — instead of
FastTrack's adaptive epoch/vector-clock state that can grow to a full
read vector clock per variable.

This is tuned for the sparse access streams ProRace's PEBS sampling
produces: with a handful of sampled accesses per variable, one
uniformly-chosen read sample catches most racy readers, while the
shadow-memory footprint stays constant per variable no matter how many
threads read it.  The trade-off is recall, never precision: every
reported pair is a genuine HB violation on the observed stream (the
checks are a strict subset of FastTrack's), so

``racy_addresses(o1) ⊆ racy_addresses(fasttrack)``

holds by construction and is asserted by the differential tests.
Sampling is deterministic: a seeded generator drives the reservoir, so
the same event stream always yields the same findings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .base import HBDetectorBackend
from .events import Access, AccessKind, RaceReport
from .vectorclock import BOTTOM, Epoch


@dataclass
class _SampleState:
    """Constant-size per-variable shadow state: two slots, one counter."""

    write_epoch: Epoch = BOTTOM
    write_ip: Optional[int] = None
    read_epoch: Epoch = BOTTOM
    read_ip: Optional[int] = None
    #: Reads seen since the last write — the reservoir denominator.
    reads_since_write: int = 0


class O1SamplesDetector(HBDetectorBackend):
    """HB detection over one write slot + one sampled read slot per var."""

    name = "o1"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self._rng = random.Random(seed)
        self._vars: Dict[Tuple[int, int], _SampleState] = {}
        self._read_replacements = 0
        self._reads_sampled_out = 0

    def access(self, access: Access) -> None:
        self.accesses_processed += 1
        clock = self._clock(access.tid)
        state = self._vars.get(access.var)
        if state is None:
            state = _SampleState()
            self._vars[access.var] = state

        # Check against the write slot (any access races an unordered
        # write) — identical to FastTrack's write-epoch check.
        if not clock.covers_epoch(state.write_epoch):
            self.races.append(
                RaceReport(
                    var=access.var, first_tid=state.write_epoch.tid,
                    first_kind=AccessKind.WRITE, first_ip=state.write_ip,
                    second=access,
                )
            )

        if access.is_write:
            # Check against the sampled read slot (a subset of
            # FastTrack's read-VC sweep: one reader kept, not all).
            if not clock.covers_epoch(state.read_epoch):
                self.races.append(
                    RaceReport(
                        var=access.var, first_tid=state.read_epoch.tid,
                        first_kind=AccessKind.READ,
                        first_ip=state.read_ip, second=access,
                    )
                )
            state.write_epoch = Epoch(clock.get(access.tid), access.tid)
            state.write_ip = access.ip
            # The write orders (or just raced with) the sampled read;
            # either way the slot is spent — restart the reservoir.
            state.read_epoch = BOTTOM
            state.read_ip = None
            state.reads_since_write = 0
        else:
            state.reads_since_write += 1
            n = state.reads_since_write
            # Reservoir of size one: the k-th read since the last write
            # replaces the slot with probability 1/k, so the kept read
            # is uniform over all reads in the window.
            if n == 1 or self._rng.random() < 1.0 / n:
                if n > 1:
                    self._read_replacements += 1
                state.read_epoch = Epoch(clock.get(access.tid), access.tid)
                state.read_ip = access.ip
            else:
                self._reads_sampled_out += 1

    def _details(self) -> Dict[str, object]:
        return {
            "sample_seed": self.seed,
            "vars_tracked": len(self._vars),
            "read_slot_replacements": self._read_replacements,
            "reads_sampled_out": self._reads_sampled_out,
            "slots_per_var": 2,
        }
