"""The common detector-backend protocol.

Every race detector in :mod:`repro.detector` — FastTrack, the reference
vector-clock detector, the Eraser lockset comparator, the O(1)-samples
sampling detector and the predictive witness detector — conforms to one
streaming protocol so the analysis pipeline can feed N backends
side-by-side from a single merged event-stream pass:

* :meth:`DetectorBackend.sync` — consume one synchronization operation;
* :meth:`DetectorBackend.access` — consume one memory access;
* :meth:`DetectorBackend.finish` — finalize and return immutable
  :class:`DetectionFindings`.

The base class also owns the findings accessors *once*, so every
backend exposes the same deterministic surface (the seed grew them
ad hoc on FastTrack only, with ``distinct_races`` in stream order but
no sorted counterpart — reports and tests could not be order-stable
across executors for any other detector):

* :meth:`distinct_races` — first occurrence per (variable, instruction
  pair), in event-stream order.  Deterministic because the merged
  stream is totally ordered (see :mod:`repro.detector.events`), and the
  order the default report renders (stream order is the order a triager
  sees the program fail in).
* :meth:`sorted_races` / :meth:`sorted_addresses` / :meth:`sorted_pairs`
  — the same findings under a total sort key, independent of stream
  arrival order, for cross-executor/cross-backend comparisons.

Ordering contract under clock uncertainty
-----------------------------------------

Backends never judge timing themselves: the event stream's *order* is
the only ordering claim they consume.  When the pipeline reconciles
clocks (:mod:`repro.clock`), each access merges at the late edge of its
uncertainty interval clamped into its thread's own sync window
(:func:`~repro.detector.events.uncertain_merge_tsc`), so cross-thread
access pairs with overlapping uncertainty arrive unordered-by-time and
are ordered only by the sync-derived happens-before edges the sync
stream encodes.  A backend therefore cannot be tricked into a false
race by a lying TSC — at worst a widened interval hides a true one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, FrozenSet, List, Mapping, Tuple

from .events import Access, RaceReport, SyncOp
from .vectorclock import VectorClock


def _race_sort_key(report: RaceReport):
    """Total order on race reports, independent of stream order."""
    return (
        report.var,
        report.pair,
        report.first_tid,
        report.second.tid,
        report.first_kind.value,
        report.second.kind.value,
    )


@dataclass(frozen=True)
class DetectionFindings:
    """Immutable findings of one backend over one event-stream pass.

    ``races`` is the distinct-race list in stream order (what reports
    render); the sorted accessors give the order-independent view.
    ``details`` carries backend-specific accounting — sample budgets for
    the O(1)-samples backend, witness-search statistics for the
    predictive backend — rendered in per-backend report sections.
    """

    backend: str
    races: Tuple[RaceReport, ...]
    racy_addresses: FrozenSet[int]
    racy_pairs: FrozenSet[Tuple[int, int]]
    accesses_processed: int
    sync_processed: int
    details: Mapping[str, object] = field(default_factory=dict)

    def sorted_races(self) -> Tuple[RaceReport, ...]:
        return tuple(sorted(self.races, key=_race_sort_key))

    def sorted_addresses(self) -> Tuple[int, ...]:
        return tuple(sorted(self.racy_addresses))

    def sorted_pairs(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self.racy_pairs))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (used by reports and the shoot-out)."""
        return {
            "backend": self.backend,
            "distinct_races": len(self.races),
            "racy_addresses": [hex(a) for a in self.sorted_addresses()],
            "racy_pairs": [list(p) for p in self.sorted_pairs()],
            "accesses_processed": self.accesses_processed,
            "sync_processed": self.sync_processed,
            "details": dict(self.details),
        }


class DetectorBackend:
    """Base class of every race-detector backend.

    Feed events via :meth:`sync` and :meth:`access` in a happens-before
    consistent order (every release/fork precedes the acquire/join it
    synchronizes with; per-thread program order preserved), then call
    :meth:`finish` once.  Reports accumulate in :attr:`races`; the
    accessors below are shared by all backends and deterministic.
    """

    #: Registry name of the backend (subclasses override).
    name: ClassVar[str] = "abstract"

    def __init__(self) -> None:
        self.races: List[RaceReport] = []
        self.accesses_processed = 0
        self.sync_processed = 0

    # -- streaming protocol --------------------------------------------

    def sync(self, op: SyncOp) -> None:
        raise NotImplementedError

    def access(self, access: Access) -> None:
        raise NotImplementedError

    def feed_batch(self, batch, start: int = 0,
                   stop: int | None = None, base: int = 0) -> None:
        """Consume one pre-sorted access run of a columnar
        :class:`~repro.detector.batch.EventBatch` —
        events ``[start, stop)``, all from ``batch.tid`` with no
        intervening sync operation.

        The default materializes each event and delegates to
        :meth:`access`, so every backend accepts batches with verdicts
        bit-identical to the scalar stream; backends with a columnar
        fast path (FastTrack) override this.  *base* is the global
        merged-stream index of the run's **first** event, so batch
        position ``i`` has global index ``base + i - start`` — used by
        the sharded runner to restore stream order when merging
        per-shard reports.
        """
        if stop is None:
            stop = len(batch)
        access = self.access
        access_at = batch.access_at
        for i in range(start, stop):
            access(access_at(i))

    def finish(self) -> DetectionFindings:
        """Finalize the pass and return immutable findings.

        Idempotent for the streaming backends; the predictive backend
        does its witness search here.
        """
        return DetectionFindings(
            backend=self.name,
            races=tuple(self.distinct_races()),
            racy_addresses=self.racy_addresses(),
            racy_pairs=self.racy_pairs(),
            accesses_processed=self.accesses_processed,
            sync_processed=self.sync_processed,
            details=self._details(),
        )

    def _details(self) -> Dict[str, object]:
        """Backend-specific accounting for reports (override freely)."""
        return {}

    # -- shared findings accessors -------------------------------------

    def distinct_races(self) -> List[RaceReport]:
        """Races deduplicated by (variable address, instruction pair),
        first occurrence kept, in event-stream order."""
        seen = set()
        result = []
        for report in self.races:
            key = (report.address, report.pair)
            if key not in seen:
                seen.add(key)
                result.append(report)
        return result

    def sorted_races(self) -> List[RaceReport]:
        """The distinct races under a total, stream-order-independent
        sort key — identical across executors and backends that agree."""
        return sorted(self.distinct_races(), key=_race_sort_key)

    def racy_addresses(self) -> FrozenSet[int]:
        return frozenset(r.address for r in self.races)

    def racy_pairs(self) -> FrozenSet[Tuple[int, int]]:
        return frozenset(r.pair for r in self.races)

    def sorted_addresses(self) -> Tuple[int, ...]:
        return tuple(sorted(self.racy_addresses()))

    def sorted_pairs(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self.racy_pairs()))


class HBDetectorBackend(DetectorBackend):
    """Shared machinery of the happens-before backends: per-thread and
    per-lock vector clocks, and the sync-operation semantics (§4.3).

    FastTrack, the reference detector and the O(1)-samples detector all
    build the same HB relation from the sync stream and differ only in
    the per-variable access metadata they keep — so the relation lives
    here exactly once.
    """

    def __init__(self) -> None:
        super().__init__()
        self._threads: Dict[int, VectorClock] = {}
        self._locks: Dict[int, VectorClock] = {}
        #: Accumulated reader-release clocks per rwlock: a writer's
        #: acquire must be ordered after *every* earlier reader.
        self._rw_readers: Dict[int, VectorClock] = {}
        #: (tid, rwlock address) -> "rd"/"wr" held mode, so the unlock
        #: event (mode-less on the wire) releases with the right
        #: semantics.
        self._rw_held: Dict[Tuple[int, int], str] = {}

    def _clock(self, tid: int) -> VectorClock:
        clock = self._threads.get(tid)
        if clock is None:
            clock = VectorClock({tid: 1})
            self._threads[tid] = clock
        return clock

    def _lock_vc(self, address: int) -> VectorClock:
        vc = self._locks.get(address)
        if vc is None:
            vc = VectorClock()
            self._locks[address] = vc
        return vc

    def sync(self, op: SyncOp) -> None:
        self.sync_processed += 1
        kind = op.kind
        if kind in ("lock", "sem_wait", "cond_wake"):
            self._clock(op.tid).join(self._lock_vc(op.target))
        elif kind == "unlock":
            clock = self._clock(op.tid)
            self._locks[op.target] = clock.copy()
            clock.increment(op.tid)
        elif kind in ("sem_post", "cond_signal"):
            # Semaphores accumulate: every later wait is ordered after
            # every earlier post (conservative for counting semantics).
            clock = self._clock(op.tid)
            self._lock_vc(op.target).join(clock)
            clock.increment(op.tid)
        elif kind == "rwlock_rd":
            # Readers are ordered after the last write release only.
            self._clock(op.tid).join(self._lock_vc(op.target))
            self._rw_held[(op.tid, op.target)] = "rd"
        elif kind == "rwlock_wr":
            # A writer is ordered after the last write release *and*
            # after every reader release since.
            clock = self._clock(op.tid)
            clock.join(self._lock_vc(op.target))
            readers = self._rw_readers.get(op.target)
            if readers is not None:
                clock.join(readers)
            self._rw_held[(op.tid, op.target)] = "wr"
        elif kind == "rwlock_unlock":
            clock = self._clock(op.tid)
            # Sampled streams can miss the acquire; defaulting the mode
            # to "wr" creates (conservative) extra HB edges rather than
            # false races.
            mode = self._rw_held.pop((op.tid, op.target), "wr")
            if mode == "wr":
                self._locks[op.target] = clock.copy()
            else:
                readers = self._rw_readers.get(op.target)
                if readers is None:
                    readers = VectorClock()
                    self._rw_readers[op.target] = readers
                readers.join(clock)
            clock.increment(op.tid)
        elif kind == "barrier_arrive":
            # Arrivals accumulate into the barrier clock (like posts).
            clock = self._clock(op.tid)
            self._lock_vc(op.target).join(clock)
            clock.increment(op.tid)
        elif kind == "barrier_wait":
            # Releases join the accumulated arrivals: all-to-all order.
            self._clock(op.tid).join(self._lock_vc(op.target))
        elif kind == "fork":
            parent = self._clock(op.tid)
            child = self._clock(op.target)
            child.join(parent)
            parent.increment(op.tid)
        elif kind == "join":
            child = self._clock(op.target)
            self._clock(op.tid).join(child)
            child.increment(op.target)
        else:
            raise ValueError(f"unknown sync kind: {kind!r}")
