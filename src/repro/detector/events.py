"""Detector-level event types and race reports.

The detector is trace-format agnostic: the analysis pipeline lowers merged
traces (sampled + reconstructed accesses, sync records) into these events
in a happens-before-consistent order and feeds them to a detector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..replay.program_map import Taint


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Access:
    """One memory access presented to the detector.

    ``var`` is the detector-level variable identity — the address after
    allocation-generation disambiguation (§4.3), so a recycled heap
    address maps to a fresh variable.
    """

    tid: int
    var: Tuple[int, int]  # (address, allocation generation)
    kind: AccessKind
    ip: int
    tsc: float
    provenance: str
    taint: Taint = None

    @property
    def address(self) -> int:
        return self.var[0]

    @property
    def is_write(self) -> bool:
        return self.kind == AccessKind.WRITE


@dataclass(frozen=True)
class SyncOp:
    """One synchronization operation presented to the detector."""

    tid: int
    kind: str  # lock|unlock|sem_post|sem_wait|cond_signal|cond_wake|fork|join
    target: int  # lock/sem address, or peer tid for fork/join
    tsc: float


@dataclass(frozen=True)
class RaceReport:
    """A detected data race between two accesses to one variable."""

    var: Tuple[int, int]
    first_tid: int
    first_kind: AccessKind
    first_ip: Optional[int]
    second: Access

    @property
    def address(self) -> int:
        return self.var[0]

    @property
    def pair(self) -> Tuple[int, int]:
        """The (sorted) racing instruction pair, for deduplication."""
        a = self.first_ip if self.first_ip is not None else -1
        return tuple(sorted((a, self.second.ip)))  # type: ignore[return-value]

    def describe(self) -> str:
        return (
            f"race on {self.address:#x}: "
            f"T{self.first_tid} {self.first_kind.value} @ip={self.first_ip} "
            f"vs T{self.second.tid} {self.second.kind.value} "
            f"@ip={self.second.ip} ({self.second.provenance})"
        )
