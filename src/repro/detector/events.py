"""Detector-level event types and race reports.

The detector is trace-format agnostic: the analysis pipeline lowers merged
traces (sampled + reconstructed accesses, sync records) into these events
in a happens-before-consistent order and feeds them to a detector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..replay.program_map import Taint


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"


#: Integer access-kind codes of the columnar batch layout
#: (:mod:`repro.detector.batch`).  ``ACCESS_KINDS[code]`` recovers the
#: enum; writes deliberately code to 1 so the batch hot loops can branch
#: on the raw truthiness of the kinds column.
ACCESS_READ = 0
ACCESS_WRITE = 1
ACCESS_KINDS = (AccessKind.READ, AccessKind.WRITE)


# ----------------------------------------------------------------------
# Total event order
# ----------------------------------------------------------------------
#
# Every consumer of the merged event stream — the pipeline's k-way
# merge, sweeps, tests — sorts by the same total key so backends cannot
# drift on event ordering:
#
# * accesses rank before sync records at equal TSC (the seed pipeline's
#   behaviour);
# * sync records carry a zero ``tid`` slot so that ``seq`` — the
#   machine's exact global emission order — stays authoritative for
#   same-TSC sync pairs (a blocked lock completing inside another
#   thread's unlock must keep its release-before-acquire order;
#   breaking ties by tid would invert the HB edge);
# * accesses tie-break on ``(tid, step_index)``, giving same-TSC
#   accesses from different threads a deterministic cross-thread order.

#: Kind ranks of the total event order (accesses first at equal TSC).
EVENT_KIND_ACCESS = 0
EVENT_KIND_SYNC = 1

#: The total event sort key: (tsc, kind_rank, tid, seq).
EventKey = Tuple[float, int, int, int]


def access_sort_key(tsc: float, tid: int, step_index: int) -> EventKey:
    """Sort key of one access event (seq slot = path step index)."""
    return (tsc, EVENT_KIND_ACCESS, tid, step_index)


def sync_sort_key(record) -> EventKey:
    """Sort key of one sync event (anything with ``tsc`` and ``seq``).

    The tid slot is zeroed so ``seq`` (the machine's global emission
    order) is authoritative for same-TSC sync records — ordering them by
    tid could invert a release/acquire pair and fabricate a race.
    """
    return (float(record.tsc), EVENT_KIND_SYNC, 0, record.seq)


def uncertain_merge_tsc(tsc: float, half_width: float,
                        prev_sync_tsc: Optional[float],
                        next_sync_tsc: Optional[float]) -> float:
    """Merge-key timestamp of an access under clock uncertainty
    (:mod:`repro.clock`).

    A corrected timestamp is only trusted to ``± half_width`` ticks, so
    the access merges at the *late* edge of its uncertainty interval,
    clamped into the window its thread's *own* surrounding sync records
    define (``prev_sync_tsc``/``next_sync_tsc``, by program order):
    program order across the thread's own sync operations is
    authoritative and must not be crossed in either direction.  The
    access-before-sync kind rank makes the usable key window
    ``(prev_sync_tsc, next_sync_tsc]`` — at the upper clamp the access
    still sorts before its own next sync, and the lower clamp must land
    strictly past the previous one (clock repair keeps a thread's sync
    timestamps strictly increasing, so the window is never empty).

    Together with the repaired sync stream merging in global ``seq``
    order this pins every sync-derived happens-before chain: any true
    edge ``access -> own release -> (seq order) -> foreign acquire ->
    access`` survives into the merged order, so skew can cost detection
    probability but never manufacture a false ordering.  Cross-thread
    pairs whose uncertainty intervals overlap carry no timing claim and
    are ordered only by those sync-derived edges.  Only the merge *key*
    shifts; the access's reported ``tsc`` (and its allocation-generation
    lookup) stays at the corrected estimate.
    """
    value = tsc + half_width
    if next_sync_tsc is not None and value > next_sync_tsc:
        value = next_sync_tsc
    if prev_sync_tsc is not None and value <= prev_sync_tsc:
        bumped = prev_sync_tsc + 1
        value = bumped if next_sync_tsc is None \
            else min(bumped, next_sync_tsc)
    return value


@dataclass(frozen=True)
class Access:
    """One memory access presented to the detector.

    ``var`` is the detector-level variable identity — the address after
    allocation-generation disambiguation (§4.3), so a recycled heap
    address maps to a fresh variable.
    """

    tid: int
    var: Tuple[int, int]  # (address, allocation generation)
    kind: AccessKind
    ip: int
    tsc: float
    provenance: str
    taint: Taint = None

    @property
    def address(self) -> int:
        return self.var[0]

    @property
    def is_write(self) -> bool:
        return self.kind == AccessKind.WRITE


@dataclass(frozen=True)
class SyncOp:
    """One synchronization operation presented to the detector."""

    tid: int
    kind: str  # lock|unlock|sem_post|sem_wait|cond_signal|cond_wake|fork|join
    target: int  # lock/sem address, or peer tid for fork/join
    tsc: float


@dataclass(frozen=True)
class WitnessStep:
    """One scheduled event of a predictive-race witness."""

    tid: int
    op: str  # read|write|lock|unlock|sem_post|sem_wait|...|fork|join
    detail: int  # ip for accesses, lock/sem address or peer tid for sync

    def describe(self) -> str:
        if self.op in ("read", "write"):
            return f"T{self.tid}:{self.op[0]}@ip={self.detail}"
        return f"T{self.tid}:{self.op}@{self.detail:#x}"


@dataclass(frozen=True)
class WitnessSchedule:
    """A feasible reordering that places the two racy accesses adjacent.

    Produced by the predictive backend's witness search: a schedule of
    the dependency-closed event prefix that respects per-thread program
    order, lock mutual exclusion, fork/join and semaphore counting, and
    ends with the candidate pair back-to-back.  ``steps`` keeps the tail
    of the schedule (the interesting part — the reordering around the
    pair); ``total_steps`` counts the whole feasible schedule.
    """

    steps: Tuple[WitnessStep, ...]
    total_steps: int
    nodes_explored: int

    @property
    def truncated(self) -> bool:
        return self.total_steps > len(self.steps)

    def describe(self) -> str:
        head = "… " if self.truncated else ""
        body = " ".join(step.describe() for step in self.steps)
        return f"{self.total_steps} steps: {head}{body}"


@dataclass(frozen=True)
class RaceReport:
    """A detected data race between two accesses to one variable."""

    var: Tuple[int, int]
    first_tid: int
    first_kind: AccessKind
    first_ip: Optional[int]
    second: Access
    #: Reordering witness (predictive backend only): a feasible schedule
    #: demonstrating the pair can execute back-to-back.
    witness: Optional[WitnessSchedule] = None

    @property
    def address(self) -> int:
        return self.var[0]

    @property
    def pair(self) -> Tuple[int, int]:
        """The (sorted) racing instruction pair, for deduplication."""
        a = self.first_ip if self.first_ip is not None else -1
        return tuple(sorted((a, self.second.ip)))  # type: ignore[return-value]

    def describe(self) -> str:
        return (
            f"race on {self.address:#x}: "
            f"T{self.first_tid} {self.first_kind.value} @ip={self.first_ip} "
            f"vs T{self.second.tid} {self.second.kind.value} "
            f"@ip={self.second.ip} ({self.second.provenance})"
        )
