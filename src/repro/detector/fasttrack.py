"""The FastTrack happens-before data race detector.

A faithful implementation of the FastTrack algorithm (Flanagan & Freund,
PLDI 2009) that ProRace uses for its offline analysis (§3, §6): full
vector clocks for thread and lock state, adaptive epoch/vector-clock
representation for per-variable read state, epoch-only write state.

The detector is precise with respect to the event stream it is given —
no false positives under happens-before — and reports every racy access
pair it observes rather than stopping at the first.  Timing enters only
through the stream's order: under clock reconciliation the pipeline
merges accesses on uncertainty-clamped keys (see
:mod:`repro.detector.events`), so skewed timestamps can delay an event
in the stream but never place it on the wrong side of a sync-derived
happens-before edge.

Epoch-compact representation
----------------------------

Per-variable epochs are stored as raw ``(clock, tid)`` integer pairs in
slotted fields rather than ``Epoch`` objects — sparse sampled traces
keep almost every variable in the scalar-epoch regime forever, so the
shadow state allocates nothing until a variable actually sees concurrent
readers, and only then promotes to a (copy-on-write) vector clock.
``tid == -1`` encodes the minimal epoch ⊥e.

Batch fast path
---------------

:meth:`FastTrack.feed_batch` consumes columnar
:class:`~repro.detector.batch.EventBatch` runs.  Within one run the
thread's clock cannot change (no intervening sync), so the epoch lookup
is hoisted out of the loop; the same-epoch fast-path checks run inline
on the integer columns, and consecutive events on the same (variable,
kind) are run-length skipped — the previous event's postcondition proves
the repeat hits the fast path, whichever path the previous event took.
Any event that misses the fast path is materialized as a scalar
:class:`Access` and delegated to the one scalar implementation of the
race logic, so batched verdicts are bit-identical to the scalar stream
by construction (and differentially tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .base import HBDetectorBackend
from .events import Access, AccessKind, RaceReport
from .vectorclock import VectorClock

#: Composite-epoch packing: ``clock << _TID_BITS | tid``.  The side
#: tables :attr:`FastTrack._w_fast` / :attr:`FastTrack._r_fast` store
#: these so the batch loop's fast-path check is one dict probe plus one
#: int compare.  Injective only while tids fit the field, hence the
#: guard at the (rare, slow-path) packing sites.
_TID_BITS = 20
_TID_SPAN = 1 << _TID_BITS


@dataclass(slots=True)
class _VarState:
    """Per-variable shadow state (FastTrack's adaptive representation).

    Write and read epochs are raw ``(clock, tid)`` integer pairs;
    ``tid == -1`` is the minimal epoch ⊥e (covered by every clock).
    """

    write_clock: int = 0
    write_tid: int = -1
    write_ip: Optional[int] = None
    read_clock: int = 0
    read_tid: int = -1
    read_ip: Optional[int] = None
    #: Non-None once reads are concurrent (the "read-shared" state).
    read_vc: Optional[VectorClock] = None
    #: ip of the last read per thread, for shared-read race reporting.
    read_ips: Optional[Dict[int, int]] = None


class FastTrack(HBDetectorBackend):
    """Streaming FastTrack detector.

    Feed events via :meth:`sync` and :meth:`access` in a happens-before
    consistent order (every release/fork precedes the acquire/join it
    synchronizes with; per-thread program order preserved), or whole
    columnar runs via :meth:`feed_batch`.  Reports accumulate in
    :attr:`races`.  Vector-clock state and the sync semantics live in
    :class:`~repro.detector.base.HBDetectorBackend`.
    """

    name = "fasttrack"

    def __init__(self) -> None:
        super().__init__()
        self._vars: Dict[Tuple[int, int], _VarState] = {}
        #: Write fast table: var -> ``clock << _TID_BITS | tid`` mirroring
        #: the write epoch exactly (-1 default ≡ ⊥e), so the batch loop's
        #: write fast-path check is one dict probe plus one int compare.
        self._w_fast: Dict[Tuple[int, int], int] = {}
        #: Per-thread read fast tables: tid -> {var -> clock}.  An entry
        #: equal to the thread's current clock holds exactly when the
        #: scalar read fast path would hit (exclusive owner or covered
        #: shared reader) — per-thread tables mean concurrent readers of
        #: one variable keep independent entries instead of evicting each
        #: other.  Maintained at the slow-path mutation sites below:
        #: every branch of :meth:`_read` leaves the reader's own entry
        #: current; the two transitions that strip *another* thread's
        #: read coverage (exclusive owner change, shared-read discard on
        #: write) pop the affected entries.
        self._r_tables: Dict[int, Dict[Tuple[int, int], int]] = {}
        #: Global stream index of the event being processed (set by the
        #: batch slow path); parallel list :attr:`race_indices` tags each
        #: report with it so the sharded runner can merge per-shard
        #: reports back into exact serial stream order.
        self._gidx = -1
        self.race_indices: List[int] = []

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------

    def access(self, access: Access) -> None:
        if access.is_write:
            self._write(access)
        else:
            self._read(access)

    def _report(self, state: _VarState, access: Access,
                first_tid: int, first_kind: AccessKind,
                first_ip: Optional[int]) -> None:
        self.race_indices.append(self._gidx)
        self.races.append(
            RaceReport(
                var=access.var,
                first_tid=first_tid,
                first_kind=first_kind,
                first_ip=first_ip,
                second=access,
            )
        )

    def _read(self, access: Access) -> None:
        self.accesses_processed += 1
        tid = access.tid
        clock = self._clock(tid)
        current = clock.get(tid)
        state = self._vars.get(access.var)

        # Same-epoch fast path on the raw (clock, tid) ints — the
        # overwhelmingly common repeated-read case allocates no Epoch,
        # VectorClock, or _VarState at all.
        if state is not None:
            read_vc = state.read_vc
            if read_vc is None:
                if state.read_clock == current and state.read_tid == tid:
                    return
            elif read_vc.get(tid) == current:
                return
        else:
            state = _VarState()
            self._vars[access.var] = state

        # write-read race check (⊥e has write_tid == -1, always covered).
        write_tid = state.write_tid
        if write_tid >= 0 and state.write_clock > clock.get(write_tid):
            self._report(state, access, write_tid,
                         AccessKind.WRITE, state.write_ip)

        if state.read_vc is None:
            read_tid = state.read_tid
            if read_tid < 0 or state.read_clock <= clock.get(read_tid):
                # Exclusive read (possibly taking ownership from a
                # covered previous owner, whose fast entry dies with it).
                if read_tid >= 0 and read_tid != tid:
                    old = self._r_tables.get(read_tid)
                    if old is not None:
                        old.pop(access.var, None)
                state.read_clock = current
                state.read_tid = tid
                state.read_ip = access.ip
            else:
                # Inflate to read-shared (read_tid != tid here: our own
                # previous read epoch is always covered by our clock).
                vc = VectorClock()
                vc.set(read_tid, state.read_clock)
                vc.set(tid, current)
                state.read_vc = vc
                state.read_ips = {
                    read_tid: (state.read_ip
                               if state.read_ip is not None else -1),
                    tid: access.ip,
                }
        else:
            state.read_vc.set(tid, current)
            assert state.read_ips is not None
            state.read_ips[tid] = access.ip
        # Every branch above left the read state covering tid@current, so
        # a same-epoch repeat is a guaranteed scalar fast-path hit.
        table = self._r_tables.get(tid)
        if table is None:
            table = self._r_tables[tid] = {}
        table[access.var] = current

    def _write(self, access: Access) -> None:
        self.accesses_processed += 1
        tid = access.tid
        clock = self._clock(tid)
        current = clock.get(tid)
        state = self._vars.get(access.var)

        # Same-epoch fast path on the raw (clock, tid) ints: a repeated
        # write by the same thread in the same epoch allocates nothing.
        if state is not None:
            if state.write_clock == current and state.write_tid == tid:
                return
        else:
            state = _VarState()
            self._vars[access.var] = state

        # write-write race check.
        write_tid = state.write_tid
        if write_tid >= 0 and state.write_clock > clock.get(write_tid):
            self._report(state, access, write_tid,
                         AccessKind.WRITE, state.write_ip)
        # read-write race checks.
        read_vc = state.read_vc
        if read_vc is None:
            read_tid = state.read_tid
            if read_tid >= 0 and state.read_clock > clock.get(read_tid):
                self._report(state, access, read_tid,
                             AccessKind.READ, state.read_ip)
        else:
            if not clock.covers(read_vc):
                for rtid, rclock in read_vc.items():
                    if rclock > clock.get(rtid):
                        ip = (state.read_ips or {}).get(rtid)
                        self._report(state, access, rtid,
                                     AccessKind.READ, ip)
            # All read info is now ordered before this write (or reported);
            # FastTrack discards the shared-read set, and with it every
            # covered reader's fast entry.
            tables = self._r_tables
            for rtid, _ in read_vc.items():
                table = tables.get(rtid)
                if table is not None:
                    table.pop(access.var, None)
            state.read_vc = None
            state.read_ips = None
            state.read_clock = 0
            state.read_tid = -1
            state.read_ip = None

        state.write_clock = current
        state.write_tid = tid
        state.write_ip = access.ip
        assert 0 <= tid < _TID_SPAN
        self._w_fast[access.var] = current << _TID_BITS | tid

    # ------------------------------------------------------------------
    # Columnar batch fast path
    # ------------------------------------------------------------------
    #
    # Within one merged run every event shares the batch's tid and no
    # sync op intervenes, so the thread clock — and with it `current` —
    # is loop-invariant.  The fast-path conditions are checked inline on
    # the integer columns; misses materialize a scalar Access and
    # delegate to _read/_write above (the only implementation of the
    # race logic).  Run-length skip: if the previous event in this run
    # had the same (var, kind), its postcondition guarantees this event
    # satisfies the fast-path condition — after a write by `tid` this
    # epoch, write_clock/write_tid match; after a read, the read epoch
    # or shared vector clock records `current` for `tid` — so the event
    # is counted and skipped without touching the shadow state (exactly
    # what the scalar fast path would do).

    def feed_batch(self, batch, start: int = 0,
                   stop: int | None = None, base: int = 0) -> None:
        if stop is None:
            stop = len(batch)
        if stop <= start:
            return
        tid = batch.tid
        assert 0 <= tid < _TID_SPAN
        clock = self._clock(tid)
        current = clock.get(tid)
        cur_w = current << _TID_BITS | tid
        vars_col = batch.vars
        kinds = batch.kinds
        nxt = batch.next_change
        w_get = self._w_fast.get
        table = self._r_tables.get(tid)
        if table is None:
            table = self._r_tables[tid] = {}
        r_get = table.get
        # *base* is the global index of the run's first event (batch
        # position *start*), so event i's global index is base + i - start.
        gbase = base - start
        fast = 0
        i = start
        while i < stop:
            var = vars_col[i]
            kind = kinds[i]
            if (w_get(var, -1) == cur_w if kind
                    else r_get(var, -1) == current):
                # Fast hit: the whole repeat group behind it is fast too.
                j = nxt[i]
                if j > stop:
                    j = stop
                fast += j - i
                i = j
                continue
            self._gidx = gbase + i
            access = batch.access_at(i)
            if kind:
                self._write(access)
            else:
                self._read(access)
            # The slow event's postcondition makes the rest of its repeat
            # group a guaranteed fast-path hit — skip it wholesale.
            j = nxt[i]
            if j > stop:
                j = stop
            fast += j - i - 1
            i = j
        self.accesses_processed += fast

    def feed_batch_shard(self, batch, start: int, stop: int, base: int,
                         shard: int, nshards: int) -> None:
        """The :meth:`feed_batch` loop with address-shard filtering:
        process only events whose variable hashes to *shard*, skipping
        the rest untouched.  Kept as a twin loop (rather than a branch
        inside :meth:`feed_batch`) so the serial hot path pays nothing
        for sharding.  Skipping foreign-shard events cannot break the
        run-length argument: a repeated (var, kind) pair is same-shard
        by definition, and skipped events never touch shadow state.
        """
        if stop <= start:
            return
        tid = batch.tid
        assert 0 <= tid < _TID_SPAN
        clock = self._clock(tid)
        current = clock.get(tid)
        cur_w = current << _TID_BITS | tid
        vars_col = batch.vars
        kinds = batch.kinds
        nxt = batch.next_change
        w_get = self._w_fast.get
        table = self._r_tables.get(tid)
        if table is None:
            table = self._r_tables[tid] = {}
        r_get = table.get
        gbase = base - start
        fast = 0
        i = start
        while i < stop:
            var = vars_col[i]
            if (var[0] >> 3) % nshards != shard:
                # Foreign shard: the whole repeat group is foreign.
                j = nxt[i]
                i = j if j < stop else stop
                continue
            kind = kinds[i]
            if (w_get(var, -1) == cur_w if kind
                    else r_get(var, -1) == current):
                j = nxt[i]
                if j > stop:
                    j = stop
                fast += j - i
                i = j
                continue
            self._gidx = gbase + i
            access = batch.access_at(i)
            if kind:
                self._write(access)
            else:
                self._read(access)
            j = nxt[i]
            if j > stop:
                j = stop
            fast += j - i - 1
            i = j
        self.accesses_processed += fast
