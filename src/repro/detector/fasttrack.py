"""The FastTrack happens-before data race detector.

A faithful implementation of the FastTrack algorithm (Flanagan & Freund,
PLDI 2009) that ProRace uses for its offline analysis (§3, §6): full
vector clocks for thread and lock state, adaptive epoch/vector-clock
representation for per-variable read state, epoch-only write state.

The detector is precise with respect to the event stream it is given —
no false positives under happens-before — and reports every racy access
pair it observes rather than stopping at the first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .base import HBDetectorBackend
from .events import Access, AccessKind, RaceReport
from .vectorclock import BOTTOM, Epoch, VectorClock


@dataclass
class _VarState:
    """Per-variable shadow state (FastTrack's adaptive representation)."""

    write_epoch: Epoch = BOTTOM
    write_ip: Optional[int] = None
    read_epoch: Epoch = BOTTOM
    read_ip: Optional[int] = None
    #: Non-None once reads are concurrent (the "read-shared" state).
    read_vc: Optional[VectorClock] = None
    #: ip of the last read per thread, for shared-read race reporting.
    read_ips: Optional[Dict[int, int]] = None


class FastTrack(HBDetectorBackend):
    """Streaming FastTrack detector.

    Feed events via :meth:`sync` and :meth:`access` in a happens-before
    consistent order (every release/fork precedes the acquire/join it
    synchronizes with; per-thread program order preserved).  Reports
    accumulate in :attr:`races`.  Vector-clock state and the sync
    semantics live in :class:`~repro.detector.base.HBDetectorBackend`.
    """

    name = "fasttrack"

    def __init__(self) -> None:
        super().__init__()
        self._vars: Dict[Tuple[int, int], _VarState] = {}

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------

    def access(self, access: Access) -> None:
        if access.is_write:
            self._write(access)
        else:
            self._read(access)

    def _report(self, state: _VarState, access: Access,
                first_tid: int, first_kind: AccessKind,
                first_ip: Optional[int]) -> None:
        self.races.append(
            RaceReport(
                var=access.var,
                first_tid=first_tid,
                first_kind=first_kind,
                first_ip=first_ip,
                second=access,
            )
        )

    def _read(self, access: Access) -> None:
        self.accesses_processed += 1
        tid = access.tid
        clock = self._clock(tid)
        current = clock.get(tid)
        state = self._vars.get(access.var)

        # Same-epoch fast path on raw (clock, tid) — the overwhelmingly
        # common repeated-read case allocates no Epoch, VectorClock, or
        # _VarState at all.
        if state is not None:
            read_vc = state.read_vc
            if read_vc is None:
                last = state.read_epoch
                if last.clock == current and last.tid == tid:
                    return
            elif read_vc.get(tid) == current:
                return
        else:
            state = _VarState()
            self._vars[access.var] = state
        epoch = Epoch(current, tid)

        # write-read race check.
        if not clock.covers_epoch(state.write_epoch):
            self._report(state, access, state.write_epoch.tid,
                         AccessKind.WRITE, state.write_ip)

        if state.read_vc is None:
            if clock.covers_epoch(state.read_epoch):
                # Exclusive read.
                state.read_epoch = epoch
                state.read_ip = access.ip
            else:
                # Inflate to read-shared.
                vc = VectorClock()
                if state.read_epoch is not BOTTOM:
                    vc.set(state.read_epoch.tid, state.read_epoch.clock)
                vc.set(access.tid, epoch.clock)
                state.read_vc = vc
                state.read_ips = {}
                if state.read_epoch is not BOTTOM:
                    state.read_ips[state.read_epoch.tid] = (
                        state.read_ip if state.read_ip is not None else -1
                    )
                state.read_ips[access.tid] = access.ip
        else:
            state.read_vc.set(access.tid, epoch.clock)
            assert state.read_ips is not None
            state.read_ips[access.tid] = access.ip

    def _write(self, access: Access) -> None:
        self.accesses_processed += 1
        tid = access.tid
        clock = self._clock(tid)
        current = clock.get(tid)
        state = self._vars.get(access.var)

        # Same-epoch fast path on raw (clock, tid): a repeated write by
        # the same thread in the same epoch allocates nothing.
        if state is not None:
            last = state.write_epoch
            if last.clock == current and last.tid == tid:
                return
        else:
            state = _VarState()
            self._vars[access.var] = state
        epoch = Epoch(current, tid)

        # write-write race check.
        if not clock.covers_epoch(state.write_epoch):
            self._report(state, access, state.write_epoch.tid,
                         AccessKind.WRITE, state.write_ip)
        # read-write race checks.
        if state.read_vc is None:
            if not clock.covers_epoch(state.read_epoch):
                self._report(state, access, state.read_epoch.tid,
                             AccessKind.READ, state.read_ip)
        else:
            if not clock.covers(state.read_vc):
                for tid, rclock in state.read_vc.items():
                    if rclock > clock.get(tid):
                        ip = (state.read_ips or {}).get(tid)
                        self._report(state, access, tid, AccessKind.READ, ip)
            # All read info is now ordered before this write (or reported);
            # FastTrack discards the shared-read set.
            state.read_vc = None
            state.read_ips = None
            state.read_epoch = BOTTOM
            state.read_ip = None

        state.write_epoch = epoch
        state.write_ip = access.ip
