"""Command-line interface: ``python -m repro <command>``.

Mirrors how the real tool would be driven in the paper's deployment
story (§3): trace a run on a production box, ship the trace file, and
analyze it on a separate machine.

Commands:

* ``workloads`` — list the catalogued benchmark programs and race bugs.
* ``run`` — execute a workload on the simulated machine (no tracing).
* ``trace`` — run under PMU tracing and write a ``.prtr`` trace file.
* ``analyze`` — offline-analyze a trace file and print the race report.
* ``detect`` — trace + analyze in one step (optionally many seeds, with
  a fleet summary).
* ``overhead`` — sweep sampling periods for a workload, printing the
  cost model's overhead estimates for both drivers.
* ``chaos`` — sweep fault-injection intensity over seeded runs and
  report the detection-probability curve under each fault plan.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from .analysis import (
    FleetSummary,
    OfflinePipeline,
    estimate_overhead,
    render_report,
    to_json,
)
from .isa.assembler import assemble
from .isa.program import Program
from .machine import Machine
from .parallel import parallel_map
from .pmu import PRORACE_DRIVER, VANILLA_DRIVER
from .tracing import TraceFormatError, read_trace, trace_run, write_trace
from .workloads import ALL_WORKLOADS, RACE_BUGS, WorkloadScale

_DRIVERS = {"prorace": PRORACE_DRIVER, "vanilla": VANILLA_DRIVER}


def _resolve_program(name: str, scale: WorkloadScale,
                     source: Optional[str]) -> Program:
    """A program by workload name, bug name, or assembly file path."""
    if source is not None:
        with open(source) as handle:
            return assemble(handle.read(), name=source)
    if name in ALL_WORKLOADS:
        return ALL_WORKLOADS[name].instantiate(scale)
    if name in RACE_BUGS:
        return RACE_BUGS[name].build(scale)
    raise SystemExit(
        f"unknown program {name!r}; see `repro workloads` "
        "(or pass --source FILE.s)"
    )


def _scale_from(args: argparse.Namespace) -> WorkloadScale:
    return WorkloadScale(iterations=args.iterations, threads=args.threads)


def _add_program_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="workload/bug name, or - with "
                                        "--source")
    parser.add_argument("--source", help="assembly source file to use "
                                         "instead of a catalogued name")
    parser.add_argument("--iterations", type=int, default=40,
                        help="workload scale (default 40)")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)


def cmd_workloads(args: argparse.Namespace) -> int:
    print("workloads:")
    for name, workload in sorted(ALL_WORKLOADS.items()):
        io_tag = "io-bound " if workload.io_bound else "cpu-bound"
        print(f"  {name:16s} [{workload.category:7s}] {io_tag}  "
              f"{workload.description}")
    print("\nrace bugs (Table 2):")
    for name, bug in RACE_BUGS.items():
        print(f"  {name:16s} [{bug.access_type:17s}]  "
              f"manifestation: {bug.manifestation}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    program = _resolve_program(args.program, _scale_from(args), args.source)
    result = Machine(program, seed=args.seed).run()
    print(f"{program.name}: {result.instructions} instructions, "
          f"{result.memory_ops} memory ops, {result.branches} branches, "
          f"{result.sync_ops} sync ops, {result.threads} threads, "
          f"tsc {result.tsc}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    program = _resolve_program(args.program, _scale_from(args), args.source)
    bundle = trace_run(program, period=args.period,
                       driver=_DRIVERS[args.driver], seed=args.seed)
    size = write_trace(bundle, args.output)
    estimate = estimate_overhead(bundle)
    print(f"traced {program.name} at period {args.period} "
          f"({args.driver} driver)")
    print(f"  samples: {len(bundle.samples)}  "
          f"sync records: {len(bundle.sync_records)}")
    print(f"  estimated runtime overhead: {100 * estimate.overhead:.2f}%")
    print(f"  wrote {size} bytes to {args.output}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    program = _resolve_program(args.program, _scale_from(args), args.source)
    try:
        bundle = read_trace(args.trace, program=program,
                            allow_partial=args.allow_partial)
    except FileNotFoundError:
        print(f"repro analyze: trace file not found: {args.trace}",
              file=sys.stderr)
        return 2
    except TraceFormatError as error:
        print(f"repro analyze: unreadable trace {args.trace}: {error}",
              file=sys.stderr)
        return 2
    pipeline = OfflinePipeline(program, mode=args.mode, jobs=args.jobs,
                               jit=not args.no_jit)
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = pipeline.analyze(bundle)
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
        print(f"wrote offline-stage profile to {args.profile} "
              f"(see docs/performance.md for how to read it)",
              file=sys.stderr)
    else:
        result = pipeline.analyze(bundle)
    if args.json:
        print(to_json(program, result))
    else:
        print(render_report(program, result))
    return 1 if result.races else 0


def _detect_one(work: tuple):
    """Module-level detect worker (picklable for the process executor):
    one seeded trace + analysis."""
    program, mode, period, driver, seed = work
    bundle = trace_run(program, period=period, driver=driver, seed=seed)
    return OfflinePipeline(program, mode=mode).analyze(bundle)


def cmd_detect(args: argparse.Namespace) -> int:
    program = _resolve_program(args.program, _scale_from(args), args.source)
    summary = FleetSummary()
    if args.runs == 1:
        # One run: spend the job budget inside the pipeline (per-thread
        # decode/replay fan-out).
        bundle = trace_run(program, period=args.period,
                           driver=_DRIVERS[args.driver], seed=args.seed)
        pipeline = OfflinePipeline(program, mode=args.mode, jobs=args.jobs)
        result = pipeline.analyze(bundle)
        summary.add(result)
        print(render_report(program, result))
        return 1 if summary.race_sites else 0
    # Many runs: fan the independent seeded trials out across processes
    # and fold the results back in seed order.
    work = [
        (program, args.mode, args.period, _DRIVERS[args.driver],
         args.seed + run_index)
        for run_index in range(args.runs)
    ]
    for result in parallel_map(_detect_one, work, jobs=args.jobs,
                               executor="process"):
        summary.add(result)
    print(summary.render(program))
    return 1 if summary.race_sites else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis import detection_sweep, overhead_sweep, tracesize_sweep
    from .workloads import RACE_BUGS

    scale = _scale_from(args)
    periods = [int(p) for p in args.periods.split(",")]
    if args.kind == "detection":
        bugs = (
            {args.target: RACE_BUGS[args.target]}
            if args.target else RACE_BUGS
        )
        result = detection_sweep(
            bugs, scale, periods=periods, runs=args.runs, mode=args.mode,
            driver=_DRIVERS[args.driver], jobs=args.jobs,
        )
        print(result.render())
        return 0
    workloads = ALL_WORKLOADS
    if args.target:
        if args.target not in ALL_WORKLOADS:
            raise SystemExit(f"unknown workload {args.target!r}")
        workloads = {args.target: ALL_WORKLOADS[args.target]}
    sweep = overhead_sweep if args.kind == "overhead" else tracesize_sweep
    print(sweep(workloads, scale, periods=periods,
                driver=_DRIVERS[args.driver]).render())
    return 0


def _chaos_one(work: tuple):
    """Module-level chaos worker (picklable): degrade one seeded bundle
    under one plan and analyze it."""
    program, mode, bundle, plan = work
    degraded, _ = plan.apply(bundle)
    return OfflinePipeline(program, mode=mode).analyze(degraded)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection sweep: detection probability vs fault intensity.

    For each built-in fault plan and each intensity, every seeded run's
    bundle is degraded and analyzed; the cell reports the fraction of
    runs in which at least one race was still detected.  The analysis
    must *complete* on every degraded bundle — any exception fails the
    sweep — so this doubles as the chaos smoke test in CI.
    """
    from .faults import BUILTIN_PLAN_NAMES, builtin_plans

    program = _resolve_program(args.program, _scale_from(args), args.source)
    intensities = [float(x) for x in args.intensities.split(",")]
    plan_names = (
        [p.strip() for p in args.plans.split(",")] if args.plans
        else list(BUILTIN_PLAN_NAMES)
    )
    unknown = set(plan_names) - set(BUILTIN_PLAN_NAMES)
    if unknown:
        raise SystemExit(
            f"unknown fault plans {sorted(unknown)}; "
            f"choose from {', '.join(BUILTIN_PLAN_NAMES)}"
        )
    bundles = [
        trace_run(program, period=args.period,
                  driver=_DRIVERS[args.driver], seed=args.seed + index)
        for index in range(args.runs)
    ]
    baseline = sum(
        1 for bundle in bundles
        if OfflinePipeline(program, mode=args.mode).analyze(bundle).races
    )
    print(f"chaos sweep: {program.name}  period {args.period}  "
          f"{args.runs} runs  seed {args.seed}")
    print(f"baseline detection (no faults): "
          f"{baseline}/{args.runs} = {baseline / args.runs:.2f}")
    header = f"{'intensity':>10s}" + "".join(
        f" {name:>18s}" for name in plan_names
    )
    print(header)
    for intensity in intensities:
        cells = []
        for name in plan_names:
            detected = 0
            for index, bundle in enumerate(bundles):
                plan = builtin_plans(intensity,
                                     seed=args.seed + index)[name]
                result = _chaos_one((program, args.mode, bundle, plan))
                if result.races:
                    detected += 1
            cells.append(f"{detected / args.runs:18.2f}")
        print(f"{intensity:10.2f}" + " " + " ".join(cells))
    print("chaos sweep complete: all degraded analyses finished.")
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    program = _resolve_program(args.program, _scale_from(args), args.source)
    periods = [int(p) for p in args.periods.split(",")]
    print(f"{'period':>10s} {'prorace':>10s} {'vanilla':>10s}")
    for period in periods:
        row = []
        for driver in (PRORACE_DRIVER, VANILLA_DRIVER):
            bundle = trace_run(program, period=period, driver=driver,
                               seed=args.seed)
            row.append(estimate_overhead(bundle).overhead)
        print(f"{period:10d} {100 * row[0]:9.2f}% {100 * row[1]:9.2f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProRace reproduction: PMU-sampling data race "
                    "detection with offline reconstruction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list workloads and race bugs")

    run_parser = sub.add_parser("run", help="execute a workload untraced")
    _add_program_args(run_parser)

    trace_parser = sub.add_parser("trace", help="trace a run to a file")
    _add_program_args(trace_parser)
    trace_parser.add_argument("--period", type=int, default=1_000)
    trace_parser.add_argument("--driver", choices=sorted(_DRIVERS),
                              default="prorace")
    trace_parser.add_argument("-o", "--output", default="trace.prtr")

    analyze_parser = sub.add_parser("analyze",
                                    help="offline-analyze a trace file")
    _add_program_args(analyze_parser)
    analyze_parser.add_argument("trace", help="trace file (.prtr)")
    analyze_parser.add_argument("--mode", default="full",
                                choices=("full", "forward", "basicblock",
                                         "sampled"))
    analyze_parser.add_argument("--json", action="store_true")
    analyze_parser.add_argument("--jobs", type=int, default=1,
                                help="workers for per-thread decode/replay")
    analyze_parser.add_argument(
        "--allow-partial", action="store_true",
        help="salvage intact sections of a corrupted v2 trace file "
             "instead of failing on the checksum",
    )
    analyze_parser.add_argument(
        "--no-jit", action="store_true",
        help="replay with the instruction interpreter instead of the "
             "pre-lowered micro-op executor (bit-identical, slower)",
    )
    analyze_parser.add_argument(
        "--profile", metavar="PATH",
        help="dump a cProfile pstats file for the offline stage to PATH",
    )

    detect_parser = sub.add_parser("detect", help="trace + analyze")
    _add_program_args(detect_parser)
    detect_parser.add_argument("--period", type=int, default=1_000)
    detect_parser.add_argument("--driver", choices=sorted(_DRIVERS),
                               default="prorace")
    detect_parser.add_argument("--mode", default="full",
                               choices=("full", "forward", "basicblock",
                                        "sampled"))
    detect_parser.add_argument("--runs", type=int, default=1,
                               help="seeded runs to aggregate")
    detect_parser.add_argument("--jobs", type=int, default=1,
                               help="workers: across runs when --runs > 1, "
                                    "inside the pipeline otherwise")

    overhead_parser = sub.add_parser(
        "overhead", help="sweep sampling periods for a workload"
    )
    _add_program_args(overhead_parser)
    overhead_parser.add_argument(
        "--periods", default="10,100,1000,10000,100000",
        help="comma-separated period list",
    )

    sweep_parser = sub.add_parser(
        "sweep", help="grid experiments over the workload catalog"
    )
    sweep_parser.add_argument("kind", choices=("overhead", "tracesize",
                                               "detection"))
    sweep_parser.add_argument("--target",
                              help="one workload/bug (default: all)")
    sweep_parser.add_argument("--periods", default="100,1000,10000")
    sweep_parser.add_argument("--runs", type=int, default=5,
                              help="runs per detection cell")
    sweep_parser.add_argument("--mode", default="full",
                              choices=("full", "forward", "basicblock",
                                       "sampled"))
    sweep_parser.add_argument("--driver", choices=sorted(_DRIVERS),
                              default="prorace")
    sweep_parser.add_argument("--jobs", type=int, default=1,
                              help="workers for detection-sweep trials")
    sweep_parser.add_argument("--iterations", type=int, default=40)
    sweep_parser.add_argument("--threads", type=int, default=4)
    sweep_parser.add_argument("--seed", type=int, default=0)

    chaos_parser = sub.add_parser(
        "chaos",
        help="fault-injection sweep: detection probability vs intensity",
    )
    _add_program_args(chaos_parser)
    chaos_parser.add_argument("--period", type=int, default=100)
    chaos_parser.add_argument("--driver", choices=sorted(_DRIVERS),
                              default="prorace")
    chaos_parser.add_argument("--mode", default="full",
                              choices=("full", "forward", "basicblock",
                                       "sampled"))
    chaos_parser.add_argument("--runs", type=int, default=3,
                              help="seeded runs per cell")
    chaos_parser.add_argument("--plans", default="",
                              help="comma-separated fault plan names "
                                   "(default: all built-ins)")
    chaos_parser.add_argument("--intensities", default="0.05,0.1,0.2",
                              help="comma-separated fault intensities")

    return parser


_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "workloads": cmd_workloads,
    "run": cmd_run,
    "trace": cmd_trace,
    "analyze": cmd_analyze,
    "detect": cmd_detect,
    "overhead": cmd_overhead,
    "sweep": cmd_sweep,
    "chaos": cmd_chaos,
}


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
